//! Query → request splitting (the heart of DeepRecSched's request- vs
//! batch-level parallelism trade-off).

/// Splits a query of `size` items into balanced requests of at most
/// `max_batch` items each.
///
/// "Large queries are split into multiple requests of smaller batch
/// sizes that are processed by parallel cores" (Section IV). The split
/// is balanced — `⌈size / max_batch⌉` parts whose sizes differ by at
/// most one — matching the production baseline's "splitting the largest
/// query evenly across all available cores".
///
/// # Panics
///
/// Panics if `size` or `max_batch` is zero.
///
/// # Examples
///
/// ```
/// use drs_query::split_query;
///
/// assert_eq!(split_query(1000, 1000), vec![1000]);
/// assert_eq!(split_query(1000, 400), vec![334, 333, 333]);
/// assert_eq!(split_query(7, 3), vec![3, 2, 2]);
/// ```
pub fn split_query(size: u32, max_batch: u32) -> Vec<u32> {
    assert!(size > 0, "cannot split an empty query");
    assert!(max_batch > 0, "max_batch must be positive");
    let parts = size.div_ceil(max_batch);
    let base = size / parts;
    let extra = size % parts;
    (0..parts)
        .map(|i| if i < extra { base + 1 } else { base })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_part_when_fits() {
        assert_eq!(split_query(64, 64), vec![64]);
        assert_eq!(split_query(1, 1024), vec![1]);
    }

    #[test]
    fn conserves_items() {
        for size in [1u32, 7, 63, 64, 65, 999, 1000] {
            for mb in [1u32, 3, 25, 64, 256, 1024] {
                let parts = split_query(size, mb);
                assert_eq!(parts.iter().sum::<u32>(), size, "size {size} mb {mb}");
                assert!(parts.iter().all(|&p| p <= mb), "size {size} mb {mb}");
                assert!(parts.iter().all(|&p| p > 0));
            }
        }
    }

    #[test]
    fn balanced_within_one() {
        for size in [100u32, 999, 1000] {
            for mb in [7u32, 25, 130] {
                let parts = split_query(size, mb);
                let min = *parts.iter().min().unwrap();
                let max = *parts.iter().max().unwrap();
                assert!(max - min <= 1, "size {size} mb {mb}: {parts:?}");
            }
        }
    }

    #[test]
    fn production_baseline_shape() {
        // Max query 1000 split for a 40-core Skylake at the static
        // baseline batch of 25 → exactly 40 requests (Section V).
        let parts = split_query(1000, 25);
        assert_eq!(parts.len(), 40);
        assert!(parts.iter().all(|&p| p == 25));
    }

    #[test]
    #[should_panic(expected = "empty query")]
    fn zero_size_panics() {
        split_query(0, 8);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_batch_panics() {
        split_query(8, 0);
    }
}
