//! Multi-tenant arrival streams: several services' query generators
//! merged into one arrival-ordered, tenant-tagged stream.
//!
//! The paper's datacenter setting co-locates many recommendation
//! services on shared hardware (PAPER §III), each with its own traffic
//! shape: a compute-heavy ranking model may see a few hundred QPS of
//! large queries while an embedding-heavy one sees thousands of small
//! ones. [`MixedStream`] models that front door: one seeded
//! [`QueryGenerator`] per tenant, merged by arrival time into a single
//! stream whose queries carry their [`TenantId`] — the input every
//! multi-tenant serving layer consumes.

use crate::generator::{Query, QueryGenerator, TenantId};

/// Merges per-tenant query streams into one arrival-ordered stream.
///
/// Generator `k` is tenant `k` (its own `with_tenant` tag is
/// overridden); global query ids are reassigned in merged arrival
/// order, so downstream warm-up windows (`id >= warmup_n`) keep their
/// meaning. Arrival ties break toward the smaller tenant, keeping the
/// merge byte-deterministic per seed.
///
/// # Examples
///
/// ```
/// use drs_query::{ArrivalProcess, MixedStream, QueryGenerator, SizeDistribution, TenantId};
///
/// let stream = MixedStream::new(vec![
///     QueryGenerator::new(ArrivalProcess::poisson(500.0), SizeDistribution::production(), 7),
///     QueryGenerator::new(ArrivalProcess::poisson(100.0), SizeDistribution::production(), 8),
/// ]);
/// let queries: Vec<_> = stream.take(100).collect();
/// assert!(queries.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
/// assert!(queries.windows(2).all(|w| w[1].id == w[0].id + 1));
/// assert!(queries.iter().any(|q| q.tenant == TenantId(0)));
/// assert!(queries.iter().any(|q| q.tenant == TenantId(1)));
/// ```
#[derive(Debug, Clone)]
pub struct MixedStream {
    /// One lane per tenant: its generator and the next query it will
    /// emit (the merge head).
    lanes: Vec<(QueryGenerator, Option<Query>)>,
    next_id: u64,
}

impl MixedStream {
    /// Builds a mixed stream over `generators`; generator `k` becomes
    /// tenant `k`.
    ///
    /// # Panics
    ///
    /// Panics if `generators` is empty.
    pub fn new(generators: Vec<QueryGenerator>) -> Self {
        assert!(!generators.is_empty(), "a mixed stream needs tenants");
        let lanes = generators
            .into_iter()
            .enumerate()
            .map(|(k, gen)| {
                let mut gen = gen.with_tenant(TenantId(k as u32));
                let head = gen.next();
                (gen, head)
            })
            .collect();
        MixedStream { lanes, next_id: 0 }
    }

    /// Number of tenants in the mix.
    pub fn tenants(&self) -> usize {
        self.lanes.len()
    }
}

impl Iterator for MixedStream {
    type Item = Query;

    fn next(&mut self) -> Option<Query> {
        // The earliest head wins; ties break toward the smaller tenant
        // (scan order), so the merge is deterministic.
        let lane = self
            .lanes
            .iter()
            .enumerate()
            .filter_map(|(k, (_, head))| head.map(|q| (k, q.arrival_s)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(k, _)| k)?;
        let (gen, head) = &mut self.lanes[lane];
        let mut q = head.take().expect("selected lane has a head");
        *head = gen.next();
        q.id = self.next_id;
        self.next_id += 1;
        Some(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArrivalProcess, SizeDistribution};

    fn gen(rate: f64, seed: u64) -> QueryGenerator {
        QueryGenerator::new(
            ArrivalProcess::poisson(rate),
            SizeDistribution::production(),
            seed,
        )
    }

    #[test]
    fn merge_is_arrival_ordered_with_sequential_ids() {
        let qs: Vec<_> = MixedStream::new(vec![gen(800.0, 1), gen(200.0, 2), gen(50.0, 3)])
            .take(500)
            .collect();
        for w in qs.windows(2) {
            assert!(w[1].arrival_s >= w[0].arrival_s);
            assert_eq!(w[1].id, w[0].id + 1);
        }
    }

    #[test]
    fn tenants_tagged_by_lane_index() {
        let qs: Vec<_> = MixedStream::new(vec![gen(500.0, 1), gen(500.0, 2)])
            .take(400)
            .collect();
        let t0 = qs.iter().filter(|q| q.tenant == TenantId(0)).count();
        let t1 = qs.iter().filter(|q| q.tenant == TenantId(1)).count();
        assert_eq!(t0 + t1, 400);
        assert!(t0 > 100 && t1 > 100, "equal rates split roughly evenly");
    }

    #[test]
    fn per_tenant_marginals_match_solo_streams() {
        // Each tenant's subsequence must be exactly the stream its own
        // generator would have produced alone (sizes and arrivals; only
        // the global ids are reassigned by the merge).
        let mixed: Vec<_> = MixedStream::new(vec![gen(600.0, 9), gen(150.0, 10)])
            .take(600)
            .collect();
        for (k, seed) in [(0u32, 9u64), (1, 10)] {
            let lane: Vec<_> = mixed.iter().filter(|q| q.tenant == TenantId(k)).collect();
            let solo: Vec<_> = gen(if k == 0 { 600.0 } else { 150.0 }, seed)
                .take(lane.len())
                .collect();
            for (m, s) in lane.iter().zip(&solo) {
                assert_eq!(m.size, s.size);
                assert_eq!(m.arrival_s, s.arrival_s);
            }
        }
    }

    #[test]
    fn rate_ratio_shows_in_counts() {
        let qs: Vec<_> = MixedStream::new(vec![gen(900.0, 5), gen(100.0, 6)])
            .take(2_000)
            .collect();
        let t0 = qs.iter().filter(|q| q.tenant == TenantId(0)).count() as f64;
        let share = t0 / qs.len() as f64;
        assert!((share - 0.9).abs() < 0.05, "tenant 0 share {share}");
    }

    #[test]
    fn same_seeds_same_mix() {
        let a: Vec<_> = MixedStream::new(vec![gen(500.0, 11), gen(250.0, 12)])
            .take(300)
            .collect();
        let b: Vec<_> = MixedStream::new(vec![gen(500.0, 11), gen(250.0, 12)])
            .take(300)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "a mixed stream needs tenants")]
    fn empty_mix_rejected() {
        let _ = MixedStream::new(vec![]);
    }
}
