//! Query working-set size distributions (Figure 5).

use crate::sampler;
use crate::MAX_QUERY_SIZE;
use rand::Rng;

/// Distribution of the number of candidate items per query.
///
/// Prior web-service studies model working-set sizes as fixed, normal,
/// or log-normal; the paper shows production recommendation query sizes
/// have a distinctly *heavier* tail (Figure 5) and that optimizing for
/// the wrong distribution costs up to 1.7× throughput (Section VI-A).
/// All variants truncate samples to `[1, MAX_QUERY_SIZE]`.
///
/// # Examples
///
/// ```
/// use drs_query::SizeDistribution;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let d = SizeDistribution::production();
/// let s = d.sample(&mut rng);
/// assert!((1..=1000).contains(&s));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SizeDistribution {
    /// Every query carries exactly this many items.
    Fixed(u32),
    /// Normal distribution (truncated); the classic web-service
    /// assumption.
    Normal {
        /// Mean size in items.
        mean: f64,
        /// Standard deviation in items.
        std: f64,
    },
    /// Log-normal distribution; `mu`/`sigma` parameterize the underlying
    /// normal (median is `exp(mu)`).
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
    /// The production-calibrated heavy-tail mixture: a log-normal body
    /// plus a Pareto tail, truncated at [`MAX_QUERY_SIZE`].
    ///
    /// Calibration targets (validated by unit tests):
    /// * sizes capped at 1000 items (Figure 5);
    /// * the top quartile of queries (by size) carries roughly half of
    ///   all items (Figure 6's "25 % of large queries ≈ 50 % of
    ///   execution time");
    /// * visibly heavier tail than the matched log-normal.
    ProductionHeavyTail {
        /// Mean of the body's underlying normal.
        body_mu: f64,
        /// Std of the body's underlying normal.
        body_sigma: f64,
        /// Probability a sample comes from the Pareto tail.
        tail_weight: f64,
        /// Pareto scale (minimum tail size).
        tail_xm: f64,
        /// Pareto shape (smaller = heavier).
        tail_alpha: f64,
    },
}

impl SizeDistribution {
    /// The canonical production-calibrated distribution used throughout
    /// the reproduction (see [`SizeDistribution::ProductionHeavyTail`]).
    pub fn production() -> Self {
        SizeDistribution::ProductionHeavyTail {
            body_mu: 3.555, // median ≈ 35 items
            body_sigma: 0.8,
            tail_weight: 0.08,
            tail_xm: 120.0,
            tail_alpha: 1.3,
        }
    }

    /// A log-normal with approximately the same mean as
    /// [`SizeDistribution::production`] but the canonical lighter tail —
    /// the comparison distribution of Figures 5 and 12(a).
    pub fn lognormal_matched() -> Self {
        SizeDistribution::LogNormal {
            mu: 3.95,
            sigma: 0.6,
        }
    }

    /// A normal with approximately the same mean as
    /// [`SizeDistribution::production`].
    pub fn normal_matched() -> Self {
        SizeDistribution::Normal {
            mean: 65.0,
            std: 25.0,
        }
    }

    /// Draws one query size.
    pub fn sample(&self, rng: &mut impl Rng) -> u32 {
        let raw = match *self {
            SizeDistribution::Fixed(n) => n as f64,
            SizeDistribution::Normal { mean, std } => sampler::normal(rng, mean, std),
            SizeDistribution::LogNormal { mu, sigma } => sampler::lognormal(rng, mu, sigma),
            SizeDistribution::ProductionHeavyTail {
                body_mu,
                body_sigma,
                tail_weight,
                tail_xm,
                tail_alpha,
            } => {
                if rng.gen_range(0.0..1.0) < tail_weight {
                    sampler::pareto(rng, tail_xm, tail_alpha)
                } else {
                    sampler::lognormal(rng, body_mu, body_sigma)
                }
            }
        };
        (raw.round().max(1.0) as u32).min(MAX_QUERY_SIZE)
    }

    /// Draws `n` sizes (convenience for calibration and experiments).
    pub fn sample_n(&self, n: usize, rng: &mut impl Rng) -> Vec<u32> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Human-readable name used in experiment output tables.
    pub fn name(&self) -> &'static str {
        match self {
            SizeDistribution::Fixed(_) => "fixed",
            SizeDistribution::Normal { .. } => "normal",
            SizeDistribution::LogNormal { .. } => "lognormal",
            SizeDistribution::ProductionHeavyTail { .. } => "production",
        }
    }
}

/// Fraction of total items carried by queries strictly larger than the
/// `q`-quantile size of the sample (e.g. `q = 0.75` gives the share of
/// work in the top quartile — the Figure 6 statistic).
///
/// Returns 0.0 for an empty sample.
pub fn tail_work_share(sizes: &[u32], q: f64) -> f64 {
    if sizes.is_empty() {
        return 0.0;
    }
    let mut sorted = sizes.to_vec();
    sorted.sort_unstable();
    let cut = sorted[((sorted.len() - 1) as f64 * q) as usize];
    let total: u64 = sizes.iter().map(|&s| s as u64).sum();
    let tail: u64 = sizes.iter().filter(|&&s| s > cut).map(|&s| s as u64).sum();
    tail as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn draw(d: SizeDistribution, n: usize, seed: u64) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(seed);
        d.sample_n(n, &mut rng)
    }

    fn pctile(sorted: &[u32], q: f64) -> u32 {
        sorted[((sorted.len() - 1) as f64 * q) as usize]
    }

    #[test]
    fn all_distributions_respect_bounds() {
        for d in [
            SizeDistribution::Fixed(64),
            SizeDistribution::normal_matched(),
            SizeDistribution::lognormal_matched(),
            SizeDistribution::production(),
        ] {
            let s = draw(d, 50_000, 9);
            assert!(
                s.iter().all(|&x| (1..=MAX_QUERY_SIZE).contains(&x)),
                "{d:?}"
            );
        }
    }

    #[test]
    fn fixed_is_constant() {
        let s = draw(SizeDistribution::Fixed(17), 100, 0);
        assert!(s.iter().all(|&x| x == 17));
    }

    #[test]
    fn production_calibration_mean_and_p75() {
        let s = draw(SizeDistribution::production(), 200_000, 1);
        let mean = s.iter().map(|&x| x as f64).sum::<f64>() / s.len() as f64;
        assert!((50.0..90.0).contains(&mean), "mean {mean}");
        let mut sorted = s.clone();
        sorted.sort_unstable();
        let p75 = pctile(&sorted, 0.75);
        assert!((50..110).contains(&p75), "p75 {p75}");
    }

    #[test]
    fn production_top_quartile_carries_about_half_the_work() {
        // Figure 6: 25% of large queries ≈ 50% of total execution time.
        let s = draw(SizeDistribution::production(), 200_000, 2);
        let share = tail_work_share(&s, 0.75);
        assert!((0.45..0.72).contains(&share), "tail work share {share}");
    }

    #[test]
    fn production_tail_heavier_than_lognormal() {
        // Figure 5's core claim. Compare p99 and p99.9.
        let prod = draw(SizeDistribution::production(), 200_000, 3);
        let logn = draw(SizeDistribution::lognormal_matched(), 200_000, 3);
        let (mut a, mut b) = (prod.clone(), logn.clone());
        a.sort_unstable();
        b.sort_unstable();
        assert!(
            pctile(&a, 0.99) > 2 * pctile(&b, 0.99),
            "p99 production {} vs lognormal {}",
            pctile(&a, 0.99),
            pctile(&b, 0.99)
        );
        // Means stay comparable (within 40%) so throughput comparisons
        // are apples-to-apples.
        let ma = prod.iter().map(|&x| x as f64).sum::<f64>() / prod.len() as f64;
        let mb = logn.iter().map(|&x| x as f64).sum::<f64>() / logn.len() as f64;
        assert!((ma / mb - 1.0).abs() < 0.4, "means {ma} vs {mb}");
    }

    #[test]
    fn production_reaches_max_size() {
        let s = draw(SizeDistribution::production(), 200_000, 4);
        let hits = s.iter().filter(|&&x| x == MAX_QUERY_SIZE).count();
        assert!(hits > 100, "only {hits} samples at the 1000-item cap");
    }

    #[test]
    fn tail_work_share_edge_cases() {
        assert_eq!(tail_work_share(&[], 0.75), 0.0);
        assert_eq!(tail_work_share(&[5, 5, 5, 5], 0.75), 0.0); // no query above cut
        let share = tail_work_share(&[1, 1, 1, 97], 0.5);
        assert!((share - 0.97).abs() < 1e-9);
    }

    #[test]
    fn names_distinct() {
        let names: std::collections::HashSet<_> = [
            SizeDistribution::Fixed(1),
            SizeDistribution::normal_matched(),
            SizeDistribution::lognormal_matched(),
            SizeDistribution::production(),
        ]
        .iter()
        .map(|d| d.name())
        .collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn deterministic_under_seed() {
        assert_eq!(
            draw(SizeDistribution::production(), 1000, 42),
            draw(SizeDistribution::production(), 1000, 42)
        );
    }
}
