//! Real-time query serving for recommendation inference (DeepRecInfra's
//! load generator).
//!
//! Section III-C of the paper identifies two dimensions that at-scale
//! recommendation studies must model and that micro-benchmarks miss:
//!
//! 1. **Query arrival** — requests to production recommendation services
//!    arrive following a Poisson process (exponential inter-arrival
//!    gaps); Figure 13's production study additionally sees a diurnal
//!    load cycle.
//! 2. **Query working-set size** — the number of candidate items ranked
//!    per query. Production sizes follow a *heavier-tailed* distribution
//!    than the canonical log-normal assumed by prior web-service studies
//!    (Figure 5): most queries are small, but the top quartile of
//!    queries carries roughly half the total work (Figure 6), and sizes
//!    are capped around 1000 items.
//!
//! This crate provides seeded, reproducible implementations of both
//! dimensions ([`ArrivalProcess`], [`SizeDistribution`]) plus the
//! [`QueryGenerator`] iterator that drives both the real engine and the
//! discrete-event simulator. All samplers (normal, log-normal,
//! exponential, Pareto) are implemented from scratch in [`sampler`].
//!
//! # Examples
//!
//! ```
//! use drs_query::{ArrivalProcess, QueryGenerator, SizeDistribution};
//!
//! let gen = QueryGenerator::new(
//!     ArrivalProcess::poisson(500.0),
//!     SizeDistribution::production(),
//!     42,
//! );
//! let queries: Vec<_> = gen.take(100).collect();
//! assert_eq!(queries.len(), 100);
//! assert!(queries.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
//! assert!(queries.iter().all(|q| (1..=1000).contains(&q.size)));
//! ```

#![warn(missing_docs)]

mod arrival;
mod generator;
mod mixed;
pub mod sampler;
mod size;
mod split;
pub mod trace;

pub use arrival::ArrivalProcess;
pub use generator::{Query, QueryGenerator, TenantId};
pub use mixed::MixedStream;
pub use size::{tail_work_share, SizeDistribution};
pub use split::split_query;
pub use trace::{ParseTraceError, Trace};

/// The maximum query working-set size observed in production (Figure 5);
/// all size distributions in this crate truncate to this value.
pub const MAX_QUERY_SIZE: u32 = 1000;
