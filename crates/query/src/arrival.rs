//! Query arrival processes (Section III-C).

use crate::sampler;
use rand::Rng;

/// Inter-arrival process for inference queries.
///
/// Production recommendation traffic follows a Poisson process; the
/// fixed-gap variant exists for controlled experiments, and the diurnal
/// variant modulates the Poisson rate over a 24-hour cycle for the
/// Figure 13 production study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Poisson arrivals at a constant rate (exponential gaps).
    Poisson {
        /// Offered load in queries per second.
        rate_qps: f64,
    },
    /// Deterministic arrivals: one query every `1/rate_qps` seconds.
    Fixed {
        /// Offered load in queries per second.
        rate_qps: f64,
    },
    /// Poisson arrivals whose rate follows a sinusoidal diurnal cycle:
    /// `rate(t) = base_qps · (1 + amplitude · sin(2πt / period_s))`.
    DiurnalPoisson {
        /// Mean offered load in queries per second.
        base_qps: f64,
        /// Relative swing in `[0, 1)`; 0.3 means ±30 %.
        amplitude: f64,
        /// Cycle length in seconds (86 400 for a day).
        period_s: f64,
    },
}

impl ArrivalProcess {
    /// Poisson arrivals at `rate_qps` queries per second.
    ///
    /// # Panics
    ///
    /// Panics unless `rate_qps` is finite and positive.
    pub fn poisson(rate_qps: f64) -> Self {
        assert!(
            rate_qps > 0.0 && rate_qps.is_finite(),
            "rate must be finite and > 0"
        );
        ArrivalProcess::Poisson { rate_qps }
    }

    /// Deterministic arrivals at `rate_qps` queries per second.
    ///
    /// # Panics
    ///
    /// Panics unless `rate_qps` is finite and positive.
    pub fn fixed(rate_qps: f64) -> Self {
        assert!(
            rate_qps > 0.0 && rate_qps.is_finite(),
            "rate must be finite and > 0"
        );
        ArrivalProcess::Fixed { rate_qps }
    }

    /// Diurnal Poisson arrivals (see [`ArrivalProcess::DiurnalPoisson`]).
    ///
    /// # Panics
    ///
    /// Panics unless `base_qps > 0`, `0 <= amplitude < 1`, and
    /// `period_s > 0`.
    pub fn diurnal(base_qps: f64, amplitude: f64, period_s: f64) -> Self {
        assert!(
            base_qps > 0.0 && base_qps.is_finite(),
            "base rate must be > 0"
        );
        assert!(
            (0.0..1.0).contains(&amplitude),
            "amplitude must be in [0, 1)"
        );
        assert!(period_s > 0.0, "period must be > 0");
        ArrivalProcess::DiurnalPoisson {
            base_qps,
            amplitude,
            period_s,
        }
    }

    /// Mean offered load in queries per second.
    pub fn mean_rate_qps(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_qps } | ArrivalProcess::Fixed { rate_qps } => rate_qps,
            ArrivalProcess::DiurnalPoisson { base_qps, .. } => base_qps,
        }
    }

    /// Returns a copy of this process with the mean rate replaced —
    /// used by the max-QPS binary search to probe different loads while
    /// keeping the process shape.
    pub fn with_rate(&self, rate_qps: f64) -> Self {
        match *self {
            ArrivalProcess::Poisson { .. } => ArrivalProcess::poisson(rate_qps),
            ArrivalProcess::Fixed { .. } => ArrivalProcess::fixed(rate_qps),
            ArrivalProcess::DiurnalPoisson {
                amplitude,
                period_s,
                ..
            } => ArrivalProcess::diurnal(rate_qps, amplitude, period_s),
        }
    }

    /// Instantaneous rate at absolute time `now_s`.
    pub fn rate_at(&self, now_s: f64) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_qps } | ArrivalProcess::Fixed { rate_qps } => rate_qps,
            ArrivalProcess::DiurnalPoisson {
                base_qps,
                amplitude,
                period_s,
            } => {
                base_qps * (1.0 + amplitude * (2.0 * std::f64::consts::PI * now_s / period_s).sin())
            }
        }
    }

    /// Samples the gap to the next arrival given the current time.
    ///
    /// For the diurnal variant this uses the instantaneous rate at
    /// `now_s` (a standard piecewise approximation: the rate changes on
    /// a scale of hours while gaps are milliseconds).
    pub fn next_gap_s(&self, now_s: f64, rng: &mut impl Rng) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_qps } => sampler::exponential(rng, rate_qps),
            ArrivalProcess::Fixed { rate_qps } => 1.0 / rate_qps,
            ArrivalProcess::DiurnalPoisson { .. } => sampler::exponential(rng, self.rate_at(now_s)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean_gap() {
        let p = ArrivalProcess::poisson(100.0);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let total: f64 = (0..n).map(|_| p.next_gap_s(0.0, &mut rng)).sum();
        let mean = total / n as f64;
        assert!((mean - 0.01).abs() / 0.01 < 0.02, "mean gap {mean}");
    }

    #[test]
    fn fixed_gap_is_deterministic() {
        let p = ArrivalProcess::fixed(200.0);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(p.next_gap_s(0.0, &mut rng), 0.005);
        assert_eq!(p.next_gap_s(123.0, &mut rng), 0.005);
    }

    #[test]
    fn diurnal_rate_oscillates() {
        let p = ArrivalProcess::diurnal(1000.0, 0.3, 86_400.0);
        let peak = p.rate_at(86_400.0 / 4.0); // sin = 1
        let trough = p.rate_at(3.0 * 86_400.0 / 4.0); // sin = -1
        assert!((peak - 1300.0).abs() < 1e-6);
        assert!((trough - 700.0).abs() < 1e-6);
        assert!((p.rate_at(0.0) - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn with_rate_preserves_shape() {
        let p = ArrivalProcess::diurnal(100.0, 0.2, 3600.0).with_rate(500.0);
        match p {
            ArrivalProcess::DiurnalPoisson {
                base_qps,
                amplitude,
                period_s,
            } => {
                assert_eq!(base_qps, 500.0);
                assert_eq!(amplitude, 0.2);
                assert_eq!(period_s, 3600.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "must be finite and > 0")]
    fn rejects_zero_rate() {
        ArrivalProcess::poisson(0.0);
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn rejects_amplitude_one() {
        ArrivalProcess::diurnal(10.0, 1.0, 60.0);
    }
}
