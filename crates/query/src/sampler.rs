//! From-scratch samplers for the distributions the load generator needs.
//!
//! Implemented directly over [`rand::Rng`] uniforms so the workspace
//! stays within its approved dependency set (no `rand_distr`), and so
//! the production mixture below can be documented and tested as a single
//! auditable unit.

use rand::Rng;

/// Standard-normal sample via the Box–Muller transform.
///
/// Uses the polar-free classic form: `sqrt(-2 ln u1) * cos(2π u2)`.
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    // Guard u1 away from 0 so ln() stays finite.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Normal sample with the given mean and standard deviation.
///
/// # Panics
///
/// Panics if `std` is negative or non-finite.
pub fn normal(rng: &mut impl Rng, mean: f64, std: f64) -> f64 {
    assert!(std >= 0.0 && std.is_finite(), "std must be finite and >= 0");
    mean + std * standard_normal(rng)
}

/// Log-normal sample: `exp(N(mu, sigma))`.
///
/// `mu`/`sigma` are the mean/std of the *underlying* normal (so the
/// median is `exp(mu)`).
///
/// # Panics
///
/// Panics if `sigma` is negative or non-finite.
pub fn lognormal(rng: &mut impl Rng, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Exponential sample with the given rate (mean `1/rate`), via inverse
/// CDF. This is the inter-arrival gap of a Poisson process.
///
/// # Panics
///
/// Panics unless `rate` is finite and positive.
pub fn exponential(rng: &mut impl Rng, rate: f64) -> f64 {
    assert!(
        rate > 0.0 && rate.is_finite(),
        "rate must be finite and > 0"
    );
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

/// Pareto (type I) sample with scale `xm` and shape `alpha`, via inverse
/// CDF: `xm / u^(1/alpha)`.
///
/// # Panics
///
/// Panics unless `xm > 0` and `alpha > 0`.
pub fn pareto(rng: &mut impl Rng, xm: f64, alpha: f64) -> f64 {
    assert!(xm > 0.0 && alpha > 0.0, "xm and alpha must be > 0");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    xm / u.powf(1.0 / alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const N: usize = 200_000;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (samples.len() - 1) as f64;
        (mean, var)
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let s: Vec<f64> = (0..N).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let (mean, var) = moments(&s);
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn lognormal_median() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut s: Vec<f64> = (0..N).map(|_| lognormal(&mut rng, 3.0, 0.5)).collect();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = s[N / 2];
        assert!(
            (median - 3.0f64.exp()).abs() / 3.0f64.exp() < 0.03,
            "median {median} vs {}",
            3.0f64.exp()
        );
        assert!(s.iter().all(|x| *x > 0.0));
    }

    #[test]
    fn exponential_mean_and_memorylessness_proxy() {
        let mut rng = StdRng::seed_from_u64(3);
        let rate = 250.0;
        let s: Vec<f64> = (0..N).map(|_| exponential(&mut rng, rate)).collect();
        let (mean, var) = moments(&s);
        assert!(
            (mean - 1.0 / rate).abs() / (1.0 / rate) < 0.02,
            "mean {mean}"
        );
        // For Exp, var = mean^2.
        assert!(
            (var - mean * mean).abs() / (mean * mean) < 0.05,
            "var {var}"
        );
        assert!(s.iter().all(|x| *x >= 0.0));
    }

    #[test]
    fn pareto_bounds_and_tail() {
        let mut rng = StdRng::seed_from_u64(4);
        let s: Vec<f64> = (0..N).map(|_| pareto(&mut rng, 100.0, 1.5)).collect();
        assert!(s.iter().all(|x| *x >= 100.0));
        // P(X > 200) = (100/200)^1.5 ≈ 0.3536.
        let frac = s.iter().filter(|x| **x > 200.0).count() as f64 / N as f64;
        assert!((frac - 0.3536).abs() < 0.01, "tail fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "must be finite and > 0")]
    fn exponential_rejects_zero_rate() {
        let mut rng = StdRng::seed_from_u64(5);
        exponential(&mut rng, 0.0);
    }

    #[test]
    #[should_panic(expected = "must be > 0")]
    fn pareto_rejects_bad_shape() {
        let mut rng = StdRng::seed_from_u64(6);
        pareto(&mut rng, 1.0, 0.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..10).map(|_| standard_normal(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..10).map(|_| standard_normal(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
