//! The query stream driving engine and simulator.

use crate::{ArrivalProcess, SizeDistribution};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Identity of the recommendation service (tenant) a query belongs to.
///
/// Datacenters co-locate many recommendation services on shared
/// hardware (PAPER §III); a multi-tenant serving stack batches and
/// tunes each service independently, so every query carries the tenant
/// it was issued against. Single-service streams use
/// [`TenantId::SOLO`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The lone tenant of a single-service stream.
    pub const SOLO: TenantId = TenantId(0);

    /// The tenant's index into per-tenant vectors.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One inference query: rank `size` candidate items for one user.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Query {
    /// Monotonically increasing query identifier.
    pub id: u64,
    /// Working-set size: number of user–item pairs to score.
    pub size: u32,
    /// Absolute arrival time in seconds since the stream started.
    pub arrival_s: f64,
    /// The recommendation service this query was issued against.
    pub tenant: TenantId,
}

/// Infinite, seeded stream of [`Query`] values combining an
/// [`ArrivalProcess`] with a [`SizeDistribution`].
///
/// Implements [`Iterator`]; the stream never ends, so bound it with
/// [`Iterator::take`] or by arrival time.
///
/// # Examples
///
/// ```
/// use drs_query::{ArrivalProcess, QueryGenerator, SizeDistribution};
///
/// let gen = QueryGenerator::new(
///     ArrivalProcess::fixed(1000.0),
///     SizeDistribution::Fixed(100),
///     7,
/// );
/// let q: Vec<_> = gen.take(3).collect();
/// assert_eq!(q[2].id, 2);
/// assert!((q[2].arrival_s - 0.003).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct QueryGenerator {
    arrival: ArrivalProcess,
    size: SizeDistribution,
    rng: StdRng,
    now_s: f64,
    next_id: u64,
    tenant: TenantId,
}

impl QueryGenerator {
    /// Creates a stream with the given processes and seed.
    pub fn new(arrival: ArrivalProcess, size: SizeDistribution, seed: u64) -> Self {
        QueryGenerator {
            arrival,
            size,
            rng: StdRng::seed_from_u64(seed),
            now_s: 0.0,
            next_id: 0,
            tenant: TenantId::SOLO,
        }
    }

    /// Tags every generated query with `tenant` (the default is
    /// [`TenantId::SOLO`]); see [`crate::MixedStream`] for merging
    /// several tenants' streams into one arrival-ordered stream.
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// The arrival process driving this stream.
    pub fn arrival(&self) -> ArrivalProcess {
        self.arrival
    }

    /// The size distribution driving this stream.
    pub fn size_distribution(&self) -> SizeDistribution {
        self.size
    }

    /// Collects all queries arriving strictly before `horizon_s`.
    pub fn take_until(&mut self, horizon_s: f64) -> Vec<Query> {
        let mut out = Vec::new();
        loop {
            // Peek by cloning state is wasteful; instead generate and
            // stop once past the horizon (the overshooting query is
            // discarded, matching an experiment window cutoff).
            match self.next() {
                Some(q) if q.arrival_s < horizon_s => out.push(q),
                _ => break,
            }
        }
        out
    }
}

impl Iterator for QueryGenerator {
    type Item = Query;

    fn next(&mut self) -> Option<Query> {
        let gap = self.arrival.next_gap_s(self.now_s, &mut self.rng);
        self.now_s += gap;
        let q = Query {
            id: self.next_id,
            size: self.size.sample(&mut self.rng),
            arrival_s: self.now_s,
            tenant: self.tenant,
        };
        self.next_id += 1;
        Some(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_and_times_monotone() {
        let gen = QueryGenerator::new(
            ArrivalProcess::poisson(500.0),
            SizeDistribution::production(),
            11,
        );
        let qs: Vec<_> = gen.take(1000).collect();
        for w in qs.windows(2) {
            assert_eq!(w[1].id, w[0].id + 1);
            assert!(w[1].arrival_s >= w[0].arrival_s);
        }
    }

    #[test]
    fn observed_rate_close_to_offered() {
        let gen = QueryGenerator::new(
            ArrivalProcess::poisson(2000.0),
            SizeDistribution::Fixed(1),
            3,
        );
        let qs: Vec<_> = gen.take(20_000).collect();
        let elapsed = qs.last().unwrap().arrival_s;
        let rate = qs.len() as f64 / elapsed;
        assert!((rate - 2000.0).abs() / 2000.0 < 0.05, "rate {rate}");
    }

    #[test]
    fn take_until_respects_horizon() {
        let mut gen =
            QueryGenerator::new(ArrivalProcess::fixed(100.0), SizeDistribution::Fixed(10), 0);
        let qs = gen.take_until(1.0);
        // Arrivals at 0.01, 0.02, …, 0.99 → 99 queries.
        assert_eq!(qs.len(), 99);
        assert!(qs.iter().all(|q| q.arrival_s < 1.0));
    }

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<_> = QueryGenerator::new(
            ArrivalProcess::poisson(100.0),
            SizeDistribution::production(),
            99,
        )
        .take(50)
        .collect();
        let b: Vec<_> = QueryGenerator::new(
            ArrivalProcess::poisson(100.0),
            SizeDistribution::production(),
            99,
        )
        .take(50)
        .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<_> = QueryGenerator::new(
            ArrivalProcess::poisson(100.0),
            SizeDistribution::production(),
            1,
        )
        .take(20)
        .collect();
        let b: Vec<_> = QueryGenerator::new(
            ArrivalProcess::poisson(100.0),
            SizeDistribution::production(),
            2,
        )
        .take(20)
        .collect();
        assert_ne!(a, b);
    }
}
