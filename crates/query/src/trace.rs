//! Query-trace recording and replay.
//!
//! DeepRecInfra's load generator is calibrated *from* production
//! profiles (Section III-C); this module closes the loop for users with
//! their own traffic: capture a query stream to a simple text format,
//! inspect it, and replay it byte-for-byte through the engine or the
//! simulator instead of a synthetic distribution.
//!
//! The format is one query per line — `arrival_seconds,size` with an
//! optional trailing `,tenant` column for multi-tenant captures — plus
//! `#` comments, so traces can be produced by anything that can print
//! two numbers. Two-column lines parse as tenant 0, and single-tenant
//! traces are written without the column, so existing traces and
//! producers keep working.

use crate::generator::{Query, TenantId};
use std::io::{BufRead, Write};

/// An in-memory query trace: arrival-ordered queries.
///
/// # Examples
///
/// ```
/// use drs_query::{trace::Trace, ArrivalProcess, QueryGenerator, SizeDistribution};
///
/// let gen = QueryGenerator::new(
///     ArrivalProcess::poisson(100.0),
///     SizeDistribution::production(),
///     7,
/// );
/// let trace = Trace::record(gen, 50);
/// let mut buf = Vec::new();
/// trace.write(&mut buf).unwrap();
/// let back = Trace::read(buf.as_slice()).unwrap();
/// assert_eq!(back.len(), trace.len());
/// // Sizes survive exactly; arrivals to nanosecond precision.
/// for (a, b) in trace.queries().iter().zip(back.queries()) {
///     assert_eq!(a.size, b.size);
///     assert!((a.arrival_s - b.arrival_s).abs() < 1e-9);
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    queries: Vec<Query>,
}

/// Errors arising when parsing a trace file.
#[derive(Debug)]
pub enum ParseTraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line was not `arrival_seconds,size`.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// Arrivals were not non-decreasing.
    OutOfOrder {
        /// 1-based line number.
        line: usize,
    },
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseTraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            ParseTraceError::Malformed { line, content } => {
                write!(f, "malformed trace line {line}: {content:?}")
            }
            ParseTraceError::OutOfOrder { line } => {
                write!(f, "trace arrivals out of order at line {line}")
            }
        }
    }
}

impl std::error::Error for ParseTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseTraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ParseTraceError {
    fn from(e: std::io::Error) -> Self {
        ParseTraceError::Io(e)
    }
}

impl Trace {
    /// Captures the first `n` queries of a stream.
    pub fn record(gen: impl IntoIterator<Item = Query>, n: usize) -> Self {
        Trace {
            queries: gen.into_iter().take(n).collect(),
        }
    }

    /// Builds a trace from raw `(arrival_s, size)` pairs (ids are
    /// assigned sequentially).
    ///
    /// # Panics
    ///
    /// Panics if arrivals are not non-decreasing or any size is zero.
    pub fn from_pairs(pairs: &[(f64, u32)]) -> Self {
        Self::from_tagged(
            &pairs
                .iter()
                .map(|&(a, s)| (a, s, TenantId::SOLO))
                .collect::<Vec<_>>(),
        )
    }

    /// Builds a multi-tenant trace from raw `(arrival_s, size, tenant)`
    /// triples (ids are assigned sequentially).
    ///
    /// # Panics
    ///
    /// Panics if arrivals are not non-decreasing or any size is zero.
    pub fn from_tagged(triples: &[(f64, u32, TenantId)]) -> Self {
        let mut prev = 0.0f64;
        let queries = triples
            .iter()
            .enumerate()
            .map(|(i, &(arrival_s, size, tenant))| {
                assert!(arrival_s >= prev, "arrivals must be non-decreasing");
                assert!(size > 0, "query size must be positive");
                prev = arrival_s;
                Query {
                    id: i as u64,
                    size,
                    arrival_s,
                    tenant,
                }
            })
            .collect();
        Trace { queries }
    }

    /// The recorded queries, arrival-ordered.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// Number of recorded queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Mean offered rate over the trace span, queries per second.
    pub fn mean_rate_qps(&self) -> f64 {
        match (self.queries.first(), self.queries.last()) {
            (Some(first), Some(last)) if last.arrival_s > first.arrival_s => {
                (self.queries.len() - 1) as f64 / (last.arrival_s - first.arrival_s)
            }
            _ => 0.0,
        }
    }

    /// Serializes as `arrival_seconds,size` lines; a multi-tenant trace
    /// (any query tagged beyond [`TenantId::SOLO`]) carries a third
    /// `,tenant` column on every line.
    ///
    /// # Errors
    ///
    /// Propagates writer failures.
    pub fn write(&self, mut w: impl Write) -> std::io::Result<()> {
        let tenanted = self.queries.iter().any(|q| q.tenant != TenantId::SOLO);
        if tenanted {
            writeln!(w, "# deeprecsys query trace: arrival_seconds,size,tenant")?;
            for q in &self.queries {
                writeln!(w, "{:.9},{},{}", q.arrival_s, q.size, q.tenant.0)?;
            }
        } else {
            writeln!(w, "# deeprecsys query trace: arrival_seconds,size")?;
            for q in &self.queries {
                writeln!(w, "{:.9},{}", q.arrival_s, q.size)?;
            }
        }
        Ok(())
    }

    /// Parses a trace written by [`Trace::write`] (or by hand).
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] on I/O failure, malformed lines, or
    /// out-of-order arrivals.
    pub fn read(r: impl BufRead) -> Result<Self, ParseTraceError> {
        let mut queries = Vec::new();
        let mut prev = f64::NEG_INFINITY;
        for (i, line) in r.lines().enumerate() {
            let line = line?;
            let text = line.trim();
            if text.is_empty() || text.starts_with('#') {
                continue;
            }
            let parse = || -> Option<(f64, u32, TenantId)> {
                let (a, rest) = text.split_once(',')?;
                let arrival: f64 = a.trim().parse().ok()?;
                // Optional third column: the tenant (default 0).
                let (s, tenant) = match rest.split_once(',') {
                    Some((s, t)) => (s, TenantId(t.trim().parse().ok()?)),
                    None => (rest, TenantId::SOLO),
                };
                let size: u32 = s.trim().parse().ok()?;
                (arrival.is_finite() && arrival >= 0.0 && size > 0)
                    .then_some((arrival, size, tenant))
            };
            let (arrival_s, size, tenant) = parse().ok_or_else(|| ParseTraceError::Malformed {
                line: i + 1,
                content: text.to_string(),
            })?;
            if arrival_s < prev {
                return Err(ParseTraceError::OutOfOrder { line: i + 1 });
            }
            prev = arrival_s;
            queries.push(Query {
                id: queries.len() as u64,
                size,
                arrival_s,
                tenant,
            });
        }
        Ok(Trace { queries })
    }

    /// Returns an iterator replaying the trace (by value).
    pub fn replay(&self) -> impl Iterator<Item = Query> + '_ {
        self.queries.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArrivalProcess, QueryGenerator, SizeDistribution};

    fn sample_trace() -> Trace {
        let gen = QueryGenerator::new(
            ArrivalProcess::poisson(1000.0),
            SizeDistribution::production(),
            42,
        );
        Trace::record(gen, 200)
    }

    #[test]
    fn round_trip_is_lossless_enough() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.write(&mut buf).unwrap();
        let back = Trace::read(buf.as_slice()).unwrap();
        assert_eq!(back.len(), t.len());
        for (a, b) in t.queries().iter().zip(back.queries()) {
            assert_eq!(a.size, b.size);
            assert!((a.arrival_s - b.arrival_s).abs() < 1e-9);
        }
    }

    #[test]
    fn mean_rate_recovers_generator_rate() {
        let t = sample_trace();
        let rate = t.mean_rate_qps();
        assert!((rate - 1000.0).abs() / 1000.0 < 0.2, "rate {rate}");
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# header\n\n0.5,10\n# mid comment\n1.0,20\n";
        let t = Trace::read(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.queries()[1].size, 20);
        assert_eq!(t.queries()[1].id, 1);
    }

    #[test]
    fn malformed_line_reported_with_position() {
        let text = "0.5,10\nnot-a-line\n";
        match Trace::read(text.as_bytes()) {
            Err(ParseTraceError::Malformed { line, .. }) => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn out_of_order_rejected() {
        let text = "1.0,10\n0.5,20\n";
        match Trace::read(text.as_bytes()) {
            Err(ParseTraceError::OutOfOrder { line }) => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn zero_size_rejected() {
        let text = "1.0,0\n";
        assert!(matches!(
            Trace::read(text.as_bytes()),
            Err(ParseTraceError::Malformed { .. })
        ));
    }

    #[test]
    fn tenant_column_round_trips() {
        let t = Trace::from_tagged(&[(0.0, 5, TenantId(0)), (0.1, 7, TenantId(3))]);
        let mut buf = Vec::new();
        t.write(&mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(
            text.contains("0.100000000,7,3"),
            "tenant column written:\n{text}"
        );
        let back = Trace::read(buf.as_slice()).unwrap();
        assert_eq!(back.queries()[0].tenant, TenantId(0));
        assert_eq!(back.queries()[1].tenant, TenantId(3));
    }

    #[test]
    fn single_tenant_trace_keeps_two_column_format() {
        let t = Trace::from_pairs(&[(0.0, 5), (0.1, 7)]);
        let mut buf = Vec::new();
        t.write(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(
            text.contains("0.100000000,7\n"),
            "no tenant column:\n{text}"
        );
    }

    #[test]
    fn two_column_lines_parse_as_solo_tenant() {
        let t = Trace::read("0.5,10\n1.0,20,2\n".as_bytes()).unwrap();
        assert_eq!(t.queries()[0].tenant, TenantId::SOLO);
        assert_eq!(t.queries()[1].tenant, TenantId(2));
    }

    #[test]
    fn from_pairs_assigns_ids() {
        let t = Trace::from_pairs(&[(0.0, 5), (0.1, 7)]);
        assert_eq!(t.queries()[0].id, 0);
        assert_eq!(t.queries()[1].id, 1);
        assert_eq!(t.mean_rate_qps(), 10.0);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn from_pairs_rejects_disorder() {
        let _ = Trace::from_pairs(&[(1.0, 5), (0.5, 7)]);
    }

    #[test]
    fn empty_trace_edge_cases() {
        let t = Trace::read("".as_bytes()).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.mean_rate_qps(), 0.0);
    }
}
