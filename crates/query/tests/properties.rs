//! Property-based tests for the load generator.

use drs_query::{ArrivalProcess, QueryGenerator, SizeDistribution, MAX_QUERY_SIZE};
use proptest::prelude::*;

proptest! {
    // Case budget audited so the whole workspace suite stays fast in
    // debug CI; raise at runtime with PROPTEST_CASES for a deeper soak.
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sizes always land in [1, MAX_QUERY_SIZE] for any parameters.
    #[test]
    fn sizes_always_bounded(seed in 0u64..10_000, mu in 0.0f64..8.0, sigma in 0.0f64..2.0) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let d = SizeDistribution::LogNormal { mu, sigma };
        for _ in 0..200 {
            let s = d.sample(&mut rng);
            prop_assert!((1..=MAX_QUERY_SIZE).contains(&s));
        }
    }

    /// Arrival times are strictly increasing for Poisson streams.
    #[test]
    fn arrivals_monotone(seed in 0u64..10_000, rate in 1.0f64..100_000.0) {
        let gen = QueryGenerator::new(
            ArrivalProcess::poisson(rate),
            SizeDistribution::Fixed(1),
            seed,
        );
        let qs: Vec<_> = gen.take(100).collect();
        for w in qs.windows(2) {
            prop_assert!(w[1].arrival_s > w[0].arrival_s);
        }
    }

    /// Query ids are a gapless sequence from zero.
    #[test]
    fn ids_gapless(seed in 0u64..10_000) {
        let gen = QueryGenerator::new(
            ArrivalProcess::poisson(100.0),
            SizeDistribution::production(),
            seed,
        );
        for (i, q) in gen.take(50).enumerate() {
            prop_assert_eq!(q.id, i as u64);
        }
    }

    /// The diurnal rate never leaves [base(1-amp), base(1+amp)].
    #[test]
    fn diurnal_rate_bounded(base in 1.0f64..10_000.0, amp in 0.0f64..0.99, t in 0.0f64..1e6) {
        let p = ArrivalProcess::diurnal(base, amp, 86_400.0);
        let r = p.rate_at(t);
        prop_assert!(r >= base * (1.0 - amp) - 1e-9);
        prop_assert!(r <= base * (1.0 + amp) + 1e-9);
    }

    /// with_rate round-trips the mean rate.
    #[test]
    fn with_rate_sets_rate(rate in 1.0f64..1e6) {
        let p = ArrivalProcess::poisson(123.0).with_rate(rate);
        prop_assert_eq!(p.mean_rate_qps(), rate);
    }
}
