//! The analyzer against reality: the shipped workspace must be
//! finding-free, and a deliberately seeded violation must fail the
//! gate — the same property CI relies on.

use drs_lint::rules::RuleId;
use drs_lint::workspace::{analyze_workspace, report_json};
use std::fs;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

/// The acceptance gate itself: `cargo run -p drs-lint -- --check`
/// exits 0 on the workspace as shipped.
#[test]
fn shipped_workspace_is_finding_free() {
    let report = analyze_workspace(&repo_root()).expect("workspace scan");
    assert!(
        report.findings.is_empty(),
        "workspace must be finding-free, got:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.files_scanned > 50,
        "the scan must actually cover the workspace, saw {} files",
        report.files_scanned
    );
    assert!(report.crates.iter().any(|c| c == "drs-sim"));
    assert!(report.crates.iter().any(|c| c == "drs-server"));
}

/// Seeding a `for`-over-`HashMap` into a determinism-critical crate
/// must produce an unallowlisted finding (i.e. the CI gate fails).
/// Runs against a scratch mini-workspace so the real sources stay
/// untouched.
#[test]
fn seeded_violation_fails_the_gate() {
    let root = std::env::temp_dir().join(format!("drs-lint-selfcheck-{}", std::process::id()));
    let sim = root.join("crates").join("sim");
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(sim.join("src")).expect("scratch workspace");
    fs::write(
        sim.join("Cargo.toml"),
        "[package]\nname = \"drs-sim\"\nversion = \"0.0.0\"\n\n[lints]\nworkspace = true\n",
    )
    .expect("manifest");
    fs::write(
        sim.join("src").join("lib.rs"),
        "#![warn(missing_docs)]\n//! Seeded violation.\n\
         use std::collections::HashMap;\n\
         fn replay(queries: &HashMap<u64, u32>) {\n\
             for (id, q) in queries {\n        serve(id, q);\n    }\n}\n",
    )
    .expect("seeded source");

    let report = analyze_workspace(&root).expect("scratch scan");
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == RuleId::HashIter && f.path.ends_with("lib.rs")),
        "seeded for-over-HashMap must trip hash-iter, got {:?}",
        report.findings
    );

    // The machine-readable report carries the same findings.
    let json = report_json(&report);
    assert!(json.contains("\"rule\": \"hash-iter\""), "{json}");
    assert!(json.contains("\"schema\": 1"), "{json}");

    fs::remove_dir_all(&root).expect("scratch cleanup");
}

/// An unguarded `pulse.<record>(..)` seeded into a metrics-guard
/// crate must fail the gate — NoopMetrics only compiles the fleet
/// pulse out when every record site sits behind `M::ENABLED`.
#[test]
fn seeded_pulse_violation_fails_the_gate() {
    let root = std::env::temp_dir().join(format!("drs-lint-pulse-{}", std::process::id()));
    let server = root.join("crates").join("server");
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(server.join("src")).expect("scratch workspace");
    fs::write(
        server.join("Cargo.toml"),
        "[package]\nname = \"drs-server\"\nversion = \"0.0.0\"\n\n[lints]\nworkspace = true\n",
    )
    .expect("manifest");
    fs::write(
        server.join("src").join("lib.rs"),
        "#![warn(missing_docs)]\n//! Seeded violation.\n\
         fn sample<M: MetricsSink>(pulse: &mut M, depth: usize) {\n\
             pulse.gauge(\"queue_depth_n0\", depth as f64);\n}\n",
    )
    .expect("seeded source");

    let report = analyze_workspace(&root).expect("scratch scan");
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == RuleId::MetricsGuard && f.path.ends_with("lib.rs")),
        "seeded unguarded pulse.gauge must trip metrics-guard, got {:?}",
        report.findings
    );

    fs::remove_dir_all(&root).expect("scratch cleanup");
}

/// A library crate missing `#![warn(missing_docs)]` or the workspace
/// lint table trips the docs-parity check.
#[test]
fn docs_parity_gap_is_flagged() {
    let root = std::env::temp_dir().join(format!("drs-lint-parity-{}", std::process::id()));
    let bare = root.join("crates").join("bare");
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(bare.join("src")).expect("scratch workspace");
    fs::write(
        bare.join("Cargo.toml"),
        "[package]\nname = \"drs-bare\"\nversion = \"0.0.0\"\n",
    )
    .expect("manifest");
    fs::write(
        bare.join("src").join("lib.rs"),
        "//! No lint opt-ins here.\n",
    )
    .expect("source");

    let report = analyze_workspace(&root).expect("scratch scan");
    let parity: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == RuleId::DocsParity)
        .collect();
    assert_eq!(
        parity.len(),
        2,
        "missing attr AND missing lint table: {parity:?}"
    );

    fs::remove_dir_all(&root).expect("scratch cleanup");
}
