//! The analyzer against reality: the shipped workspace must be
//! finding-free, and a deliberately seeded violation must fail the
//! gate — the same property CI relies on. One seeded violation per
//! taint rule (R7/R8/R9) plus the stale-allow audit and the JSON
//! round-trip.

use drs_lint::rules::RuleId;
use drs_lint::workspace::{analyze_workspace, parse_report_json, report_json};
use std::fs;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

/// Build a scratch one-crate workspace under a unique temp dir and
/// run the full analyzer over it.
fn scratch_scan(tag: &str, crate_name: &str, lib_rs: &str) -> drs_lint::workspace::Report {
    let root = std::env::temp_dir().join(format!("drs-lint-{tag}-{}", std::process::id()));
    let member = root.join("crates").join("m");
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(member.join("src")).expect("scratch workspace");
    fs::write(
        member.join("Cargo.toml"),
        format!("[package]\nname = \"{crate_name}\"\nversion = \"0.0.0\"\n\n[lints]\nworkspace = true\n"),
    )
    .expect("manifest");
    fs::write(
        member.join("src").join("lib.rs"),
        format!("#![warn(missing_docs)]\n//! Seeded violation.\n{lib_rs}"),
    )
    .expect("seeded source");
    let report = analyze_workspace(&root).expect("scratch scan");
    fs::remove_dir_all(&root).expect("scratch cleanup");
    report
}

/// The acceptance gate itself: `cargo run -p drs-lint -- --check`
/// exits 0 on the workspace as shipped.
#[test]
fn shipped_workspace_is_finding_free() {
    let report = analyze_workspace(&repo_root()).expect("workspace scan");
    assert!(
        report.findings.is_empty(),
        "workspace must be finding-free, got:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.files_scanned > 50,
        "the scan must actually cover the workspace, saw {} files",
        report.files_scanned
    );
    assert!(report.crates.iter().any(|c| c == "drs-sim"));
    assert!(report.crates.iter().any(|c| c == "drs-server"));
    assert!(
        report.callgraph_edges > 1000,
        "workspace call graph looks implausibly small: {} edges",
        report.callgraph_edges
    );
}

/// The machine-readable report round-trips through the parser: same
/// schema, same counts, same findings.
#[test]
fn json_report_round_trips_on_the_real_workspace() {
    let report = analyze_workspace(&repo_root()).expect("workspace scan");
    let json = report_json(&report);
    let parsed = parse_report_json(&json).expect("round-trip parse");
    assert_eq!(parsed.schema, 2);
    assert_eq!(parsed.count as usize, report.findings.len());
    assert_eq!(parsed.findings.len(), report.findings.len());
    assert_eq!(parsed.files_scanned as usize, report.files_scanned);
    assert_eq!(parsed.callgraph_edges as usize, report.callgraph_edges);
    assert_eq!(parsed.crates, report.crates);
}

/// Seeding a `for`-over-`HashMap` into a determinism-critical crate
/// must produce an unallowlisted finding (i.e. the CI gate fails).
/// Runs against a scratch mini-workspace so the real sources stay
/// untouched.
#[test]
fn seeded_violation_fails_the_gate() {
    let report = scratch_scan(
        "selfcheck",
        "drs-sim",
        "use std::collections::HashMap;\n\
         fn replay(queries: &HashMap<u64, u32>) {\n\
             for (id, q) in queries {\n        serve(id, q);\n    }\n}\n",
    );
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == RuleId::HashIter && f.path.ends_with("lib.rs")),
        "seeded for-over-HashMap must trip hash-iter, got {:?}",
        report.findings
    );

    // The machine-readable report carries the same findings.
    let json = report_json(&report);
    assert!(json.contains("\"rule\": \"hash-iter\""), "{json}");
    assert!(json.contains("\"schema\": 2"), "{json}");
}

/// An unguarded `pulse.<record>(..)` seeded into a metrics-guard
/// crate must fail the gate — NoopMetrics only compiles the fleet
/// pulse out when every record site sits behind `M::ENABLED`.
#[test]
fn seeded_pulse_violation_fails_the_gate() {
    let report = scratch_scan(
        "pulse",
        "drs-server",
        "fn sample<M: MetricsSink>(pulse: &mut M, depth: usize) {\n\
             pulse.gauge(\"queue_depth_n0\", depth as f64);\n}\n",
    );
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == RuleId::MetricsGuard && f.path.ends_with("lib.rs")),
        "seeded unguarded pulse.gauge must trip metrics-guard, got {:?}",
        report.findings
    );
}

/// R7 seeded violation: a wall-clock read that travels through two
/// helper calls before landing in an exported report field must trip
/// `clock-taint`, and the finding must name the *source* —
/// `Instant::now` — not just the sink line.
#[test]
fn seeded_clock_taint_violation_fails_the_gate() {
    let report = scratch_scan(
        "clocktaint",
        "drs-sim",
        "fn wall_ns() -> u64 {\n\
             let t0 = Instant::now();\n\
             t0.elapsed().as_nanos() as u64\n}\n\
         fn relabel(x: u64) -> u64 { let y = x; y }\n\
         fn export() -> SimReport {\n\
             let w = relabel(wall_ns());\n\
             SimReport { wall_ns: w }\n}\n",
    );
    let taint: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == RuleId::ClockTaint)
        .collect();
    assert!(
        !taint.is_empty(),
        "seeded interprocedural clock flow must trip clock-taint, got {:?}",
        report.findings
    );
    let rendered = taint[0].to_string();
    assert!(
        rendered.contains("lib.rs:") && rendered.contains("[clock-taint]"),
        "finding must render as path:line: [rule]: {rendered}"
    );
    assert!(
        taint[0].message.contains("Instant::now"),
        "finding must name the taint source: {rendered}"
    );
}

/// R8 seeded violation: `thread_rng` entropy flowing through a helper
/// into serve-loop state must trip `entropy-taint` and name the
/// unseeded source.
#[test]
fn seeded_entropy_taint_violation_fails_the_gate() {
    let report = scratch_scan(
        "entropytaint",
        "drs-server",
        "fn jitter() -> u64 {\n\
             let mut rng = thread_rng();\n\
             rng.gen_range(0..1_000)\n}\n\
         fn backoff(state: &mut LoopState) {\n\
             let j = jitter();\n\
             state.backoff_ns = j;\n}\n",
    );
    let taint: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == RuleId::EntropyTaint)
        .collect();
    assert!(
        !taint.is_empty(),
        "seeded thread_rng flow must trip entropy-taint, got {:?}",
        report.findings
    );
    assert!(
        taint[0].message.contains("thread_rng"),
        "finding must name the taint source: {}",
        taint[0]
    );
}

/// R9 seeded violation: summing thread-join results into an exported
/// report field must trip `float-order-taint` and name the join.
#[test]
fn seeded_float_order_taint_violation_fails_the_gate() {
    let report = scratch_scan(
        "ordertaint",
        "drs-sim",
        "fn fan_in(handles: Vec<JoinHandle<f64>>) -> MergeReport {\n\
             let mut sum = 0.0;\n\
             for h in handles {\n\
                 sum += h.join().unwrap();\n\
             }\n\
             MergeReport { merged: sum }\n}\n",
    );
    let taint: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == RuleId::FloatOrderTaint)
        .collect();
    assert!(
        !taint.is_empty(),
        "seeded join-order accumulation must trip float-order-taint, got {:?}",
        report.findings
    );
    assert!(
        taint[0].message.contains("join"),
        "finding must name the taint source: {}",
        taint[0]
    );
}

/// A `lint:allow` that no longer suppresses anything is itself a
/// finding — the audit keeps the allowlist from fossilizing.
#[test]
fn seeded_stale_allow_fails_the_gate() {
    let report = scratch_scan(
        "staleallow",
        "drs-sim",
        "fn quiet() -> u64 {\n\
             // lint:allow(hash-iter): nothing here iterates a map anymore\n\
             42\n}\n",
    );
    let stale: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == RuleId::StaleAllow)
        .collect();
    assert!(
        !stale.is_empty(),
        "dead allow directive must trip stale-allow, got {:?}",
        report.findings
    );
    assert!(
        stale[0].message.contains("hash-iter"),
        "finding must name the dead rule: {}",
        stale[0]
    );
}

/// A library crate missing `#![warn(missing_docs)]` or the workspace
/// lint table trips the docs-parity check.
#[test]
fn docs_parity_gap_is_flagged() {
    let root = std::env::temp_dir().join(format!("drs-lint-parity-{}", std::process::id()));
    let bare = root.join("crates").join("bare");
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(bare.join("src")).expect("scratch workspace");
    fs::write(
        bare.join("Cargo.toml"),
        "[package]\nname = \"drs-bare\"\nversion = \"0.0.0\"\n",
    )
    .expect("manifest");
    fs::write(
        bare.join("src").join("lib.rs"),
        "//! No lint opt-ins here.\n",
    )
    .expect("source");

    let report = analyze_workspace(&root).expect("scratch scan");
    let parity: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == RuleId::DocsParity)
        .collect();
    assert_eq!(
        parity.len(),
        2,
        "missing attr AND missing lint table: {parity:?}"
    );

    fs::remove_dir_all(&root).expect("scratch cleanup");
}
