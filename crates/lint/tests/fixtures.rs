//! Per-rule fixture contract: every rule trips on its `*_trip.rs`
//! fixture and stays silent on the allowlisted `*_allow.rs` twin.

use drs_lint::parse::FileInfo;
use drs_lint::rules::{
    check_float_reduce, check_hash_iter, check_metrics_guard, check_panic_contract,
    check_telemetry_guard, check_wall_clock, Finding, RuleId,
};

fn fixture(name: &str) -> FileInfo {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).expect("fixture readable");
    FileInfo::parse(name, &src)
}

fn assert_all(findings: &[Finding], rule: RuleId) {
    for f in findings {
        assert_eq!(f.rule, rule, "unexpected rule in {f}");
    }
}

#[test]
fn r1_hash_iter_trips_and_allows() {
    let trip = check_hash_iter(&fixture("r1_trip.rs"));
    assert_eq!(trip.len(), 2, "{trip:?}");
    assert_all(&trip, RuleId::HashIter);
    let allow = check_hash_iter(&fixture("r1_allow.rs"));
    assert!(allow.is_empty(), "{allow:?}");
}

#[test]
fn r2_wall_clock_trips_and_allows() {
    let trip = check_wall_clock(&fixture("r2_trip.rs"));
    assert_eq!(trip.len(), 4, "{trip:?}");
    assert_all(&trip, RuleId::WallClock);
    assert!(
        trip.iter().any(|f| f.message.contains("Instant::now")),
        "the clock read itself must be flagged: {trip:?}"
    );
    let allow = check_wall_clock(&fixture("r2_allow.rs"));
    assert!(allow.is_empty(), "{allow:?}");
}

#[test]
fn r3_panic_contract_trips_and_allows() {
    let trip = check_panic_contract(&[fixture("r3_trip.rs")]);
    assert_eq!(trip.len(), 1, "{trip:?}");
    assert_all(&trip, RuleId::PanicContract);
    assert!(
        trip[0].message.contains("serve_unchecked"),
        "only the unchecked entry point trips: {trip:?}"
    );
    let allow = check_panic_contract(&[fixture("r3_allow.rs")]);
    assert!(allow.is_empty(), "{allow:?}");
}

#[test]
fn r4_telemetry_guard_trips_and_allows() {
    let trip = check_telemetry_guard(&fixture("r4_trip.rs"));
    assert_eq!(trip.len(), 2, "{trip:?}");
    assert_all(&trip, RuleId::TelemetryGuard);
    let allow = check_telemetry_guard(&fixture("r4_allow.rs"));
    assert!(allow.is_empty(), "{allow:?}");
}

#[test]
fn r5_float_reduce_trips_and_allows() {
    let trip = check_float_reduce(&fixture("r5_trip.rs"));
    assert_eq!(trip.len(), 2, "{trip:?}");
    assert_all(&trip, RuleId::FloatReduce);
    let allow = check_float_reduce(&fixture("r5_allow.rs"));
    assert!(allow.is_empty(), "{allow:?}");
}

#[test]
fn r6_metrics_guard_trips_and_allows() {
    let trip = check_metrics_guard(&fixture("r6_trip.rs"));
    assert_eq!(trip.len(), 2, "{trip:?}");
    assert_all(&trip, RuleId::MetricsGuard);
    assert!(
        trip.iter().all(|f| f.message.contains("pulse.")),
        "findings must name the record call: {trip:?}"
    );
    let allow = check_metrics_guard(&fixture("r6_allow.rs"));
    assert!(allow.is_empty(), "{allow:?}");
}

#[test]
fn findings_render_with_path_line_and_rule() {
    let trip = check_hash_iter(&fixture("r1_trip.rs"));
    let rendered = trip[0].to_string();
    assert!(rendered.starts_with("r1_trip.rs:"), "{rendered}");
    assert!(rendered.contains("[hash-iter]"), "{rendered}");
}
