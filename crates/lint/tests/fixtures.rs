//! Per-rule fixture contract: every rule trips on its `*_trip.rs`
//! fixture and stays silent on the allowlisted `*_allow.rs` twin.
//! Allowlisted twins must still *record* their suppressions — that is
//! what keeps the stale-allow audit honest.

use drs_lint::parse::FileInfo;
use drs_lint::rules::{
    check_float_reduce, check_hash_iter, check_metrics_guard, check_panic_contract,
    check_telemetry_guard, check_wall_clock, Finding, RuleId, RuleOutput,
};
use drs_lint::taint::check_taint_files;

fn fixture(name: &str) -> FileInfo {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).expect("fixture readable");
    FileInfo::parse(name, &src)
}

fn assert_all(findings: &[Finding], rule: RuleId) {
    for f in findings {
        assert_eq!(f.rule, rule, "unexpected rule in {f}");
    }
}

/// The allow twin produces no findings, and every suppression it
/// records carries the expected rule.
fn assert_allowed(out: &RuleOutput, rule: RuleId) {
    assert!(out.findings.is_empty(), "{:?}", out.findings);
    assert!(
        !out.suppressed.is_empty(),
        "allow twin must record suppressions for the stale audit"
    );
    assert_all(&out.suppressed, rule);
}

#[test]
fn r1_hash_iter_trips_and_allows() {
    let trip = check_hash_iter(&fixture("r1_trip.rs"));
    assert_eq!(trip.findings.len(), 2, "{:?}", trip.findings);
    assert_all(&trip.findings, RuleId::HashIter);
    assert_allowed(&check_hash_iter(&fixture("r1_allow.rs")), RuleId::HashIter);
}

#[test]
fn r2_wall_clock_trips_and_allows() {
    let trip = check_wall_clock(&fixture("r2_trip.rs"));
    assert_eq!(trip.findings.len(), 4, "{:?}", trip.findings);
    assert_all(&trip.findings, RuleId::WallClock);
    assert!(
        trip.findings
            .iter()
            .any(|f| f.message.contains("Instant::now")),
        "the clock read itself must be flagged: {:?}",
        trip.findings
    );
    assert_allowed(
        &check_wall_clock(&fixture("r2_allow.rs")),
        RuleId::WallClock,
    );
}

#[test]
fn r3_panic_contract_trips_and_allows() {
    let trip = check_panic_contract(&[fixture("r3_trip.rs")]);
    assert_eq!(trip.findings.len(), 1, "{:?}", trip.findings);
    assert_all(&trip.findings, RuleId::PanicContract);
    assert!(
        trip.findings[0].message.contains("serve_unchecked"),
        "only the unchecked entry point trips: {:?}",
        trip.findings
    );
    let allow = check_panic_contract(&[fixture("r3_allow.rs")]);
    assert!(allow.findings.is_empty(), "{:?}", allow.findings);
}

#[test]
fn r4_telemetry_guard_trips_and_allows() {
    let trip = check_telemetry_guard(&fixture("r4_trip.rs"));
    assert_eq!(trip.findings.len(), 2, "{:?}", trip.findings);
    assert_all(&trip.findings, RuleId::TelemetryGuard);
    assert_allowed(
        &check_telemetry_guard(&fixture("r4_allow.rs")),
        RuleId::TelemetryGuard,
    );
}

#[test]
fn r5_float_reduce_trips_and_allows() {
    let trip = check_float_reduce(&fixture("r5_trip.rs"));
    assert_eq!(trip.findings.len(), 2, "{:?}", trip.findings);
    assert_all(&trip.findings, RuleId::FloatReduce);
    assert_allowed(
        &check_float_reduce(&fixture("r5_allow.rs")),
        RuleId::FloatReduce,
    );
}

#[test]
fn r6_metrics_guard_trips_and_allows() {
    let trip = check_metrics_guard(&fixture("r6_trip.rs"));
    assert_eq!(trip.findings.len(), 2, "{:?}", trip.findings);
    assert_all(&trip.findings, RuleId::MetricsGuard);
    assert!(
        trip.findings.iter().all(|f| f.message.contains("pulse.")),
        "findings must name the record call: {:?}",
        trip.findings
    );
    assert_allowed(
        &check_metrics_guard(&fixture("r6_allow.rs")),
        RuleId::MetricsGuard,
    );
}

#[test]
fn r7_clock_taint_trips_and_allows() {
    let trip = check_taint_files(&[fixture("r7_trip.rs")]);
    assert_eq!(trip.findings.len(), 2, "{:?}", trip.findings);
    assert_all(&trip.findings, RuleId::ClockTaint);
    assert!(
        trip.findings
            .iter()
            .all(|f| f.message.contains("Instant::now")),
        "findings must name the taint source two calls away: {:?}",
        trip.findings
    );
    assert_allowed(
        &check_taint_files(&[fixture("r7_allow.rs")]),
        RuleId::ClockTaint,
    );
}

#[test]
fn r8_entropy_taint_trips_and_allows() {
    let trip = check_taint_files(&[fixture("r8_trip.rs")]);
    assert_eq!(trip.findings.len(), 2, "{:?}", trip.findings);
    assert_all(&trip.findings, RuleId::EntropyTaint);
    assert!(
        trip.findings
            .iter()
            .all(|f| f.message.contains("thread_rng")),
        "findings must name the unseeded source, not the seeded one: {:?}",
        trip.findings
    );
    assert_allowed(
        &check_taint_files(&[fixture("r8_allow.rs")]),
        RuleId::EntropyTaint,
    );
}

#[test]
fn r9_float_order_taint_trips_and_allows() {
    let trip = check_taint_files(&[fixture("r9_trip.rs")]);
    assert_eq!(trip.findings.len(), 2, "{:?}", trip.findings);
    assert_all(&trip.findings, RuleId::FloatOrderTaint);
    assert!(
        trip.findings
            .iter()
            .any(|f| f.message.contains("hash-ordered")),
        "{:?}",
        trip.findings
    );
    assert!(
        trip.findings.iter().any(|f| f.message.contains("join")),
        "{:?}",
        trip.findings
    );
    assert_allowed(
        &check_taint_files(&[fixture("r9_allow.rs")]),
        RuleId::FloatOrderTaint,
    );
}

#[test]
fn findings_render_with_path_line_and_rule() {
    let trip = check_hash_iter(&fixture("r1_trip.rs"));
    let rendered = trip.findings[0].to_string();
    assert!(rendered.starts_with("r1_trip.rs:"), "{rendered}");
    assert!(rendered.contains("[hash-iter]"), "{rendered}");
}
