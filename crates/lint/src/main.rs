//! CLI for the workspace invariant checker.
//!
//! ```text
//! cargo run -p drs-lint -- --check [--json] [--root PATH]
//! cargo run -p drs-lint -- --callgraph [--json] [--root PATH]
//! ```
//!
//! `--check` runs the full rule set; exit code 0 when the workspace is
//! finding-free, 1 when any unallowlisted finding exists, 2 on usage
//! or I/O errors. `--callgraph` prints the workspace call graph —
//! Graphviz DOT by default, the JSON export with `--json` — and exits
//! 0 (it is an inspection mode, not a gate).

use drs_lint::workspace::{analyze_workspace, report_json, workspace_callgraph};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: drs-lint (--check | --callgraph) [--json] [--root PATH]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut check = false;
    let mut callgraph = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => check = true,
            "--callgraph" => callgraph = true,
            "--json" => json = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    if check == callgraph {
        // Exactly one mode must be selected.
        return usage();
    }
    // Default to the workspace root: cargo sets CARGO_MANIFEST_DIR to
    // crates/lint, two levels below it.
    let root = root
        .or_else(|| {
            std::env::var_os("CARGO_MANIFEST_DIR").map(|d| PathBuf::from(d).join("..").join(".."))
        })
        .unwrap_or_else(|| PathBuf::from("."));
    if callgraph {
        let graph = match workspace_callgraph(&root) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("drs-lint: cannot scan {}: {e}", root.display());
                return ExitCode::from(2);
            }
        };
        if json {
            print!("{}", graph.to_json());
        } else {
            print!("{}", graph.to_dot());
        }
        return ExitCode::SUCCESS;
    }
    let report = match analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("drs-lint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if json {
        print!("{}", report_json(&report));
    } else {
        for f in &report.findings {
            println!("{f}");
        }
        println!(
            "drs-lint: {} finding(s) across {} file(s) in {} crate(s)",
            report.findings.len(),
            report.files_scanned,
            report.crates.len()
        );
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
