//! Interprocedural taint analysis over per-function def-use chains.
//!
//! Three taint kinds, one engine. A *source* introduces taint
//! (`Instant::now`/`SystemTime` for wall-clock, `thread_rng`-family
//! calls for entropy, hash-ordered iteration or thread `.join()` for
//! float order); taint then propagates through `let` bindings,
//! assignments, call arguments, return values, and struct-field stores
//! to a workspace-wide fixpoint; a *sink* turns arriving taint into a
//! finding:
//!
//! - `clock-taint` (R7): wall-clock-derived values must never reach a
//!   report/`PulseSummary`/`MetricsRegistry` field or a virtual-clock
//!   event booking. Real-path pacing math earns a documented
//!   `lint:allow(clock-taint)` at the sink.
//! - `entropy-taint` (R8): all randomness must come from the seeded
//!   RNGs handed down by the stream/stack constructors; independent
//!   entropy feeding serve-loop state is a replay hazard.
//! - `float-order-taint` (R9): `f64` accumulators fed from a
//!   hash-ordered or thread-join source must not reach exported report
//!   fields (the interprocedural deepening of syntactic
//!   `float-reduce`).
//!
//! The analysis is flow-insensitive within a statement and name-based
//! across functions (same resolution preferences as the call graph),
//! field-granular through structs (a tainted field does not poison its
//! siblings), and monotone — every pass only adds taint, so the
//! worklist converges. Precision follows the lint's usual bias:
//! over-approximate, and let a reviewed `lint:allow` document the
//! intentional flows.

use crate::lexer::{Token, TokenKind};
use crate::parse::FileInfo;
use crate::rules::{push, Finding, RuleId, RuleOutput, ITER_METHODS};
use crate::symbols::{crate_of_segment, CrateView, FileSymbols, KEYWORDS};
use std::collections::BTreeMap;

/// The three tracked taint kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Clock = 0,
    Entropy = 1,
    FloatOrder = 2,
}

const KINDS: [Kind; 3] = [Kind::Clock, Kind::Entropy, Kind::FloatOrder];

impl Kind {
    fn rule(self) -> RuleId {
        match self {
            Kind::Clock => RuleId::ClockTaint,
            Kind::Entropy => RuleId::EntropyTaint,
            Kind::FloatOrder => RuleId::FloatOrderTaint,
        }
    }

    fn adjective(self) -> &'static str {
        match self {
            Kind::Clock => "wall-clock",
            Kind::Entropy => "entropy",
            Kind::FloatOrder => "order",
        }
    }
}

/// Per-value taint state: for each kind, the interned source that
/// first tainted it (`None` = clean). Merges keep the first source, so
/// the state is monotone and the fixpoint terminates.
type Taint = [Option<u32>; 3];

fn union_into(dst: &mut Taint, src: &Taint) -> bool {
    let mut changed = false;
    for k in 0..3 {
        if dst[k].is_none() && src[k].is_some() {
            dst[k] = src[k];
            changed = true;
        }
    }
    changed
}

/// An allow directive on a flow statement *sanctions* the taint: the
/// kinds it names are stripped before they propagate any further, and
/// the directive is credited with a suppressed finding so the
/// stale-allow audit sees it earning its keep. This is how the real
/// runtimes' wall-to-model-time conversions are documented: one
/// `lint:allow(clock-taint)` at the conversion, not an allow at every
/// downstream pacing sink.
fn launder(
    st: &mut State,
    f: &FileInfo,
    line: u32,
    taint: &mut Taint,
    emit: &mut Option<&mut RuleOutput>,
) {
    for kind in KINDS {
        let Some(src) = taint[kind as usize] else {
            continue;
        };
        if !f.is_allowed(line, kind.rule().name()) {
            continue;
        }
        if let Some(out) = emit.as_deref_mut() {
            // A sink finding suppressed at this very line already
            // credits the directive; don't double-count.
            let already = out
                .suppressed
                .iter()
                .any(|s| s.rule == kind.rule() && s.line == line && s.path == f.path);
            if !already {
                out.suppressed.push(Finding {
                    path: f.path.clone(),
                    line,
                    rule: kind.rule(),
                    message: format!(
                        "{} taint sanctioned here — derived from {}",
                        kind.adjective(),
                        st.describe(src)
                    ),
                });
            }
        }
        taint[kind as usize] = None;
    }
}

/// One interned taint source, named in every finding it produces.
struct Src {
    what: String,
    path: String,
    line: u32,
}

/// One function definition in the flattened workspace.
struct FnRef {
    crate_idx: usize,
    file_idx: usize,
    fn_idx: usize,
}

/// Metrics-recording methods whose arguments are taint sinks (the
/// `MetricsSink` trait surface plus the registry-side recorders).
const METRIC_SINKS: &[&str] = &[
    "set_epoch",
    "tick",
    "gauge",
    "inc",
    "observe",
    "decision",
    "drr_round",
    "set_gauge",
    "sample",
];

/// Identifiers that read unseeded entropy.
const ENTROPY_SOURCES: &[&str] = &["thread_rng", "from_entropy", "OsRng", "getrandom"];

/// Receiver names that identify the virtual-clock event queues.
const EVENT_RECEIVERS: &[&str] = &["events", "event_queue", "gpu_heap"];

/// Is `name` an exported-report struct (a taint sink)?
fn sinky_struct(name: &str) -> bool {
    name.ends_with("Report")
        || name.ends_with("Summary")
        || name.ends_with("Breakdown")
        || name == "MetricsRegistry"
}

/// Everything immutable the passes need, built once per analysis.
struct Workspace<'a> {
    views: &'a [CrateView<'a>],
    symbols: Vec<Vec<FileSymbols>>,
    /// `open token index -> block id`, per crate/file.
    open_block: Vec<Vec<BTreeMap<usize, usize>>>,
    fns: Vec<FnRef>,
    by_name: BTreeMap<String, Vec<usize>>,
    /// Whether the fn has a `->` return type, per fn id.
    has_ret: Vec<bool>,
    /// Whether clock sources/sinks apply, per crate.
    clock_scope: Vec<bool>,
}

/// The mutable fixpoint state.
struct State {
    param_taint: Vec<Vec<Taint>>,
    ret_taint: Vec<Taint>,
    /// Per-`(crate, field-name)` taint. Field tracking is name-based
    /// within a crate — global-by-name would let a real-path store to
    /// `.qps` in one crate poison a same-named virtual-path field in
    /// another.
    field_taint: BTreeMap<(usize, String), Taint>,
    srcs: Vec<Src>,
    intern: BTreeMap<(String, u32, String), u32>,
    changed: bool,
}

const MAX_GLOBAL_PASSES: usize = 12;
const MAX_LOCAL_PASSES: usize = 3;

impl<'a> Workspace<'a> {
    fn build(views: &'a [CrateView<'a>], clock_exempt: &[&str]) -> Workspace<'a> {
        let symbols: Vec<Vec<FileSymbols>> = views
            .iter()
            .map(|v| v.files.iter().map(FileSymbols::analyze).collect())
            .collect();
        let open_block: Vec<Vec<BTreeMap<usize, usize>>> = views
            .iter()
            .map(|v| {
                v.files
                    .iter()
                    .map(|f| {
                        f.blocks
                            .iter()
                            .enumerate()
                            .map(|(id, b)| (b.open, id))
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let mut fns = Vec::new();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut has_ret = Vec::new();
        for (ci, v) in views.iter().enumerate() {
            for (fi, f) in v.files.iter().enumerate() {
                for (xi, item) in f.fns.iter().enumerate() {
                    let id = fns.len();
                    fns.push(FnRef {
                        crate_idx: ci,
                        file_idx: fi,
                        fn_idx: xi,
                    });
                    by_name.entry(item.name.clone()).or_default().push(id);
                    let sig_end = item
                        .body
                        .map(|b| f.blocks[b].open)
                        .unwrap_or(f.tokens.len());
                    let mut ret = false;
                    let mut k = item.params.1 + 1;
                    while k + 1 < sig_end.min(f.tokens.len()) {
                        if f.tokens[k].is_punct('-') && f.tokens[k + 1].is_punct('>') {
                            ret = true;
                            break;
                        }
                        k += 1;
                    }
                    has_ret.push(ret);
                }
            }
        }
        let clock_scope = views
            .iter()
            .map(|v| !clock_exempt.contains(&v.name.as_str()))
            .collect();
        Workspace {
            views,
            symbols,
            open_block,
            fns,
            by_name,
            has_ret,
            clock_scope,
        }
    }

    fn file(&self, id: usize) -> &FileInfo {
        let r = &self.fns[id];
        &self.views[r.crate_idx].files[r.file_idx]
    }

    fn syms(&self, id: usize) -> &FileSymbols {
        let r = &self.fns[id];
        &self.symbols[r.crate_idx][r.file_idx]
    }
}

impl State {
    fn new(ws: &Workspace) -> State {
        let param_taint = ws
            .fns
            .iter()
            .enumerate()
            .map(|(id, _)| vec![[None; 3]; ws.syms(id).fn_params[ws.fns[id].fn_idx].len()])
            .collect();
        State {
            param_taint,
            ret_taint: vec![[None; 3]; ws.fns.len()],
            field_taint: BTreeMap::new(),
            srcs: Vec::new(),
            intern: BTreeMap::new(),
            changed: false,
        }
    }

    fn intern(&mut self, what: &str, path: &str, line: u32) -> u32 {
        let key = (path.to_string(), line, what.to_string());
        if let Some(&id) = self.intern.get(&key) {
            return id;
        }
        let id = self.srcs.len() as u32;
        self.srcs.push(Src {
            what: what.to_string(),
            path: path.to_string(),
            line,
        });
        self.intern.insert(key, id);
        id
    }

    fn describe(&self, src: u32) -> String {
        let s = &self.srcs[src as usize];
        format!("{} at {}:{}", s.what, s.path, s.line)
    }
}

/// Runs the taint engine over every crate in `views`. Crates named in
/// `clock_exempt` neither seed nor sink wall-clock taint (their bodies
/// are still analyzed, so taint passes *through* them), mirroring the
/// R2 real-path exemption.
pub fn check_taint(views: &[CrateView], clock_exempt: &[&str]) -> RuleOutput {
    let ws = Workspace::build(views, clock_exempt);
    let mut st = State::new(&ws);
    for _ in 0..MAX_GLOBAL_PASSES {
        st.changed = false;
        for id in 0..ws.fns.len() {
            scan_fn(&ws, &mut st, id, None);
        }
        if !st.changed {
            break;
        }
    }
    let mut out = RuleOutput::default();
    for id in 0..ws.fns.len() {
        scan_fn(&ws, &mut st, id, Some(&mut out));
    }
    out
}

/// [`check_taint`] over one file set treated as a single in-scope
/// crate (fixtures and unit tests).
pub fn check_taint_files(files: &[FileInfo]) -> RuleOutput {
    let views = [CrateView {
        name: "fixture".to_string(),
        files,
    }];
    check_taint(&views, &[])
}

/// Analyzes one function: local fixpoint over its bindings, then (on
/// the emit pass) findings at every sink taint reaches.
fn scan_fn(ws: &Workspace, st: &mut State, id: usize, mut emit: Option<&mut RuleOutput>) {
    let r = &ws.fns[id];
    let f = ws.file(id);
    let Some(body) = f.fns[r.fn_idx].body else {
        return;
    };
    let _ = body;
    let mut locals: BTreeMap<String, Taint> = BTreeMap::new();
    for (pi, p) in ws.syms(id).fn_params[r.fn_idx].iter().enumerate() {
        if p != "self" {
            locals.insert(p.clone(), st.param_taint[id][pi]);
        }
    }
    for _ in 0..MAX_LOCAL_PASSES {
        if !scan_once(ws, st, id, &mut locals, &mut None) {
            break;
        }
    }
    if emit.is_some() {
        scan_once(ws, st, id, &mut locals, &mut emit);
    }
}

/// One forward walk over the body. Returns whether any local binding's
/// taint changed (the caller loops to a local fixpoint). Global-state
/// changes are flagged on `st.changed`.
#[allow(clippy::too_many_lines)]
fn scan_once(
    ws: &Workspace,
    st: &mut State,
    id: usize,
    locals: &mut BTreeMap<String, Taint>,
    emit: &mut Option<&mut RuleOutput>,
) -> bool {
    let r = &ws.fns[id];
    let f = ws.file(id);
    let b = f.blocks[f.fns[r.fn_idx].body.expect("caller checked body")];
    let toks = &f.tokens;
    let close = b.close.min(toks.len().saturating_sub(1));
    let mut locals_changed = false;
    // Depths relative to the body, for top-level statement tracking.
    let (mut brace, mut paren, mut brack) = (0i32, 0i32, 0i32);
    let mut last_semi = b.open; // tail expression starts after this
    let mut i = b.open + 1;
    while i < close {
        let t = &toks[i];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "{" => brace += 1,
                "}" => brace -= 1,
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => brack += 1,
                "]" => brack -= 1,
                ";" if brace == 0 && paren == 0 && brack == 0 => last_semi = i,
                "=" => {
                    if let Some(chg) = handle_assign(ws, st, id, locals, i, close, emit) {
                        locals_changed |= chg;
                    }
                }
                _ => {}
            }
            i += 1;
            continue;
        }
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "let" => {
                let (next_i, chg) = handle_let(ws, st, id, locals, i, close, emit);
                locals_changed |= chg;
                i = next_i;
                continue;
            }
            "for" if !toks.get(i + 1).is_some_and(|n| n.is_punct('<')) => {
                let (next_i, chg) = handle_for(ws, st, id, locals, i, close, emit);
                locals_changed |= chg;
                i = next_i;
                continue;
            }
            "return" => {
                let hi = stmt_end(toks, i + 1, close);
                let mut taint = eval(ws, st, id, locals, i + 1, hi);
                launder(st, f, toks[i].line, &mut taint, emit);
                if ws.has_ret[id] {
                    let mut ret = st.ret_taint[id];
                    if union_into(&mut ret, &taint) {
                        st.ret_taint[id] = ret;
                        st.changed = true;
                    }
                }
                i += 1;
                continue;
            }
            _ => {}
        }
        // Struct literal in expression position: propagate the field
        // expressions into the global field-taint map and check sinks.
        if is_struct_literal_at(toks, i, b.open) {
            handle_struct_literal(ws, st, id, locals, i, emit);
            i += 1;
            continue;
        }
        // Call site: sink checks plus argument -> parameter flow.
        if toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && !KEYWORDS.contains(&t.text.as_str())
            && !(i > 0 && toks[i - 1].is_ident("fn"))
        {
            handle_call(ws, st, id, locals, i, emit);
        }
        i += 1;
    }
    // Tail expression feeds the return value.
    if ws.has_ret[id] && last_semi + 1 < close {
        let mut taint = eval(ws, st, id, locals, last_semi + 1, close);
        launder(st, f, toks[last_semi + 1].line, &mut taint, emit);
        let mut ret = st.ret_taint[id];
        if union_into(&mut ret, &taint) {
            st.ret_taint[id] = ret;
            st.changed = true;
        }
    }
    locals_changed
}

/// Scans from `lo` to the end of the statement: the first `;` or `,`
/// at relative depth 0, or a closer that leaves the enclosing scope.
fn stmt_end(toks: &[Token], lo: usize, cap: usize) -> usize {
    let (mut brace, mut paren, mut brack) = (0i32, 0i32, 0i32);
    let mut j = lo;
    while j < cap {
        let t = &toks[j];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "{" => brace += 1,
                "(" => paren += 1,
                "[" => brack += 1,
                "}" | ")" | "]" => {
                    let d = match t.text.as_str() {
                        "}" => {
                            brace -= 1;
                            brace
                        }
                        ")" => {
                            paren -= 1;
                            paren
                        }
                        _ => {
                            brack -= 1;
                            brack
                        }
                    };
                    if d < 0 {
                        return j;
                    }
                }
                ";" | "," if brace == 0 && paren == 0 && brack == 0 => return j,
                _ => {}
            }
        }
        j += 1;
    }
    cap
}

/// `let` statements: simple, tuple, and struct-destructuring patterns.
/// Returns the next scan position (just past the `=`, so the
/// initializer is still walked for nested constructs) and whether any
/// binding's taint changed.
fn handle_let(
    ws: &Workspace,
    st: &mut State,
    id: usize,
    locals: &mut BTreeMap<String, Taint>,
    i: usize,
    close: usize,
    emit: &mut Option<&mut RuleOutput>,
) -> (usize, bool) {
    let f = ws.file(id);
    let toks = &f.tokens;
    let is_cond = i > 0 && (toks[i - 1].is_ident("if") || toks[i - 1].is_ident("while"));
    // Find the binding `=` (or bail at `;` for uninitialized lets).
    let (mut brace, mut paren, mut brack, mut angle) = (0i32, 0i32, 0i32, 0i32);
    let mut eq = None;
    #[allow(clippy::needless_range_loop)] // indexed token scan
    for j in i + 1..close {
        let t = &toks[j];
        if t.kind != TokenKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "{" => brace += 1,
            "}" => brace -= 1,
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => brack += 1,
            "]" => brack -= 1,
            "<" => angle += 1,
            ">" => angle -= 1,
            "=" if brace == 0 && paren == 0 && brack == 0 && angle <= 0 => {
                eq = Some(j);
                break;
            }
            ";" if brace == 0 && paren == 0 && brack == 0 => break,
            _ => {}
        }
    }
    let Some(eq) = eq else {
        return (i + 1, false);
    };
    let rhs_hi = if is_cond {
        // `if let` / `while let`: the initializer ends at the block.
        let mut j = eq + 1;
        let (mut br, mut pa, mut bk) = (0i32, 0i32, 0i32);
        while j < close {
            let t = &toks[j];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" => pa += 1,
                    ")" => pa -= 1,
                    "[" => bk += 1,
                    "]" => bk -= 1,
                    "{" if pa == 0 && bk == 0 && br == 0 => break,
                    "{" => br += 1,
                    "}" => br -= 1,
                    _ => {}
                }
            }
            j += 1;
        }
        j
    } else {
        stmt_end(toks, eq + 1, close)
    };
    let mut rhs_taint = eval(ws, st, id, locals, eq + 1, rhs_hi);
    launder(st, f, toks[i].line, &mut rhs_taint, emit);
    let mut changed = false;
    // Struct-destructuring pattern: bindings take the *field's* taint,
    // not the whole value's (field-granular tracking).
    let mut destructured = false;
    for j in i + 1..eq {
        if toks[j].kind == TokenKind::Ident
            && toks[j].text.chars().next().is_some_and(char::is_uppercase)
            && toks.get(j + 1).is_some_and(|n| n.is_punct('{'))
        {
            destructured = true;
            let mut depth = 0i32;
            let mut k = j + 2;
            while k < eq {
                let t = &toks[k];
                if t.kind == TokenKind::Punct {
                    match t.text.as_str() {
                        "{" | "(" | "[" => depth += 1,
                        "}" | ")" | "]" => {
                            if t.is_punct('}') && depth == 0 {
                                break;
                            }
                            depth -= 1;
                        }
                        _ => {}
                    }
                    k += 1;
                    continue;
                }
                if depth == 0 && t.kind == TokenKind::Ident && !KEYWORDS.contains(&t.text.as_str())
                {
                    let field = t.text.clone();
                    let binding = if toks.get(k + 1).is_some_and(|n| n.is_punct(':'))
                        && !toks.get(k + 2).is_some_and(|n| n.is_punct(':'))
                    {
                        // `field: binding` rename
                        k += 2;
                        toks.get(k).map(|b| b.text.clone())
                    } else {
                        Some(field.clone())
                    };
                    let key = (ws.fns[id].crate_idx, field.clone());
                    if let (Some(bind), Some(ft)) = (binding, st.field_taint.get(&key).copied()) {
                        let e = locals.entry(bind).or_insert([None; 3]);
                        changed |= union_into(e, &ft);
                    }
                }
                k += 1;
            }
            break;
        }
    }
    if !destructured {
        // Simple/tuple pattern: every binding takes the initializer's
        // taint. Identifiers after a top-level `:` are a type
        // annotation, not bindings.
        let mut annotated = false;
        let (mut pa, mut bk) = (0i32, 0i32);
        for j in i + 1..eq {
            let t = &toks[j];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" => pa += 1,
                    ")" => pa -= 1,
                    "[" => bk += 1,
                    "]" => bk -= 1,
                    ":" if pa == 0
                        && bk == 0
                        && !toks.get(j + 1).is_some_and(|n| n.is_punct(':'))
                        && !toks.get(j.wrapping_sub(1)).is_some_and(|n| n.is_punct(':')) =>
                    {
                        annotated = true;
                    }
                    _ => {}
                }
                continue;
            }
            if annotated || t.kind != TokenKind::Ident {
                continue;
            }
            let name = t.text.as_str();
            if KEYWORDS.contains(&name) || name == "_" {
                continue;
            }
            // Path segments in enum patterns (`Some`, `Ev::Gpu`) are
            // uppercase or followed by `::` — skip them.
            if name.chars().next().is_some_and(char::is_uppercase) {
                continue;
            }
            if toks.get(j + 1).is_some_and(|n| n.is_punct(':')) {
                continue;
            }
            let e = locals.entry(t.text.clone()).or_insert([None; 3]);
            changed |= union_into(e, &rhs_taint);
        }
    }
    (eq + 1, changed)
}

/// `for pat in expr {`: loop bindings take the iterated expression's
/// taint, plus float-order taint when the expression names a
/// hash-ordered container.
fn handle_for(
    ws: &Workspace,
    st: &mut State,
    id: usize,
    locals: &mut BTreeMap<String, Taint>,
    i: usize,
    close: usize,
    emit: &mut Option<&mut RuleOutput>,
) -> (usize, bool) {
    let f = ws.file(id);
    let toks = &f.tokens;
    let (mut pa, mut bk, mut br) = (0i32, 0i32, 0i32);
    let mut in_idx = None;
    #[allow(clippy::needless_range_loop)] // indexed token scan
    for j in i + 1..close.min(i + 64) {
        let t = &toks[j];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" => pa += 1,
                ")" => pa -= 1,
                "[" => bk += 1,
                "]" => bk -= 1,
                "{" => br += 1,
                "}" => br -= 1,
                _ => {}
            }
            continue;
        }
        if t.is_ident("in") && pa == 0 && bk == 0 && br == 0 {
            in_idx = Some(j);
            break;
        }
    }
    let Some(in_idx) = in_idx else {
        return (i + 1, false);
    };
    // Header expression: up to the loop's opening brace.
    let mut hi = in_idx + 1;
    let (mut pa, mut bk) = (0i32, 0i32);
    while hi < close {
        let t = &toks[hi];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" => pa += 1,
                ")" => pa -= 1,
                "[" => bk += 1,
                "]" => bk -= 1,
                "{" if pa == 0 && bk == 0 => break,
                _ => {}
            }
        }
        hi += 1;
    }
    let mut taint = eval(ws, st, id, locals, in_idx + 1, hi);
    // Iterating a hash-ordered container hands out its elements in
    // nondeterministic order even without an `.iter()` call.
    #[allow(clippy::needless_range_loop)] // indexed token scan
    for j in in_idx + 1..hi {
        let t = &toks[j];
        if t.kind == TokenKind::Ident && f.hash_idents.contains(&t.text) {
            let src = st.intern(
                &format!("hash-ordered iteration over `{}`", t.text),
                &f.path,
                t.line,
            );
            if taint[Kind::FloatOrder as usize].is_none() {
                taint[Kind::FloatOrder as usize] = Some(src);
            }
            break;
        }
    }
    launder(st, f, toks[i].line, &mut taint, emit);
    let mut changed = false;
    #[allow(clippy::needless_range_loop)] // indexed token scan
    for j in i + 1..in_idx {
        let t = &toks[j];
        if t.kind != TokenKind::Ident
            || KEYWORDS.contains(&t.text.as_str())
            || t.text == "_"
            || t.text.chars().next().is_some_and(char::is_uppercase)
        {
            continue;
        }
        let e = locals.entry(t.text.clone()).or_insert([None; 3]);
        changed |= union_into(e, &taint);
    }
    (in_idx + 1, changed)
}

/// Is the `=` at token `i` a real assignment (not `==`, `=>`, `<=`,
/// `>=`, `!=`, or a `let` initializer, which `handle_let` consumed)?
/// Returns `Some(locals_changed)` when handled.
fn handle_assign(
    ws: &Workspace,
    st: &mut State,
    id: usize,
    locals: &mut BTreeMap<String, Taint>,
    i: usize,
    close: usize,
    emit: &mut Option<&mut RuleOutput>,
) -> Option<bool> {
    let f = ws.file(id);
    let toks = &f.tokens;
    let next = toks.get(i + 1)?;
    if next.is_punct('=') || next.is_punct('>') {
        return None;
    }
    if i == 0 {
        return None;
    }
    let prev = &toks[i - 1];
    if prev.kind == TokenKind::Punct && matches!(prev.text.as_str(), "=" | "!" | "<" | ">") {
        return None;
    }
    let compound = prev.kind == TokenKind::Punct
        && matches!(
            prev.text.as_str(),
            "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^"
        );
    let lhs_end = if compound { i.checked_sub(2)? } else { i - 1 };
    // Walk the left-hand side back: `base(.field | [idx])*`.
    let mut fields: Vec<&Token> = Vec::new();
    let mut base: Option<&Token> = None;
    let mut k = lhs_end;
    loop {
        let t = &toks[k];
        if t.is_punct(']') {
            // Skip the index expression.
            let mut depth = 0i32;
            while k > 0 {
                if toks[k].is_punct(']') {
                    depth += 1;
                } else if toks[k].is_punct('[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k -= 1;
            }
            if k == 0 {
                return None;
            }
            k -= 1;
            continue;
        }
        if t.kind == TokenKind::Ident || t.kind == TokenKind::Literal {
            if k >= 1 && toks[k - 1].is_punct('.') {
                fields.push(t);
                if k < 2 {
                    return None;
                }
                k -= 2;
                continue;
            }
            if t.kind == TokenKind::Ident {
                base = Some(t);
            }
            break;
        }
        return None;
    }
    let base = base?;
    if base.is_ident("let") || KEYWORDS.contains(&base.text.as_str()) && base.text != "self" {
        return None;
    }
    let rhs_hi = stmt_end(toks, i + 1, close);
    let mut rhs = eval(ws, st, id, locals, i + 1, rhs_hi);
    if fields.is_empty() {
        launder(st, f, toks[i].line, &mut rhs, emit);
        let e = locals.entry(base.text.clone()).or_insert([None; 3]);
        return Some(union_into(e, &rhs));
    }
    // Field store: `base.f = ..` / `base.a.f = ..` / `base.f[i] = ..`.
    let field = fields[0]; // nearest the `=`, i.e. the stored field
    if rhs.iter().all(Option::is_none) {
        return Some(false);
    }
    // Sink findings fire on the pre-laundered taint (a sink-side
    // allow routes through `push` into the suppressed record).
    if let Some(out) = emit.as_deref_mut() {
        let syms = ws.syms(id);
        let clock_ok = ws.clock_scope[ws.fns[id].crate_idx];
        for kind in KINDS {
            let Some(src) = rhs[kind as usize] else {
                continue;
            };
            if kind == Kind::Clock && !clock_ok {
                continue;
            }
            // Entropy must not feed *any* persistent state; clock and
            // float-order taint only sink into report-like receivers.
            let sinks = match kind {
                Kind::Entropy => true,
                _ => sinky_receiver(&base.text, syms),
            };
            if sinks {
                let what = st.describe(src);
                push(
                    out,
                    f,
                    field.line,
                    kind.rule(),
                    format!(
                        "{}-tainted value stored into `{}.{}` — derived from {}",
                        kind.adjective(),
                        base.text,
                        field.text,
                        what
                    ),
                );
            }
        }
    }
    launder(st, f, field.line, &mut rhs, emit);
    let e = st
        .field_taint
        .entry((ws.fns[id].crate_idx, field.text.clone()))
        .or_insert([None; 3]);
    if union_into(e, &rhs) {
        st.changed = true;
    }
    Some(false)
}

/// Does `base` name a receiver whose fields are exported-report state?
fn sinky_receiver(base: &str, syms: &FileSymbols) -> bool {
    if let Some(ty) = syms.binding_types.get(base) {
        if sinky_struct(ty) {
            return true;
        }
    }
    let lower = base.to_ascii_lowercase();
    lower.contains("report") || lower.contains("summary") || matches!(base, "reg" | "registry")
}

/// Is the uppercase identifier at `i` the head of a struct literal
/// (`Name { field: expr, .. }`) in expression position?
fn is_struct_literal_at(toks: &[Token], i: usize, body_open: usize) -> bool {
    let t = &toks[i];
    if t.kind != TokenKind::Ident
        || !t.text.chars().next().is_some_and(char::is_uppercase)
        || !toks.get(i + 1).is_some_and(|n| n.is_punct('{'))
    {
        return false;
    }
    if i <= body_open {
        return true;
    }
    let prev = &toks[i - 1];
    !(prev.is_ident("struct")
        || prev.is_ident("enum")
        || prev.is_ident("union")
        || prev.is_ident("trait")
        || prev.is_ident("impl")
        || prev.is_ident("mod")
        || prev.is_ident("fn"))
}

/// Struct literal: evaluate each field initializer, propagate into the
/// global field-taint map, and (emit pass) flag tainted fields of
/// report-like structs.
fn handle_struct_literal(
    ws: &Workspace,
    st: &mut State,
    id: usize,
    locals: &BTreeMap<String, Taint>,
    i: usize,
    emit: &mut Option<&mut RuleOutput>,
) {
    let r = &ws.fns[id];
    let f = ws.file(id);
    let toks = &f.tokens;
    let sname = toks[i].text.clone();
    let Some(&bid) = ws.open_block[r.crate_idx][r.file_idx].get(&(i + 1)) else {
        return;
    };
    let open = f.blocks[bid].open;
    let close = f.blocks[bid].close.min(toks.len().saturating_sub(1));
    let mut depth = 0i32;
    let mut j = open + 1;
    while j < close {
        let t = &toks[j];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => depth -= 1,
                _ => {}
            }
            j += 1;
            continue;
        }
        if depth != 0 || t.kind != TokenKind::Ident {
            j += 1;
            continue;
        }
        // A field entry starts right after `{` or a depth-0 `,`.
        let prev_ok = {
            let p = &toks[j - 1];
            p.is_punct('{') && j - 1 == open || p.is_punct(',')
        };
        if !prev_ok {
            j += 1;
            continue;
        }
        let (name_tok, lo, hi);
        if toks.get(j + 1).is_some_and(|n| n.is_punct(':'))
            && !toks.get(j + 2).is_some_and(|n| n.is_punct(':'))
        {
            name_tok = t;
            lo = j + 2;
            hi = stmt_end(toks, lo, close);
        } else if toks
            .get(j + 1)
            .is_some_and(|n| n.is_punct(',') || n.is_punct('}'))
        {
            name_tok = t;
            lo = j;
            hi = j + 1;
        } else {
            j += 1;
            continue;
        }
        let mut taint = eval(ws, st, id, locals, lo, hi);
        if taint.iter().any(Option::is_some) {
            if let Some(out) = emit.as_deref_mut() {
                if sinky_struct(&sname) {
                    let clock_ok = ws.clock_scope[r.crate_idx];
                    for kind in KINDS {
                        let Some(src) = taint[kind as usize] else {
                            continue;
                        };
                        if kind == Kind::Clock && !clock_ok {
                            continue;
                        }
                        let what = st.describe(src);
                        push(
                            out,
                            f,
                            name_tok.line,
                            kind.rule(),
                            format!(
                                "{}-tainted value flows into field `{}` of `{}` — derived from {}",
                                kind.adjective(),
                                name_tok.text,
                                sname,
                                what
                            ),
                        );
                    }
                }
            }
            launder(st, f, name_tok.line, &mut taint, emit);
            let e = st
                .field_taint
                .entry((r.crate_idx, name_tok.text.clone()))
                .or_insert([None; 3]);
            if union_into(e, &taint) {
                st.changed = true;
            }
        }
        j = hi;
    }
}

/// Call site at ident `i` (next token is `(`): metrics/event-booking
/// sink checks plus argument-to-parameter taint flow.
fn handle_call(
    ws: &Workspace,
    st: &mut State,
    id: usize,
    locals: &BTreeMap<String, Taint>,
    i: usize,
    emit: &mut Option<&mut RuleOutput>,
) {
    let f = ws.file(id);
    let toks = &f.tokens;
    let is_method = i >= 2 && toks[i - 1].is_punct('.');
    // Argument ranges: split the parenthesized list on depth-0 commas.
    let open = i + 1;
    let mut depth = 0i32;
    let mut close_paren = open;
    #[allow(clippy::needless_range_loop)] // indexed token scan
    for j in open..toks.len() {
        let t = &toks[j];
        if t.kind != TokenKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    close_paren = j;
                    break;
                }
            }
            _ => {}
        }
    }
    let mut args: Vec<(usize, usize)> = Vec::new();
    let mut lo = open + 1;
    let mut d = 0i32;
    #[allow(clippy::needless_range_loop)] // indexed token scan
    for j in open + 1..close_paren {
        let t = &toks[j];
        if t.kind != TokenKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" | "{" => d += 1,
            ")" | "]" | "}" => d -= 1,
            "," if d == 0 => {
                args.push((lo, j));
                lo = j + 1;
            }
            _ => {}
        }
    }
    if lo < close_paren {
        args.push((lo, close_paren));
    }
    let mut arg_taints: Vec<Taint> = args
        .iter()
        .map(|&(lo, hi)| eval(ws, st, id, locals, lo, hi))
        .collect();
    // Sink checks (emit pass only).
    if let Some(out) = emit.as_deref_mut() {
        let name = toks[i].text.as_str();
        let clock_ok = ws.clock_scope[ws.fns[id].crate_idx];
        let recv = if is_method && i >= 2 && toks[i - 2].kind == TokenKind::Ident {
            Some(toks[i - 2].text.as_str())
        } else {
            None
        };
        let metrics_sink = is_method && METRIC_SINKS.contains(&name);
        let event_sink = is_method
            && name == "push"
            && recv.is_some_and(|r| {
                EVENT_RECEIVERS.contains(&r)
                    || ws
                        .syms(id)
                        .binding_types
                        .get(r)
                        .is_some_and(|ty| ty == "EventQueue")
            });
        if metrics_sink || event_sink {
            for (ai, taint) in arg_taints.iter().enumerate() {
                for kind in KINDS {
                    let Some(src) = taint[kind as usize] else {
                        continue;
                    };
                    if kind == Kind::Clock && !clock_ok {
                        continue;
                    }
                    if event_sink && kind == Kind::FloatOrder {
                        continue; // event times are integer ticks
                    }
                    let what = st.describe(src);
                    let sink_desc = if metrics_sink {
                        format!("metrics record `.{name}(..)` (argument {})", ai + 1)
                    } else {
                        format!(
                            "virtual-clock event booking `{}.push(..)` (argument {})",
                            recv.unwrap_or("events"),
                            ai + 1
                        )
                    };
                    push(
                        out,
                        f,
                        toks[i].line,
                        kind.rule(),
                        format!(
                            "{}-tainted value reaches {} — derived from {}",
                            kind.adjective(),
                            sink_desc,
                            what
                        ),
                    );
                }
            }
        }
    }
    // Argument -> parameter propagation into resolved workspace fns.
    for taint in &mut arg_taints {
        launder(st, f, toks[i].line, taint, emit);
    }
    if arg_taints.iter().all(|t| t.iter().all(Option::is_none)) {
        return;
    }
    for callee in resolve_at(ws, id, i) {
        let params = &ws.syms(callee).fn_params[ws.fns[callee].fn_idx];
        let off = usize::from(is_method && params.first().is_some_and(|p| p == "self"));
        for (ai, taint) in arg_taints.iter().enumerate() {
            let slot = ai + off;
            if slot >= st.param_taint[callee].len() {
                break;
            }
            let mut cur = st.param_taint[callee][slot];
            if union_into(&mut cur, taint) {
                st.param_taint[callee][slot] = cur;
                st.changed = true;
            }
        }
    }
}

/// Resolves the callee at token `i` to workspace fn ids, with the same
/// narrowing the call graph uses: path qualifier, typed receiver, then
/// same file / same crate / imported crate / bounded global fallback.
fn resolve_at(ws: &Workspace, caller: usize, i: usize) -> Vec<usize> {
    let r = &ws.fns[caller];
    let f = ws.file(caller);
    let toks = &f.tokens;
    let Some(cands) = ws.by_name.get(&toks[i].text) else {
        return Vec::new();
    };
    let syms = ws.syms(caller);
    let krate = |id: usize| ws.views[ws.fns[id].crate_idx].name.as_str();
    let owner = |id: usize| {
        let fr = &ws.fns[id];
        ws.symbols[fr.crate_idx][fr.file_idx].fn_owner[fr.fn_idx].as_deref()
    };
    if i >= 3 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') {
        let mut j = i;
        while j >= 3
            && toks[j - 1].is_punct(':')
            && toks[j - 2].is_punct(':')
            && toks[j - 3].kind == TokenKind::Ident
        {
            j -= 3;
        }
        let q = &toks[j].text;
        if let Some(pkg) = crate_of_segment(q) {
            return cands.iter().copied().filter(|&c| krate(c) == pkg).collect();
        }
        if q == "crate" || q == "self" || q == "super" {
            return cands
                .iter()
                .copied()
                .filter(|&c| ws.fns[c].crate_idx == r.crate_idx)
                .collect();
        }
        if q.chars().next().is_some_and(char::is_uppercase) {
            return cands
                .iter()
                .copied()
                .filter(|&c| owner(c) == Some(q.as_str()))
                .collect();
        }
        return cands
            .iter()
            .copied()
            .filter(|&c| ws.fns[c].crate_idx == r.crate_idx)
            .collect();
    }
    if i >= 2 && toks[i - 1].is_punct('.') && toks[i - 2].kind == TokenKind::Ident {
        if let Some(ty) = syms.binding_types.get(&toks[i - 2].text) {
            let owned: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| owner(c) == Some(ty.as_str()))
                .collect();
            if !owned.is_empty() {
                return owned;
            }
        }
    }
    let same_file: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&c| ws.fns[c].crate_idx == r.crate_idx && ws.fns[c].file_idx == r.file_idx)
        .collect();
    if !same_file.is_empty() {
        return same_file;
    }
    let same_crate: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&c| ws.fns[c].crate_idx == r.crate_idx)
        .collect();
    if !same_crate.is_empty() {
        return same_crate;
    }
    if let Some(pkg) = syms.imports.get(&toks[i].text) {
        let imported: Vec<usize> = cands.iter().copied().filter(|&c| krate(c) == pkg).collect();
        if !imported.is_empty() {
            return imported;
        }
    }
    // Bounded global fallback: a workspace-wide common name (`push`,
    // `get`) would smear taint everywhere; better to under-approximate
    // here and let the field-taint map carry the flow.
    if cands.len() <= 8 {
        cands.clone()
    } else {
        Vec::new()
    }
}

/// Flat taint evaluation of an expression range: union the taint of
/// every atom — sources, tainted locals (modulo pure field
/// projections), field reads, and resolved call returns. Struct
/// literals are skipped (their fields flow through the field-taint
/// map, keeping tracking field-granular).
fn eval(
    ws: &Workspace,
    st: &mut State,
    id: usize,
    locals: &BTreeMap<String, Taint>,
    lo: usize,
    hi: usize,
) -> Taint {
    let f = ws.file(id);
    let r = &ws.fns[id];
    let toks = &f.tokens;
    let clock_ok = ws.clock_scope[r.crate_idx];
    let mut out: Taint = [None; 3];
    let tag = |out: &mut Taint, st: &mut State, kind: Kind, what: &str, line: u32| {
        if kind == Kind::Clock && !clock_ok {
            return;
        }
        if out[kind as usize].is_none() {
            let src = st.intern(what, &f.path, line);
            out[kind as usize] = Some(src);
        }
    };
    let mut i = lo;
    while i < hi.min(toks.len()) {
        let t = &toks[i];
        if t.kind == TokenKind::Literal {
            if i > lo && toks[i - 1].is_punct('.') {
                // Tuple-index field read.
                if let Some(ft) = st.field_taint.get(&(r.crate_idx, t.text.clone())) {
                    let ft = *ft;
                    union_into(&mut out, &ft);
                }
            }
            i += 1;
            continue;
        }
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        // Sources.
        if t.is_ident("Instant")
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 3).is_some_and(|n| n.is_ident("now"))
        {
            tag(&mut out, st, Kind::Clock, "`Instant::now()`", t.line);
            i += 4;
            continue;
        }
        if t.is_ident("SystemTime") {
            tag(&mut out, st, Kind::Clock, "`SystemTime`", t.line);
            i += 1;
            continue;
        }
        if ENTROPY_SOURCES.contains(&t.text.as_str()) {
            tag(
                &mut out,
                st,
                Kind::Entropy,
                &format!("`{}`", t.text),
                t.line,
            );
            i += 1;
            continue;
        }
        if t.is_ident("rand")
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 3).is_some_and(|n| n.is_ident("random"))
        {
            tag(&mut out, st, Kind::Entropy, "`rand::random`", t.line);
            i += 4;
            continue;
        }
        if f.hash_idents.contains(&t.text)
            && toks.get(i + 1).is_some_and(|n| n.is_punct('.'))
            && toks
                .get(i + 2)
                .is_some_and(|m| ITER_METHODS.contains(&m.text.as_str()))
        {
            tag(
                &mut out,
                st,
                Kind::FloatOrder,
                &format!("hash-ordered iteration over `{}`", t.text),
                t.line,
            );
            // The receiver also reads as a local below; fall through.
        }
        if t.is_ident("join")
            && i > lo
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(')'))
        {
            tag(
                &mut out,
                st,
                Kind::FloatOrder,
                "thread-join result via `.join()`",
                t.line,
            );
            i += 3;
            continue;
        }
        // Struct literal: field-granular, skip the block.
        if is_struct_literal_at(toks, i, usize::MAX) && i > lo {
            if let Some(&bid) = ws.open_block[r.crate_idx][r.file_idx].get(&(i + 1)) {
                i = f.blocks[bid].close + 1;
                continue;
            }
        }
        if KEYWORDS.contains(&t.text.as_str()) {
            i += 1;
            continue;
        }
        let after_dot = i > lo && toks[i - 1].is_punct('.');
        let called = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
        if after_dot && !called {
            // Field read: the field's crate-wide taint.
            if let Some(ft) = st.field_taint.get(&(r.crate_idx, t.text.clone())) {
                let ft = *ft;
                union_into(&mut out, &ft);
            }
            i += 1;
            continue;
        }
        if called {
            // Call: union the callees' return taint.
            for callee in resolve_at(ws, id, i) {
                let ret = st.ret_taint[callee];
                union_into(&mut out, &ret);
            }
            i += 1;
            continue;
        }
        // Plain local read — unless it is only the head of a pure
        // field projection (`x.f` reads the field, not `x`). A `(` or
        // `::` after the projected name means a method call (possibly
        // turbofished, `rng.gen::<u64>()`), which reads the receiver.
        let projected = toks.get(i + 1).is_some_and(|n| n.is_punct('.'))
            && toks
                .get(i + 2)
                .is_some_and(|n| n.kind == TokenKind::Ident || n.kind == TokenKind::Literal)
            && !toks
                .get(i + 3)
                .is_some_and(|n| n.is_punct('(') || n.is_punct(':'));
        if !projected {
            if let Some(lt) = locals.get(&t.text) {
                union_into(&mut out, lt);
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> RuleOutput {
        let files = [FileInfo::parse("t.rs", src)];
        check_taint_files(&files)
    }

    #[test]
    fn clock_taint_flows_through_a_call_into_a_report_field() {
        let out = run(
            "fn stamp() -> u64 { let t0 = Instant::now(); t0.elapsed().as_nanos() as u64 } \
             pub fn build() -> RunReport { let wall = stamp(); RunReport { elapsed_ns: wall } }",
        );
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        let f = &out.findings[0];
        assert_eq!(f.rule, RuleId::ClockTaint);
        assert!(f.message.contains("Instant::now"), "{f}");
        assert!(f.message.contains("t.rs:1"), "source named: {f}");
    }

    #[test]
    fn clock_taint_flows_through_params_and_field_stores() {
        let out = run(
            "struct Acc { wall_ns: u64 } \
             impl Acc { fn note(&mut self, d: u64) { self.wall_ns = d; } } \
             fn drive(acc: &mut Acc) { let d = Instant::now().elapsed().as_nanos() as u64; acc.note(d); } \
             fn export(acc: &Acc) -> StageSummary { StageSummary { wall_ns: acc.wall_ns } }",
        );
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert!(
            out.findings[0].message.contains("wall_ns"),
            "{:?}",
            out.findings
        );
    }

    #[test]
    fn entropy_feeding_state_is_flagged() {
        let out = run(
            "fn f(s: &mut LoopState) { let jitter = thread_rng().gen::<u64>(); s.backoff_ns = jitter; }",
        );
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert_eq!(out.findings[0].rule, RuleId::EntropyTaint);
        assert!(out.findings[0].message.contains("thread_rng"));
    }

    #[test]
    fn seeded_rng_is_clean() {
        let out = run("fn f(s: &mut LoopState, seed: u64) { \
             let mut rng = StdRng::seed_from_u64(seed); s.backoff_ns = rng.gen::<u64>(); }");
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn hash_order_accumulation_reaching_a_report_is_flagged() {
        let out = run("fn f(m: &HashMap<u64, f64>) -> LoadReport { \
             let mut total = 0.0; for (_, v) in m { total += v; } \
             LoadReport { mean_load: total } }");
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert_eq!(out.findings[0].rule, RuleId::FloatOrderTaint);
        assert!(out.findings[0].message.contains("hash-ordered"));
    }

    #[test]
    fn metrics_and_event_bookings_are_clock_sinks() {
        let out = run("fn f(pulse: &mut M, events: &mut EventQueue<Ev>) { \
             let now_ns = Instant::now().elapsed().as_nanos() as u64; \
             if M::ENABLED { pulse.gauge(\"depth\", now_ns as f64); } \
             events.push(now_ns, Ev::Tick); }");
        let rules: Vec<_> = out.findings.iter().map(|f| f.rule).collect();
        assert_eq!(
            rules,
            [RuleId::ClockTaint, RuleId::ClockTaint],
            "{:?}",
            out.findings
        );
        assert!(out
            .findings
            .iter()
            .any(|f| f.message.contains("event booking")));
    }

    #[test]
    fn model_time_bookings_are_clean() {
        let out = run("fn f(events: &mut EventQueue<Ev>, now: u64, dt: u64) { \
             events.push(now + dt, Ev::Tick); }");
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn allow_directive_suppresses_and_is_recorded() {
        let out = run("fn f() -> PaceReport {\n\
             let t0 = Instant::now();\n\
             PaceReport {\n\
             wall_ns: t0.elapsed().as_nanos() as u64, // lint:allow(clock-taint)\n\
             }\n}");
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert_eq!(out.suppressed.len(), 1, "{:?}", out.suppressed);
        assert_eq!(out.suppressed[0].rule, RuleId::ClockTaint);
    }

    #[test]
    fn field_granularity_does_not_poison_siblings() {
        let out = run("fn make() -> Carrier { \
             let wall = Instant::now().elapsed().as_nanos() as u64; \
             Carrier { wall_ns: wall, items: 3 } } \
             fn export(c: &Carrier) -> SizeReport { SizeReport { items: c.items } }");
        assert!(
            out.findings.is_empty(),
            "clean sibling field must stay clean: {:?}",
            out.findings
        );
    }

    #[test]
    fn clock_exempt_crates_neither_seed_nor_sink() {
        let files = [FileInfo::parse(
            "t.rs",
            "pub fn serve() -> WallReport { \
             let t0 = Instant::now(); \
             WallReport { elapsed_ns: t0.elapsed().as_nanos() as u64 } }",
        )];
        let views = [CrateView {
            name: "drs-engine".to_string(),
            files: &files,
        }];
        let out = check_taint(&views, &["drs-engine"]);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn allow_on_a_flow_statement_launders_the_taint() {
        // One documented allow at the wall-to-model conversion clears
        // every downstream sink, and the audit sees the directive live.
        let out = run("fn model_now() -> u64 {\n\
             let t0 = Instant::now();\n\
             t0.elapsed().as_nanos() as u64 // lint:allow(clock-taint)\n\
             }\n\
             fn export() -> TickReport { TickReport { t_ns: model_now() } }");
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert!(
            out.suppressed
                .iter()
                .any(|s| s.rule == RuleId::ClockTaint && s.line == 3),
            "{:?}",
            out.suppressed
        );
    }

    #[test]
    fn field_taint_does_not_alias_across_crates() {
        let real = [FileInfo::parse(
            "real.rs",
            "fn pace(s: &mut Pacer) { s.qps = Instant::now().elapsed().as_nanos() as f64; }",
        )];
        let virt = [FileInfo::parse(
            "virt.rs",
            "fn export(m: &Model) -> SimReport { SimReport { qps: m.qps } }",
        )];
        let views = [
            CrateView {
                name: "drs-real".to_string(),
                files: &real,
            },
            CrateView {
                name: "drs-virt".to_string(),
                files: &virt,
            },
        ];
        let out = check_taint(&views, &[]);
        assert!(
            out.findings.is_empty(),
            "a same-named field in another crate must stay clean: {:?}",
            out.findings
        );
    }

    #[test]
    fn destructuring_keeps_field_granularity() {
        let out = run(
            "fn make() -> Out { let w = Instant::now().elapsed().as_nanos(); \
             Out { wall: w, clean: 1 } } \
             fn split(o: Out) -> MixReport { \
             let Out { wall, clean } = o; \
             MixReport { clean_count: clean, wall_ns: wall } }",
        );
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert!(
            out.findings[0].message.contains("wall_ns"),
            "{:?}",
            out.findings
        );
    }
}
