//! Workspace discovery and the full analysis driver.
//!
//! Walks `crates/*/src/**/*.rs` (vendored stand-ins under `vendor/`,
//! integration tests, and the lint fixtures are outside that scope by
//! construction), classifies each crate against the rule scopes, runs
//! the rule passes, and renders the findings as text or JSON.

use crate::parse::FileInfo;
use crate::rules::{
    check_float_reduce, check_hash_iter, check_metrics_guard, check_panic_contract,
    check_telemetry_guard, check_wall_clock, Finding, RuleId,
};
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

/// Crates whose serve/replay loops must be hash-order free (R1).
const HASH_ITER_CRATES: &[&str] = &["drs-sim", "drs-server", "drs-core", "drs-shard"];
/// Crates that legitimately read the wall clock (R2 exemption): the
/// real execution engine and the benchmark harness.
const WALL_CLOCK_EXEMPT: &[&str] = &["drs-engine", "drs-bench"];
/// Crates whose public entry points carry the panic contract (R3).
const PANIC_CONTRACT_CRATES: &[&str] = &["drs-sim", "drs-server", "drs-core"];
/// Crates with `TraceSink` record sites that must be guarded (R4).
const TELEMETRY_GUARD_CRATES: &[&str] = &["drs-sim", "drs-server", "drs-engine"];
/// Crates with `MetricsSink` record sites that must be guarded (R6).
const METRICS_GUARD_CRATES: &[&str] = &["drs-sim", "drs-server", "drs-engine"];

/// One workspace crate: its name and parsed sources.
pub struct CrateSources {
    /// Package name from `Cargo.toml`.
    pub name: String,
    /// Parsed `src/**/*.rs` files, in path order.
    pub files: Vec<FileInfo>,
    /// Raw `src/lib.rs` contents (for the docs-parity check), if the
    /// crate is a library.
    pub lib_rs: Option<(String, String)>,
    /// Raw `Cargo.toml` contents and its repo-relative path.
    pub manifest: (String, String),
}

/// The result of one full workspace analysis.
pub struct Report {
    /// All findings, sorted by path then line.
    pub findings: Vec<Finding>,
    /// Number of source files scanned.
    pub files_scanned: usize,
    /// Names of the crates scanned, in order.
    pub crates: Vec<String>,
}

/// Discovers and parses every crate under `<root>/crates/`.
pub fn discover(root: &Path) -> std::io::Result<Vec<CrateSources>> {
    let crates_dir = root.join("crates");
    let mut dirs: BTreeSet<PathBuf> = BTreeSet::new();
    for entry in fs::read_dir(&crates_dir)? {
        let p = entry?.path();
        if p.is_dir() && p.join("Cargo.toml").is_file() {
            dirs.insert(p);
        }
    }
    let mut out = Vec::new();
    for dir in dirs {
        let manifest_path = dir.join("Cargo.toml");
        let manifest_src = fs::read_to_string(&manifest_path)?;
        let name = package_name(&manifest_src)
            .unwrap_or_else(|| dir.file_name().unwrap().to_string_lossy().into_owned());
        let src_dir = dir.join("src");
        let mut files = Vec::new();
        let mut lib_rs = None;
        if src_dir.is_dir() {
            let mut paths: BTreeSet<PathBuf> = BTreeSet::new();
            walk_rs(&src_dir, &mut paths)?;
            for p in paths {
                let src = fs::read_to_string(&p)?;
                let rel = rel_to(root, &p);
                if p.file_name().is_some_and(|f| f == "lib.rs")
                    && p.parent() == Some(src_dir.as_path())
                {
                    lib_rs = Some((rel.clone(), src.clone()));
                }
                files.push(FileInfo::parse(&rel, &src));
            }
        }
        out.push(CrateSources {
            name,
            files,
            lib_rs,
            manifest: (rel_to(root, &manifest_path), manifest_src),
        });
    }
    Ok(out)
}

/// Runs every rule pass over the workspace rooted at `root`.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Report> {
    let crates = discover(root)?;
    let mut findings = Vec::new();
    let mut files_scanned = 0;
    for c in &crates {
        files_scanned += c.files.len();
        let hash_iter = HASH_ITER_CRATES.contains(&c.name.as_str());
        let wall_clock = !WALL_CLOCK_EXEMPT.contains(&c.name.as_str());
        let telemetry = TELEMETRY_GUARD_CRATES.contains(&c.name.as_str());
        let metrics = METRICS_GUARD_CRATES.contains(&c.name.as_str());
        for f in &c.files {
            if hash_iter {
                findings.extend(check_hash_iter(f));
            }
            if wall_clock {
                findings.extend(check_wall_clock(f));
            }
            if telemetry {
                findings.extend(check_telemetry_guard(f));
            }
            if metrics {
                findings.extend(check_metrics_guard(f));
            }
            findings.extend(check_float_reduce(f));
        }
        if PANIC_CONTRACT_CRATES.contains(&c.name.as_str()) {
            findings.extend(check_panic_contract(&c.files));
        }
        findings.extend(check_docs_parity(c));
    }
    findings.sort();
    Ok(Report {
        findings,
        files_scanned,
        crates: crates.iter().map(|c| c.name.clone()).collect(),
    })
}

/// Crate-hygiene parity: every library crate carries
/// `#![warn(missing_docs)]` in its `lib.rs` and opts into the
/// workspace lint table in its `Cargo.toml`.
pub fn check_docs_parity(c: &CrateSources) -> Vec<Finding> {
    let mut out = Vec::new();
    if let Some((path, src)) = &c.lib_rs {
        if src.contains("lint:allow(docs-parity)") {
            return out;
        }
        if !src.contains("#![warn(missing_docs)]") {
            out.push(Finding {
                path: path.clone(),
                line: 1,
                rule: RuleId::DocsParity,
                message: format!("library crate `{}` lacks `#![warn(missing_docs)]`", c.name),
            });
        }
        let (mpath, msrc) = &c.manifest;
        if !(msrc.contains("[lints]") && msrc.contains("workspace = true")) {
            out.push(Finding {
                path: mpath.clone(),
                line: 1,
                rule: RuleId::DocsParity,
                message: format!(
                    "crate `{}` does not opt into `[lints] workspace = true`",
                    c.name
                ),
            });
        }
    }
    out
}

/// Renders the findings as a machine-readable JSON document.
pub fn report_json(report: &Report) -> String {
    let mut s = String::from("{\n  \"schema\": 1,\n  \"findings\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"path\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}{}\n",
            json_string(&f.path),
            f.line,
            json_string(f.rule.name()),
            json_string(&f.message),
            if i + 1 < report.findings.len() {
                ","
            } else {
                ""
            }
        ));
    }
    s.push_str(&format!(
        "  ],\n  \"count\": {},\n  \"files_scanned\": {}\n}}\n",
        report.findings.len(),
        report.files_scanned
    ));
    s
}

/// JSON-escapes and quotes a string.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Extracts `name = "..."` from a manifest's `[package]` table.
fn package_name(manifest: &str) -> Option<String> {
    for line in manifest.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                let rest = rest.trim();
                if rest.len() >= 2 && rest.starts_with('"') {
                    return rest[1..].split('"').next().map(str::to_string);
                }
            }
        }
        if line.starts_with('[') && line != "[package]" && !line.is_empty() {
            // Left the [package] table without seeing a name.
            if line.starts_with("[dependencies") || line.starts_with("[lints") {
                break;
            }
        }
    }
    None
}

fn walk_rs(dir: &Path, out: &mut BTreeSet<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let p = entry?.path();
        if p.is_dir() {
            walk_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.insert(p);
        }
    }
    Ok(())
}

fn rel_to(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_name_parses() {
        let m = "[package]\nname = \"drs-sim\"\nversion.workspace = true\n";
        assert_eq!(package_name(m).as_deref(), Some("drs-sim"));
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
