//! Workspace discovery and the full analysis driver.
//!
//! Walks `crates/*/src/**/*.rs` (vendored stand-ins under `vendor/`,
//! integration tests, and the lint fixtures are outside that scope by
//! construction), classifies each crate against the rule scopes, runs
//! the syntactic passes, the call-graph-based panic-contract check,
//! and the interprocedural taint engine, audits every `lint:allow`
//! directive for staleness, and renders the findings as text or JSON.

use crate::callgraph::CallGraph;
use crate::parse::FileInfo;
use crate::rules::{
    check_float_reduce, check_hash_iter, check_metrics_guard, check_panic_contract_graph,
    check_telemetry_guard, check_wall_clock, Finding, RuleId, RuleOutput,
};
use crate::symbols::CrateView;
use crate::taint::check_taint;
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

/// Crates whose serve/replay loops must be hash-order free (R1).
const HASH_ITER_CRATES: &[&str] = &["drs-sim", "drs-server", "drs-core", "drs-shard"];
/// Crates that legitimately read the wall clock (R2/R7 exemption): the
/// real execution engine and the benchmark harness.
pub const WALL_CLOCK_EXEMPT: &[&str] = &["drs-engine", "drs-bench"];
/// Crates with `TraceSink` record sites that must be guarded (R4).
const TELEMETRY_GUARD_CRATES: &[&str] = &["drs-sim", "drs-server", "drs-engine"];
/// Crates with `MetricsSink` record sites that must be guarded (R6).
const METRICS_GUARD_CRATES: &[&str] = &["drs-sim", "drs-server", "drs-engine"];

/// One workspace crate: its name and parsed sources.
pub struct CrateSources {
    /// Package name from `Cargo.toml`.
    pub name: String,
    /// Parsed `src/**/*.rs` files, in path order.
    pub files: Vec<FileInfo>,
    /// Raw `src/lib.rs` contents (for the docs-parity check), if the
    /// crate is a library.
    pub lib_rs: Option<(String, String)>,
    /// Raw `Cargo.toml` contents and its repo-relative path.
    pub manifest: (String, String),
}

/// The result of one full workspace analysis.
pub struct Report {
    /// All findings, sorted by path then line.
    pub findings: Vec<Finding>,
    /// Findings silenced by a live `lint:allow` directive (the audit
    /// trail the stale-allow pass is checked against).
    pub suppressed: Vec<Finding>,
    /// Number of source files scanned.
    pub files_scanned: usize,
    /// Names of the crates scanned, in order.
    pub crates: Vec<String>,
    /// Number of edges in the workspace call graph.
    pub callgraph_edges: usize,
}

/// Discovers and parses every crate under `<root>/crates/`.
pub fn discover(root: &Path) -> std::io::Result<Vec<CrateSources>> {
    let crates_dir = root.join("crates");
    let mut dirs: BTreeSet<PathBuf> = BTreeSet::new();
    for entry in fs::read_dir(&crates_dir)? {
        let p = entry?.path();
        if p.is_dir() && p.join("Cargo.toml").is_file() {
            dirs.insert(p);
        }
    }
    let mut out = Vec::new();
    for dir in dirs {
        let manifest_path = dir.join("Cargo.toml");
        let manifest_src = fs::read_to_string(&manifest_path)?;
        let name = package_name(&manifest_src)
            .unwrap_or_else(|| dir.file_name().unwrap().to_string_lossy().into_owned());
        let src_dir = dir.join("src");
        let mut files = Vec::new();
        let mut lib_rs = None;
        if src_dir.is_dir() {
            let mut paths: BTreeSet<PathBuf> = BTreeSet::new();
            walk_rs(&src_dir, &mut paths)?;
            for p in paths {
                let src = fs::read_to_string(&p)?;
                let rel = rel_to(root, &p);
                if p.file_name().is_some_and(|f| f == "lib.rs")
                    && p.parent() == Some(src_dir.as_path())
                {
                    lib_rs = Some((rel.clone(), src.clone()));
                }
                files.push(FileInfo::parse(&rel, &src));
            }
        }
        out.push(CrateSources {
            name,
            files,
            lib_rs,
            manifest: (rel_to(root, &manifest_path), manifest_src),
        });
    }
    Ok(out)
}

/// Borrowing views over the discovered crates, for the workspace-wide
/// passes (call graph, taint).
pub fn crate_views(crates: &[CrateSources]) -> Vec<CrateView<'_>> {
    crates
        .iter()
        .map(|c| CrateView {
            name: c.name.clone(),
            files: &c.files,
        })
        .collect()
}

/// Builds the workspace call graph rooted at `root` (the `--callgraph`
/// CLI mode).
pub fn workspace_callgraph(root: &Path) -> std::io::Result<CallGraph> {
    let crates = discover(root)?;
    let views = crate_views(&crates);
    Ok(CallGraph::build(&views))
}

/// Runs every rule pass over the workspace rooted at `root`.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Report> {
    let crates = discover(root)?;
    let views = crate_views(&crates);
    let graph = CallGraph::build(&views);
    let mut out = RuleOutput::default();
    let mut files_scanned = 0;
    for c in &crates {
        files_scanned += c.files.len();
        let hash_iter = HASH_ITER_CRATES.contains(&c.name.as_str());
        let wall_clock = !WALL_CLOCK_EXEMPT.contains(&c.name.as_str());
        let telemetry = TELEMETRY_GUARD_CRATES.contains(&c.name.as_str());
        let metrics = METRICS_GUARD_CRATES.contains(&c.name.as_str());
        for f in &c.files {
            if hash_iter {
                out.merge(check_hash_iter(f));
            }
            if wall_clock {
                out.merge(check_wall_clock(f));
            }
            if telemetry {
                out.merge(check_telemetry_guard(f));
            }
            if metrics {
                out.merge(check_metrics_guard(f));
            }
            out.merge(check_float_reduce(f));
        }
        out.merge(check_docs_parity(c));
    }
    // Workspace-wide passes: the panic contract rides the shared call
    // graph (satisfaction flows across crate boundaries), and the
    // taint engine runs its global fixpoint over all crates at once.
    out.merge(check_panic_contract_graph(&views, &graph));
    out.merge(check_taint(&views, WALL_CLOCK_EXEMPT));
    // The stale-allow audit runs last: it needs the complete record of
    // what every directive actually suppressed.
    let mut findings = out.findings;
    findings.extend(check_stale_allows(&crates, &out.suppressed));
    findings.sort();
    let mut suppressed = out.suppressed;
    suppressed.sort();
    Ok(Report {
        findings,
        suppressed,
        files_scanned,
        crates: crates.iter().map(|c| c.name.clone()).collect(),
        callgraph_edges: graph.edges.len(),
    })
}

/// Crate-hygiene parity: every library crate carries
/// `#![warn(missing_docs)]` in its `lib.rs` and opts into the
/// workspace lint table in its `Cargo.toml`. A
/// `lint:allow(docs-parity)` anywhere in the `lib.rs` suppresses the
/// rule crate-wide (the gaps are recorded as suppressed, so an allow
/// with nothing left to excuse shows up in the stale audit).
pub fn check_docs_parity(c: &CrateSources) -> RuleOutput {
    let mut out = RuleOutput::default();
    if let Some((path, src)) = &c.lib_rs {
        let allowed = src.contains("lint:allow(docs-parity)");
        let add = |out: &mut RuleOutput, path: &str, message: String| {
            let f = Finding {
                path: path.to_string(),
                line: 1,
                rule: RuleId::DocsParity,
                message,
            };
            if allowed {
                out.suppressed.push(f);
            } else {
                out.findings.push(f);
            }
        };
        if !src.contains("#![warn(missing_docs)]") {
            add(
                &mut out,
                path,
                format!("library crate `{}` lacks `#![warn(missing_docs)]`", c.name),
            );
        }
        let (mpath, msrc) = &c.manifest;
        if !(msrc.contains("[lints]") && msrc.contains("workspace = true")) {
            add(
                &mut out,
                mpath,
                format!(
                    "crate `{}` does not opt into `[lints] workspace = true`",
                    c.name
                ),
            );
        }
    }
    out
}

/// The allow-audit meta-rule: every `// lint:allow(<rule>)` directive
/// must still be earning its keep — i.e. some finding of that rule
/// must have been suppressed on a line it covers. A directive whose
/// excused code has since been fixed or deleted is itself a finding
/// (`stale-allow`), and it cannot be allowlisted away.
pub fn check_stale_allows(crates: &[CrateSources], suppressed: &[Finding]) -> Vec<Finding> {
    let mut out = Vec::new();
    for c in crates {
        for f in &c.files {
            for d in &f.allow_directives {
                let [lo, hi] = d.covered_lines();
                for rule in &d.rules {
                    let live = if rule == "docs-parity" {
                        // Crate-wide rule: match any suppressed
                        // docs-parity gap in this crate.
                        suppressed.iter().any(|s| {
                            s.rule == RuleId::DocsParity
                                && (s.path == f.path || s.path == c.manifest.0)
                        })
                    } else {
                        suppressed.iter().any(|s| {
                            s.rule.name() == rule
                                && s.path == f.path
                                && s.line >= lo
                                && s.line <= hi
                        })
                    };
                    if !live {
                        out.push(Finding {
                            path: f.path.clone(),
                            line: d.line,
                            rule: RuleId::StaleAllow,
                            message: format!(
                                "`lint:allow({rule})` no longer suppresses any finding — remove it"
                            ),
                        });
                    }
                }
            }
        }
    }
    out
}

/// Renders the findings as a machine-readable JSON document
/// (`"schema": 2` — schema 1 lacked `crates` and `callgraph_edges`).
pub fn report_json(report: &Report) -> String {
    let mut s = String::from("{\n  \"schema\": 2,\n  \"findings\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"path\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}{}\n",
            json_string(&f.path),
            f.line,
            json_string(f.rule.name()),
            json_string(&f.message),
            if i + 1 < report.findings.len() {
                ","
            } else {
                ""
            }
        ));
    }
    s.push_str(&format!(
        "  ],\n  \"count\": {},\n  \"files_scanned\": {},\n  \"callgraph_edges\": {},\n  \"crates\": [{}]\n}}\n",
        report.findings.len(),
        report.files_scanned,
        report.callgraph_edges,
        report
            .crates
            .iter()
            .map(|c| json_string(c))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    s
}

/// A finding as parsed back out of a `--json` report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedFinding {
    /// Repo-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule name (e.g. `clock-taint`).
    pub rule: String,
    /// Human-readable message.
    pub message: String,
}

/// A `--json` report parsed back into structured form: the round-trip
/// counterpart of [`report_json`], used by consumers (CI artifact
/// tooling, the bench harness) and the round-trip test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedReport {
    /// Report schema version (2 as of this writing).
    pub schema: u64,
    /// All findings.
    pub findings: Vec<ParsedFinding>,
    /// `count` field (must equal `findings.len()`).
    pub count: u64,
    /// Number of files scanned.
    pub files_scanned: u64,
    /// Call-graph edge count.
    pub callgraph_edges: u64,
    /// Crates scanned.
    pub crates: Vec<String>,
}

/// Parses a report produced by [`report_json`]. Accepts any key order
/// and whitespace; rejects anything outside the JSON subset the report
/// uses (objects, arrays, strings, non-negative integers).
pub fn parse_report_json(s: &str) -> Result<ParsedReport, String> {
    let mut p = JsonParser {
        b: s.as_bytes(),
        i: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    let obj = v.as_obj().ok_or("top level is not an object")?;
    let get = |k: &str| -> Result<&Json, String> {
        obj.iter()
            .find(|(n, _)| n == k)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing key `{k}`"))
    };
    let schema = get("schema")?.as_u64().ok_or("`schema` is not a number")?;
    let count = get("count")?.as_u64().ok_or("`count` is not a number")?;
    let files_scanned = get("files_scanned")?
        .as_u64()
        .ok_or("`files_scanned` is not a number")?;
    let callgraph_edges = get("callgraph_edges")?
        .as_u64()
        .ok_or("`callgraph_edges` is not a number")?;
    let crates = get("crates")?
        .as_arr()
        .ok_or("`crates` is not an array")?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or("crate is not a string")
        })
        .collect::<Result<Vec<_>, _>>()?;
    let mut findings = Vec::new();
    for f in get("findings")?
        .as_arr()
        .ok_or("`findings` is not an array")?
    {
        let fo = f.as_obj().ok_or("finding is not an object")?;
        let field = |k: &str| -> Result<&Json, String> {
            fo.iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("finding missing `{k}`"))
        };
        findings.push(ParsedFinding {
            path: field("path")?
                .as_str()
                .ok_or("`path` is not a string")?
                .to_string(),
            line: field("line")?.as_u64().ok_or("`line` is not a number")? as u32,
            rule: field("rule")?
                .as_str()
                .ok_or("`rule` is not a string")?
                .to_string(),
            message: field("message")?
                .as_str()
                .ok_or("`message` is not a string")?
                .to_string(),
        });
    }
    if count as usize != findings.len() {
        return Err(format!(
            "count {} does not match findings length {}",
            count,
            findings.len()
        ));
    }
    Ok(ParsedReport {
        schema,
        findings,
        count,
        files_scanned,
        callgraph_edges,
        crates,
    })
}

/// Minimal JSON value for the report subset.
enum Json {
    Num(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
    fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    b: &'a [u8],
    i: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.i < self.b.len() && self.b[self.i] == c {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", c as char, self.i))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.b.get(self.i).copied()
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(c) if c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.i
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            out.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(self.value()?);
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.i)),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i].is_ascii_digit() {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&c) = self.b.get(self.i) else {
                return Err("unterminated string".to_string());
            };
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&e) = self.b.get(self.i) else {
                        return Err("unterminated escape".to_string());
                    };
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            self.i += 4;
                            out.push(char::from_u32(hex).ok_or("bad \\u codepoint")?);
                        }
                        _ => return Err(format!("bad escape `\\{}`", e as char)),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the full scalar.
                    let s = &self.b[self.i - 1..];
                    let ch_len = utf8_len(c);
                    let chunk = std::str::from_utf8(&s[..ch_len.min(s.len())])
                        .map_err(|_| "bad UTF-8 in string")?;
                    out.push_str(chunk);
                    self.i += ch_len - 1;
                }
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// JSON-escapes and quotes a string.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Extracts `name = "..."` from a manifest's `[package]` table.
fn package_name(manifest: &str) -> Option<String> {
    for line in manifest.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                let rest = rest.trim();
                if rest.len() >= 2 && rest.starts_with('"') {
                    return rest[1..].split('"').next().map(str::to_string);
                }
            }
        }
        if line.starts_with('[') && line != "[package]" && !line.is_empty() {
            // Left the [package] table without seeing a name.
            if line.starts_with("[dependencies") || line.starts_with("[lints") {
                break;
            }
        }
    }
    None
}

fn walk_rs(dir: &Path, out: &mut BTreeSet<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let p = entry?.path();
        if p.is_dir() {
            walk_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.insert(p);
        }
    }
    Ok(())
}

fn rel_to(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_name_parses() {
        let m = "[package]\nname = \"drs-sim\"\nversion.workspace = true\n";
        assert_eq!(package_name(m).as_deref(), Some("drs-sim"));
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn report_json_round_trips() {
        let report = Report {
            findings: vec![
                Finding {
                    path: "crates/sim/src/lib.rs".to_string(),
                    line: 42,
                    rule: RuleId::HashIter,
                    message: "iteration over `HashMap` state: `m.iter()`".to_string(),
                },
                Finding {
                    path: "crates/server/src/node.rs".to_string(),
                    line: 7,
                    rule: RuleId::ClockTaint,
                    message: "quoted \"taint\" and a\nnewline".to_string(),
                },
            ],
            suppressed: Vec::new(),
            files_scanned: 99,
            crates: vec!["drs-sim".to_string(), "drs-server".to_string()],
            callgraph_edges: 1234,
        };
        let json = report_json(&report);
        let parsed = parse_report_json(&json).expect("round-trip parse");
        assert_eq!(parsed.schema, 2);
        assert_eq!(parsed.count, 2);
        assert_eq!(parsed.files_scanned, 99);
        assert_eq!(parsed.callgraph_edges, 1234);
        assert_eq!(parsed.crates, ["drs-sim", "drs-server"]);
        assert_eq!(parsed.findings.len(), 2);
        assert_eq!(parsed.findings[0].path, "crates/sim/src/lib.rs");
        assert_eq!(parsed.findings[0].line, 42);
        assert_eq!(parsed.findings[0].rule, "hash-iter");
        assert_eq!(
            parsed.findings[1].message,
            "quoted \"taint\" and a\nnewline"
        );
    }

    #[test]
    fn stale_allow_flags_dead_directives() {
        let src = "fn f() {\n    let x = 1; // lint:allow(hash-iter)\n    x;\n}\n";
        let crates = [CrateSources {
            name: "drs-sim".to_string(),
            files: vec![FileInfo::parse("crates/sim/src/lib.rs", src)],
            lib_rs: None,
            manifest: ("crates/sim/Cargo.toml".to_string(), String::new()),
        }];
        // No suppressed findings: the directive is dead.
        let stale = check_stale_allows(&crates, &[]);
        assert_eq!(stale.len(), 1, "{stale:?}");
        assert_eq!(stale[0].rule, RuleId::StaleAllow);
        assert_eq!(stale[0].line, 2);
        assert!(stale[0].message.contains("hash-iter"));
        // A suppressed finding on a covered line keeps it live.
        let live = check_stale_allows(
            &crates,
            &[Finding {
                path: "crates/sim/src/lib.rs".to_string(),
                line: 3,
                rule: RuleId::HashIter,
                message: String::new(),
            }],
        );
        assert!(live.is_empty(), "{live:?}");
    }
}
