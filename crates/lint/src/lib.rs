//! `drs-lint` — a workspace invariant checker.
//!
//! The reproduction's headline results rest on contracts the compiler
//! cannot see: byte-identical virtual-time replays, bit-exact
//! real-vs-virtual cross-validation, and the documented `ServingStack`
//! panic contract. This crate turns those prose contracts into a
//! machine-checked pass:
//!
//! | rule | invariant |
//! |------|-----------|
//! | R1 `hash-iter` | no iteration over `HashMap`/`HashSet` state in determinism-critical crates |
//! | R2 `wall-clock` | `Instant::now`/`SystemTime` only on the real path |
//! | R3 `panic-contract` | every public `serve*`/`run*` entry point reaches `assert_nonempty_*` |
//! | R4 `telemetry-guard` | every `sink.record(..)` site is guarded by `S::ENABLED` |
//! | R5 `float-reduce` | no `f64` reduction over a hash-ordered iterator |
//! | R6 `metrics-guard` | every pulse-recording call is guarded by `M::ENABLED` |
//! | R7 `clock-taint` | no wall-clock-derived value reaches a report field or event booking |
//! | R8 `entropy-taint` | all randomness comes from the seeded RNGs |
//! | R9 `float-order-taint` | no hash-/join-ordered `f64` accumulation reaches a report |
//! | `docs-parity` | every library crate warns on missing docs and opts into workspace lints |
//!
//! R1–R6 are syntactic, per-file passes ([`rules`]). R7–R9 are
//! *interprocedural*: the [`taint`] engine runs a workspace-wide
//! fixpoint over per-function def-use chains, so a timestamp taken in
//! one crate and laundered through two helper calls still trips the
//! gate at the report field it finally lands in. The [`callgraph`]
//! module gives the same treatment to R3 and is exportable via
//! `drs-lint --callgraph` (DOT, or JSON with `--json`).
//!
//! Any finding can be silenced at a specific line with a
//! `// lint:allow(<rule>)` comment (covering that line and the next),
//! which doubles as an in-source audit trail of every exemption. The
//! trail is kept honest by a meta-rule: `stale-allow` reports any
//! directive that no longer suppresses a finding, so exemptions are
//! garbage-collected the moment the code they excused disappears.
//!
//! The analyzer is dependency-free by design — the build environment
//! has no registry access, so the tokenizer ([`lexer`]) and the
//! structural pass ([`parse`]) are hand-rolled and unit-tested on
//! fixture files under `fixtures/`.

#![warn(missing_docs)]

pub mod callgraph;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod symbols;
pub mod taint;
pub mod workspace;
