//! `drs-lint` — a workspace invariant checker.
//!
//! The reproduction's headline results rest on contracts the compiler
//! cannot see: byte-identical virtual-time replays, bit-exact
//! real-vs-virtual cross-validation, and the documented `ServingStack`
//! panic contract. This crate turns those prose contracts into a
//! machine-checked pass:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `hash-iter` | no iteration over `HashMap`/`HashSet` state in determinism-critical crates |
//! | `wall-clock` | `Instant::now`/`SystemTime` only on the real path |
//! | `panic-contract` | every public `serve*`/`run*` entry point reaches `assert_nonempty_*` |
//! | `telemetry-guard` | every `sink.record(..)` site is guarded by `S::ENABLED` |
//! | `float-reduce` | no `f64` reduction over a hash-ordered iterator |
//! | `docs-parity` | every library crate warns on missing docs and opts into workspace lints |
//!
//! Any finding can be silenced at a specific line with a
//! `// lint:allow(<rule>)` comment (covering that line and the next),
//! which doubles as an in-source audit trail of every exemption.
//!
//! The analyzer is dependency-free by design — the build environment
//! has no registry access, so the tokenizer ([`lexer`]) and the
//! structural pass ([`parse`]) are hand-rolled and unit-tested on
//! fixture files under `fixtures/`.

#![warn(missing_docs)]

pub mod lexer;
pub mod parse;
pub mod rules;
pub mod workspace;
