//! A hand-rolled Rust tokenizer, just deep enough for linting.
//!
//! The lexer's one job is to make the rule passes immune to the
//! classic grep failure modes: matches inside string literals, inside
//! comments, or spliced across lines. It understands line/block
//! comments (returned out-of-band, because the `lint:allow` escape
//! hatch lives there), all string shapes (plain, raw with `#` fences,
//! byte), char literals vs. lifetimes, numbers with separators and
//! suffixes, and identifiers. Punctuation is emitted one character at
//! a time — multi-character operators like `::` are matched as token
//! *sequences* by the rule passes, which keeps the lexer trivially
//! correct.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `HashMap`, `queries`, ...).
    Ident,
    /// A single punctuation character (`{`, `:`, `.`, ...).
    Punct,
    /// A string, char, or numeric literal (content is opaque to rules).
    Literal,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
}

/// One lexed token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Token {
    /// The token's kind.
    pub kind: TokenKind,
    /// The token's text (for [`TokenKind::Punct`], one character).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Token {
    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// A comment, kept out-of-band from the token stream (the allowlist
/// mechanism parses these).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (differs for block comments).
    pub end_line: u32,
    /// The comment text, delimiters included.
    pub text: String,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens, in source order.
    pub tokens: Vec<Token>,
    /// Comments, in source order.
    pub comments: Vec<Comment>,
}

/// Tokenizes `src`. Never fails: unterminated literals are consumed to
/// end-of-file, and unrecognized bytes are skipped — a lint must keep
/// going on code the compiler would reject anyway.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if b.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    line,
                    end_line: line,
                    text: b[start..i].iter().collect(),
                });
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                let (start, start_line) = (i, line);
                let mut depth = 0usize;
                while i < b.len() {
                    if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if b[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    line: start_line,
                    end_line: line,
                    text: b[start..i.min(b.len())].iter().collect(),
                });
            }
            '"' => {
                let start_line = line;
                i = consume_string(&b, i, &mut line);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: String::from("\"...\""),
                    line: start_line,
                });
            }
            'r' | 'b' if raw_string_fence(&b, i).is_some() => {
                let start_line = line;
                i = consume_raw_string(&b, i, &mut line);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: String::from("r\"...\""),
                    line: start_line,
                });
            }
            'b' if b.get(i + 1) == Some(&'"') => {
                let start_line = line;
                i = consume_string(&b, i + 1, &mut line);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: String::from("b\"...\""),
                    line: start_line,
                });
            }
            '\'' => {
                // Lifetime (`'a`, `'static`) vs. char literal (`'a'`,
                // `'\n'`): an identifier after the quote with no
                // closing quote right behind it is a lifetime.
                let is_lifetime = b.get(i + 1).is_some_and(|c| c.is_alphabetic() || *c == '_') && {
                    let mut j = i + 1;
                    while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                        j += 1;
                    }
                    b.get(j) != Some(&'\'')
                };
                if is_lifetime {
                    let start = i;
                    i += 1;
                    while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: b[start..i].iter().collect(),
                        line,
                    });
                } else {
                    // Char literal: consume to the closing quote,
                    // honoring escapes.
                    i += 1;
                    while i < b.len() {
                        match b[i] {
                            '\\' => i += 2,
                            '\'' => {
                                i += 1;
                                break;
                            }
                            '\n' => {
                                line += 1;
                                i += 1;
                            }
                            _ => i += 1,
                        }
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: String::from("'.'"),
                        line,
                    });
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: b[start..i].iter().collect(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                // Digits, separators, hex/suffix letters; a `.` only
                // if followed by a digit (so `0..n` and `1.max()` keep
                // their punctuation).
                while i < b.len() {
                    let d = b[i];
                    let in_number = d.is_alphanumeric()
                        || d == '_'
                        || (d == '.' && b.get(i + 1).is_some_and(|n| n.is_ascii_digit()));
                    if !in_number {
                        break;
                    }
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: b[start..i].iter().collect(),
                    line,
                });
            }
            _ => {
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Consumes a plain string starting at the opening quote index;
/// returns the index just past the closing quote.
fn consume_string(b: &[char], open: usize, line: &mut u32) -> usize {
    let mut i = open + 1;
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// If position `i` starts a raw string (`r"`, `r#"`, `br#"`, ...),
/// returns the number of `#` fence characters.
fn raw_string_fence(b: &[char], i: usize) -> Option<usize> {
    let mut j = i;
    if b.get(j) == Some(&'b') {
        j += 1;
    }
    if b.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while b.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (b.get(j) == Some(&'"')).then_some(hashes)
}

/// Consumes a raw string starting at `i` (at the `r`/`b`); returns the
/// index just past the closing fence.
fn consume_raw_string(b: &[char], i: usize, line: &mut u32) -> usize {
    let hashes = raw_string_fence(b, i).expect("checked by caller");
    let mut j = i;
    while b.get(j) != Some(&'"') {
        j += 1;
    }
    j += 1;
    while j < b.len() {
        if b[j] == '\n' {
            *line += 1;
        }
        if b[j] == '"' && (1..=hashes).all(|k| b.get(j + k) == Some(&'#')) {
            return j + 1 + hashes;
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let l = lex("fn main() { let x: u32 = 1; }");
        let texts: Vec<&str> = l.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            ["fn", "main", "(", ")", "{", "let", "x", ":", "u32", "=", "1", ";", "}"]
        );
    }

    #[test]
    fn comments_are_out_of_band() {
        let l = lex("let a = 1; // trailing HashMap\n/* block\nHashSet */ let b = 2;");
        assert!(idents("let a = 1; // trailing HashMap").contains(&"a".to_string()));
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 1);
        assert!(l.comments[0].text.contains("HashMap"));
        assert_eq!(l.comments[1].line, 2);
        assert_eq!(l.comments[1].end_line, 3);
        // No HashMap/HashSet token leaked into the code stream.
        assert!(!l.tokens.iter().any(|t| t.text.contains("Hash")));
    }

    #[test]
    fn strings_hide_their_contents() {
        for src in [
            r#"let s = "Instant::now() HashMap";"#,
            r##"let s = r#"SystemTime "quoted" HashSet"#;"##,
            r#"let s = b"HashMap";"#,
        ] {
            let l = lex(src);
            assert!(
                !l.tokens
                    .iter()
                    .any(|t| t.text.contains("Hash") || t.text.contains("Instant")),
                "literal contents leaked for {src:?}"
            );
        }
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["'a", "'a"]);
        let chars = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal && t.text == "'.'")
            .count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let l = lex("for i in 0..10 { let x = 1.max(2); let y = 1.5e3; let z = 0x9E_37u64; }");
        let texts: Vec<&str> = l.tokens.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"max"), "1.max parsed as method call");
        assert!(texts.contains(&"1.5e3"));
        assert!(texts.contains(&"0x9E_37u64"));
        let dots = texts.iter().filter(|t| **t == ".").count();
        assert_eq!(dots, 3, "two range dots + one method dot: {texts:?}");
    }

    #[test]
    fn line_numbers_track_every_shape() {
        let src = "let a = 1;\nlet s = \"multi\nline\";\nlet b = 2;\n";
        let l = lex(src);
        let b = l.tokens.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 4);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ let x = 1;");
        assert!(l.tokens.iter().any(|t| t.is_ident("x")));
        assert_eq!(l.comments.len(), 1);
    }
}
