//! A lightweight structural pass over the token stream.
//!
//! Sitting between the lexer and the rules, this module recovers just
//! enough shape for the invariants to be checkable without a real
//! parser: the brace-block tree (so a rule can walk *enclosing*
//! scopes), function items with visibility / parameter / body spans
//! (the panic-contract pass needs a call graph), the set of
//! identifiers declared with a `HashMap`/`HashSet` type (the
//! determinism passes track iteration over those names), and the
//! `// lint:allow(rule)` escape hatches parsed out of comments.

use crate::lexer::{lex, Comment, Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};

/// A `{ ... }` block, by token index.
#[derive(Debug, Clone, Copy)]
pub struct Block {
    /// Token index of the opening brace.
    pub open: usize,
    /// Token index of the matching closing brace (or the last token if
    /// unbalanced).
    pub close: usize,
    /// Enclosing block, if any.
    pub parent: Option<usize>,
}

/// One `fn` item recovered from the stream.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// True for bare `pub` (restricted `pub(crate)`/`pub(super)` does
    /// not count — those are not workspace entry points).
    pub is_pub: bool,
    /// Token range `(open_paren, close_paren)` of the parameter list.
    pub params: (usize, usize),
    /// Block id of the body, if the item has one (trait method
    /// declarations do not).
    pub body: Option<usize>,
}

/// One `// lint:allow(rule, ...)` comment, kept whole (not just the
/// per-line projection in [`FileInfo::allows`]) so the stale-allow
/// audit can ask "does *this directive* still suppress anything?".
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (multi-line block comments).
    pub end_line: u32,
    /// Rule names listed inside the parentheses.
    pub rules: Vec<String>,
}

impl AllowDirective {
    /// The source lines this directive suppresses findings on: its own
    /// line (trailing-comment style) and the line after its end
    /// (comment-above style).
    pub fn covered_lines(&self) -> [u32; 2] {
        [self.line, self.end_line + 1]
    }
}

/// Everything the rule passes need to know about one source file.
#[derive(Debug)]
pub struct FileInfo {
    /// Path used in findings (repo-relative when scanned by the
    /// workspace driver).
    pub path: String,
    /// The code tokens.
    pub tokens: Vec<Token>,
    /// The brace-block tree.
    pub blocks: Vec<Block>,
    /// Innermost enclosing block per token (`None` = file top level).
    pub token_block: Vec<Option<usize>>,
    /// Function items, in source order.
    pub fns: Vec<FnItem>,
    /// Identifiers declared (anywhere in the file) with a type or
    /// initializer naming `HashMap`/`HashSet`. Name-based and
    /// file-wide on purpose: a lint would rather over-approximate and
    /// be silenced by `lint:allow` than miss a rebinding.
    pub hash_idents: BTreeSet<String>,
    /// `line -> rules` allowed on that line by `// lint:allow(...)`
    /// comments (a directive covers its own line and the next).
    pub allows: BTreeMap<u32, BTreeSet<String>>,
    /// The allow comments themselves, in source order, for the
    /// stale-allow audit.
    pub allow_directives: Vec<AllowDirective>,
}

impl FileInfo {
    /// Lexes and structures one source file.
    pub fn parse(path: &str, src: &str) -> Self {
        let lexed = lex(src);
        let (blocks, token_block) = build_blocks(&lexed.tokens);
        let fns = collect_fns(&lexed.tokens, &blocks);
        let hash_idents = collect_hash_idents(&lexed.tokens);
        let allow_directives = collect_allow_directives(&lexed.comments);
        let allows = allows_by_line(&allow_directives);
        FileInfo {
            path: path.to_string(),
            tokens: lexed.tokens,
            blocks,
            token_block,
            fns,
            hash_idents,
            allows,
            allow_directives,
        }
    }

    /// True if `rule` is allowed on `line` by an escape-hatch comment.
    pub fn is_allowed(&self, line: u32, rule: &str) -> bool {
        self.allows.get(&line).is_some_and(|r| r.contains(rule))
    }

    /// Walks enclosing blocks from the one containing token `idx`
    /// outward (innermost first).
    pub fn enclosing_blocks(&self, idx: usize) -> impl Iterator<Item = &Block> {
        let mut cur = self.token_block.get(idx).copied().flatten();
        std::iter::from_fn(move || {
            let b = cur?;
            cur = self.blocks[b].parent;
            Some(&self.blocks[b])
        })
    }
}

/// Builds the brace-block tree and the per-token innermost-block map.
fn build_blocks(tokens: &[Token]) -> (Vec<Block>, Vec<Option<usize>>) {
    let mut blocks: Vec<Block> = Vec::new();
    let mut token_block: Vec<Option<usize>> = Vec::with_capacity(tokens.len());
    let mut stack: Vec<usize> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.is_punct('{') {
            let id = blocks.len();
            blocks.push(Block {
                open: i,
                close: tokens.len().saturating_sub(1),
                parent: stack.last().copied(),
            });
            token_block.push(stack.last().copied());
            stack.push(id);
            continue;
        }
        if t.is_punct('}') {
            if let Some(id) = stack.pop() {
                blocks[id].close = i;
            }
        }
        token_block.push(stack.last().copied());
    }
    (blocks, token_block)
}

/// Identifiers that may legally precede `fn` in an item signature.
const FN_QUALIFIERS: &[&str] = &["const", "async", "unsafe", "extern", "default"];

fn collect_fns(tokens: &[Token], blocks: &[Block]) -> Vec<FnItem> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("fn") {
            continue;
        }
        // `fn` in function-pointer types (`fn(u32) -> u32`) has no
        // name identifier after it.
        let Some(name_tok) = tokens.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokenKind::Ident {
            continue;
        }
        let is_pub = detect_pub(tokens, i);
        // Skip optional generics to the parameter list.
        let mut j = i + 2;
        if tokens.get(j).is_some_and(|t| t.is_punct('<')) {
            let mut depth = 0i32;
            while j < tokens.len() {
                if tokens[j].is_punct('<') {
                    depth += 1;
                } else if tokens[j].is_punct('>') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        if !tokens.get(j).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let open_paren = j;
        let mut depth = 0i32;
        while j < tokens.len() {
            if tokens[j].is_punct('(') {
                depth += 1;
            } else if tokens[j].is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        let close_paren = j.min(tokens.len().saturating_sub(1));
        // Body: the first `{` before a `;` ends the signature (return
        // types and where clauses never contain braces).
        let mut body = None;
        let mut k = close_paren + 1;
        while k < tokens.len() {
            if tokens[k].is_punct(';') {
                break;
            }
            if tokens[k].is_punct('{') {
                body = blocks.iter().position(|b| b.open == k);
                break;
            }
            k += 1;
        }
        out.push(FnItem {
            name: name_tok.text.clone(),
            line: tokens[i].line,
            is_pub,
            params: (open_paren, close_paren),
            body,
        });
    }
    out
}

/// Is the `fn` at token index `fn_idx` declared bare-`pub`?
fn detect_pub(tokens: &[Token], fn_idx: usize) -> bool {
    let mut k = fn_idx;
    while k > 0 {
        k -= 1;
        let t = &tokens[k];
        if t.kind == TokenKind::Ident && FN_QUALIFIERS.contains(&t.text.as_str()) {
            continue;
        }
        if t.kind == TokenKind::Literal {
            continue; // the ABI string of `extern "C"`
        }
        if t.is_punct(')') {
            // Restricted visibility `pub(crate)` / `pub(in path)`:
            // not a workspace entry point.
            return false;
        }
        return t.is_ident("pub");
    }
    false
}

/// Type/initializer scan horizon for declaration detection.
const DECL_SCAN_TOKENS: usize = 64;

fn collect_hash_idents(tokens: &[Token]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for i in 0..tokens.len() {
        // Pattern A — `name : ... HashMap/HashSet ...` up to the end
        // of the type (covers `let` annotations, struct fields, and
        // function parameters).
        if tokens[i].kind == TokenKind::Ident
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && !tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && !tokens
                .get(i.wrapping_sub(1))
                .is_some_and(|t| t.is_punct(':'))
            && region_names_hash_type(tokens, i + 2)
        {
            out.insert(tokens[i].text.clone());
        }
        // Pattern B — `let [mut] name = ... HashMap/HashSet ...;`
        // (un-annotated bindings initialized from a constructor or a
        // collected map).
        if tokens[i].is_ident("let") {
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if tokens.get(j).is_some_and(|t| t.kind == TokenKind::Ident)
                && tokens.get(j + 1).is_some_and(|t| t.is_punct('='))
                && region_names_hash_type(tokens, j + 2)
            {
                out.insert(tokens[j].text.clone());
            }
        }
    }
    out
}

/// Scans forward from `start` to the end of a type/initializer region
/// (a top-level `,`, `;`, `=`, `{`, `)`, or `|`), looking for a
/// `HashMap`/`HashSet` identifier.
fn region_names_hash_type(tokens: &[Token], start: usize) -> bool {
    let mut angle = 0i32;
    let mut paren = 0i32;
    let mut bracket = 0i32;
    for t in tokens.iter().skip(start).take(DECL_SCAN_TOKENS) {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "(" => paren += 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                ")" => {
                    if paren == 0 {
                        return false;
                    }
                    paren -= 1;
                }
                "," | ";" | "=" | "{" | "|" if angle <= 0 && paren == 0 && bracket == 0 => {
                    return false;
                }
                _ => {}
            }
        }
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            return true;
        }
    }
    false
}

fn collect_allow_directives(comments: &[Comment]) -> Vec<AllowDirective> {
    let mut out = Vec::new();
    for c in comments {
        // Doc comments only talk *about* the allow mechanism; plain
        // comments are the directives.
        if c.text.starts_with("///")
            || c.text.starts_with("//!")
            || c.text.starts_with("/**")
            || c.text.starts_with("/*!")
        {
            continue;
        }
        let Some(pos) = c.text.find("lint:allow(") else {
            continue;
        };
        let rest = &c.text[pos + "lint:allow(".len()..];
        let Some(end) = rest.find(')') else {
            continue;
        };
        let rules: Vec<String> = rest[..end]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| {
                !r.is_empty()
                    && r.chars()
                        .all(|ch| ch.is_ascii_lowercase() || ch.is_ascii_digit() || ch == '-')
            })
            .collect();
        if !rules.is_empty() {
            out.push(AllowDirective {
                line: c.line,
                end_line: c.end_line,
                rules,
            });
        }
    }
    out
}

/// Projects directives onto the per-line map the rule passes consult.
/// A directive covers its own line (trailing comment) and the line
/// after its end (comment-above style).
fn allows_by_line(directives: &[AllowDirective]) -> BTreeMap<u32, BTreeSet<String>> {
    let mut out: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
    for d in directives {
        for line in d.covered_lines() {
            for rule in &d.rules {
                out.entry(line).or_default().insert(rule.clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_tree_nests() {
        let f = FileInfo::parse("t.rs", "fn a() { if x { y(); } } fn b() {}");
        assert_eq!(f.blocks.len(), 3);
        assert_eq!(f.blocks[1].parent, Some(0));
        assert_eq!(f.blocks[2].parent, None);
        // `y` is enclosed by the `if` block then the fn body.
        let y = f.tokens.iter().position(|t| t.is_ident("y")).unwrap();
        assert_eq!(f.enclosing_blocks(y).count(), 2);
    }

    #[test]
    fn fn_items_with_visibility() {
        let src = "pub fn serve_all(q: &[Query]) {} \
                   pub(crate) fn helper() {} \
                   fn private() {} \
                   pub async fn run_async(trace: &Trace) {}";
        let f = FileInfo::parse("t.rs", src);
        let names: Vec<(&str, bool)> = f.fns.iter().map(|x| (x.name.as_str(), x.is_pub)).collect();
        assert_eq!(
            names,
            [
                ("serve_all", true),
                ("helper", false),
                ("private", false),
                ("run_async", true)
            ]
        );
    }

    #[test]
    fn generic_fn_finds_its_params_and_body() {
        let src = "pub fn serve<S: TraceSink, const N: usize>(q: &[Query], sink: &mut S) -> Out \
                   where S: Sized { body(); }";
        let f = FileInfo::parse("t.rs", src);
        assert_eq!(f.fns.len(), 1);
        let item = &f.fns[0];
        let params: Vec<&str> = f.tokens[item.params.0..=item.params.1]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert!(params.contains(&"Query"));
        assert!(!params.contains(&"TraceSink"), "generics excluded");
        assert!(item.body.is_some());
    }

    #[test]
    fn trait_method_declaration_has_no_body() {
        let f = FileInfo::parse(
            "t.rs",
            "trait T { fn serve_queries(&self, q: &[Query]) -> R; }",
        );
        assert_eq!(f.fns.len(), 1);
        assert!(f.fns[0].body.is_none());
    }

    #[test]
    fn hash_idents_from_annotations_fields_and_inits() {
        let src = "struct S { inflight: HashMap<u64, B>, ok: Vec<u64> } \
                   fn f() { let mut queries: HashMap<u64, Q> = HashMap::new(); \
                   let tags = HashSet::new(); let plain = Vec::new(); }";
        let f = FileInfo::parse("t.rs", src);
        assert!(f.hash_idents.contains("inflight"));
        assert!(f.hash_idents.contains("queries"));
        assert!(f.hash_idents.contains("tags"));
        assert!(!f.hash_idents.contains("ok"));
        assert!(!f.hash_idents.contains("plain"));
    }

    #[test]
    fn fn_params_do_not_leak_into_hash_idents_unless_typed_so() {
        let f = FileInfo::parse(
            "t.rs",
            "fn f(a: &[Query], b: &mut HashMap<u64, u32>) { let c: u32 = 0; }",
        );
        assert!(f.hash_idents.contains("b"));
        assert!(!f.hash_idents.contains("a"));
        assert!(!f.hash_idents.contains("c"));
    }

    #[test]
    fn allow_directives_cover_their_line_and_the_next() {
        let src = "// lint:allow(wall-clock)\nlet t = now();\nlet u = now(); // lint:allow(hash-iter, wall-clock)\n";
        let f = FileInfo::parse("t.rs", src);
        assert!(f.is_allowed(2, "wall-clock"));
        assert!(!f.is_allowed(2, "hash-iter"));
        assert!(f.is_allowed(3, "wall-clock"));
        assert!(f.is_allowed(3, "hash-iter"));
        assert!(
            f.is_allowed(4, "hash-iter"),
            "trailing comment covers the next line too"
        );
        assert!(!f.is_allowed(5, "hash-iter"));
    }

    #[test]
    fn doc_comments_and_placeholders_are_not_directives() {
        let src = "//! silence with `lint:allow(wall-clock)` comments\n\
                   /// e.g. lint:allow(hash-iter)\n\
                   fn f() {} // lint:allow(wall-clock)\n\
                   fn g() {} // lint:allow(<rule>, ...)\n";
        let f = FileInfo::parse("t.rs", src);
        assert_eq!(f.allow_directives.len(), 1, "{:?}", f.allow_directives);
        assert_eq!(f.allow_directives[0].line, 3);
        assert!(!f.is_allowed(1, "wall-clock"));
        assert!(!f.is_allowed(2, "hash-iter"));
    }

    #[test]
    fn allow_directives_are_kept_whole() {
        let src = "// lint:allow(wall-clock)\nlet t = now();\nlet u = now(); // lint:allow(hash-iter, wall-clock)\n";
        let f = FileInfo::parse("t.rs", src);
        assert_eq!(f.allow_directives.len(), 2);
        assert_eq!(f.allow_directives[0].covered_lines(), [1, 2]);
        assert_eq!(f.allow_directives[1].rules, ["hash-iter", "wall-clock"]);
    }
}
