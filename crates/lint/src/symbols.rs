//! Per-file symbol tables over the token stream.
//!
//! The semantic passes (call graph, taint engine) need a little more
//! shape than [`crate::parse::FileInfo`] recovers: which structs a
//! file declares (and their field names), which workspace crates its
//! `use` items import names from, the names of each function's
//! parameters, and a best-effort `binding -> type head` map for
//! receiver classification. All of it is name-based and intentionally
//! over-approximate — the consumers are lint rules, not a compiler.

use crate::lexer::TokenKind;
use crate::parse::FileInfo;
use std::collections::BTreeMap;

/// One `struct` item declared in a file.
#[derive(Debug, Clone)]
pub struct StructDef {
    /// The struct's name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// Named fields, in declaration order (empty for tuple/unit
    /// structs).
    pub fields: Vec<String>,
}

/// Symbol information for one source file.
#[derive(Debug, Default)]
pub struct FileSymbols {
    /// Structs declared in the file.
    pub structs: Vec<StructDef>,
    /// `use`-imported names that resolve to a workspace crate:
    /// local name -> package name (e.g. `EventQueue` -> `drs-core`).
    pub imports: BTreeMap<String, String>,
    /// Parameter names per function, parallel to `FileInfo::fns`
    /// (`self` receivers are recorded as `"self"`).
    pub fn_params: Vec<Vec<String>>,
    /// The `impl` target type each function is defined on, parallel to
    /// `FileInfo::fns` (`None` for free functions and trait items).
    pub fn_owner: Vec<Option<String>>,
    /// Best-effort `binding name -> type head` from `let` annotations,
    /// `Type::constructor` initializers, and typed fn parameters.
    /// File-wide and last-wins; good enough for receiver heuristics.
    pub binding_types: BTreeMap<String, String>,
}

/// A crate's name plus its parsed files — the unit the workspace-wide
/// passes (call graph, taint) operate on.
pub struct CrateView<'a> {
    /// Package name from the crate's manifest.
    pub name: String,
    /// Parsed sources, in path order.
    pub files: &'a [FileInfo],
}

/// Maps a path segment like `drs_core` or `crate` to the workspace
/// package it names, if any.
pub fn crate_of_segment(seg: &str) -> Option<String> {
    if seg.starts_with("drs_") || seg == "deeprecsys" {
        Some(seg.replace('_', "-"))
    } else {
        None
    }
}

/// Keywords that can never be a callee or a binding name.
pub const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "in", "match", "return", "loop", "fn", "as", "let", "move",
    "ref", "mut", "use", "pub", "crate", "super", "self", "Self", "where", "impl", "dyn", "box",
    "await", "async", "const", "static", "enum", "struct", "trait", "type", "union", "unsafe",
    "extern", "mod", "break", "continue", "true", "false",
];

impl FileSymbols {
    /// Builds the symbol table for one parsed file.
    pub fn analyze(f: &FileInfo) -> FileSymbols {
        let mut out = FileSymbols {
            structs: collect_structs(f),
            imports: collect_imports(f),
            fn_params: Vec::with_capacity(f.fns.len()),
            fn_owner: Vec::with_capacity(f.fns.len()),
            binding_types: BTreeMap::new(),
        };
        let impl_owners = collect_impl_owners(f);
        for item in &f.fns {
            out.fn_params
                .push(collect_params(f, item.params, &mut out.binding_types));
            out.fn_owner.push(owner_of(f, item.params.0, &impl_owners));
        }
        collect_let_types(f, &mut out.binding_types);
        out
    }
}

/// Maps each `impl` block's opening-brace token index to the target
/// type name (`impl Foo { .. }` and `impl Trait for Foo { .. }` both
/// map to `Foo`).
fn collect_impl_owners(f: &FileInfo) -> BTreeMap<usize, String> {
    let toks = &f.tokens;
    let mut out = BTreeMap::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("impl") {
            continue;
        }
        // Header runs to the first `{` at angle-depth 0.
        let mut angle = 0i32;
        let mut open = None;
        let mut target: Option<String> = None;
        #[allow(clippy::needless_range_loop)] // indexed token scan
        for k in i + 1..toks.len().min(i + 64) {
            let t = &toks[k];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "{" if angle <= 0 => {
                        open = Some(k);
                        break;
                    }
                    ";" => break,
                    _ => {}
                }
                continue;
            }
            if t.is_ident("for") && angle <= 0 {
                // Trait impl: the target is the type after `for`.
                target = None;
                continue;
            }
            if t.kind == TokenKind::Ident
                && angle <= 0
                && target.is_none()
                && t.text.chars().next().is_some_and(char::is_uppercase)
            {
                target = Some(t.text.clone());
            }
        }
        if let (Some(open), Some(target)) = (open, target) {
            out.insert(open, target);
        }
    }
    out
}

/// Finds the impl target enclosing the token at `idx`, if any.
fn owner_of(f: &FileInfo, idx: usize, impl_owners: &BTreeMap<usize, String>) -> Option<String> {
    let mut cur = f.token_block.get(idx).copied().flatten();
    while let Some(b) = cur {
        if let Some(owner) = impl_owners.get(&f.blocks[b].open) {
            return Some(owner.clone());
        }
        cur = f.blocks[b].parent;
    }
    None
}

fn collect_structs(f: &FileInfo) -> Vec<StructDef> {
    let toks = &f.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("struct") {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokenKind::Ident {
            continue;
        }
        // Skip optional generics to the body.
        let mut j = i + 2;
        if toks.get(j).is_some_and(|t| t.is_punct('<')) {
            let mut depth = 0i32;
            while j < toks.len() {
                if toks[j].is_punct('<') {
                    depth += 1;
                } else if toks[j].is_punct('>') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        let mut fields = Vec::new();
        if toks.get(j).is_some_and(|t| t.is_punct('{')) {
            if let Some(b) = f.blocks.iter().find(|b| b.open == j) {
                // Field names: `ident :` at body depth 0 where the
                // previous code token is `{`, `,`, or the `pub` group.
                let mut depth = 0i32;
                for k in b.open + 1..b.close {
                    let t = &toks[k];
                    if t.kind == TokenKind::Punct {
                        match t.text.as_str() {
                            "{" | "(" | "[" | "<" => depth += 1,
                            "}" | ")" | "]" | ">" => depth -= 1,
                            _ => {}
                        }
                        continue;
                    }
                    if depth == 0
                        && t.kind == TokenKind::Ident
                        && toks.get(k + 1).is_some_and(|n| n.is_punct(':'))
                        && !toks.get(k + 2).is_some_and(|n| n.is_punct(':'))
                        && !KEYWORDS.contains(&t.text.as_str())
                    {
                        fields.push(t.text.clone());
                    }
                }
            }
        }
        out.push(StructDef {
            name: name_tok.text.clone(),
            line: toks[i].line,
            fields,
        });
    }
    out
}

/// Collects `use` leaves that import from a workspace crate. Handles
/// nested groups (`use drs_core::{report::SimReport, EventQueue};`)
/// and renames (`as`); globs are ignored.
fn collect_imports(f: &FileInfo) -> BTreeMap<String, String> {
    let toks = &f.tokens;
    let mut out = BTreeMap::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("use") {
            continue;
        }
        let Some(first) = toks.get(i + 1) else {
            continue;
        };
        let Some(pkg) = crate_of_segment(&first.text) else {
            continue;
        };
        // Walk the use tree to its terminating `;`, recording leaves.
        let mut k = i + 1;
        while k < toks.len() && !toks[k].is_punct(';') {
            let t = &toks[k];
            if t.kind == TokenKind::Ident && !KEYWORDS.contains(&t.text.as_str()) {
                // A leaf ends the path: next code token is `,`, `}`,
                // `;`, or an `as` rename (then the alias is the leaf).
                match toks.get(k + 1) {
                    Some(n) if n.is_punct(',') || n.is_punct('}') || n.is_punct(';') => {
                        out.insert(t.text.clone(), pkg.clone());
                    }
                    Some(n) if n.is_ident("as") => {
                        if let Some(alias) = toks.get(k + 2) {
                            out.insert(alias.text.clone(), pkg.clone());
                        }
                    }
                    _ => {}
                }
            }
            k += 1;
        }
    }
    out
}

/// Collects parameter names from one fn's parameter-list token range,
/// recording parameter types into `binding_types` as a side effect.
fn collect_params(
    f: &FileInfo,
    (open, close): (usize, usize),
    binding_types: &mut BTreeMap<String, String>,
) -> Vec<String> {
    let toks = &f.tokens;
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut k = open;
    while k <= close.min(toks.len().saturating_sub(1)) {
        let t = &toks[k];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" | "<" => depth += 1,
                ")" | "]" | "}" | ">" => depth -= 1,
                _ => {}
            }
            k += 1;
            continue;
        }
        // Depth 1 = directly inside the outer parens.
        if depth == 1 && t.kind == TokenKind::Ident {
            if t.text == "self" {
                if out.is_empty() {
                    out.push("self".to_string());
                }
            } else if toks.get(k + 1).is_some_and(|n| n.is_punct(':'))
                && !toks.get(k + 2).is_some_and(|n| n.is_punct(':'))
                && !KEYWORDS.contains(&t.text.as_str())
            {
                out.push(t.text.clone());
                if let Some(head) = type_head(f, k + 2) {
                    binding_types.insert(t.text.clone(), head);
                }
            }
        }
        k += 1;
    }
    out
}

/// First type-naming identifier at or after `start`, skipping
/// reference/modifier sigils.
fn type_head(f: &FileInfo, start: usize) -> Option<String> {
    for t in f.tokens.iter().skip(start).take(6) {
        if t.kind == TokenKind::Lifetime {
            continue;
        }
        if t.kind == TokenKind::Punct && (t.text == "&" || t.text == "*") {
            continue;
        }
        if t.kind == TokenKind::Ident {
            if matches!(t.text.as_str(), "mut" | "dyn" | "impl" | "const") {
                continue;
            }
            return Some(t.text.clone());
        }
        return None;
    }
    None
}

/// Records `let [mut] name: Type` annotations and `let [mut] name =
/// Type::...` constructor initializers.
fn collect_let_types(f: &FileInfo, binding_types: &mut BTreeMap<String, String>) {
    let toks = &f.tokens;
    for i in 0..toks.len() {
        if !toks[i].is_ident("let") {
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let Some(name) = toks.get(j) else { continue };
        if name.kind != TokenKind::Ident || KEYWORDS.contains(&name.text.as_str()) {
            continue;
        }
        if toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
            && !toks.get(j + 2).is_some_and(|t| t.is_punct(':'))
        {
            if let Some(head) = type_head(f, j + 2) {
                binding_types.insert(name.text.clone(), head);
            }
        } else if toks.get(j + 1).is_some_and(|t| t.is_punct('=')) {
            // `let x = Type::new(..)` — uppercase head then `::`.
            if let Some(head) = toks.get(j + 2) {
                if head.kind == TokenKind::Ident
                    && head.text.chars().next().is_some_and(char::is_uppercase)
                    && toks.get(j + 3).is_some_and(|t| t.is_punct(':'))
                    && toks.get(j + 4).is_some_and(|t| t.is_punct(':'))
                {
                    binding_types.insert(name.text.clone(), head.text.clone());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(src: &str) -> FileInfo {
        FileInfo::parse("t.rs", src)
    }

    #[test]
    fn structs_and_fields_are_collected() {
        let f = info(
            "pub struct ServerReport { pub cpu_utilization: f64, latency: LatencySummary } \
             struct Pair(u32, u32); \
             struct Generic<T: Clone> { inner: Vec<T> }",
        );
        let s = FileSymbols::analyze(&f);
        assert_eq!(s.structs.len(), 3);
        assert_eq!(s.structs[0].name, "ServerReport");
        assert_eq!(s.structs[0].fields, ["cpu_utilization", "latency"]);
        assert!(s.structs[1].fields.is_empty(), "tuple struct");
        assert_eq!(s.structs[2].fields, ["inner"], "generic bound excluded");
    }

    #[test]
    fn use_imports_resolve_workspace_crates() {
        let f = info(
            "use drs_core::{report::SimReport, EventQueue}; \
             use drs_query::Query as Q; \
             use std::collections::BTreeMap; \
             use drs_telemetry::pulse::*;",
        );
        let s = FileSymbols::analyze(&f);
        assert_eq!(
            s.imports.get("SimReport").map(String::as_str),
            Some("drs-core")
        );
        assert_eq!(
            s.imports.get("EventQueue").map(String::as_str),
            Some("drs-core")
        );
        assert_eq!(s.imports.get("Q").map(String::as_str), Some("drs-query"));
        assert!(!s.imports.contains_key("BTreeMap"), "std is not workspace");
        assert!(
            !s.imports.contains_key("pulse"),
            "glob path segments skipped"
        );
    }

    #[test]
    fn fn_params_parallel_fns() {
        let f = info(
            "fn a(queries: &[Query], opts: ServeOptions) {} \
             fn b(&mut self, time: SimTime) {} \
             fn c() {}",
        );
        let s = FileSymbols::analyze(&f);
        assert_eq!(s.fn_params.len(), f.fns.len());
        assert_eq!(s.fn_params[0], ["queries", "opts"]);
        assert_eq!(s.fn_params[1], ["self", "time"]);
        assert!(s.fn_params[2].is_empty());
        assert_eq!(
            s.binding_types.get("opts").map(String::as_str),
            Some("ServeOptions")
        );
    }

    #[test]
    fn fn_owners_track_impl_targets() {
        let f = info(
            "impl EventQueue { pub fn push(&mut self, t: SimTime) {} } \
             impl fmt::Display for Finding { fn fmt(&self) {} } \
             fn free() {}",
        );
        let s = FileSymbols::analyze(&f);
        let owners: Vec<Option<&str>> = s.fn_owner.iter().map(Option::as_deref).collect();
        assert_eq!(owners, [Some("EventQueue"), Some("Finding"), None]);
    }

    #[test]
    fn binding_types_from_lets() {
        let f = info(
            "fn f() { let mut events: EventQueue<Ev> = EventQueue::new(); \
             let rng = StdRng::seed_from_u64(7); let x = compute(); }",
        );
        let s = FileSymbols::analyze(&f);
        assert_eq!(
            s.binding_types.get("events").map(String::as_str),
            Some("EventQueue")
        );
        assert_eq!(
            s.binding_types.get("rng").map(String::as_str),
            Some("StdRng")
        );
        assert!(!s.binding_types.contains_key("x"));
    }

    #[test]
    fn crate_segments_normalize() {
        assert_eq!(crate_of_segment("drs_core").as_deref(), Some("drs-core"));
        assert_eq!(
            crate_of_segment("deeprecsys").as_deref(),
            Some("deeprecsys")
        );
        assert!(crate_of_segment("std").is_none());
    }
}
