//! The invariant rules.
//!
//! Each rule is a token-pattern pass over a [`FileInfo`] (or, for the
//! panic-contract rule, over all files of one crate at once). Rules
//! deliberately over-approximate: a false positive costs one
//! `// lint:allow(<rule>)` comment, a false negative costs a flaky
//! cross-validation test three PRs later.

use crate::callgraph::CallGraph;
use crate::parse::{FileInfo, FnItem};
use crate::symbols::CrateView;
use std::fmt;

/// The rule that produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// R1 — iteration over `HashMap`/`HashSet` state in a
    /// determinism-critical crate.
    HashIter,
    /// R2 — `Instant::now`/`SystemTime` outside the real-path modules.
    WallClock,
    /// R3 — a public `serve*`/`run*` entry point that never reaches an
    /// `assert_nonempty_*` contract check.
    PanicContract,
    /// R4 — a `sink.record(..)` call not guarded by `S::ENABLED`.
    TelemetryGuard,
    /// R5 — unordered `f64` reduction over a hash-map iterator.
    FloatReduce,
    /// R6 — a `pulse.<record>(..)` metrics call not guarded by
    /// `M::ENABLED`.
    MetricsGuard,
    /// R7 — a value derived from `Instant::now`/`SystemTime` flows
    /// (interprocedurally) into a report field, the metrics registry,
    /// or a virtual-clock event booking.
    ClockTaint,
    /// R8 — a value derived from an unseeded entropy source
    /// (`thread_rng`, `from_entropy`, `OsRng`, ...) flows into
    /// serve-loop state.
    EntropyTaint,
    /// R9 — an `f64` fed from a hash-ordered or thread-join source
    /// flows into an exported report field.
    FloatOrderTaint,
    /// Crate-hygiene parity: `#![warn(missing_docs)]` + workspace
    /// lints in every library crate.
    DocsParity,
    /// Meta-rule: a `// lint:allow(..)` directive that no longer
    /// suppresses any finding. Cannot itself be allowlisted.
    StaleAllow,
}

impl RuleId {
    /// The name used in reports and in `lint:allow(...)` directives.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::HashIter => "hash-iter",
            RuleId::WallClock => "wall-clock",
            RuleId::PanicContract => "panic-contract",
            RuleId::TelemetryGuard => "telemetry-guard",
            RuleId::FloatReduce => "float-reduce",
            RuleId::MetricsGuard => "metrics-guard",
            RuleId::ClockTaint => "clock-taint",
            RuleId::EntropyTaint => "entropy-taint",
            RuleId::FloatOrderTaint => "float-order-taint",
            RuleId::DocsParity => "docs-parity",
            RuleId::StaleAllow => "stale-allow",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation at one source location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// File the finding is in (repo-relative when produced by the
    /// workspace driver).
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// The violated rule.
    pub rule: RuleId,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Methods that turn a map into an (order-hazardous) iterator.
pub(crate) const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// What one rule pass produced: the findings that fail the gate, plus
/// the findings an escape-hatch comment suppressed. The suppressed
/// list is what keeps the stale-allow audit honest — a directive is
/// *live* exactly when some finding lands on a line it covers.
#[derive(Debug, Default)]
pub struct RuleOutput {
    /// Unallowlisted findings (these fail `--check`).
    pub findings: Vec<Finding>,
    /// Findings silenced by a `// lint:allow(..)` directive.
    pub suppressed: Vec<Finding>,
}

impl RuleOutput {
    /// Merges another pass's output into this one.
    pub fn merge(&mut self, other: RuleOutput) {
        self.findings.extend(other.findings);
        self.suppressed.extend(other.suppressed);
    }
}

pub(crate) fn push(out: &mut RuleOutput, f: &FileInfo, line: u32, rule: RuleId, message: String) {
    let finding = Finding {
        path: f.path.clone(),
        line,
        rule,
        message,
    };
    if f.is_allowed(line, rule.name()) {
        out.suppressed.push(finding);
    } else {
        out.findings.push(finding);
    }
}

/// R1 — flags iteration over identifiers declared with a
/// `HashMap`/`HashSet` type: `map.iter()`-family calls and `for`-loop
/// headers naming the map. Keyed access (`get`, `insert`, `remove`,
/// `len`, ...) never trips.
pub fn check_hash_iter(f: &FileInfo) -> RuleOutput {
    let mut out = RuleOutput::default();
    let toks = &f.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != crate::lexer::TokenKind::Ident || !f.hash_idents.contains(&t.text) {
            continue;
        }
        // `map.iter()` / `map.drain()` / ...
        if toks.get(i + 1).is_some_and(|n| n.is_punct('.')) {
            if let Some(m) = toks.get(i + 2) {
                if ITER_METHODS.contains(&m.text.as_str()) {
                    push(
                        &mut out,
                        f,
                        t.line,
                        RuleId::HashIter,
                        format!(
                            "iteration over hash-ordered `{}` via `.{}()` — order is nondeterministic; use BTreeMap/BTreeSet or a sorted drain",
                            t.text, m.text
                        ),
                    );
                }
            }
            continue;
        }
        // `for pat in &map {` / `for pat in map {` — the map ident in a
        // for-header not followed by `.` is an implicit IntoIterator.
        if in_for_header(f, i) {
            push(
                &mut out,
                f,
                t.line,
                RuleId::HashIter,
                format!(
                    "`for` loop over hash-ordered `{}` — order is nondeterministic; use BTreeMap/BTreeSet or a sorted drain",
                    t.text
                ),
            );
        }
    }
    out
}

/// Is token `i` between a `for ... in` and the loop's opening brace?
fn in_for_header(f: &FileInfo, i: usize) -> bool {
    let toks = &f.tokens;
    let mut saw_in = false;
    let mut k = i;
    // Walk back to the `for`, aborting at statement/block boundaries.
    while k > 0 {
        k -= 1;
        let t = &toks[k];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return false;
        }
        if t.is_ident("in") {
            saw_in = true;
        }
        if t.is_ident("for") {
            return saw_in;
        }
        if i - k > 24 {
            return false;
        }
    }
    false
}

/// R2 — flags `Instant::now(..)` and any use of `SystemTime` in
/// virtual-time code. Holding an `Instant` value (e.g. a timestamp
/// passed in from the real path) is fine; *reading the clock* is not.
pub fn check_wall_clock(f: &FileInfo) -> RuleOutput {
    let mut out = RuleOutput::default();
    let toks = &f.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.is_ident("Instant")
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 3).is_some_and(|n| n.is_ident("now"))
        {
            push(
                &mut out,
                f,
                t.line,
                RuleId::WallClock,
                "`Instant::now()` in virtual-time code — wall-clock reads are confined to the real path".to_string(),
            );
        }
        if t.is_ident("SystemTime") {
            push(
                &mut out,
                f,
                t.line,
                RuleId::WallClock,
                "`SystemTime` in virtual-time code — wall-clock reads are confined to the real path".to_string(),
            );
        }
    }
    out
}

/// R4 — every `sink.record(..)` call site must sit inside an `if`
/// whose condition mentions the `ENABLED` associated const, so
/// `NoopSink` compiles tracing out entirely.
pub fn check_telemetry_guard(f: &FileInfo) -> RuleOutput {
    let mut out = RuleOutput::default();
    let toks = &f.tokens;
    for i in 0..toks.len() {
        if !(toks[i].is_ident("sink")
            && toks.get(i + 1).is_some_and(|n| n.is_punct('.'))
            && toks.get(i + 2).is_some_and(|n| n.is_ident("record"))
            && toks.get(i + 3).is_some_and(|n| n.is_punct('(')))
        {
            continue;
        }
        let guarded = f
            .enclosing_blocks(i)
            .any(|b| if_condition_mentions_enabled(f, b.open));
        if !guarded {
            push(
                &mut out,
                f,
                toks[i].line,
                RuleId::TelemetryGuard,
                "`sink.record(..)` not guarded by `S::ENABLED` — NoopSink must compile tracing out"
                    .to_string(),
            );
        }
    }
    out
}

/// Does the block opened at token `open` belong to an `if` whose
/// condition tokens mention `ENABLED`?
fn if_condition_mentions_enabled(f: &FileInfo, open: usize) -> bool {
    let toks = &f.tokens;
    let mut k = open;
    let mut saw_enabled = false;
    while k > 0 {
        k -= 1;
        let t = &toks[k];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return false;
        }
        if t.is_ident("ENABLED") {
            saw_enabled = true;
        }
        if t.is_ident("if") {
            return saw_enabled;
        }
        if open - k > 48 {
            return false;
        }
    }
    false
}

/// `MetricsSink` methods that record (receiver convention: `pulse`).
/// `interval_ns`/`summary` are read-only accessors and exempt.
const PULSE_RECORD_METHODS: &[&str] = &[
    "set_epoch",
    "tick",
    "gauge",
    "inc",
    "observe",
    "decision",
    "drr_round",
];

/// R6 — every `pulse.<record>(..)` metrics call site must sit inside
/// an `if` whose condition mentions the `ENABLED` associated const, so
/// `NoopMetrics` compiles the fleet-pulse instrumentation out (the
/// mirror of R4 for the metrics layer; the `pulse` receiver convention
/// keeps the two rules from colliding).
pub fn check_metrics_guard(f: &FileInfo) -> RuleOutput {
    let mut out = RuleOutput::default();
    let toks = &f.tokens;
    for i in 0..toks.len() {
        if !(toks[i].is_ident("pulse")
            && toks.get(i + 1).is_some_and(|n| n.is_punct('.'))
            && toks
                .get(i + 2)
                .is_some_and(|m| PULSE_RECORD_METHODS.contains(&m.text.as_str()))
            && toks.get(i + 3).is_some_and(|n| n.is_punct('(')))
        {
            continue;
        }
        let guarded = f
            .enclosing_blocks(i)
            .any(|b| if_condition_mentions_enabled(f, b.open));
        if !guarded {
            push(
                &mut out,
                f,
                toks[i].line,
                RuleId::MetricsGuard,
                format!(
                    "`pulse.{}(..)` not guarded by `M::ENABLED` — NoopMetrics must compile the fleet pulse out",
                    toks[i + 2].text
                ),
            );
        }
    }
    out
}

/// R5 — flags `f64` reductions (`.sum()` / `.fold(..)`) chained onto a
/// hash-map iterator: the accumulation order, and therefore the
/// floating-point rounding, follows the hash order.
pub fn check_float_reduce(f: &FileInfo) -> RuleOutput {
    let mut out = RuleOutput::default();
    let toks = &f.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != crate::lexer::TokenKind::Ident
            || !f.hash_idents.contains(&t.text)
            || !toks.get(i + 1).is_some_and(|n| n.is_punct('.'))
            || !toks
                .get(i + 2)
                .is_some_and(|m| ITER_METHODS.contains(&m.text.as_str()))
        {
            continue;
        }
        // Scan the rest of the method chain for a reduction.
        for j in i + 3..toks.len().min(i + 48) {
            if toks[j].is_punct(';') || toks[j].is_punct('{') {
                break;
            }
            if toks[j - 1].is_punct('.') && (toks[j].is_ident("sum") || toks[j].is_ident("fold")) {
                push(
                    &mut out,
                    f,
                    toks[j].line,
                    RuleId::FloatReduce,
                    format!(
                        "float reduction `.{}` over hash-ordered `{}` — rounding follows hash order; collect and sort first",
                        toks[j].text, t.text
                    ),
                );
                break;
            }
        }
    }
    out
}

/// R3 — workspace-wide panic-contract coverage, on the shared call
/// graph.
///
/// A function is *satisfied* when its body names an `assert_nonempty_*`
/// check directly, or when any call-graph path from it reaches a
/// satisfied function — including cross-crate edges, so a `pub serve*`
/// wrapper in one crate calling a guarded core function in another is
/// covered. Every bare-`pub` `serve*`/`run`/`run_*` function whose
/// parameter list mentions `Query` or `Trace` must be satisfied.
pub fn check_panic_contract_graph(views: &[CrateView], graph: &CallGraph) -> RuleOutput {
    // Direct satisfaction: the body itself names the contract check.
    let mut sat = vec![false; graph.nodes.len()];
    for (id, n) in graph.nodes.iter().enumerate() {
        let f = &views[n.crate_idx].files[n.file_idx];
        let Some(body) = f.fns[n.fn_idx].body else {
            continue;
        };
        let b = f.blocks[body];
        sat[id] = f.tokens[b.open..=b.close.min(f.tokens.len() - 1)]
            .iter()
            .any(|t| {
                t.kind == crate::lexer::TokenKind::Ident && t.text.starts_with("assert_nonempty_")
            });
    }
    let sat = graph.propagate_from_callees(sat);
    let mut out = RuleOutput::default();
    for (id, n) in graph.nodes.iter().enumerate() {
        let f = &views[n.crate_idx].files[n.file_idx];
        let item = &f.fns[n.fn_idx];
        if item.body.is_none() || !is_entry_point(f, item) || sat[id] {
            continue;
        }
        push(
            &mut out,
            f,
            item.line,
            RuleId::PanicContract,
            format!(
                "public entry point `{}` never reaches an `assert_nonempty_*` contract check",
                item.name
            ),
        );
    }
    out
}

/// [`check_panic_contract_graph`] over one crate's files (fixtures and
/// unit tests); builds the call graph internally.
pub fn check_panic_contract(files: &[FileInfo]) -> RuleOutput {
    let views = [CrateView {
        name: "fixture".to_string(),
        files,
    }];
    let graph = CallGraph::build(&views);
    check_panic_contract_graph(&views, &graph)
}

/// Is this fn a panic-contract entry point: bare-`pub`, named
/// `serve*`/`run`/`run_*`, and taking a `Query`/`Trace` parameter?
fn is_entry_point(f: &FileInfo, item: &FnItem) -> bool {
    if !item.is_pub {
        return false;
    }
    let n = item.name.as_str();
    if !(n.starts_with("serve") || n == "run" || n.starts_with("run_")) {
        return false;
    }
    let (a, b) = item.params;
    f.tokens[a..=b.min(f.tokens.len() - 1)]
        .iter()
        .any(|t| t.is_ident("Query") || t.is_ident("Trace"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::FileInfo;

    fn info(src: &str) -> FileInfo {
        FileInfo::parse("t.rs", src)
    }

    #[test]
    fn hash_iter_trips_on_iteration_not_lookup() {
        let f = info(
            "fn f() { let mut m: HashMap<u64, u32> = HashMap::new(); \
             m.insert(1, 2); let _ = m.get(&1); let _ = m.len(); \
             for (k, v) in &m { use_it(k, v); } \
             let _: Vec<_> = m.values().collect(); }",
        );
        let findings = check_hash_iter(&f).findings;
        assert_eq!(findings.len(), 2, "{findings:?}");
    }

    #[test]
    fn hash_iter_respects_allow() {
        let f = info(
            "fn f(m: &HashMap<u64, u32>) {\n\
             // lint:allow(hash-iter)\n\
             for k in m.keys() { use_it(k); }\n}",
        );
        let out = check_hash_iter(&f);
        assert!(out.findings.is_empty());
        assert_eq!(
            out.suppressed.len(),
            1,
            "the allow suppressed a real finding"
        );
    }

    #[test]
    fn wall_clock_trips_on_now_not_type() {
        let f = info("fn f(t: Instant) -> bool { let n = Instant::now(); n > t }");
        let findings = check_wall_clock(&f).findings;
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, RuleId::WallClock);
    }

    #[test]
    fn telemetry_guard_requires_enabled() {
        let good = info("fn f() { if S::ENABLED { sink.record(&span); } }");
        assert!(check_telemetry_guard(&good).findings.is_empty());
        let bad = info("fn f() { sink.record(&span); }");
        assert_eq!(check_telemetry_guard(&bad).findings.len(), 1);
        let wrong_if = info("fn f() { if x > 0 { sink.record(&span); } }");
        assert_eq!(check_telemetry_guard(&wrong_if).findings.len(), 1);
    }

    #[test]
    fn metrics_guard_requires_enabled() {
        let good = info("fn f() { if M::ENABLED { pulse.gauge(\"queue_depth_n0\", d); } }");
        assert!(check_metrics_guard(&good).findings.is_empty());
        let self_recv = info("fn f(&mut self) { if M::ENABLED { self.pulse.tick(t); } }");
        assert!(check_metrics_guard(&self_recv).findings.is_empty());
        let bad = info("fn f() { pulse.inc(\"completed_total\", 1); }");
        assert_eq!(check_metrics_guard(&bad).findings.len(), 1);
        let wrong_if = info("fn f() { if hot { pulse.observe(\"latency_ms\", v); } }");
        assert_eq!(check_metrics_guard(&wrong_if).findings.len(), 1);
        // Read-only accessors need no guard (they feed the guard).
        let accessor = info("fn f() { let t = pulse.interval_ns().max(1); }");
        assert!(check_metrics_guard(&accessor).findings.is_empty());
    }

    #[test]
    fn float_reduce_trips_on_sum_over_map() {
        let f = info("fn f(m: &HashMap<u64, f64>) -> f64 { m.values().sum::<f64>() }");
        // One float-reduce finding (plus hash-iter if that rule also
        // ran — rules are independent).
        assert_eq!(check_float_reduce(&f).findings.len(), 1);
    }

    #[test]
    fn panic_contract_fixpoint_through_helper() {
        let direct = info("pub fn serve_queries(q: &[Query]) { assert_nonempty_queries(q); }");
        assert!(check_panic_contract(&[direct]).findings.is_empty());
        let chained = info(
            "pub fn serve_queries(q: &[Query]) { inner(q); } \
             fn inner(q: &[Query]) { assert_nonempty_queries(q); }",
        );
        assert!(check_panic_contract(&[chained]).findings.is_empty());
        let missing = info("pub fn serve_queries(q: &[Query]) { just_go(q); }");
        assert_eq!(check_panic_contract(&[missing]).findings.len(), 1);
    }

    #[test]
    fn panic_contract_ignores_non_entry_points() {
        // No Query/Trace param, pub(crate), or non-matching name.
        let f = info(
            "pub fn run_generator(g: &mut QueryGenerator) { go(g); } \
             pub(crate) fn serve_queries(q: &[Query]) { go(q); } \
             pub fn helper(q: &[Query]) { go(q); }",
        );
        // `QueryGenerator` lexes as one ident, so the exact-ident
        // `Query` param test does not match it.
        assert!(check_panic_contract(&[f]).findings.is_empty());
    }
}
