//! A workspace-wide, name-based call graph.
//!
//! Generalizes the fixpoint that used to live inside the
//! panic-contract rule: every `fn` item in every scanned crate becomes
//! a node, and every `callee(..)` / `recv.method(..)` /
//! `path::to::callee(..)` site becomes edges to the candidate
//! definitions it may reach. Resolution is name-based with narrowing —
//! a qualified path pins the crate or impl target, a typed receiver
//! pins the impl target, and otherwise same-file then same-crate then
//! `use`-imported candidates are preferred over the whole workspace.
//! Over-approximate by design: extra edges cost nothing for the rules
//! built on top (reachability of a contract check), missing edges
//! cost a false finding.
//!
//! The graph is exportable as DOT or JSON via `drs-lint --callgraph`,
//! and its edge count is recorded in the bench history as a
//! structure-drift canary.

use crate::lexer::TokenKind;
use crate::parse::FileInfo;
use crate::symbols::{crate_of_segment, CrateView, FileSymbols, KEYWORDS};
use std::collections::{BTreeMap, BTreeSet};

/// One function definition in the workspace.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Package name of the defining crate.
    pub krate: String,
    /// Repo-relative path of the defining file.
    pub path: String,
    /// Function name.
    pub name: String,
    /// `impl` target the function is defined on, if any.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Index of the defining crate in the `CrateView` slice the graph
    /// was built from.
    pub crate_idx: usize,
    /// Index of the defining file within that crate.
    pub file_idx: usize,
    /// Index of the item within `FileInfo::fns`.
    pub fn_idx: usize,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Function nodes, in crate/file/item order.
    pub nodes: Vec<FnNode>,
    /// `caller -> callee` edges by node id, deterministically ordered.
    pub edges: BTreeSet<(usize, usize)>,
}

impl CallGraph {
    /// Builds the graph over every crate in `views`.
    pub fn build(views: &[CrateView]) -> CallGraph {
        let symbols: Vec<Vec<FileSymbols>> = views
            .iter()
            .map(|v| v.files.iter().map(FileSymbols::analyze).collect())
            .collect();
        let mut nodes = Vec::new();
        for (ci, v) in views.iter().enumerate() {
            for (fi, f) in v.files.iter().enumerate() {
                for (xi, item) in f.fns.iter().enumerate() {
                    nodes.push(FnNode {
                        krate: v.name.clone(),
                        path: f.path.clone(),
                        name: item.name.clone(),
                        owner: symbols[ci][fi].fn_owner[xi].clone(),
                        line: item.line,
                        crate_idx: ci,
                        file_idx: fi,
                        fn_idx: xi,
                    });
                }
            }
        }
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (id, n) in nodes.iter().enumerate() {
            by_name.entry(n.name.as_str()).or_default().push(id);
        }
        let mut edges = BTreeSet::new();
        for caller in 0..nodes.len() {
            let n = &nodes[caller];
            let f = &views[n.crate_idx].files[n.file_idx];
            let Some(body) = f.fns[n.fn_idx].body else {
                continue;
            };
            let b = f.blocks[body];
            let syms = &symbols[n.crate_idx][n.file_idx];
            for site in call_sites(f, b.open + 1, b.close) {
                for callee in resolve(&nodes, &by_name, caller, &site, syms) {
                    edges.insert((caller, callee));
                }
            }
        }
        CallGraph { nodes, edges }
    }

    /// Propagates a per-node boolean property backwards along edges to
    /// a fixpoint: a caller acquires the property when any callee has
    /// it. This is the panic-contract "reaches a check" relation.
    pub fn propagate_from_callees(&self, mut sat: Vec<bool>) -> Vec<bool> {
        assert_eq!(sat.len(), self.nodes.len());
        loop {
            let mut changed = false;
            for &(caller, callee) in &self.edges {
                if sat[callee] && !sat[caller] {
                    sat[caller] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        sat
    }

    /// Renders the graph as GraphViz DOT (deterministic ordering).
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph drs_callgraph {\n  rankdir=LR;\n");
        for (id, n) in self.nodes.iter().enumerate() {
            s.push_str(&format!(
                "  n{id} [label=\"{}::{}\\n{}:{}\"];\n",
                n.krate,
                n.display_name(),
                n.path,
                n.line
            ));
        }
        for (a, b) in &self.edges {
            s.push_str(&format!("  n{a} -> n{b};\n"));
        }
        s.push_str("}\n");
        s
    }

    /// Renders the graph as a JSON document (deterministic ordering).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"schema\": 1,\n  \"nodes\": [\n");
        for (id, n) in self.nodes.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"id\": {id}, \"crate\": \"{}\", \"fn\": \"{}\", \"path\": \"{}\", \"line\": {}}}{}\n",
                n.krate,
                n.display_name(),
                n.path,
                n.line,
                if id + 1 < self.nodes.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n  \"edges\": [\n");
        for (i, (a, b)) in self.edges.iter().enumerate() {
            s.push_str(&format!(
                "    [{a}, {b}]{}\n",
                if i + 1 < self.edges.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

impl FnNode {
    /// `Owner::name` when defined in an impl block, else just `name`.
    pub fn display_name(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One syntactic call site inside a function body.
struct CallSite {
    /// Callee name (the identifier before the `(`).
    name: String,
    /// First segment of a `path::to::callee(..)` qualifier, if any.
    qualifier: Option<String>,
    /// Receiver identifier of a `recv.method(..)` call, if the
    /// receiver is a plain identifier.
    receiver: Option<String>,
}

/// Scans a token range for call sites: `name(..)` where `name` is not
/// a keyword, a macro (`name!(..)`), or a definition (`fn name(..)`).
fn call_sites(f: &FileInfo, start: usize, end: usize) -> Vec<CallSite> {
    let toks = &f.tokens;
    let mut out = Vec::new();
    for i in start..end.min(toks.len()) {
        let t = &toks[i];
        if t.kind != TokenKind::Ident
            || KEYWORDS.contains(&t.text.as_str())
            || !toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            continue;
        }
        if i > 0 && toks[i - 1].is_ident("fn") {
            continue; // nested definition, not a call
        }
        let mut qualifier = None;
        let mut receiver = None;
        if i >= 3 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') {
            // Walk `seg :: seg :: name` back to its first segment.
            let mut j = i;
            while j >= 3
                && toks[j - 1].is_punct(':')
                && toks[j - 2].is_punct(':')
                && toks[j - 3].kind == TokenKind::Ident
            {
                j -= 3;
            }
            if j < i {
                qualifier = Some(toks[j].text.clone());
            }
        } else if i >= 2 && toks[i - 1].is_punct('.') && toks[i - 2].kind == TokenKind::Ident {
            receiver = Some(toks[i - 2].text.clone());
        }
        out.push(CallSite {
            name: t.text.clone(),
            qualifier,
            receiver,
        });
    }
    out
}

/// Resolves a call site to candidate node ids. Narrowing order:
/// qualified crate/type, then receiver type, then same file, same
/// crate, imported crate, and finally any same-named definition.
fn resolve(
    nodes: &[FnNode],
    by_name: &BTreeMap<&str, Vec<usize>>,
    caller: usize,
    site: &CallSite,
    syms: &FileSymbols,
) -> Vec<usize> {
    let Some(cands) = by_name.get(site.name.as_str()) else {
        return Vec::new();
    };
    let me = &nodes[caller];
    if let Some(q) = &site.qualifier {
        // `drs_core::event::push(..)` / `crate::helper(..)` pin the
        // crate; `EventQueue::push(..)` pins the impl target.
        if let Some(pkg) = crate_of_segment(q) {
            return filter(nodes, cands, |n| n.krate == pkg);
        }
        if q == "crate" || q == "self" || q == "super" {
            return filter(nodes, cands, |n| n.crate_idx == me.crate_idx);
        }
        if q.chars().next().is_some_and(char::is_uppercase) {
            let owned = filter(nodes, cands, |n| n.owner.as_deref() == Some(q.as_str()));
            // An uppercase qualifier that owns no workspace fn is a
            // foreign type (`Vec::new`): resolve to nothing rather
            // than to every same-named workspace fn.
            return owned;
        }
        return filter(nodes, cands, |n| n.crate_idx == me.crate_idx);
    }
    if let Some(recv) = &site.receiver {
        if let Some(ty) = syms.binding_types.get(recv) {
            let owned = filter(nodes, cands, |n| n.owner.as_deref() == Some(ty.as_str()));
            if !owned.is_empty() {
                return owned;
            }
        }
    }
    let same_file = filter(nodes, cands, |n| {
        n.crate_idx == me.crate_idx && n.file_idx == me.file_idx
    });
    if !same_file.is_empty() {
        return same_file;
    }
    let same_crate = filter(nodes, cands, |n| n.crate_idx == me.crate_idx);
    if !same_crate.is_empty() {
        return same_crate;
    }
    if let Some(pkg) = syms.imports.get(site.name.as_str()) {
        let imported = filter(nodes, cands, |n| &n.krate == pkg);
        if !imported.is_empty() {
            return imported;
        }
    }
    cands.clone()
}

fn filter(nodes: &[FnNode], cands: &[usize], pred: impl Fn(&FnNode) -> bool) -> Vec<usize> {
    cands.iter().copied().filter(|&i| pred(&nodes[i])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(crates: &[(&str, &str)]) -> (CallGraph, Vec<Vec<FileInfo>>) {
        let files: Vec<Vec<FileInfo>> = crates
            .iter()
            .map(|(_, src)| vec![FileInfo::parse("t.rs", src)])
            .collect();
        let views: Vec<CrateView> = crates
            .iter()
            .zip(&files)
            .map(|((name, _), fs)| CrateView {
                name: (*name).to_string(),
                files: fs,
            })
            .collect();
        (CallGraph::build(&views), files)
    }

    fn node(g: &CallGraph, krate: &str, name: &str) -> usize {
        g.nodes
            .iter()
            .position(|n| n.krate == krate && n.name == name)
            .unwrap_or_else(|| panic!("no node {krate}::{name}"))
    }

    #[test]
    fn same_crate_edges_and_fixpoint() {
        let (g, _) = graph(&[(
            "drs-a",
            "pub fn serve(q: &[Query]) { inner(q); } \
             fn inner(q: &[Query]) { assert_nonempty_queries(q); }",
        )]);
        let serve = node(&g, "drs-a", "serve");
        let inner = node(&g, "drs-a", "inner");
        assert!(g.edges.contains(&(serve, inner)));
        let mut sat = vec![false; g.nodes.len()];
        sat[inner] = true;
        let sat = g.propagate_from_callees(sat);
        assert!(sat[serve], "satisfaction flows caller-ward");
    }

    #[test]
    fn cross_crate_resolution_via_import_and_path() {
        let (g, _) = graph(&[
            (
                "drs-core",
                "pub fn assert_nonempty_queries(q: &[Query]) {} pub fn helper() {}",
            ),
            (
                "drs-bench",
                "use drs_core::assert_nonempty_queries; \
                 pub fn serve_wrapped(q: &[Query]) { assert_nonempty_queries(q); } \
                 pub fn via_path() { drs_core::helper(); }",
            ),
        ]);
        let wrapped = node(&g, "drs-bench", "serve_wrapped");
        let check = node(&g, "drs-core", "assert_nonempty_queries");
        assert!(g.edges.contains(&(wrapped, check)), "import-resolved");
        let via = node(&g, "drs-bench", "via_path");
        let helper = node(&g, "drs-core", "helper");
        assert!(g.edges.contains(&(via, helper)), "path-resolved");
    }

    #[test]
    fn typed_receiver_narrows_to_impl_target() {
        let (g, _) = graph(&[(
            "drs-a",
            "struct Q; struct R; \
             impl Q { fn push(&mut self) {} } \
             impl R { fn push(&mut self) {} } \
             fn f() { let mut events: Q = Q::new(); events.push(); }",
        )]);
        let f = node(&g, "drs-a", "f");
        let q_push = g
            .nodes
            .iter()
            .position(|n| n.name == "push" && n.owner.as_deref() == Some("Q"))
            .unwrap();
        let r_push = g
            .nodes
            .iter()
            .position(|n| n.name == "push" && n.owner.as_deref() == Some("R"))
            .unwrap();
        assert!(g.edges.contains(&(f, q_push)));
        assert!(!g.edges.contains(&(f, r_push)), "typed receiver narrows");
    }

    #[test]
    fn foreign_type_qualifiers_resolve_to_nothing() {
        let (g, _) = graph(&[(
            "drs-a",
            "fn new() {} fn f() { let v = Vec::new(); use_it(v); }",
        )]);
        let f = node(&g, "drs-a", "f");
        let new = node(&g, "drs-a", "new");
        assert!(
            !g.edges.contains(&(f, new)),
            "`Vec::new` must not resolve to a free fn named `new`"
        );
    }

    #[test]
    fn exports_are_deterministic_and_well_formed() {
        let (g, _) = graph(&[("drs-a", "fn a() { b(); } fn b() {}")]);
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph drs_callgraph {"), "{dot}");
        assert!(dot.contains("->"), "{dot}");
        let json = g.to_json();
        assert!(json.contains("\"schema\": 1"), "{json}");
        assert!(json.contains("\"edges\""), "{json}");
        assert_eq!(json, g.to_json(), "stable output");
    }
}
