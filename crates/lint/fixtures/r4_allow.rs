//! R4 allowlisted twin — the unguarded record sites from `r4_trip.rs`
//! silenced with `lint:allow(telemetry-guard)`; must produce zero
//! findings.

fn record_bare<S: TraceSink>(sink: &mut S, span: &Span) {
    sink.record(span); // lint:allow(telemetry-guard)
}

fn record_wrong_guard<S: TraceSink>(sink: &mut S, span: &Span, hot: bool) {
    if hot {
        // lint:allow(telemetry-guard)
        sink.record(span);
    }
}
