//! R1 fixture — must trip `hash-iter` twice: once for the `for` loop,
//! once for the `.values()` chain. Keyed access must stay silent.

use std::collections::HashMap;

fn tally(counts: &HashMap<u64, u32>) -> u32 {
    let mut total = 0;
    // Order-hazardous: iteration follows the hash order.
    for (_k, v) in counts {
        total += v;
    }
    total
}

fn collect_all(counts: &HashMap<u64, u32>) -> Vec<u32> {
    counts.values().copied().collect()
}

fn keyed_is_fine(counts: &mut HashMap<u64, u32>) -> Option<u32> {
    counts.insert(7, 1);
    let _ = counts.len();
    counts.get(&7).copied()
}
