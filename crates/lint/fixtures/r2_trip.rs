//! R2 fixture — must trip `wall-clock` four times: the
//! `Instant::now()` read plus every `SystemTime` mention (the import,
//! the return type, and the body use — virtual-time code should not
//! name the type at all). Merely *holding* an `Instant` value must
//! stay silent.

use std::time::{Instant, SystemTime};

fn elapsed_since(t0: Instant) -> u128 {
    let now = Instant::now();
    now.duration_since(t0).as_nanos()
}

fn stamp() -> SystemTime {
    SystemTime::UNIX_EPOCH
}

fn holding_is_fine(t: Instant) -> Instant {
    t
}
