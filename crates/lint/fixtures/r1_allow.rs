//! R1 allowlisted twin — the same iteration sites as `r1_trip.rs`,
//! each silenced with `lint:allow(hash-iter)`; must produce zero
//! findings.

use std::collections::HashMap;

fn tally(counts: &HashMap<u64, u32>) -> u32 {
    let mut total = 0;
    // lint:allow(hash-iter)
    for (_k, v) in counts {
        total += v;
    }
    total
}

fn collect_all(counts: &HashMap<u64, u32>) -> Vec<u32> {
    counts.values().copied().collect() // lint:allow(hash-iter)
}
