//! R2 allowlisted twin — the same clock reads as `r2_trip.rs`, each
//! silenced with `lint:allow(wall-clock)`; must produce zero findings.

use std::time::Instant;

fn elapsed_since(t0: Instant) -> u128 {
    // Real-path pacing: this module legitimately reads the clock.
    let now = Instant::now(); // lint:allow(wall-clock)
    now.duration_since(t0).as_nanos()
}
