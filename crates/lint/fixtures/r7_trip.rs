//! R7 fixture — wall-clock taint must be tracked *across* calls: the
//! timestamp is read in `wall_ns`, laundered through a relabeling
//! helper's parameter and return value, and only reaches a sink two
//! functions later. Must trip `clock-taint` twice: the report field
//! and the virtual-clock event booking.

use std::time::Instant;

fn wall_ns() -> u64 {
    let t0 = Instant::now();
    t0.elapsed().as_nanos() as u64
}

fn relabel(x: u64) -> u64 {
    let y = x;
    y
}

pub fn export() -> PaceReport {
    let w = relabel(wall_ns());
    PaceReport { pace_ns: w }
}

pub fn book(events: &mut EventQueue<Ev>) {
    let due = relabel(wall_ns());
    events.push(due, Ev::Tick);
}
