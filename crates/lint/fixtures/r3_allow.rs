//! R3 allowlisted twin — the unchecked entry point from `r3_trip.rs`
//! silenced with `lint:allow(panic-contract)`; must produce zero
//! findings.

// Caller guarantees non-emptiness at the FFI boundary.
// lint:allow(panic-contract)
pub fn serve_unchecked(queries: &[Query]) -> Report {
    process(queries)
}
