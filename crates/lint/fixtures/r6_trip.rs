//! R6 fixture — must trip `metrics-guard` twice: the bare gauge write
//! and the tick behind an unrelated `if`. The `M::ENABLED`-guarded
//! sites must stay silent, as must the read-only accessor.

fn sample_bare<M: MetricsSink>(pulse: &mut M, depth: usize) {
    pulse.gauge("queue_depth_n0", depth as f64);
}

fn tick_wrong_guard<M: MetricsSink>(pulse: &mut M, due: bool, t: u64) {
    if due {
        pulse.tick(t);
    }
}

fn sample_guarded<M: MetricsSink>(pulse: &mut M, depth: usize, t: u64) {
    if M::ENABLED {
        pulse.gauge("queue_depth_n0", depth as f64);
        pulse.tick(t);
    }
}

fn drain_guarded<M: MetricsSink>(pulse: &mut M, next: &mut u64, head: u64, step: u64) {
    if M::ENABLED {
        while *next <= head {
            pulse.tick(*next);
            *next += step;
        }
    }
}

fn accessor_unguarded<M: MetricsSink>(pulse: &M) -> u64 {
    pulse.interval_ns().max(1)
}
