//! R8 allowlisted twin — the same entropy flows as `r8_trip.rs`, each
//! sanctioned with `lint:allow(entropy-taint)`; must produce zero
//! findings.

fn jitter() -> u64 {
    let mut rng = thread_rng();
    rng.gen_range(0..1_000)
}

pub fn perturb(state: &mut LoopState) {
    let j = jitter();
    state.backoff_ns = j; // lint:allow(entropy-taint)
}

pub fn record(pulse: &mut Pulse) {
    if Pulse::ENABLED {
        // Non-replayed diagnostics channel.
        pulse.gauge("jitter_ns", jitter() as f64); // lint:allow(entropy-taint)
    }
}
