//! R7 allowlisted twin — the same interprocedural clock flows as
//! `r7_trip.rs`, sanctioned where they land (the report field) and
//! where they convert (the booking's time base); must produce zero
//! findings, and both directives must register as live.

use std::time::Instant;

fn wall_ns() -> u64 {
    let t0 = Instant::now();
    t0.elapsed().as_nanos() as u64
}

fn relabel(x: u64) -> u64 {
    let y = x;
    y
}

pub fn export() -> PaceReport {
    let w = relabel(wall_ns());
    PaceReport {
        pace_ns: w, // lint:allow(clock-taint)
    }
}

pub fn book(events: &mut EventQueue<Ev>) {
    // Pacing converts wall time to the model clock here, by design.
    let due = relabel(wall_ns()); // lint:allow(clock-taint)
    events.push(due, Ev::Tick);
}
