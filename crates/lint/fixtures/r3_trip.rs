//! R3 fixture — must trip `panic-contract` exactly once:
//! `serve_unchecked` is a public entry point over `Query` that never
//! reaches an `assert_nonempty_*` check. `serve_direct` (direct
//! assert) and `serve_chained` (assert through a helper) must pass,
//! as must the non-entry-point shapes at the bottom.

pub fn serve_unchecked(queries: &[Query]) -> Report {
    process(queries)
}

pub fn serve_direct(queries: &[Query]) -> Report {
    assert_nonempty_queries(queries);
    process(queries)
}

pub fn serve_chained(queries: &[Query]) -> Report {
    validated(queries)
}

fn validated(queries: &[Query]) -> Report {
    assert_nonempty_queries(queries);
    process(queries)
}

pub(crate) fn serve_internal(queries: &[Query]) -> Report {
    process(queries) // not bare-pub: not an entry point
}

pub fn run_generator(gen: &mut QueryGenerator) -> Report {
    spin(gen) // no Query/Trace parameter: not an entry point
}
