//! R8 fixture — entropy must come from the seeded RNGs: `thread_rng`
//! jitter flowing through a helper into serve-loop state or a metrics
//! record is a replay hazard. Must trip `entropy-taint` twice (the
//! field store and the gauge); the seeded path must stay silent.

fn jitter() -> u64 {
    let mut rng = thread_rng();
    rng.gen_range(0..1_000)
}

pub fn perturb(state: &mut LoopState) {
    let j = jitter();
    state.backoff_ns = j;
}

pub fn record(pulse: &mut Pulse) {
    if Pulse::ENABLED {
        pulse.gauge("jitter_ns", jitter() as f64);
    }
}

pub fn seeded_is_fine(state: &mut LoopState, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    state.retry_ns = rng.gen_range(0..1_000);
}
