//! R4 fixture — must trip `telemetry-guard` twice: the bare record
//! call and the one behind an unrelated `if`. The `S::ENABLED`-guarded
//! site must stay silent.

fn record_bare<S: TraceSink>(sink: &mut S, span: &Span) {
    sink.record(span);
}

fn record_wrong_guard<S: TraceSink>(sink: &mut S, span: &Span, hot: bool) {
    if hot {
        sink.record(span);
    }
}

fn record_guarded<S: TraceSink>(sink: &mut S, span: &Span) {
    if S::ENABLED {
        sink.record(span);
    }
}

fn record_guarded_compound<S: TraceSink>(sink: &mut S, span: &Span, hot: bool) {
    if S::ENABLED && hot {
        finish(span);
        sink.record(span);
    }
}
