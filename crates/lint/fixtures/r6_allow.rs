//! R6 allowlisted twin — the unguarded pulse record sites from
//! `r6_trip.rs` silenced with `lint:allow(metrics-guard)`; must
//! produce zero findings.

fn sample_bare<M: MetricsSink>(pulse: &mut M, depth: usize) {
    pulse.gauge("queue_depth_n0", depth as f64); // lint:allow(metrics-guard)
}

fn tick_wrong_guard<M: MetricsSink>(pulse: &mut M, due: bool, t: u64) {
    if due {
        // lint:allow(metrics-guard)
        pulse.tick(t);
    }
}
