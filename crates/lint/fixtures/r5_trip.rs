//! R5 fixture — must trip `float-reduce` twice: the `.sum()` and the
//! `.fold(..)` over hash-ordered iterators. The sorted-drain variant
//! must stay silent.

use std::collections::HashMap;

fn mean_latency(lat: &HashMap<u64, f64>) -> f64 {
    let total: f64 = lat.values().sum();
    total / lat.len() as f64
}

fn weighted(lat: &HashMap<u64, f64>) -> f64 {
    lat.iter().fold(0.0, |acc, (_, v)| acc + v)
}

fn sorted_is_fine(lat: &HashMap<u64, f64>) -> f64 {
    let mut vals: Vec<f64> = Vec::new();
    for k in 0..lat.len() as u64 {
        if let Some(v) = lat.get(&k) {
            vals.push(*v);
        }
    }
    vals.into_iter().sum()
}
