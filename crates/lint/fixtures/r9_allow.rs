//! R9 allowlisted twin — the same order-tainted accumulations as
//! `r9_trip.rs`, sanctioned where they land; must produce zero
//! findings. (Real code would sort first — see `float-reduce` — but
//! the allow documents a reviewed tolerance, e.g. a sum that is
//! rounded before export.)

pub fn mean_by_tenant(loads: &HashMap<u64, f64>) -> LoadReport {
    let mut total = 0.0;
    for (_, v) in loads {
        total += v;
    }
    LoadReport {
        mean_load: total, // lint:allow(float-order-taint)
    }
}

pub fn fan_in(handles: Vec<JoinHandle<f64>>) -> MergeReport {
    let mut sum = 0.0;
    for h in handles {
        sum += h.join().unwrap(); // lint:allow(float-order-taint)
    }
    MergeReport { merged: sum }
}
