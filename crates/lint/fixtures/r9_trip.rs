//! R9 fixture — `f64` accumulation in a nondeterministic order must
//! not reach an exported report: once over a hash-ordered map, once
//! over thread-join results. Must trip `float-order-taint` twice.

pub fn mean_by_tenant(loads: &HashMap<u64, f64>) -> LoadReport {
    let mut total = 0.0;
    for (_, v) in loads {
        total += v;
    }
    LoadReport { mean_load: total }
}

pub fn fan_in(handles: Vec<JoinHandle<f64>>) -> MergeReport {
    let mut sum = 0.0;
    for h in handles {
        sum += h.join().unwrap();
    }
    MergeReport { merged: sum }
}
