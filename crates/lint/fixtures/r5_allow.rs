//! R5 allowlisted twin — the reductions from `r5_trip.rs` silenced
//! with `lint:allow(float-reduce)`; must produce zero findings.

use std::collections::HashMap;

fn mean_latency(lat: &HashMap<u64, f64>) -> f64 {
    // Tolerance-checked aggregate; hash-order rounding is acceptable.
    let total: f64 = lat.values().sum(); // lint:allow(float-reduce)
    total / lat.len() as f64
}
