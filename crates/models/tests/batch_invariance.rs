//! Property tests on the model zoo.
//!
//! The central invariant behind DeepRecSched's query splitting: a
//! recommendation model scores every user–item pair *independently*, so
//! splitting a query into smaller requests must not change any CTR.
//! If this broke, the scheduler's batch-size knob would change model
//! quality, not just performance.

use drs_models::{zoo, BatchInputs, ModelScale, RecModel};
use drs_nn::OpProfiler;
use drs_tensor::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Slices a batch into `[0, cut)` and `[cut, batch)`.
fn split_inputs(inputs: &BatchInputs, cut: usize) -> (BatchInputs, BatchInputs) {
    assert!(cut > 0 && cut < inputs.batch);
    let slice_dense = |range: std::ops::Range<usize>| {
        inputs
            .dense
            .as_ref()
            .map(|d| Matrix::from_fn(range.len(), d.cols(), |r, c| d.get(range.start + r, c)))
    };
    let slice_sparse = |range: std::ops::Range<usize>| {
        inputs
            .sparse
            .iter()
            .map(|per_sample| per_sample[range.clone()].to_vec())
            .collect::<Vec<_>>()
    };
    (
        BatchInputs {
            batch: cut,
            dense: slice_dense(0..cut),
            sparse: slice_sparse(0..cut),
        },
        BatchInputs {
            batch: inputs.batch - cut,
            dense: slice_dense(cut..inputs.batch),
            sparse: slice_sparse(cut..inputs.batch),
        },
    )
}

fn check_batch_invariance(model: &RecModel, batch: usize, cut: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let inputs = model.generate_inputs(batch, &mut rng);
    let mut prof = OpProfiler::new();
    let whole = model.forward(&inputs, &mut prof);
    let (a, b) = split_inputs(&inputs, cut);
    let mut got = model.forward(&a, &mut prof);
    got.extend(model.forward(&b, &mut prof));
    assert_eq!(whole.len(), got.len());
    for (i, (w, g)) in whole.iter().zip(&got).enumerate() {
        assert!(
            (w - g).abs() < 1e-5,
            "{}: sample {i} differs when split at {cut}: {w} vs {g}",
            model.name()
        );
    }
}

#[test]
fn splitting_a_batch_never_changes_ctrs() {
    for cfg in zoo::all() {
        let mut rng = StdRng::seed_from_u64(11);
        let model = RecModel::instantiate(&cfg, ModelScale::tiny(), &mut rng);
        check_batch_invariance(&model, 8, 3, 101);
        check_batch_invariance(&model, 8, 7, 102);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Batch invariance for random batch sizes and cut points on the
    /// two structurally trickiest models (attention and recurrent
    /// pooling, where per-sample independence is easiest to break).
    #[test]
    fn attention_models_batch_invariant(batch in 2usize..10, cut_frac in 0.1f64..0.9, seed in 0u64..50) {
        let cut = ((batch as f64 * cut_frac) as usize).clamp(1, batch - 1);
        for cfg in [zoo::din(), zoo::dien()] {
            let mut rng = StdRng::seed_from_u64(7);
            let model = RecModel::instantiate(&cfg, ModelScale::tiny(), &mut rng);
            check_batch_invariance(&model, batch, cut, seed);
        }
    }

    /// CTRs are deterministic across repeated forwards of the same
    /// inputs for a randomly chosen zoo model.
    #[test]
    fn forward_is_pure(model_idx in 0usize..8, batch in 1usize..6, seed in 0u64..100) {
        let cfg = &zoo::all()[model_idx];
        let mut rng = StdRng::seed_from_u64(3);
        let model = RecModel::instantiate(cfg, ModelScale::tiny(), &mut rng);
        let mut rng = StdRng::seed_from_u64(seed);
        let inputs = model.generate_inputs(batch, &mut rng);
        let mut p1 = OpProfiler::new();
        let mut p2 = OpProfiler::new();
        prop_assert_eq!(model.forward(&inputs, &mut p1), model.forward(&inputs, &mut p2));
    }
}
