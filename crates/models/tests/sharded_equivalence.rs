//! Cross-validation: a model served sharded across N nodes must score
//! **bit-identically** to the same model unsharded on one large node.
//!
//! Table-wise sharding moves each table's pooled lookup to its owning
//! shard and merges the partials; no floating-point operation is
//! reordered, so the acceptance bar is exact equality, not tolerance.

use drs_models::{zoo, ModelScale, RecModel};
use drs_nn::OpProfiler;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic round-robin table→shard assignment.
fn round_robin(tables: usize, shards: usize) -> Vec<usize> {
    (0..tables).map(|t| t % shards).collect()
}

#[test]
fn sharded_forward_is_bit_identical_across_zoo() {
    for cfg in zoo::all() {
        let mut rng = StdRng::seed_from_u64(41);
        let model = RecModel::instantiate(&cfg, ModelScale::tiny(), &mut rng);
        let mut in_rng = StdRng::seed_from_u64(17);
        for batch in [1usize, 5, 16] {
            let inputs = model.generate_inputs(batch, &mut in_rng);
            let mut prof = OpProfiler::new();
            let reference = model.forward(&inputs, &mut prof);
            for shards in [1usize, 2, 4, cfg.tables.len()] {
                let set = model.sharded_embeddings(&round_robin(cfg.tables.len(), shards));
                let mut sprof = OpProfiler::new();
                let sharded = model.forward_sharded(&inputs, &set, &mut sprof);
                assert_eq!(
                    reference, sharded,
                    "{} batch {batch} over {shards} shards drifted",
                    cfg.name
                );
            }
        }
    }
}

#[test]
fn skewed_assignment_is_also_exact() {
    // All-but-one table on shard 0, the last table alone on shard 3
    // (with empty shards in between) — placement shape must not
    // matter, only the table→shard map's totality.
    let cfg = zoo::dlrm_rmc1();
    let mut rng = StdRng::seed_from_u64(7);
    let model = RecModel::instantiate(&cfg, ModelScale::tiny(), &mut rng);
    let inputs = model.generate_inputs(8, &mut rng);
    let mut assignment = vec![0usize; cfg.tables.len()];
    *assignment.last_mut().unwrap() = 3;
    let set = model.sharded_embeddings(&assignment);
    assert_eq!(set.num_shards(), 4);
    let mut p1 = OpProfiler::new();
    let mut p2 = OpProfiler::new();
    assert_eq!(
        model.forward(&inputs, &mut p1),
        model.forward_sharded(&inputs, &set, &mut p2)
    );
}

#[test]
#[should_panic(expected = "shard set covers")]
fn mismatched_shard_set_rejected() {
    let mut rng = StdRng::seed_from_u64(3);
    let ncf = RecModel::instantiate(&zoo::ncf(), ModelScale::tiny(), &mut rng);
    let wnd = RecModel::instantiate(&zoo::wide_and_deep(), ModelScale::tiny(), &mut rng);
    let set = wnd.sharded_embeddings(&round_robin(20, 2));
    let inputs = ncf.generate_inputs(2, &mut rng);
    let mut prof = OpProfiler::new();
    let _ = ncf.forward_sharded(&inputs, &set, &mut prof);
}
