//! Synthetic batch inputs matching a model's instantiated geometry.

use drs_tensor::Matrix;

/// Inputs for one forward pass over a batch of user–item pairs.
///
/// `sparse[t][b]` lists the embedding rows gathered from table `t` by
/// sample `b`. Built by [`crate::RecModel::generate_inputs`], which
/// draws indices uniformly from each table's instantiated row range —
/// uniform random indices are the *worst case* for locality and match
/// the paper's "irregular memory accesses" characterization.
#[derive(Debug, Clone)]
pub struct BatchInputs {
    /// Number of user–item pairs scored in this request.
    pub batch: usize,
    /// Dense (continuous) features, `batch × dense_input_dim`; `None`
    /// for models without dense inputs.
    pub dense: Option<Matrix>,
    /// Per-table, per-sample gathered indices.
    pub sparse: Vec<Vec<Vec<u32>>>,
}

impl BatchInputs {
    /// Validates the inputs against expected geometry.
    ///
    /// # Panics
    ///
    /// Panics if batch is zero or any per-table batch dimension is
    /// inconsistent.
    pub fn validate(&self) {
        assert!(self.batch > 0, "empty batch");
        if let Some(d) = &self.dense {
            assert_eq!(d.rows(), self.batch, "dense batch mismatch");
        }
        for (t, per_sample) in self.sparse.iter().enumerate() {
            assert_eq!(
                per_sample.len(),
                self.batch,
                "table {t} has {} samples, batch is {}",
                per_sample.len(),
                self.batch
            );
        }
    }

    /// Total embedding-row gathers across all tables and samples.
    pub fn total_lookups(&self) -> usize {
        self.sparse
            .iter()
            .flat_map(|per_sample| per_sample.iter().map(Vec::len))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_passes_consistent() {
        let b = BatchInputs {
            batch: 2,
            dense: Some(Matrix::zeros(2, 4)),
            sparse: vec![vec![vec![0, 1], vec![2, 3]]],
        };
        b.validate();
        assert_eq!(b.total_lookups(), 4);
    }

    #[test]
    #[should_panic(expected = "dense batch mismatch")]
    fn validate_rejects_dense_mismatch() {
        let b = BatchInputs {
            batch: 2,
            dense: Some(Matrix::zeros(3, 4)),
            sparse: vec![],
        };
        b.validate();
    }

    #[test]
    #[should_panic(expected = "table 0 has")]
    fn validate_rejects_sparse_mismatch() {
        let b = BatchInputs {
            batch: 2,
            dense: None,
            sparse: vec![vec![vec![0]]],
        };
        b.validate();
    }
}
