//! Per-operator analytic cost breakdown.
//!
//! The plain [`crate::characterize::Characterization`] aggregates a
//! model's FLOPs and bytes; this module keeps them *split by operator
//! class* (the same six classes as [`drs_nn::OpKind`]), which enables
//! two things:
//!
//! * predicting Table II's "Runtime Bottleneck" column purely
//!   analytically from the paper-scale configuration (no execution),
//!   cross-validated against the real-execution profile in
//!   `drs-platform`'s tests;
//! * per-operator cost attribution in the cost model's documentation
//!   and ablation experiments.

use crate::config::{ModelConfig, PoolingKind, TableRole};

/// Operator-class index, mirroring `drs_nn::OpKind::ALL` order:
/// `[DenseFc, PredictFc, Embedding, Attention, Recurrent, Interaction]`.
pub const OP_CLASSES: [&str; 6] = [
    "DenseFC",
    "PredictFC",
    "Embedding",
    "Attention",
    "Recurrent",
    "Interaction",
];

/// FLOPs and bytes per inference item, split by operator class.
#[derive(Debug, Clone, PartialEq)]
pub struct OpBreakdown {
    /// Model name.
    pub name: &'static str,
    /// FLOPs per item per class (OpKind::ALL order).
    pub flops_per_item: [f64; 6],
    /// Bytes moved per item per class (embedding gathers land in
    /// class 2; weights are amortized per *request*, so they are
    /// reported separately).
    pub bytes_per_item: [f64; 6],
    /// Weight bytes per class (streamed once per request).
    pub weight_bytes: [f64; 6],
}

fn mlp_flops(dims: &[usize]) -> f64 {
    dims.windows(2).map(|w| 2.0 * (w[0] * w[1]) as f64).sum()
}

fn mlp_params(dims: &[usize]) -> f64 {
    dims.windows(2).map(|w| (w[0] * w[1] + w[1]) as f64).sum()
}

fn mlp_act_bytes(dims: &[usize]) -> f64 {
    8.0 * dims.iter().map(|&d| d as f64).sum::<f64>()
}

/// Computes the per-operator breakdown from a paper-scale config.
pub fn op_breakdown(cfg: &ModelConfig) -> OpBreakdown {
    let mut flops = [0.0f64; 6];
    let mut bytes = [0.0f64; 6];
    let mut weights = [0.0f64; 6];

    // Dense bottom MLP (class 0).
    if cfg.dense_input_dim > 0 && !cfg.dense_fc.is_empty() {
        let mut dims = vec![cfg.dense_input_dim];
        dims.extend_from_slice(&cfg.dense_fc);
        flops[0] += mlp_flops(&dims);
        weights[0] += 4.0 * mlp_params(&dims);
        bytes[0] += mlp_act_bytes(&dims);
    } else if cfg.dense_input_dim > 0 {
        bytes[5] += 8.0 * cfg.dense_input_dim as f64; // passthrough copy
    }

    // Embedding gathers + pooling adds (class 2).
    for t in &cfg.tables {
        bytes[2] += (t.lookups * t.dim * 4) as f64;
        flops[2] += (t.lookups * t.dim) as f64;
    }

    // Attention path (class 3).
    if matches!(
        cfg.pooling,
        PoolingKind::Attention | PoolingKind::AttentionRnn
    ) {
        let d = cfg
            .tables
            .iter()
            .find(|t| t.role == TableRole::Candidate)
            .expect("validated")
            .dim;
        let scorer = [4 * d, cfg.attention_hidden, 1];
        weights[3] += 4.0 * mlp_params(&scorer);
        for t in cfg.tables.iter().filter(|t| t.role == TableRole::Behavior) {
            let seq = t.lookups as f64;
            flops[3] += seq * (mlp_flops(&scorer) + 4.0 * d as f64);
            bytes[3] += seq * 8.0 * (4 * d) as f64;
        }
    }

    // Recurrent path (class 4): interest-extraction GRU + AUGRU.
    if cfg.pooling == PoolingKind::AttentionRnn {
        let d = cfg
            .tables
            .iter()
            .find(|t| t.role == TableRole::Candidate)
            .expect("validated")
            .dim;
        let h = cfg.gru_hidden;
        let step_flops = 3.0 * 2.0 * ((d * h) as f64 + (h * h) as f64) + 10.0 * h as f64;
        let gru_params = 3.0 * ((d * h) as f64 + (h * h) as f64 + h as f64);
        weights[4] += 4.0 * 2.0 * gru_params;
        for t in cfg.tables.iter().filter(|t| t.role == TableRole::Behavior) {
            let seq = t.lookups as f64;
            flops[4] += 2.0 * seq * step_flops;
            bytes[4] += 2.0 * seq * 8.0 * h as f64;
        }
    }

    // Predictor stack(s) (class 1).
    let lookups: Vec<usize> = cfg.tables.iter().map(|t| t.lookups).collect();
    let mut pdims = vec![crate::model::interaction_width_for(cfg, &lookups)];
    pdims.extend_from_slice(&cfg.predict_fc);
    flops[1] += cfg.num_tasks as f64 * mlp_flops(&pdims);
    weights[1] += 4.0 * cfg.num_tasks as f64 * mlp_params(&pdims);
    bytes[1] += cfg.num_tasks as f64 * mlp_act_bytes(&pdims);

    // Interaction concat/sum traffic (class 5): copy of the feature
    // vector.
    bytes[5] += 8.0 * pdims[0] as f64;

    OpBreakdown {
        name: cfg.name,
        flops_per_item: flops,
        bytes_per_item: bytes,
        weight_bytes: weights,
    }
}

impl OpBreakdown {
    /// Estimated time share per operator class at a given batch size,
    /// using a simple two-resource model: compute at `peak_gflops`
    /// (GEMM-class FLOPs) and memory at `gather_bw`/`stream_bw` GB/s.
    ///
    /// This is the *analytic* counterpart of
    /// `drs_nn::OpProfiler::fractions` — the Table II cross-validation
    /// compares the two.
    pub fn time_fractions(
        &self,
        batch: usize,
        peak_gflops: f64,
        gather_bw_gbs: f64,
        stream_bw_gbs: f64,
    ) -> [f64; 6] {
        let b = batch.max(1) as f64;
        let mut t = [0.0f64; 6];
        for (i, slot) in t.iter_mut().enumerate() {
            let compute_us = self.flops_per_item[i] * b / (peak_gflops * 1e3);
            // Embedding gathers are irregular; everything else streams.
            let bw = if i == 2 { gather_bw_gbs } else { stream_bw_gbs };
            let mem_us = (self.bytes_per_item[i] * b + self.weight_bytes[i]) / (bw * 1e3);
            *slot = compute_us + mem_us;
        }
        let total: f64 = t.iter().sum();
        if total > 0.0 {
            for x in &mut t {
                *x /= total;
            }
        }
        t
    }

    /// Sums must agree with the aggregate characterization.
    pub fn total_flops_per_item(&self) -> f64 {
        self.flops_per_item.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{characterize, classify_bottleneck};
    use crate::zoo;

    #[test]
    fn breakdown_sums_match_aggregate() {
        for cfg in zoo::all() {
            let agg = characterize(&cfg);
            let ops = op_breakdown(&cfg);
            let rel = (ops.total_flops_per_item() - agg.flops_per_item).abs() / agg.flops_per_item;
            assert!(
                rel < 1e-9,
                "{}: {} vs {}",
                cfg.name,
                ops.total_flops_per_item(),
                agg.flops_per_item
            );
            let w: f64 = ops.weight_bytes.iter().sum();
            assert!(
                (w - agg.weight_bytes).abs() / agg.weight_bytes < 1e-9,
                "{}",
                cfg.name
            );
        }
    }

    #[test]
    fn analytic_fractions_are_distributions() {
        for cfg in zoo::all() {
            let fr = op_breakdown(&cfg).time_fractions(64, 60.0, 3.0, 60.0);
            let sum: f64 = fr.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{}", cfg.name);
            assert!(fr.iter().all(|&x| (0.0..=1.0).contains(&x)), "{}", cfg.name);
        }
    }

    #[test]
    fn analytic_bottleneck_reproduces_table_ii() {
        // The Table II column, derived with zero execution: a
        // Skylake-like two-resource model (60 GFLOP/s effective core,
        // 3 GB/s contended gather bandwidth, 60 GB/s streaming).
        for cfg in zoo::all() {
            let fr = op_breakdown(&cfg).time_fractions(64, 60.0, 3.0, 60.0);
            let label = classify_bottleneck(&fr);
            let ok = label == cfg.paper_bottleneck
                || (label.contains("MLP") && cfg.paper_bottleneck.contains("MLP"))
                || (label.contains("Embedding") && cfg.paper_bottleneck.contains("Embedding"))
                || (label.contains("GRU") && cfg.paper_bottleneck.contains("GRU"))
                || (label.contains("Attention") && cfg.paper_bottleneck.contains("Attention"));
            assert!(
                ok,
                "{}: analytic {label:?} vs paper {:?}",
                cfg.name, cfg.paper_bottleneck
            );
        }
    }

    #[test]
    fn class_placement_is_structural() {
        let ops = op_breakdown(&zoo::dien());
        assert!(ops.flops_per_item[4] > 0.0, "DIEN has recurrent FLOPs");
        assert!(ops.flops_per_item[3] > 0.0, "DIEN has attention FLOPs");
        let ops = op_breakdown(&zoo::ncf());
        assert_eq!(ops.flops_per_item[4], 0.0, "NCF has no recurrence");
        assert_eq!(ops.flops_per_item[0], 0.0, "NCF has no dense MLP");
        let ops = op_breakdown(&zoo::dlrm_rmc1());
        assert!(
            ops.bytes_per_item[2] > ops.bytes_per_item[0],
            "RMC1 gathers dominate"
        );
    }
}
