//! The DeepRecInfra model zoo: eight industry-representative neural
//! recommendation models.
//!
//! Section III of the paper composes a *generalized* recommendation
//! architecture (Figure 2) — dense features through a bottom MLP, sparse
//! categorical features through embedding-table lookups with pooling,
//! a feature-interaction stage, and a predictor MLP producing a
//! click-through-rate — and instantiates it eight ways (Table I):
//!
//! | Model | Origin | Character |
//! |-------|--------|-----------|
//! | NCF | academic / Netflix-prize lineage | MLP-dominated, GMF pooling |
//! | Wide&Deep | Google Play store | MLP-dominated, wide dense input |
//! | MT-WnD | YouTube | N parallel predictor stacks |
//! | DLRM-RMC1 | Facebook | embedding-dominated (few tables, many lookups) |
//! | DLRM-RMC2 | Facebook | embedding-dominated (many tables) |
//! | DLRM-RMC3 | Facebook | MLP-dominated (big bottom FC) |
//! | DIN | Alibaba | attention + embedding dominated |
//! | DIEN | Alibaba | attention-based GRU dominated |
//!
//! [`ModelConfig`] captures the architecture parameters at **paper
//! scale** (up to 10⁹-row embedding tables); [`RecModel`] instantiates
//! runnable weights at a configurable [`ModelScale`] (tables capped so a
//! laptop can hold them — the irregular-access *pattern* is preserved,
//! see DESIGN.md §2). The [`characterize`] module computes analytic
//! FLOP/byte profiles from the paper-scale configs for the roofline and
//! cost models.
//!
//! # Examples
//!
//! ```
//! use drs_models::{zoo, ModelScale, RecModel};
//! use drs_nn::OpProfiler;
//! use rand::SeedableRng;
//!
//! let cfg = zoo::ncf();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let model = RecModel::instantiate(&cfg, ModelScale::tiny(), &mut rng);
//! let inputs = model.generate_inputs(4, &mut rng);
//! let mut prof = OpProfiler::new();
//! let ctrs = model.forward(&inputs, &mut prof);
//! assert_eq!(ctrs.len(), 4);
//! assert!(ctrs.iter().all(|p| (0.0..=1.0).contains(p)));
//! ```

#![warn(missing_docs)]

pub mod characterize;
mod config;
mod inputs;
mod model;
pub mod opcost;
pub mod zoo;

pub use config::{InteractionKind, ModelConfig, ModelScale, PoolingKind, TableConfig, TableRole};
pub use inputs::BatchInputs;
pub use model::RecModel;
