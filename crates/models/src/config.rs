//! Architecture configuration for the generalized recommendation model
//! (Figure 2 / Table I).

/// How a model combines the rows gathered from its embedding tables
/// (the "sparse feature pooling" operator of Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolingKind {
    /// Per-table element-wise sum of gathered rows (DLRM).
    Sum,
    /// Concatenate the (one-hot) rows of all tables (WnD, MT-WnD).
    Concat,
    /// Generalized matrix factorization: consecutive table pairs are
    /// combined by element-wise product, then concatenated (NCF).
    Gmf,
    /// DIN: behavior-sequence tables are pooled by a local-activation
    /// (attention) unit against the candidate item; profile tables
    /// concatenate.
    Attention,
    /// DIEN: behavior sequences run through attention-gated GRU layers;
    /// profile tables concatenate.
    AttentionRnn,
}

/// How dense and pooled-sparse features are combined before the
/// predictor stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InteractionKind {
    /// Concatenate all feature vectors (widths may differ).
    Concat,
    /// Element-wise sum (requires equal widths; DLRM-style).
    Sum,
}

/// What a table represents in the generalized architecture. Only the
/// attention models distinguish roles; for the others every table is
/// [`TableRole::Profile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TableRole {
    /// Ordinary categorical feature (user/item profile).
    Profile,
    /// The candidate item being scored (one lookup; attention models).
    Candidate,
    /// User behavior history: `lookups` is the sequence length and the
    /// gathered rows feed the attention / GRU path.
    Behavior,
}

/// One embedding table at paper scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableConfig {
    /// Row count (feature cardinality) **at paper scale** — up to 10⁹.
    /// Instantiation caps this via [`ModelScale`].
    pub rows: u64,
    /// Latent dimension (16–64 in production, Section II-A).
    pub dim: usize,
    /// Lookups per scored item (1 for one-hot; ~80 for DLRM multi-hot;
    /// the behavior-sequence length for attention models).
    pub lookups: usize,
    /// Role in the architecture.
    pub role: TableRole,
}

impl TableConfig {
    /// A one-hot profile table.
    pub fn one_hot(rows: u64, dim: usize) -> Self {
        TableConfig {
            rows,
            dim,
            lookups: 1,
            role: TableRole::Profile,
        }
    }

    /// A multi-hot profile table with `lookups` gathered rows per item.
    pub fn multi_hot(rows: u64, dim: usize, lookups: usize) -> Self {
        TableConfig {
            rows,
            dim,
            lookups,
            role: TableRole::Profile,
        }
    }

    /// Paper-scale storage footprint in bytes (f32 entries).
    pub fn bytes(&self) -> u64 {
        self.rows * self.dim as u64 * 4
    }

    /// Bytes of table rows gathered per scored item — the table's
    /// access weight (irregular DRAM traffic, `lookups × dim × 4`).
    /// The lookup-frequency-balanced placement policy in `drs-shard`
    /// balances shards by this quantity.
    pub fn gather_bytes_per_item(&self) -> u64 {
        (self.lookups * self.dim * 4) as u64
    }
}

/// Complete architecture description of one recommendation model, at
/// paper scale.
///
/// Widths follow Table I's notation: `dense_fc = [256, 128, 32]` means
/// the bottom MLP maps `dense_input_dim → 256 → 128 → 32`; the predictor
/// input width is whatever the interaction stage produces, so
/// `predict_fc` lists only the subsequent layer widths.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Model name as used in the paper ("DLRM-RMC1", "WND", …).
    pub name: &'static str,
    /// Organization / domain (Table I's provenance columns).
    pub domain: &'static str,
    /// Width of the continuous feature vector (0 = no dense features).
    pub dense_input_dim: usize,
    /// Bottom-MLP widths (empty = dense features bypass straight to the
    /// interaction stage, as in WnD).
    pub dense_fc: Vec<usize>,
    /// Predictor-MLP widths after the interaction stage (Table I's
    /// "Predict-FC"). If the final width exceeds 1 the CTR is read from
    /// output unit 0 through a sigmoid (DIN/DIEN's 2-logit heads).
    pub predict_fc: Vec<usize>,
    /// Number of parallel predictor stacks (MT-WnD's multi-task heads).
    pub num_tasks: usize,
    /// Embedding tables.
    pub tables: Vec<TableConfig>,
    /// Sparse pooling operator.
    pub pooling: PoolingKind,
    /// Dense/sparse interaction operator.
    pub interaction: InteractionKind,
    /// Hidden width of the attention scoring MLP (attention models).
    pub attention_hidden: usize,
    /// Hidden width of the GRU state (DIEN).
    pub gru_hidden: usize,
    /// Published p95 SLA target in milliseconds (Table II's "Medium").
    pub sla_ms: f64,
    /// The paper's bottleneck label for Table II (validated against our
    /// measured operator breakdown in the Table II experiment).
    pub paper_bottleneck: &'static str,
}

impl ModelConfig {
    /// Behavior-sequence length (lookups of the first behavior table;
    /// 0 when the model has no attention path).
    pub fn seq_len(&self) -> usize {
        self.tables
            .iter()
            .find(|t| t.role == TableRole::Behavior)
            .map_or(0, |t| t.lookups)
    }

    /// Total paper-scale embedding storage in bytes.
    pub fn embedding_bytes(&self) -> u64 {
        self.tables.iter().map(TableConfig::bytes).sum()
    }

    /// Total embedding-row gathers per scored item.
    pub fn lookups_per_item(&self) -> usize {
        self.tables.iter().map(|t| t.lookups).sum()
    }

    /// Pooled-output bytes per scored item for table `i` under this
    /// model's pooling operator — the payload a table-wise shard must
    /// ship to the merging node. Sum pooling reduces the gathered rows
    /// to one `dim`-wide row; every other operator keeps the rows
    /// (concat-shaped), so behavior-sequence tables ship `seq × dim`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn pooled_bytes_per_item(&self, i: usize) -> u64 {
        let t = &self.tables[i];
        let width = match self.pooling {
            PoolingKind::Sum => t.dim,
            PoolingKind::Concat
            | PoolingKind::Gmf
            | PoolingKind::Attention
            | PoolingKind::AttentionRnn => t.dim * t.lookups,
        };
        (width * 4) as u64
    }

    /// Validates internal consistency; called by `RecModel::instantiate`.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message when the configuration cannot
    /// be built (no features at all, attention model without
    /// candidate/behavior tables, sum interaction with mismatched
    /// widths, …).
    pub fn validate(&self) {
        assert!(!self.name.is_empty(), "model needs a name");
        assert!(
            self.dense_input_dim > 0 || !self.tables.is_empty(),
            "{}: a model needs dense or sparse inputs",
            self.name
        );
        assert!(
            !self.predict_fc.is_empty(),
            "{}: predictor stack cannot be empty",
            self.name
        );
        assert!(
            self.num_tasks >= 1,
            "{}: needs at least one task",
            self.name
        );
        if matches!(
            self.pooling,
            PoolingKind::Attention | PoolingKind::AttentionRnn
        ) {
            assert!(
                self.tables.iter().any(|t| t.role == TableRole::Candidate),
                "{}: attention pooling needs a candidate table",
                self.name
            );
            assert!(
                self.tables.iter().any(|t| t.role == TableRole::Behavior),
                "{}: attention pooling needs a behavior table",
                self.name
            );
            assert!(
                self.attention_hidden > 0,
                "{}: attention hidden width must be positive",
                self.name
            );
            let cand_dim = self
                .tables
                .iter()
                .find(|t| t.role == TableRole::Candidate)
                .expect("candidate table")
                .dim;
            assert!(
                self.tables
                    .iter()
                    .filter(|t| t.role == TableRole::Behavior)
                    .all(|t| t.dim == cand_dim),
                "{}: behavior and candidate embedding widths must match",
                self.name
            );
        }
        if self.pooling == PoolingKind::Gmf {
            assert!(
                self.tables.len().is_multiple_of(2) && !self.tables.is_empty(),
                "{}: GMF pairs tables, so the count must be even",
                self.name
            );
            assert!(
                self.tables
                    .windows(2)
                    .step_by(2)
                    .all(|w| w[0].dim == w[1].dim),
                "{}: GMF pair dims must match",
                self.name
            );
        }
    }
}

/// Instantiation scale for [`crate::RecModel`].
///
/// Production tables reach 10⁹ rows (tens of GB); a laptop cannot hold
/// eight such models. Capping rows preserves what matters for systems
/// behaviour — the *number* of irregular gathers and the bytes they
/// touch per query — while the paper-scale numbers remain available
/// analytically through [`crate::characterize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelScale {
    /// Maximum instantiated rows per embedding table.
    pub table_rows_cap: usize,
    /// Maximum instantiated behavior-sequence length.
    pub seq_len_cap: usize,
}

impl ModelScale {
    /// Default experiment scale: tables ≤ 100 k rows, sequences ≤ 64.
    pub fn default_scale() -> Self {
        ModelScale {
            table_rows_cap: 100_000,
            seq_len_cap: 64,
        }
    }

    /// Unit-test scale: tables ≤ 1 000 rows, sequences ≤ 8.
    pub fn tiny() -> Self {
        ModelScale {
            table_rows_cap: 1_000,
            seq_len_cap: 8,
        }
    }
}

impl Default for ModelScale {
    fn default() -> Self {
        Self::default_scale()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> ModelConfig {
        ModelConfig {
            name: "mini",
            domain: "-",
            dense_input_dim: 4,
            dense_fc: vec![4],
            predict_fc: vec![8, 1],
            num_tasks: 1,
            tables: vec![TableConfig::one_hot(10, 4)],
            pooling: PoolingKind::Sum,
            interaction: InteractionKind::Concat,
            attention_hidden: 0,
            gru_hidden: 0,
            sla_ms: 10.0,
            paper_bottleneck: "-",
        }
    }

    #[test]
    fn minimal_validates() {
        minimal().validate();
    }

    #[test]
    #[should_panic(expected = "needs dense or sparse inputs")]
    fn no_features_panics() {
        let mut c = minimal();
        c.dense_input_dim = 0;
        c.tables.clear();
        c.validate();
    }

    #[test]
    #[should_panic(expected = "needs a candidate table")]
    fn attention_without_candidate_panics() {
        let mut c = minimal();
        c.pooling = PoolingKind::Attention;
        c.attention_hidden = 8;
        c.tables = vec![TableConfig {
            rows: 10,
            dim: 4,
            lookups: 5,
            role: TableRole::Behavior,
        }];
        c.validate();
    }

    #[test]
    #[should_panic(expected = "count must be even")]
    fn gmf_odd_tables_panics() {
        let mut c = minimal();
        c.pooling = PoolingKind::Gmf;
        c.tables = vec![TableConfig::one_hot(10, 4); 3];
        c.validate();
    }

    #[test]
    fn derived_quantities() {
        let mut c = minimal();
        c.tables = vec![
            TableConfig::multi_hot(100, 8, 80),
            TableConfig::one_hot(50, 8),
        ];
        assert_eq!(c.lookups_per_item(), 81);
        assert_eq!(c.embedding_bytes(), (100 * 8 + 50 * 8) * 4);
        assert_eq!(c.seq_len(), 0);
    }

    #[test]
    fn sharding_weights_and_payloads() {
        let mut c = minimal();
        c.tables = vec![
            TableConfig::multi_hot(100, 8, 80),
            TableConfig::one_hot(50, 8),
        ];
        assert_eq!(c.tables[0].gather_bytes_per_item(), 80 * 8 * 4);
        assert_eq!(c.tables[1].gather_bytes_per_item(), 8 * 4);
        // Sum pooling reduces to one row per table.
        assert_eq!(c.pooled_bytes_per_item(0), 8 * 4);
        // Concat keeps every gathered row in the payload.
        c.pooling = PoolingKind::Concat;
        assert_eq!(c.pooled_bytes_per_item(0), 80 * 8 * 4);
        assert_eq!(c.pooled_bytes_per_item(1), 8 * 4);
    }

    #[test]
    fn scales_ordered() {
        assert!(ModelScale::tiny().table_rows_cap < ModelScale::default_scale().table_rows_cap);
        assert_eq!(ModelScale::default(), ModelScale::default_scale());
    }
}
