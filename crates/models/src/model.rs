//! The runnable generalized recommendation model (Figure 2).

use crate::config::{InteractionKind, ModelConfig, ModelScale, PoolingKind, TableRole};
use crate::inputs::BatchInputs;
use drs_nn::{
    AttentionUnit, AuGru, EmbeddingBag, GruCell, Mlp, OpKind, OpProfiler, Pooling,
    ShardedEmbeddingSet,
};
use drs_tensor::{Activation, Matrix};
use rand::Rng;

/// An instantiated recommendation model with real weights, runnable on
/// the host CPU.
///
/// Construction follows Figure 2: the [`ModelConfig`] selects which of
/// the generalized architecture's components exist and how they are
/// sized; [`ModelScale`] caps embedding rows and sequence lengths so the
/// model fits in laptop memory (see DESIGN.md §2 for why this preserves
/// the systems behaviour under study).
///
/// The forward pass produces one click-through-rate per batch sample and
/// attributes every operator's wall-clock time to an
/// [`OpProfiler`] — the instrumentation behind Figure 3 and Table II.
#[derive(Debug)]
pub struct RecModel {
    cfg: ModelConfig,
    scale: ModelScale,
    dense_mlp: Option<Mlp>,
    predict: Vec<Mlp>,
    bags: Vec<EmbeddingBag>,
    /// Instantiated lookups per table (behavior sequences are capped).
    table_lookups: Vec<usize>,
    attention: Option<AttentionUnit>,
    gru: Option<GruCell>,
    augru: Option<AuGru>,
}

impl RecModel {
    /// Builds the model with fresh random weights.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`ModelConfig::validate`] or is
    /// internally inconsistent (e.g. DIEN with `gru_hidden` different
    /// from the candidate embedding width).
    pub fn instantiate(cfg: &ModelConfig, scale: ModelScale, rng: &mut impl Rng) -> Self {
        cfg.validate();
        assert!(
            scale.table_rows_cap > 0 && scale.seq_len_cap > 0,
            "degenerate scale"
        );

        let mut bags = Vec::with_capacity(cfg.tables.len());
        let mut table_lookups = Vec::with_capacity(cfg.tables.len());
        for t in &cfg.tables {
            let rows = (t.rows as usize).min(scale.table_rows_cap);
            let pooling = match (cfg.pooling, t.role) {
                (PoolingKind::Sum, _) => Pooling::Sum,
                (PoolingKind::Concat | PoolingKind::Gmf, _) => Pooling::Concat,
                (PoolingKind::Attention | PoolingKind::AttentionRnn, _) => Pooling::Concat,
            };
            bags.push(EmbeddingBag::new(rows, t.dim, pooling, rng));
            let lookups = if t.role == TableRole::Behavior {
                t.lookups.min(scale.seq_len_cap)
            } else {
                t.lookups
            };
            table_lookups.push(lookups);
        }

        let dense_mlp = if cfg.dense_input_dim > 0 && !cfg.dense_fc.is_empty() {
            let mut dims = vec![cfg.dense_input_dim];
            dims.extend_from_slice(&cfg.dense_fc);
            Some(Mlp::from_dims(
                &dims,
                Activation::Relu,
                Activation::Relu,
                rng,
            ))
        } else {
            None
        };

        let (attention, gru, augru) = match cfg.pooling {
            PoolingKind::Attention => {
                let dim = candidate_dim(cfg);
                (
                    Some(AttentionUnit::new(dim, cfg.attention_hidden, rng)),
                    None,
                    None,
                )
            }
            PoolingKind::AttentionRnn => {
                let dim = candidate_dim(cfg);
                assert_eq!(
                    cfg.gru_hidden, dim,
                    "{}: DIEN-style models need gru_hidden == candidate dim \
                     so attention can score GRU states against the candidate",
                    cfg.name
                );
                (
                    Some(AttentionUnit::new(dim, cfg.attention_hidden, rng)),
                    Some(GruCell::new(dim, cfg.gru_hidden, rng)),
                    Some(AuGru::new(cfg.gru_hidden, cfg.gru_hidden, rng)),
                )
            }
            _ => (None, None, None),
        };

        let feat_width = interaction_width_for(cfg, &table_lookups);
        let mut predict_dims = vec![feat_width];
        predict_dims.extend_from_slice(&cfg.predict_fc);
        let predict = (0..cfg.num_tasks)
            .map(|_| Mlp::from_dims(&predict_dims, Activation::Relu, Activation::None, rng))
            .collect();

        RecModel {
            cfg: cfg.clone(),
            scale,
            dense_mlp,
            predict,
            bags,
            table_lookups,
            attention,
            gru,
            augru,
        }
    }

    /// The model's configuration (paper scale).
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// The instantiation scale.
    pub fn scale(&self) -> ModelScale {
        self.scale
    }

    /// The model's paper name.
    pub fn name(&self) -> &str {
        self.cfg.name
    }

    /// Instantiated lookups per table (behavior sequences capped by the
    /// scale).
    pub fn table_lookups(&self) -> &[usize] {
        &self.table_lookups
    }

    /// Width of the feature vector entering the predictor stack.
    pub fn interaction_width(&self) -> usize {
        interaction_width_for(&self.cfg, &self.table_lookups)
    }

    /// Instantiated embedding storage in bytes.
    pub fn embedding_bytes(&self) -> usize {
        self.bags.iter().map(|b| b.table().bytes()).sum()
    }

    /// Total trainable parameters (MLPs + attention + GRUs; embeddings
    /// excluded).
    pub fn mlp_param_count(&self) -> usize {
        self.dense_mlp.as_ref().map_or(0, Mlp::param_count)
            + self.predict.iter().map(Mlp::param_count).sum::<usize>()
            + self
                .attention
                .as_ref()
                .map_or(0, AttentionUnit::param_count)
            + self.gru.as_ref().map_or(0, GruCell::param_count)
            + self.augru.as_ref().map_or(0, |g| g.cell().param_count())
    }

    /// Draws synthetic inputs matching this model's geometry: dense
    /// features from `U(-1, 1)` and uniformly random embedding indices
    /// (the locality worst case, matching production irregularity).
    pub fn generate_inputs(&self, batch: usize, rng: &mut impl Rng) -> BatchInputs {
        assert!(batch > 0, "empty batch");
        let dense = (self.cfg.dense_input_dim > 0).then(|| {
            Matrix::from_fn(batch, self.cfg.dense_input_dim, |_, _| {
                rng.gen_range(-1.0..1.0)
            })
        });
        let sparse = self
            .bags
            .iter()
            .zip(&self.table_lookups)
            .map(|(bag, &lookups)| {
                let rows = bag.table().rows() as u32;
                (0..batch)
                    .map(|_| (0..lookups).map(|_| rng.gen_range(0..rows)).collect())
                    .collect()
            })
            .collect();
        BatchInputs {
            batch,
            dense,
            sparse,
        }
    }

    /// Scores the batch, returning one CTR in `[0, 1]` per sample.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not match this model's geometry.
    pub fn forward(&self, inputs: &BatchInputs, prof: &mut OpProfiler) -> Vec<f32> {
        self.validate_inputs(inputs);
        // Per-table pooled lookups in declaration order — the step
        // table-wise sharding distributes (see `forward_sharded`).
        let pooled: Vec<Matrix> = self
            .bags
            .iter()
            .zip(&inputs.sparse)
            .map(|(bag, idx)| bag.forward(idx, prof))
            .collect();
        self.forward_from_pooled(inputs, pooled, prof)
    }

    /// Partitions this model's embedding tables table-wise per
    /// `assignment` (table `t` on shard `assignment[t]`), cloning the
    /// instantiated weights into a [`ShardedEmbeddingSet`].
    ///
    /// # Panics
    ///
    /// Panics if `assignment` does not cover every table.
    pub fn sharded_embeddings(&self, assignment: &[usize]) -> ShardedEmbeddingSet {
        ShardedEmbeddingSet::new(self.bags.clone(), assignment)
    }

    /// Scores the batch through the sharded lookup path: every shard
    /// computes pooled partials for its local tables, the partials are
    /// merged, and the rest of the pass (interaction + predictors) runs
    /// as usual. Numerically identical to [`RecModel::forward`] —
    /// each table's pooling runs whole on exactly one shard, so
    /// sharding changes *where* a lookup executes, never its result
    /// (see `tests/sharded_equivalence.rs`).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` or `set` does not match this model's
    /// geometry.
    pub fn forward_sharded(
        &self,
        inputs: &BatchInputs,
        set: &ShardedEmbeddingSet,
        prof: &mut OpProfiler,
    ) -> Vec<f32> {
        self.validate_inputs(inputs);
        assert_eq!(
            set.num_tables(),
            self.bags.len(),
            "{}: shard set covers {} tables, model has {}",
            self.cfg.name,
            set.num_tables(),
            self.bags.len()
        );
        let partials: Vec<_> = (0..set.num_shards())
            .map(|s| prof.time(OpKind::Embedding, || set.forward_shard(s, &inputs.sparse)))
            .collect();
        let pooled = set.merge(partials);
        self.forward_from_pooled(inputs, pooled, prof)
    }

    fn validate_inputs(&self, inputs: &BatchInputs) {
        inputs.validate();
        assert_eq!(
            inputs.sparse.len(),
            self.bags.len(),
            "{}: expected {} tables, got {}",
            self.cfg.name,
            self.bags.len(),
            inputs.sparse.len()
        );
    }

    /// The pass downstream of the per-table pooled lookups: dense
    /// path, sparse feature combination, interaction, predictors.
    /// `pooled[t]` is table `t`'s pooled output, however it was
    /// computed (locally or gathered from shards). Public so a serving
    /// runtime that gathers [`ShardedEmbeddingSet`] partials across
    /// nodes can run the dense tail at the merge point — the real
    /// counterpart of [`RecModel::forward_sharded`], which keeps every
    /// shard on one host.
    ///
    /// # Panics
    ///
    /// Panics if `pooled` does not match this model's table geometry.
    pub fn forward_from_pooled(
        &self,
        inputs: &BatchInputs,
        pooled: Vec<Matrix>,
        prof: &mut OpProfiler,
    ) -> Vec<f32> {
        let batch = inputs.batch;
        let mut feats: Vec<Matrix> = Vec::new();

        // Dense path.
        if let Some(dense) = &inputs.dense {
            let out = match &self.dense_mlp {
                Some(mlp) => mlp.forward(dense, OpKind::DenseFc, prof),
                None => dense.clone(), // WnD: bypass to interaction
            };
            feats.push(out);
        }

        // Sparse path.
        match self.cfg.pooling {
            PoolingKind::Sum | PoolingKind::Concat => {
                feats.extend(pooled);
            }
            PoolingKind::Gmf => {
                for pair in pooled.chunks(2) {
                    feats.push(prof.time(OpKind::Interaction, || pair[0].hadamard(&pair[1])));
                }
            }
            PoolingKind::Attention | PoolingKind::AttentionRnn => {
                let cand_i = self
                    .cfg
                    .tables
                    .iter()
                    .position(|t| t.role == TableRole::Candidate)
                    .expect("validated: candidate exists");
                let candidate = pooled[cand_i].clone();
                // Profile tables first, in declaration order.
                for (i, m) in pooled.iter().enumerate() {
                    if self.cfg.tables[i].role == TableRole::Profile {
                        feats.push(m.clone());
                    }
                }
                feats.push(candidate.clone());
                let att = self.attention.as_ref().expect("attention model");
                for (i, m) in pooled.into_iter().enumerate() {
                    if self.cfg.tables[i].role != TableRole::Behavior {
                        continue;
                    }
                    let seq = self.table_lookups[i];
                    let dim = self.cfg.tables[i].dim;
                    // Concat-pooled `B × (seq·dim)` block is row-major
                    // identical to the `(B·seq) × dim` sequence view.
                    let behaviors = m.reshaped(batch * seq, dim);
                    match self.cfg.pooling {
                        PoolingKind::Attention => {
                            feats.push(att.forward(&candidate, &behaviors, seq, prof));
                        }
                        PoolingKind::AttentionRnn => {
                            let gru = self.gru.as_ref().expect("DIEN gru");
                            let augru = self.augru.as_ref().expect("DIEN augru");
                            let states = gru.forward_all(&behaviors, seq, prof);
                            let scores = att.scores(&candidate, &states, seq, prof);
                            feats.push(augru.forward(&states, &scores, seq, prof));
                        }
                        _ => unreachable!(),
                    }
                }
            }
        }

        // Feature interaction.
        let refs: Vec<&Matrix> = feats.iter().collect();
        let feat = prof.time(OpKind::Interaction, || match self.cfg.interaction {
            InteractionKind::Concat => Matrix::concat_cols(&refs),
            InteractionKind::Sum => Matrix::sum_elementwise(&refs),
        });

        // Predictor stack(s); CTR = sigmoid of output unit 0, averaged
        // over tasks (MT-WnD scores multiple engagement objectives).
        let mut ctr = vec![0.0f32; batch];
        for mlp in &self.predict {
            let out = mlp.forward(&feat, OpKind::PredictFc, prof);
            for (b, c) in ctr.iter_mut().enumerate() {
                *c += Activation::Sigmoid.apply(out.get(b, 0));
            }
        }
        let inv = 1.0 / self.predict.len() as f32;
        for c in &mut ctr {
            *c *= inv;
        }
        ctr
    }
}

fn candidate_dim(cfg: &ModelConfig) -> usize {
    cfg.tables
        .iter()
        .find(|t| t.role == TableRole::Candidate)
        .expect("validated: candidate exists")
        .dim
}

/// Width of the interaction output — must agree exactly with what
/// [`RecModel::forward`] concatenates. Shared with `characterize` so the
/// analytic model and the runnable model can never diverge.
pub(crate) fn interaction_width_for(cfg: &ModelConfig, table_lookups: &[usize]) -> usize {
    let mut widths: Vec<usize> = Vec::new();
    if cfg.dense_input_dim > 0 {
        widths.push(if cfg.dense_fc.is_empty() {
            cfg.dense_input_dim
        } else {
            *cfg.dense_fc.last().expect("non-empty")
        });
    }
    match cfg.pooling {
        PoolingKind::Sum => {
            for t in &cfg.tables {
                widths.push(t.dim);
            }
        }
        PoolingKind::Concat => {
            for (t, &l) in cfg.tables.iter().zip(table_lookups) {
                widths.push(t.dim * l);
            }
        }
        PoolingKind::Gmf => {
            for pair in cfg.tables.chunks(2) {
                widths.push(pair[0].dim);
            }
        }
        PoolingKind::Attention | PoolingKind::AttentionRnn => {
            for t in &cfg.tables {
                if t.role == TableRole::Profile {
                    widths.push(t.dim);
                }
            }
            widths.push(candidate_dim(cfg));
            for t in &cfg.tables {
                if t.role == TableRole::Behavior {
                    widths.push(if cfg.pooling == PoolingKind::AttentionRnn {
                        cfg.gru_hidden
                    } else {
                        t.dim
                    });
                }
            }
        }
    }
    match cfg.interaction {
        InteractionKind::Concat => widths.iter().sum(),
        InteractionKind::Sum => {
            let w = widths[0];
            assert!(
                widths.iter().all(|&x| x == w),
                "{}: sum interaction needs equal widths, got {widths:?}",
                cfg.name
            );
            w
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny(cfg: &ModelConfig) -> RecModel {
        let mut rng = StdRng::seed_from_u64(7);
        RecModel::instantiate(cfg, ModelScale::tiny(), &mut rng)
    }

    #[test]
    fn all_zoo_models_forward_at_tiny_scale() {
        for cfg in zoo::all() {
            let model = tiny(&cfg);
            let mut rng = StdRng::seed_from_u64(1);
            for batch in [1usize, 3, 16] {
                let inputs = model.generate_inputs(batch, &mut rng);
                let mut prof = OpProfiler::new();
                let ctrs = model.forward(&inputs, &mut prof);
                assert_eq!(ctrs.len(), batch, "{}", cfg.name);
                assert!(
                    ctrs.iter().all(|p| (0.0..=1.0).contains(p)),
                    "{}: CTR outside [0,1]: {ctrs:?}",
                    cfg.name
                );
                assert!(prof.total().as_nanos() > 0, "{}", cfg.name);
            }
        }
    }

    #[test]
    fn forward_is_deterministic() {
        let cfg = zoo::dlrm_rmc1();
        let model = tiny(&cfg);
        let mut rng = StdRng::seed_from_u64(3);
        let inputs = model.generate_inputs(4, &mut rng);
        let mut p1 = OpProfiler::new();
        let mut p2 = OpProfiler::new();
        assert_eq!(
            model.forward(&inputs, &mut p1),
            model.forward(&inputs, &mut p2)
        );
    }

    #[test]
    fn scale_caps_tables_and_sequences() {
        let cfg = zoo::din();
        let model = tiny(&cfg);
        assert!(model
            .bags_rows()
            .iter()
            .all(|&r| r <= ModelScale::tiny().table_rows_cap));
        // Behavior tables capped at 8 (tiny seq cap); profile stay 1.
        let b = model.table_lookups();
        assert!(b.contains(&8));
        assert!(b.contains(&1));
    }

    #[test]
    fn interaction_width_matches_forward() {
        // If these disagreed, the predictor matmul would panic on shape;
        // forward succeeding is the real assertion. Check a couple of
        // widths explicitly too.
        let ncf = tiny(&zoo::ncf());
        assert_eq!(ncf.interaction_width(), 2 * 32); // two GMF pairs
        let wnd = tiny(&zoo::wide_and_deep());
        assert_eq!(wnd.interaction_width(), 1000 + 20 * 32);
        let dien = tiny(&zoo::dien());
        assert_eq!(dien.interaction_width(), 8 * 32 + 32 + 32);
    }

    #[test]
    fn mt_wnd_averages_tasks() {
        let model = tiny(&zoo::mt_wide_and_deep());
        let mut rng = StdRng::seed_from_u64(5);
        let inputs = model.generate_inputs(2, &mut rng);
        let mut prof = OpProfiler::new();
        let ctrs = model.forward(&inputs, &mut prof);
        assert!(ctrs.iter().all(|p| (0.0..=1.0).contains(p)));
        // Four predictor stacks ran.
        assert_eq!(prof.count_for(OpKind::PredictFc), 4);
    }

    #[test]
    fn generate_inputs_respects_geometry() {
        let model = tiny(&zoo::dlrm_rmc2());
        let mut rng = StdRng::seed_from_u64(6);
        let inputs = model.generate_inputs(5, &mut rng);
        inputs.validate();
        assert_eq!(inputs.sparse.len(), 40);
        assert_eq!(inputs.total_lookups(), 5 * 40 * 80);
        assert!(inputs.dense.as_ref().unwrap().cols() == 256);
    }

    #[test]
    #[should_panic(expected = "expected 4 tables")]
    fn mismatched_inputs_panic() {
        let ncf = tiny(&zoo::ncf());
        let mut rng = StdRng::seed_from_u64(8);
        let other = tiny(&zoo::wide_and_deep());
        let inputs = other.generate_inputs(2, &mut rng);
        let mut prof = OpProfiler::new();
        let _ = ncf.forward(&inputs, &mut prof);
    }

    #[test]
    fn sum_interaction_supported() {
        use crate::config::TableConfig;
        let cfg = ModelConfig {
            name: "sum-model",
            domain: "-",
            dense_input_dim: 16,
            dense_fc: vec![32, 8],
            predict_fc: vec![4, 1],
            num_tasks: 1,
            tables: vec![TableConfig::multi_hot(100, 8, 4); 3],
            pooling: PoolingKind::Sum,
            interaction: InteractionKind::Sum,
            attention_hidden: 0,
            gru_hidden: 0,
            sla_ms: 1.0,
            paper_bottleneck: "-",
        };
        let model = tiny(&cfg);
        assert_eq!(model.interaction_width(), 8);
        let mut rng = StdRng::seed_from_u64(9);
        let inputs = model.generate_inputs(3, &mut rng);
        let mut prof = OpProfiler::new();
        let ctrs = model.forward(&inputs, &mut prof);
        assert_eq!(ctrs.len(), 3);
    }

    impl RecModel {
        fn bags_rows(&self) -> Vec<usize> {
            self.bags.iter().map(|b| b.table().rows()).collect()
        }
    }
}
