//! Analytic workload characterization (Figure 1, Table II).
//!
//! Everything here is computed from the **paper-scale** [`ModelConfig`]
//! alone — no weights are allocated — so 10⁹-row tables cost nothing to
//! reason about. Two kinds of outputs:
//!
//! * FLOP and byte counts per inference, feeding the roofline plot
//!   (Figure 1a), the memory-access breakdown (Figure 1b), and the
//!   platform cost models in `drs-platform`;
//! * bottleneck classification from measured operator fractions
//!   (Table II's "Runtime Bottleneck" column).

use crate::config::{ModelConfig, PoolingKind, TableRole};

/// Analytic per-inference cost profile of a model at paper scale.
#[derive(Debug, Clone, PartialEq)]
pub struct Characterization {
    /// Model name.
    pub name: &'static str,
    /// FLOPs per scored item (batch-1 forward pass).
    pub flops_per_item: f64,
    /// MLP/attention/GRU weight bytes (read once per request, amortized
    /// across the batch).
    pub weight_bytes: f64,
    /// Dense activation traffic per item (reads + writes).
    pub act_bytes_per_item: f64,
    /// Embedding rows gathered per item (irregular DRAM traffic).
    pub emb_bytes_per_item: f64,
}

impl Characterization {
    /// Total FLOPs for a batch of `b`.
    pub fn flops(&self, b: usize) -> f64 {
        self.flops_per_item * b as f64
    }

    /// Total bytes moved for a batch of `b` (weights amortized once).
    pub fn bytes(&self, b: usize) -> f64 {
        self.weight_bytes + (self.act_bytes_per_item + self.emb_bytes_per_item) * b as f64
    }

    /// Arithmetic intensity (FLOPs / byte) at batch `b` — the x-axis of
    /// Figure 1a. Grows with batch because weights are reused.
    pub fn arithmetic_intensity(&self, b: usize) -> f64 {
        self.flops(b) / self.bytes(b)
    }

    /// Fraction of batch-`b` traffic that is *sparse* (embedding
    /// gathers) — Figure 1b's breakdown.
    pub fn sparse_byte_fraction(&self, b: usize) -> f64 {
        self.emb_bytes_per_item * b as f64 / self.bytes(b)
    }

    /// Attainable GFLOP/s under a roofline with the given peak compute
    /// and memory bandwidth — `min(peak, AI × bw)`.
    pub fn attainable_gflops(&self, b: usize, peak_gflops: f64, bw_gbs: f64) -> f64 {
        peak_gflops.min(self.arithmetic_intensity(b) * bw_gbs)
    }
}

fn mlp_flops(dims: &[usize]) -> f64 {
    dims.windows(2).map(|w| 2.0 * (w[0] * w[1]) as f64).sum()
}

fn mlp_params(dims: &[usize]) -> f64 {
    dims.windows(2).map(|w| (w[0] * w[1] + w[1]) as f64).sum()
}

fn mlp_act_elems(dims: &[usize]) -> f64 {
    dims.iter().map(|&d| d as f64).sum()
}

/// Width of the predictor input at paper scale (uncapped sequences).
fn paper_interaction_width(cfg: &ModelConfig) -> usize {
    let lookups: Vec<usize> = cfg.tables.iter().map(|t| t.lookups).collect();
    crate::model::interaction_width_for(cfg, &lookups)
}

/// Computes the analytic profile of a model at paper scale.
pub fn characterize(cfg: &ModelConfig) -> Characterization {
    let mut flops = 0.0;
    let mut weight_bytes = 0.0;
    let mut act_elems = 0.0;

    // Dense bottom MLP.
    if cfg.dense_input_dim > 0 && !cfg.dense_fc.is_empty() {
        let mut dims = vec![cfg.dense_input_dim];
        dims.extend_from_slice(&cfg.dense_fc);
        flops += mlp_flops(&dims);
        weight_bytes += 4.0 * mlp_params(&dims);
        act_elems += mlp_act_elems(&dims);
    } else if cfg.dense_input_dim > 0 {
        act_elems += cfg.dense_input_dim as f64;
    }

    // Embedding pooling (sum adds dim FLOPs per gathered row).
    let mut emb_bytes = 0.0;
    for t in &cfg.tables {
        emb_bytes += (t.lookups * t.dim * 4) as f64;
        flops += (t.lookups * t.dim) as f64; // pooling adds / copies
    }

    // Attention path.
    if matches!(
        cfg.pooling,
        PoolingKind::Attention | PoolingKind::AttentionRnn
    ) {
        let d = cfg
            .tables
            .iter()
            .find(|t| t.role == TableRole::Candidate)
            .expect("validated")
            .dim;
        let scorer = [4 * d, cfg.attention_hidden, 1];
        weight_bytes += 4.0 * mlp_params(&scorer);
        for t in cfg.tables.iter().filter(|t| t.role == TableRole::Behavior) {
            let seq = t.lookups as f64;
            // Pair-feature build + scorer MLP + weighted sum per step.
            flops += seq * (mlp_flops(&scorer) + 4.0 * d as f64);
            act_elems += seq * (4 * d) as f64;
        }
    }

    // Recurrent path (DIEN: interest-extraction GRU + AUGRU).
    if cfg.pooling == PoolingKind::AttentionRnn {
        let d = cfg
            .tables
            .iter()
            .find(|t| t.role == TableRole::Candidate)
            .expect("validated")
            .dim;
        let h = cfg.gru_hidden;
        let step_flops = 3.0 * 2.0 * ((d * h) as f64 + (h * h) as f64) + 10.0 * h as f64;
        let gru_params = 3.0 * ((d * h) as f64 + (h * h) as f64 + h as f64);
        weight_bytes += 4.0 * 2.0 * gru_params;
        for t in cfg.tables.iter().filter(|t| t.role == TableRole::Behavior) {
            let seq = t.lookups as f64;
            flops += 2.0 * seq * step_flops;
            act_elems += 2.0 * seq * h as f64;
        }
    }

    // Predictor stack(s).
    let mut pdims = vec![paper_interaction_width(cfg)];
    pdims.extend_from_slice(&cfg.predict_fc);
    flops += cfg.num_tasks as f64 * mlp_flops(&pdims);
    weight_bytes += 4.0 * cfg.num_tasks as f64 * mlp_params(&pdims);
    act_elems += cfg.num_tasks as f64 * mlp_act_elems(&pdims);

    Characterization {
        name: cfg.name,
        flops_per_item: flops,
        weight_bytes,
        // Activations are written once and read once.
        act_bytes_per_item: 2.0 * 4.0 * act_elems,
        emb_bytes_per_item: emb_bytes,
    }
}

/// Reference roofline points for non-recommendation DNNs (Figure 1a's
/// CNN/RNN comparisons). Arithmetic intensities are the commonly cited
/// inference-time values; they exist only to position the rec models'
/// points relative to compute-bound workloads.
pub fn reference_points() -> Vec<(&'static str, f64, f64)> {
    vec![
        // (name, arithmetic intensity FLOPs/B, GFLOPs per inference)
        ("ResNet50", 40.0, 4.1),
        ("DeepSpeech2", 4.0, 2.4),
    ]
}

/// Maps a measured operator-time breakdown (fractions in
/// [`drs_nn::OpKind::ALL`] order) to the paper's Table-II bottleneck
/// labels.
pub fn classify_bottleneck(fractions: &[f64; 6]) -> &'static str {
    let mlp = fractions[0] + fractions[1];
    let emb = fractions[2];
    let att = fractions[3];
    let rec = fractions[4];
    let max = mlp.max(emb).max(att).max(rec);
    if rec == max {
        "Attention-based GRU dominated"
    } else if (emb == max && att > 0.15) || (att == max && emb > 0.15) {
        "Embedding + Attention dominated"
    } else if att == max {
        "Attention dominated"
    } else if emb == max {
        "Embedding dominated"
    } else {
        "MLP dominated"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn every_model_characterizes() {
        for cfg in zoo::all() {
            let c = characterize(&cfg);
            assert!(c.flops_per_item > 0.0, "{}", cfg.name);
            assert!(c.weight_bytes > 0.0, "{}", cfg.name);
            assert!(c.emb_bytes_per_item >= 0.0, "{}", cfg.name);
            assert!(c.arithmetic_intensity(1) > 0.0, "{}", cfg.name);
        }
    }

    #[test]
    fn rec_models_less_compute_intense_than_cnn() {
        // Figure 1a: recommendation models sit far left of ResNet50.
        let resnet_ai = 40.0;
        for cfg in zoo::all() {
            let ai = characterize(&cfg).arithmetic_intensity(1);
            assert!(
                ai < resnet_ai / 4.0,
                "{} AI {ai} not memory-bound vs CNN {resnet_ai}",
                cfg.name
            );
        }
    }

    #[test]
    fn arithmetic_intensity_grows_with_batch() {
        // Weight reuse across the batch raises AI — the reason GPUs need
        // large batches (Figure 4).
        for cfg in zoo::all() {
            let c = characterize(&cfg);
            assert!(
                c.arithmetic_intensity(256) > c.arithmetic_intensity(1),
                "{}",
                cfg.name
            );
        }
    }

    #[test]
    fn sparse_fraction_separates_model_classes() {
        // Figure 1b: DLRM-RMC1/2 and DIN are sparse-dominated; NCF, WND,
        // RMC3 dense-dominated.
        let frac = |cfg: &ModelConfig| characterize(cfg).sparse_byte_fraction(64);
        assert!(
            frac(&zoo::dlrm_rmc1()) > 0.5,
            "RMC1 {}",
            frac(&zoo::dlrm_rmc1())
        );
        assert!(
            frac(&zoo::dlrm_rmc2()) > 0.5,
            "RMC2 {}",
            frac(&zoo::dlrm_rmc2())
        );
        assert!(frac(&zoo::ncf()) < 0.3, "NCF {}", frac(&zoo::ncf()));
        assert!(
            frac(&zoo::wide_and_deep()) < 0.3,
            "WND {}",
            frac(&zoo::wide_and_deep())
        );
        assert!(
            frac(&zoo::dlrm_rmc3()) < frac(&zoo::dlrm_rmc1()),
            "RMC3 vs RMC1"
        );
    }

    #[test]
    fn wnd_is_most_compute_heavy_per_item() {
        // WnD's 1024-512-256 predictor over a 1640-wide input is the
        // biggest per-item FLOP load of the one-task models; it is the
        // model the paper calls "compute intensive" (Figure 4).
        let wnd = characterize(&zoo::wide_and_deep()).flops_per_item;
        for cfg in [zoo::ncf(), zoo::dlrm_rmc1(), zoo::dien()] {
            assert!(
                wnd > characterize(&cfg).flops_per_item,
                "WND {wnd} vs {} {}",
                cfg.name,
                characterize(&cfg).flops_per_item
            );
        }
    }

    #[test]
    fn classify_bottleneck_labels() {
        assert_eq!(
            classify_bottleneck(&[0.4, 0.3, 0.1, 0.05, 0.05, 0.1]),
            "MLP dominated"
        );
        assert_eq!(
            classify_bottleneck(&[0.05, 0.1, 0.7, 0.05, 0.0, 0.1]),
            "Embedding dominated"
        );
        assert_eq!(
            classify_bottleneck(&[0.05, 0.1, 0.4, 0.35, 0.0, 0.1]),
            "Embedding + Attention dominated"
        );
        assert_eq!(
            classify_bottleneck(&[0.05, 0.1, 0.1, 0.15, 0.5, 0.1]),
            "Attention-based GRU dominated"
        );
        assert_eq!(
            classify_bottleneck(&[0.1, 0.1, 0.1, 0.6, 0.0, 0.1]),
            "Attention dominated"
        );
    }

    #[test]
    fn roofline_attainable_caps_at_peak() {
        let c = characterize(&zoo::wide_and_deep());
        let at = c.attainable_gflops(1024, 100.0, 50.0);
        assert!(at <= 100.0);
        let low = c.attainable_gflops(1, 100.0, 50.0);
        assert!(low < at);
    }

    #[test]
    fn reference_points_present() {
        let refs = reference_points();
        assert!(refs.iter().any(|(n, _, _)| *n == "ResNet50"));
        assert!(refs.iter().any(|(n, _, _)| *n == "DeepSpeech2"));
    }
}
