//! The eight Table-I model configurations.
//!
//! Widths and table geometries follow Table I of the paper; where the
//! paper gives a range ("Tens", "Hundreds", "≤ 40") we pick a
//! representative point and note it. Row counts are **paper scale**
//! (they make the analytic cost model honest); instantiation caps them
//! via [`crate::ModelScale`].
//!
//! SLA targets come from Table II.

use crate::config::{InteractionKind, ModelConfig, PoolingKind, TableConfig, TableRole};

/// Neural Collaborative Filtering: matrix factorization generalized with
/// MLPs. Four one-hot tables (two user, two item), GMF pooling, a small
/// predictor — the lightest model of the suite (5 ms SLA).
pub fn ncf() -> ModelConfig {
    ModelConfig {
        name: "NCF",
        domain: "Movies",
        dense_input_dim: 0,
        dense_fc: vec![],
        predict_fc: vec![256, 256, 128, 1],
        num_tasks: 1,
        tables: vec![
            TableConfig::one_hot(1_000_000, 32), // user (GMF)
            TableConfig::one_hot(1_000_000, 32), // item (GMF)
            TableConfig::one_hot(1_000_000, 32), // user (MLP)
            TableConfig::one_hot(1_000_000, 32), // item (MLP)
        ],
        pooling: PoolingKind::Gmf,
        interaction: InteractionKind::Concat,
        attention_hidden: 0,
        gru_hidden: 0,
        sla_ms: 5.0,
        paper_bottleneck: "MLP dominated",
    }
}

/// Google Play's Wide & Deep: ~1000 dense features bypass straight to
/// the interaction stage; tens of one-hot tables; a large predictor
/// stack (1024-512-256).
pub fn wide_and_deep() -> ModelConfig {
    ModelConfig {
        name: "WND",
        domain: "Play Store",
        dense_input_dim: 1000,
        dense_fc: vec![], // dense features bypass the bottom MLP
        predict_fc: vec![1024, 512, 256, 1],
        num_tasks: 1,
        tables: vec![TableConfig::one_hot(1_000_000, 32); 20],
        pooling: PoolingKind::Concat,
        interaction: InteractionKind::Concat,
        attention_hidden: 0,
        gru_hidden: 0,
        sla_ms: 25.0,
        paper_bottleneck: "MLP dominated",
    }
}

/// YouTube's Multi-Task Wide & Deep: WnD with N parallel predictor
/// stacks scoring multiple engagement objectives (CTR, likes, …).
pub fn mt_wide_and_deep() -> ModelConfig {
    ModelConfig {
        name: "MT-WND",
        domain: "YouTube",
        num_tasks: 4,
        ..wide_and_deep()
    }
    .renamed("MT-WND")
}

/// Facebook DLRM-RMC1: small FC stacks, ≤10 tables with ~80 pooled
/// lookups each — embedding-table dominated.
pub fn dlrm_rmc1() -> ModelConfig {
    ModelConfig {
        name: "DLRM-RMC1",
        domain: "Social Media",
        dense_input_dim: 256,
        dense_fc: vec![256, 128, 32],
        predict_fc: vec![256, 64, 1],
        num_tasks: 1,
        tables: vec![TableConfig::multi_hot(5_000_000, 32, 80); 10],
        pooling: PoolingKind::Sum,
        interaction: InteractionKind::Concat,
        attention_hidden: 0,
        gru_hidden: 0,
        sla_ms: 100.0,
        paper_bottleneck: "Embedding dominated",
    }
}

/// Facebook DLRM-RMC2: like RMC1 but with ~40 tables — the heaviest
/// embedding load of the suite (400 ms SLA).
pub fn dlrm_rmc2() -> ModelConfig {
    ModelConfig {
        name: "DLRM-RMC2",
        domain: "Social Media",
        dense_input_dim: 256,
        dense_fc: vec![256, 128, 32],
        predict_fc: vec![512, 128, 1],
        num_tasks: 1,
        tables: vec![TableConfig::multi_hot(5_000_000, 32, 80); 40],
        pooling: PoolingKind::Sum,
        interaction: InteractionKind::Concat,
        attention_hidden: 0,
        gru_hidden: 0,
        sla_ms: 400.0,
        paper_bottleneck: "Embedding dominated",
    }
}

/// Facebook DLRM-RMC3: a wide bottom MLP (2560-512-32) and few lookups —
/// the MLP-dominated DLRM variant.
pub fn dlrm_rmc3() -> ModelConfig {
    ModelConfig {
        name: "DLRM-RMC3",
        domain: "Social Media",
        dense_input_dim: 512,
        dense_fc: vec![2560, 512, 32],
        predict_fc: vec![512, 128, 1],
        num_tasks: 1,
        tables: vec![TableConfig::multi_hot(5_000_000, 32, 20); 10],
        pooling: PoolingKind::Sum,
        interaction: InteractionKind::Concat,
        attention_hidden: 0,
        gru_hidden: 0,
        sla_ms: 100.0,
        paper_bottleneck: "MLP dominated",
    }
}

/// Alibaba's Deep Interest Network: attention (local activation units)
/// over a ~200-item behavior history against the candidate item, plus a
/// dozen one-hot profile tables. Runtime splits across embedding,
/// concat, FC and sum — no single dominant operator.
pub fn din() -> ModelConfig {
    let mut tables = vec![TableConfig::one_hot(1_000_000, 64); 12];
    tables.push(TableConfig {
        rows: 100_000_000,
        dim: 64,
        lookups: 1,
        role: TableRole::Candidate,
    });
    for _ in 0..2 {
        tables.push(TableConfig {
            rows: 100_000_000,
            dim: 64,
            lookups: 200,
            role: TableRole::Behavior,
        });
    }
    ModelConfig {
        name: "DIN",
        domain: "E-commerce",
        dense_input_dim: 0,
        dense_fc: vec![],
        predict_fc: vec![200, 80, 2],
        num_tasks: 1,
        tables,
        pooling: PoolingKind::Attention,
        interaction: InteractionKind::Concat,
        attention_hidden: 36,
        gru_hidden: 0,
        sla_ms: 100.0,
        paper_bottleneck: "Embedding + Attention dominated",
    }
}

/// Alibaba's Deep Interest Evolution Network: DIN's attention feeding
/// attention-gated GRUs (interest extraction GRU + AUGRU evolution
/// layer) over a ~32-step history — recurrent-layer dominated.
pub fn dien() -> ModelConfig {
    let mut tables = vec![TableConfig::one_hot(1_000_000, 32); 8];
    tables.push(TableConfig {
        rows: 10_000_000,
        dim: 32,
        lookups: 1,
        role: TableRole::Candidate,
    });
    tables.push(TableConfig {
        rows: 10_000_000,
        dim: 32,
        lookups: 32,
        role: TableRole::Behavior,
    });
    ModelConfig {
        name: "DIEN",
        domain: "E-commerce",
        dense_input_dim: 0,
        dense_fc: vec![],
        predict_fc: vec![200, 80, 2],
        num_tasks: 1,
        tables,
        pooling: PoolingKind::AttentionRnn,
        interaction: InteractionKind::Concat,
        attention_hidden: 32,
        gru_hidden: 32,
        sla_ms: 35.0,
        paper_bottleneck: "Attention-based GRU dominated",
    }
}

/// Extension beyond Table I: a DLRM configured like the MLPerf
/// recommendation inference benchmark the paper's related-work section
/// anticipates ("MLPerf is developing a recommendation benchmark that
/// is more representative of industry e-commerce tasks", §VII) —
/// DLRM-style with a handful of very large one-hot tables plus many
/// small ones, a 13-wide dense input, and moderate FC stacks.
///
/// Not part of [`all`] (the paper's evaluation sweeps exactly the eight
/// Table-I models); available for follow-on experiments.
pub fn dlrm_mlperf() -> ModelConfig {
    let mut tables = vec![TableConfig::one_hot(40_000_000, 64); 4];
    tables.extend(vec![TableConfig::one_hot(10_000, 64); 22]);
    ModelConfig {
        name: "DLRM-MLPerf",
        domain: "E-commerce (benchmark)",
        dense_input_dim: 13,
        dense_fc: vec![512, 256, 64],
        predict_fc: vec![512, 256, 1],
        num_tasks: 1,
        tables,
        pooling: PoolingKind::Sum,
        interaction: InteractionKind::Concat,
        attention_hidden: 0,
        gru_hidden: 0,
        sla_ms: 100.0,
        paper_bottleneck: "Embedding dominated",
    }
}

/// All eight Table-I models, in the paper's presentation order.
pub fn all() -> Vec<ModelConfig> {
    vec![
        dlrm_rmc1(),
        dlrm_rmc2(),
        dlrm_rmc3(),
        ncf(),
        wide_and_deep(),
        mt_wide_and_deep(),
        din(),
        dien(),
    ]
}

/// Looks a model up by its paper name (case-insensitive).
pub fn by_name(name: &str) -> Option<ModelConfig> {
    all()
        .into_iter()
        .find(|m| m.name.eq_ignore_ascii_case(name))
}

impl ModelConfig {
    fn renamed(mut self, name: &'static str) -> Self {
        self.name = name;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_validate() {
        for cfg in all() {
            cfg.validate();
        }
    }

    #[test]
    fn eight_distinct_models() {
        let names: std::collections::HashSet<_> = all().iter().map(|m| m.name).collect();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("dlrm-rmc2").unwrap().name, "DLRM-RMC2");
        assert_eq!(by_name("WND").unwrap().name, "WND");
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn table_i_fidelity() {
        // Spot-check the headline Table I numbers.
        let rmc1 = dlrm_rmc1();
        assert_eq!(rmc1.tables.len(), 10);
        assert!(rmc1.tables.iter().all(|t| t.lookups == 80));
        assert_eq!(rmc1.dense_fc, vec![256, 128, 32]);
        assert_eq!(rmc1.predict_fc, vec![256, 64, 1]);

        let rmc2 = dlrm_rmc2();
        assert_eq!(rmc2.tables.len(), 40);
        assert_eq!(rmc2.predict_fc, vec![512, 128, 1]);

        let rmc3 = dlrm_rmc3();
        assert_eq!(rmc3.dense_fc, vec![2560, 512, 32]);
        assert!(rmc3.tables.iter().all(|t| t.lookups == 20));

        let n = ncf();
        assert_eq!(n.tables.len(), 4);
        assert_eq!(n.predict_fc, vec![256, 256, 128, 1]);

        let w = wide_and_deep();
        assert!(w.dense_fc.is_empty(), "WnD dense features bypass");
        assert_eq!(w.predict_fc, vec![1024, 512, 256, 1]);

        let mt = mt_wide_and_deep();
        assert_eq!(mt.num_tasks, 4);

        let d = din();
        assert_eq!(d.seq_len(), 200, "DIN: hundreds of lookups");
        assert_eq!(d.predict_fc, vec![200, 80, 2]);

        let de = dien();
        assert_eq!(de.seq_len(), 32, "DIEN: tens of lookups");
        assert!(de.gru_hidden > 0);
    }

    #[test]
    fn table_ii_sla_targets() {
        let sla: Vec<(&str, f64)> = all().iter().map(|m| (m.name, m.sla_ms)).collect();
        assert!(sla.contains(&("DLRM-RMC1", 100.0)));
        assert!(sla.contains(&("DLRM-RMC2", 400.0)));
        assert!(sla.contains(&("DLRM-RMC3", 100.0)));
        assert!(sla.contains(&("NCF", 5.0)));
        assert!(sla.contains(&("WND", 25.0)));
        assert!(sla.contains(&("MT-WND", 25.0)));
        assert!(sla.contains(&("DIN", 100.0)));
        assert!(sla.contains(&("DIEN", 35.0)));
    }

    #[test]
    fn paper_scale_storage_is_tens_of_gb() {
        // Section II-A: "embedding tables often require storage on the
        // order of tens of GBs".
        let rmc2_gb = dlrm_rmc2().embedding_bytes() as f64 / 1e9;
        assert!(rmc2_gb > 10.0, "RMC2 tables only {rmc2_gb} GB");
        let din_gb = din().embedding_bytes() as f64 / 1e9;
        assert!(din_gb > 10.0, "DIN tables only {din_gb} GB");
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use crate::{ModelScale, RecModel};
    use drs_nn::OpProfiler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mlperf_extension_validates_and_runs() {
        let cfg = dlrm_mlperf();
        cfg.validate();
        assert_eq!(cfg.tables.len(), 26);
        let mut rng = StdRng::seed_from_u64(2);
        let model = RecModel::instantiate(&cfg, ModelScale::tiny(), &mut rng);
        let inputs = model.generate_inputs(4, &mut rng);
        let mut prof = OpProfiler::new();
        let ctrs = model.forward(&inputs, &mut prof);
        assert!(ctrs.iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn mlperf_not_in_table_i_sweep() {
        assert!(all().iter().all(|m| m.name != "DLRM-MLPerf"));
        assert_eq!(
            by_name("dlrm-mlperf"),
            None,
            "only Table-I models are looked up"
        );
    }
}
