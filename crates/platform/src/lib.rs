//! Hardware platform models: server CPUs and the GPU accelerator.
//!
//! The paper evaluates on two generations of dual-socket Intel servers
//! (Broadwell: 28 cores / 2.4 GHz / AVX-2 / inclusive LLC / 120 W;
//! Skylake: 40 cores / 2.0 GHz / AVX-512 / exclusive LLC / 125 W) and
//! models a server-class NVIDIA GTX 1080Ti "with an accelerator
//! performance model constructed with the performance profiles of each
//! recommendation model across the range of query sizes" (Section V).
//!
//! We take the same approach: [`CpuPlatform`] and [`GpuPlatform`] are
//! parameter sets, and [`ModelCost`] turns a model's analytic
//! characterization (`drs-models::characterize`) into service times:
//!
//! * **CPU requests** pay a fixed serving overhead, a compute term whose
//!   efficiency saturates with batch size (wider SIMD ⇒ larger batch
//!   needed — the AVX-512 vs AVX-2 effect of Figure 12c), and a memory
//!   term that contends for DRAM bandwidth across active cores, with
//!   inclusive caches degrading faster than exclusive ones (the
//!   Broadwell vs Skylake effect).
//! * **GPU queries** pay host-side data preparation per item plus PCIe
//!   transfer (the "60–80 % of end-to-end time is data loading"
//!   observation behind Figure 4), kernel-launch overheads that scale
//!   with the model's operator count (many embedding tables or GRU
//!   steps ⇒ many launches), and device compute/memory whose efficiency
//!   depends on the model class.
//! * **Sharded exchanges** ([`InterconnectModel`]) price the cross-node
//!   gather step of table-wise embedding sharding: a per-hop fabric
//!   round-trip, per-peer merge work, and the pooled payload streaming
//!   through the merging node's NIC, composed with
//!   [`ModelCost::shard_gather_request_us`] /
//!   [`ModelCost::dense_tail_us`] so sharded and unsharded service
//!   models recompose exactly.
//!
//! The calibration targets are the *shapes* of Figures 4 and 6 — which
//! models cross over early vs late and the speedup band at batch 1024 —
//! not the authors' absolute milliseconds. See the tests in
//! the cost module and DESIGN.md §6.1.

#![warn(missing_docs)]

mod cost;
mod cpu;
mod gpu;
mod net;

pub use cost::{GpuClass, ModelCost, SW_COMPUTE_FACTOR, SW_MEMORY_FACTOR};
pub use cpu::{CacheKind, CpuPlatform};
pub use gpu::GpuPlatform;
pub use net::InterconnectModel;
