//! Service-time model: turns a model's analytic characterization into
//! CPU-request and GPU-query latencies.

use crate::{CpuPlatform, GpuPlatform};
use drs_models::characterize::{characterize, Characterization};
use drs_models::{ModelConfig, PoolingKind, TableRole};

/// Software-stack slowdown of *GEMM-like compute* versus the roofline.
///
/// The analytic FLOP counts assume perfectly fused kernels at SIMD
/// peak; the paper's stack (Caffe2 + MKL) dispatches per-operator and
/// materializes intermediates, but MKL GEMMs themselves run close to
/// peak — a modest 2× tax.
pub const SW_COMPUTE_FACTOR: f64 = 2.0;

/// Software-stack slowdown of *memory-bound work* (embedding gathers,
/// weight/activation streaming, host-side tensor serialization) versus
/// the bandwidth roofline.
///
/// Framework gather/pool operators reach only a fraction of stream
/// bandwidth (pointer chasing, per-row bounds checks, no software
/// prefetch), so the tax here is much larger than on GEMMs. Together
/// with [`SW_COMPUTE_FACTOR`] this calibrates absolute service times
/// into the paper's range: DLRM capacities land at
/// hundreds-to-thousands of QPS per 40-core node (Figure 9's axis) and
/// tail-latency SLAs of tens of milliseconds genuinely constrain
/// scheduling — which is what makes the Low/Medium/High tier axis
/// meaningful.
pub const SW_MEMORY_FACTOR: f64 = 5.0;

/// How efficiently a model's kernels map onto the GPU.
///
/// Derived from the model's structure, this captures the paper's
/// observation that speedups differ sharply "between different classes
/// of recommendation models" (Figure 4): dense GEMM stacks saturate the
/// device, embedding gathers are bandwidth-limited and launch-heavy,
/// and attention/GRU models dispatch many small, poorly-occupying
/// kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuClass {
    /// GEMM-dominated models (NCF, WnD, MT-WnD, DLRM-RMC3).
    Compute,
    /// Embedding-gather-dominated models (DLRM-RMC1/2).
    Memory,
    /// Attention / recurrent models (DIN, DIEN).
    Attention,
}

impl GpuClass {
    /// Fraction of device peak FLOP/s this class reaches at full
    /// occupancy.
    fn flops_efficiency(self) -> f64 {
        match self {
            GpuClass::Compute => 1.0,
            GpuClass::Memory => 0.8,
            GpuClass::Attention => 0.15,
        }
    }

    /// Multiplier on the device's gather bandwidth.
    fn gather_bw_scale(self) -> f64 {
        match self {
            GpuClass::Compute | GpuClass::Memory => 1.0,
            GpuClass::Attention => 1.0 / 3.0,
        }
    }
}

/// Precomputed service-time model for one recommendation model.
///
/// # Examples
///
/// ```
/// use drs_models::zoo;
/// use drs_platform::{CpuPlatform, GpuPlatform, ModelCost};
///
/// let cost = ModelCost::new(&zoo::dlrm_rmc1());
/// let cpu = CpuPlatform::skylake();
/// let t64 = cost.cpu_request_us(&cpu, 64, 1);
/// let t128 = cost.cpu_request_us(&cpu, 128, 1);
/// assert!(t128 > t64, "bigger batches take longer in absolute terms");
/// let gpu = GpuPlatform::gtx_1080ti();
/// assert!(cost.gpu_query_us(&cpu, &gpu, 1024) > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct ModelCost {
    name: &'static str,
    ch: Characterization,
    class: GpuClass,
    /// Distinct feature tensors serialized per item for GPU transfer.
    feature_tensors: f64,
    /// Host→device payload bytes per item (dense features + indices).
    input_bytes_per_item: f64,
    /// Ordinary kernel launches per inference.
    plain_kernels: f64,
    /// Embedding-table kernel launches per inference.
    table_kernels: f64,
}

impl ModelCost {
    /// Builds the cost model from a paper-scale configuration.
    pub fn new(cfg: &ModelConfig) -> Self {
        let ch = characterize(cfg);
        let class = if matches!(
            cfg.pooling,
            PoolingKind::Attention | PoolingKind::AttentionRnn
        ) {
            GpuClass::Attention
        } else if ch.sparse_byte_fraction(64) > 0.5 {
            GpuClass::Memory
        } else {
            GpuClass::Compute
        };

        let dense_bytes = 4.0 * cfg.dense_input_dim as f64;
        let idx_bytes: f64 = cfg.tables.iter().map(|t| 4.0 * t.lookups as f64).sum();
        let feature_tensors =
            (if cfg.dense_input_dim > 0 { 1.0 } else { 0.0 }) + cfg.tables.len() as f64;

        let mut plain_kernels = 1.0; // feature interaction
        plain_kernels += cfg.dense_fc.len() as f64;
        plain_kernels += (cfg.num_tasks * cfg.predict_fc.len()) as f64;
        if matches!(
            cfg.pooling,
            PoolingKind::Attention | PoolingKind::AttentionRnn
        ) {
            let behaviors = cfg
                .tables
                .iter()
                .filter(|t| t.role == TableRole::Behavior)
                .count() as f64;
            plain_kernels += 3.0 * behaviors; // pair features, scorer, pool
        }
        if cfg.pooling == PoolingKind::AttentionRnn {
            // Two recurrent layers (GRU + AUGRU), ~3 gate kernels each
            // per timestep — sequential launches dominate DIEN on GPU.
            plain_kernels += 2.0 * 3.0 * cfg.seq_len() as f64;
        }

        ModelCost {
            name: cfg.name,
            ch,
            class,
            feature_tensors,
            input_bytes_per_item: dense_bytes + idx_bytes,
            plain_kernels,
            table_kernels: cfg.tables.len() as f64,
        }
    }

    /// Model name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The GPU efficiency class this model was assigned.
    pub fn gpu_class(&self) -> GpuClass {
        self.class
    }

    /// The underlying analytic characterization.
    pub fn characterization(&self) -> &Characterization {
        &self.ch
    }

    /// Service time of one CPU request of `batch` items on a single
    /// worker core, in microseconds, with `active_cores` cores currently
    /// busy machine-wide (contention).
    ///
    /// `fixed overhead + compute/(peak·simd_eff·freq) + gathers/DRAM
    /// share + (weights+activations)/LLC` — see DESIGN.md §6.1.
    pub fn cpu_request_us(&self, cpu: &CpuPlatform, batch: usize, active_cores: usize) -> f64 {
        let batch = batch.max(1);
        let eff = cpu.simd_efficiency(batch) * cpu.freq_scale(active_cores);
        let t_compute = self.ch.flops(batch) / (cpu.peak_core_gflops() * 1e3 * eff);
        let t_gather = self.ch.emb_bytes_per_item * batch as f64
            / (cpu.per_core_dram_bw(active_cores) * cpu.gather_efficiency(batch) * 1e3);
        let t_stream = (self.ch.weight_bytes + self.ch.act_bytes_per_item * batch as f64)
            / (cpu.llc_effective_bw(active_cores) * 1e3);
        cpu.request_overhead_us
            + SW_COMPUTE_FACTOR * t_compute
            + SW_MEMORY_FACTOR * (t_gather + t_stream)
    }

    /// Service time of one *shard-partial* CPU request of `batch`
    /// items on a node holding `gather_fraction` of the model's
    /// embedding traffic: the fixed serving overhead plus that share
    /// of the irregular gather term. The dense stacks are not paid
    /// here — a table-wise shard only gathers and pools its local
    /// tables; the merging node runs the dense tail once per query
    /// ([`ModelCost::dense_tail_us`]).
    ///
    /// At `gather_fraction = 1.0` plus the dense tail this is exactly
    /// [`ModelCost::cpu_request_us`] on an uncontended core (tested),
    /// so sharded and unsharded service models cannot drift apart.
    ///
    /// # Panics
    ///
    /// Panics if `gather_fraction` is outside `[0, 1]`.
    pub fn shard_gather_request_us(
        &self,
        cpu: &CpuPlatform,
        batch: usize,
        active_cores: usize,
        gather_fraction: f64,
    ) -> f64 {
        assert!(
            (0.0..=1.0).contains(&gather_fraction),
            "gather fraction {gather_fraction} outside [0, 1]"
        );
        let batch = batch.max(1);
        let t_gather = self.ch.emb_bytes_per_item * gather_fraction * batch as f64
            / (cpu.per_core_dram_bw(active_cores) * cpu.gather_efficiency(batch) * 1e3);
        cpu.request_overhead_us + SW_MEMORY_FACTOR * t_gather
    }

    /// The dense tail of a sharded query: compute plus
    /// weight/activation streaming, run once at the merging node after
    /// the exchange delivers the pooled partials. Modeled as a single
    /// uncontended pass (the merge node's workers are gathering other
    /// queries, not blocking on this tail).
    pub fn dense_tail_us(&self, cpu: &CpuPlatform, batch: usize) -> f64 {
        let batch = batch.max(1);
        let eff = cpu.simd_efficiency(batch) * cpu.freq_scale(1);
        let t_compute = self.ch.flops(batch) / (cpu.peak_core_gflops() * 1e3 * eff);
        let t_stream = (self.ch.weight_bytes + self.ch.act_bytes_per_item * batch as f64)
            / (cpu.llc_effective_bw(1) * 1e3);
        SW_COMPUTE_FACTOR * t_compute + SW_MEMORY_FACTOR * t_stream
    }

    /// End-to-end time to run one whole query of `qsize` items on the
    /// GPU, in microseconds: host serving overhead, per-item tensor
    /// preparation, PCIe transfer, kernel launches, device compute and
    /// memory.
    pub fn gpu_query_us(&self, cpu: &CpuPlatform, gpu: &GpuPlatform, qsize: usize) -> f64 {
        let q = qsize.max(1);
        cpu.request_overhead_us + self.gpu_data_us(gpu, q) + self.gpu_device_us(gpu, q)
    }

    /// The data-loading component (host prep + PCIe) of a GPU query, µs.
    pub fn gpu_data_us(&self, gpu: &GpuPlatform, qsize: usize) -> f64 {
        let q = qsize.max(1) as f64;
        let prep = gpu.serialize_fixed_us + self.feature_tensors * gpu.prep_us_per_feature_item * q;
        let transfer = gpu.pcie_lat_us + self.input_bytes_per_item * q / (gpu.pcie_bw_gbs * 1e3);
        // Host-side serialization runs in the same slow framework stack
        // as CPU inference; PCIe wire time does not scale with it.
        SW_MEMORY_FACTOR * prep + transfer
    }

    /// The device component (launches + compute + memory) of a GPU
    /// query, µs.
    pub fn gpu_device_us(&self, gpu: &GpuPlatform, qsize: usize) -> f64 {
        let q = qsize.max(1);
        let launch =
            self.plain_kernels * gpu.kernel_launch_us + self.table_kernels * gpu.table_kernel_us;
        let eff = self.class.flops_efficiency() * gpu.occupancy(q);
        let t_flops = self.ch.flops(q) / (gpu.peak_gflops * 1e3 * eff);
        let t_gather = self.ch.emb_bytes_per_item * q as f64
            / (gpu.gather_bw_gbs * self.class.gather_bw_scale() * 1e3);
        let t_stream =
            (self.ch.weight_bytes + self.ch.act_bytes_per_item * q as f64) / (gpu.mem_bw_gbs * 1e3);
        SW_COMPUTE_FACTOR * (launch + t_flops) + SW_MEMORY_FACTOR * (t_gather + t_stream)
    }

    /// Fraction of a GPU query's end-to-end time spent on data loading —
    /// the Figure 4 observation ("60–80 % across models").
    pub fn gpu_data_fraction(&self, cpu: &CpuPlatform, gpu: &GpuPlatform, qsize: usize) -> f64 {
        self.gpu_data_us(gpu, qsize) / self.gpu_query_us(cpu, gpu, qsize)
    }

    /// GPU speedup over a single CPU core at a given batch size
    /// (Figure 4's y-axis).
    pub fn gpu_speedup(&self, cpu: &CpuPlatform, gpu: &GpuPlatform, batch: usize) -> f64 {
        self.cpu_request_us(cpu, batch, 1) / self.gpu_query_us(cpu, gpu, batch)
    }

    /// Smallest batch size in `[1, 1024]` at which the GPU outperforms
    /// a single CPU core (Figure 4's annotated crossover), or `None` if
    /// the GPU never wins.
    pub fn gpu_crossover_batch(&self, cpu: &CpuPlatform, gpu: &GpuPlatform) -> Option<u32> {
        (0..=10u32)
            .map(|p| 1u32 << p)
            .find(|&b| self.gpu_speedup(cpu, gpu, b as usize) >= 1.0)
            .map(|hi| {
                // Refine within (hi/2, hi].
                let mut lo = hi / 2;
                let mut hi = hi;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    if self.gpu_speedup(cpu, gpu, mid as usize) >= 1.0 {
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                }
                hi
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_models::zoo;

    fn cost(cfg: &ModelConfig) -> ModelCost {
        ModelCost::new(cfg)
    }

    fn skl() -> CpuPlatform {
        CpuPlatform::skylake()
    }

    fn gpu() -> GpuPlatform {
        GpuPlatform::gtx_1080ti()
    }

    #[test]
    fn classes_assigned_by_structure() {
        assert_eq!(cost(&zoo::wide_and_deep()).gpu_class(), GpuClass::Compute);
        assert_eq!(cost(&zoo::ncf()).gpu_class(), GpuClass::Compute);
        assert_eq!(cost(&zoo::dlrm_rmc3()).gpu_class(), GpuClass::Compute);
        assert_eq!(cost(&zoo::dlrm_rmc1()).gpu_class(), GpuClass::Memory);
        assert_eq!(cost(&zoo::dlrm_rmc2()).gpu_class(), GpuClass::Memory);
        assert_eq!(cost(&zoo::din()).gpu_class(), GpuClass::Attention);
        assert_eq!(cost(&zoo::dien()).gpu_class(), GpuClass::Attention);
    }

    #[test]
    fn cpu_time_monotone_in_batch() {
        for cfg in zoo::all() {
            let c = cost(&cfg);
            let mut prev = 0.0;
            for b in [1, 2, 4, 16, 64, 256, 1024] {
                let t = c.cpu_request_us(&skl(), b, 1);
                assert!(t > prev, "{} batch {b}", cfg.name);
                prev = t;
            }
        }
    }

    #[test]
    fn cpu_per_item_cost_improves_with_batch() {
        // Amortization: per-item time at batch 256 beats batch 1.
        for cfg in zoo::all() {
            let c = cost(&cfg);
            let t1 = c.cpu_request_us(&skl(), 1, 1);
            let t256 = c.cpu_request_us(&skl(), 256, 1) / 256.0;
            assert!(t256 < t1, "{}", cfg.name);
        }
    }

    #[test]
    fn cpu_contention_slows_requests() {
        for cfg in zoo::all() {
            let c = cost(&cfg);
            let quiet = c.cpu_request_us(&skl(), 64, 1);
            let busy = c.cpu_request_us(&skl(), 64, 40);
            assert!(busy > quiet, "{}", cfg.name);
        }
    }

    #[test]
    fn broadwell_contention_worse_for_memory_bound() {
        // The Figure 12c mechanism: going fully request-parallel hurts
        // Broadwell (inclusive LLC) more than Skylake on an
        // embedding-bound model.
        let c = cost(&zoo::dlrm_rmc1());
        let skl_ratio = c.cpu_request_us(&skl(), 64, 40) / c.cpu_request_us(&skl(), 64, 1);
        let bdw = CpuPlatform::broadwell();
        let bdw_ratio = c.cpu_request_us(&bdw, 64, 28) / c.cpu_request_us(&bdw, 64, 1);
        assert!(
            bdw_ratio > skl_ratio,
            "Broadwell {bdw_ratio:.2}x vs Skylake {skl_ratio:.2}x"
        );
    }

    #[test]
    fn every_model_crosses_over_by_1024() {
        // Figure 6: "GPUs readily accelerate larger queries" — every
        // model eventually wins on the device.
        for cfg in zoo::all() {
            let x = cost(&cfg).gpu_crossover_batch(&skl(), &gpu());
            assert!(x.is_some(), "{} never crosses", cfg.name);
            assert!(x.unwrap() <= 1024, "{}", cfg.name);
        }
    }

    #[test]
    fn crossover_ordering_compute_before_memory_and_launchbound() {
        // Figure 4: "the batch-size at which GPUs start to outperform
        // CPUs … varies widely": compute-heavy models cross early;
        // embedding- and launch-bound models cross late.
        let x = |cfg: &ModelConfig| cost(cfg).gpu_crossover_batch(&skl(), &gpu()).unwrap();
        let wnd = x(&zoo::wide_and_deep());
        let rmc3 = x(&zoo::dlrm_rmc3());
        let rmc1 = x(&zoo::dlrm_rmc1());
        let rmc2 = x(&zoo::dlrm_rmc2());
        let ncf = x(&zoo::ncf());
        let dien = x(&zoo::dien());
        assert!(wnd <= 16, "WND crossover {wnd}");
        assert!(rmc3 <= 16, "RMC3 crossover {rmc3}");
        assert!(rmc2 > rmc3, "RMC2 {rmc2} vs RMC3 {rmc3}");
        assert!(rmc1 > rmc3, "RMC1 {rmc1} vs RMC3 {rmc3}");
        assert!(ncf >= 32, "NCF crossover {ncf} (tiny model, fixed costs)");
        assert!(dien >= 64, "DIEN crossover {dien} (launch-bound)");
    }

    #[test]
    fn large_batch_speedups_in_paper_band() {
        // Figure 4/6: significant but bounded GPU wins at batch 1024,
        // largest for the compute-intensive WnD family.
        let mut speedups = Vec::new();
        for cfg in zoo::all() {
            let s = cost(&cfg).gpu_speedup(&skl(), &gpu(), 1024);
            assert!(s > 1.2, "{}: speedup {s}", cfg.name);
            assert!(s < 40.0, "{}: speedup {s}", cfg.name);
            speedups.push((cfg.name, s));
        }
        let max = speedups
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert!(
            max.0 == "WND" || max.0 == "MT-WND",
            "expected WnD family fastest on GPU, got {max:?}"
        );
    }

    #[test]
    fn data_loading_dominates_gpu_time() {
        // Section III-A3: data loading is 60–80 % of GPU inference time
        // on average across models.
        let fracs: Vec<f64> = zoo::all()
            .iter()
            .map(|cfg| cost(cfg).gpu_data_fraction(&skl(), &gpu(), 256))
            .collect();
        for (cfg, f) in zoo::all().iter().zip(&fracs) {
            assert!((0.2..0.95).contains(f), "{}: data fraction {f}", cfg.name);
        }
        let mean = fracs.iter().sum::<f64>() / fracs.len() as f64;
        assert!((0.45..0.85).contains(&mean), "mean data fraction {mean}");
    }

    #[test]
    fn speedup_grows_with_batch_for_compute_models() {
        let c = cost(&zoo::wide_and_deep());
        let s8 = c.gpu_speedup(&skl(), &gpu(), 8);
        let s1024 = c.gpu_speedup(&skl(), &gpu(), 1024);
        assert!(s1024 > s8, "{s8} → {s1024}");
    }

    #[test]
    fn shard_terms_recompose_to_full_request() {
        // gather(frac=1) + dense tail == the unsharded request on an
        // uncontended core, for every model and several batch sizes:
        // the sharded service model cannot drift from the real one.
        for cfg in zoo::all() {
            let c = cost(&cfg);
            for b in [1usize, 16, 64, 256] {
                let whole = c.cpu_request_us(&skl(), b, 1);
                let recomposed =
                    c.shard_gather_request_us(&skl(), b, 1, 1.0) + c.dense_tail_us(&skl(), b);
                assert!(
                    (whole - recomposed).abs() < 1e-9 * whole,
                    "{} batch {b}: {whole} vs {recomposed}",
                    cfg.name
                );
            }
        }
    }

    #[test]
    fn shard_gather_scales_with_fraction() {
        let c = cost(&zoo::dlrm_rmc2());
        let full = c.shard_gather_request_us(&skl(), 64, 1, 1.0);
        let half = c.shard_gather_request_us(&skl(), 64, 1, 0.5);
        let none = c.shard_gather_request_us(&skl(), 64, 1, 0.0);
        assert!(full > half && half > none);
        assert!(
            (none - skl().request_overhead_us).abs() < 1e-12,
            "zero-fraction shard pays only the serving overhead"
        );
        // The gather term itself halves exactly.
        assert!((full - none - 2.0 * (half - none)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_gather_fraction_rejected() {
        let _ = cost(&zoo::dlrm_rmc1()).shard_gather_request_us(&skl(), 64, 1, 1.5);
    }

    #[test]
    fn crossover_refinement_is_tight() {
        // The refined crossover b satisfies speedup(b) >= 1 > speedup(b-1).
        for cfg in zoo::all() {
            let c = cost(&cfg);
            if let Some(b) = c.gpu_crossover_batch(&skl(), &gpu()) {
                assert!(
                    c.gpu_speedup(&skl(), &gpu(), b as usize) >= 1.0,
                    "{}",
                    cfg.name
                );
                if b > 1 {
                    assert!(
                        c.gpu_speedup(&skl(), &gpu(), (b - 1) as usize) < 1.0,
                        "{} crossover {b} not tight",
                        cfg.name
                    );
                }
            }
        }
    }
}
