//! GPU accelerator model (GTX 1080Ti preset).

/// A GPU accelerator as the cost model sees it.
///
/// The paper's experimental setup: "a GPU accelerator model based on
/// real empirical characterization … server-class NVIDIA GTX 1080Ti
/// with 3584 CUDA cores, 11 GB of DDR5 … includes both data loading and
/// model computation" (Section V). Data loading — host-side tensor
/// serialization plus PCIe transfer — consumes 60–80 % of end-to-end
/// GPU inference time across models (Section III-A3), which is why
/// these overheads are first-class parameters here.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuPlatform {
    /// Marketing name.
    pub name: &'static str,
    /// Peak f32 throughput in GFLOP/s.
    pub peak_gflops: f64,
    /// Device memory bandwidth in GB/s (sequential streams).
    pub mem_bw_gbs: f64,
    /// Effective device bandwidth for irregular embedding gathers, GB/s.
    pub gather_bw_gbs: f64,
    /// Host→device PCIe bandwidth in GB/s.
    pub pcie_bw_gbs: f64,
    /// Fixed PCIe/driver round-trip latency per query, microseconds.
    pub pcie_lat_us: f64,
    /// Host-side fixed cost to assemble/pin a query's tensors, µs.
    pub serialize_fixed_us: f64,
    /// Host-side per-feature-tensor, per-item serialization cost, µs.
    pub prep_us_per_feature_item: f64,
    /// Launch overhead per ordinary kernel, µs.
    pub kernel_launch_us: f64,
    /// Launch + index-setup overhead per embedding-table kernel, µs.
    pub table_kernel_us: f64,
    /// Batch size at which kernels reach half of peak occupancy.
    pub occupancy_half_batch: f64,
    /// Board TDP in watts.
    pub tdp_w: f64,
    /// Idle board power in watts.
    pub idle_w: f64,
}

impl GpuPlatform {
    /// The paper's NVIDIA GTX 1080Ti.
    pub fn gtx_1080ti() -> Self {
        GpuPlatform {
            name: "GTX-1080Ti",
            peak_gflops: 10_600.0,
            mem_bw_gbs: 484.0,
            gather_bw_gbs: 60.0,
            pcie_bw_gbs: 12.0,
            pcie_lat_us: 30.0,
            serialize_fixed_us: 200.0,
            prep_us_per_feature_item: 0.2,
            kernel_launch_us: 10.0,
            table_kernel_us: 20.0,
            occupancy_half_batch: 64.0,
            tdp_w: 250.0,
            idle_w: 55.0,
        }
    }

    /// Kernel occupancy (fraction of peak compute) at a given batch
    /// size: GPUs need thousands of parallel threads, so small batches
    /// leave most SMs idle — the reason "GPUs often require higher batch
    /// sizes to exhibit speedup over general-purpose CPUs" (Section
    /// IV-B).
    pub fn occupancy(&self, batch: usize) -> f64 {
        let b = batch.max(1) as f64;
        b / (b + self.occupancy_half_batch)
    }

    /// Board power at a utilization in `[0, 1]`.
    pub fn power_w(&self, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        self.idle_w + (self.tdp_w - self.idle_w) * u
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_sane() {
        let g = GpuPlatform::gtx_1080ti();
        assert!(g.peak_gflops > 10_000.0);
        assert!(g.gather_bw_gbs < g.mem_bw_gbs);
        assert!(g.pcie_bw_gbs < g.mem_bw_gbs);
        assert!(g.idle_w < g.tdp_w);
    }

    #[test]
    fn occupancy_saturates() {
        let g = GpuPlatform::gtx_1080ti();
        assert!(g.occupancy(1) < 0.05);
        assert!(g.occupancy(64) >= 0.49 && g.occupancy(64) <= 0.51);
        assert!(g.occupancy(1024) > 0.9);
        let mut prev = 0.0;
        for b in [1, 8, 64, 512, 4096] {
            let o = g.occupancy(b);
            assert!(o > prev);
            prev = o;
        }
    }

    #[test]
    fn power_endpoints() {
        let g = GpuPlatform::gtx_1080ti();
        assert_eq!(g.power_w(0.0), 55.0);
        assert_eq!(g.power_w(1.0), 250.0);
    }
}
