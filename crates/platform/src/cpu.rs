//! Server-class CPU models (Broadwell and Skylake presets).

/// Last-level-cache inclusion policy — the microarchitectural difference
/// the paper singles out: "Intel Broadwell implements an inclusive
/// L2/L3 cache hierarchy while Skylake implements an exclusive one …
/// inclusive hierarchies are more susceptible to cache contention and
/// performance degradation from parallel cores" (Section IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheKind {
    /// L3 contains everything in L2 (Broadwell): parallel cores evict
    /// each other aggressively.
    Inclusive,
    /// L3 holds only L2 victims (Skylake): more tolerant of many active
    /// cores.
    Exclusive,
}

/// A server CPU as the cost model sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuPlatform {
    /// Marketing name ("Skylake", "Broadwell").
    pub name: &'static str,
    /// Physical cores available for inference workers.
    pub cores: usize,
    /// Sustained all-core base frequency in GHz.
    pub freq_ghz: f64,
    /// f32 lanes per SIMD unit (8 = AVX-2, 16 = AVX-512).
    pub simd_width_f32: usize,
    /// LLC inclusion policy.
    pub cache: CacheKind,
    /// Thermal design power in watts.
    pub tdp_w: f64,
    /// Idle package power in watts.
    pub idle_w: f64,
    /// Aggregate DRAM bandwidth in GB/s (both sockets).
    pub dram_bw_gbs: f64,
    /// Maximum DRAM bandwidth a single core can extract, GB/s.
    pub core_bw_gbs: f64,
    /// Effective LLC/streaming bandwidth for weight reuse, GB/s.
    pub llc_bw_gbs: f64,
    /// Fixed serving overhead per request (RPC, deserialization, queue
    /// management), microseconds.
    pub request_overhead_us: f64,
}

impl CpuPlatform {
    /// The paper's Intel Skylake config: 40 cores @ 2.0 GHz, AVX-512,
    /// exclusive LLC, 125 W TDP.
    pub fn skylake() -> Self {
        CpuPlatform {
            name: "Skylake",
            cores: 40,
            freq_ghz: 2.0,
            simd_width_f32: 16,
            cache: CacheKind::Exclusive,
            tdp_w: 125.0,
            idle_w: 40.0,
            dram_bw_gbs: 120.0,
            core_bw_gbs: 14.0,
            llc_bw_gbs: 80.0,
            request_overhead_us: 250.0,
        }
    }

    /// The paper's Intel Broadwell config: 28 cores @ 2.4 GHz, AVX-2,
    /// inclusive LLC, 120 W TDP.
    pub fn broadwell() -> Self {
        CpuPlatform {
            name: "Broadwell",
            cores: 28,
            freq_ghz: 2.4,
            simd_width_f32: 8,
            cache: CacheKind::Inclusive,
            tdp_w: 120.0,
            idle_w: 40.0,
            dram_bw_gbs: 76.0,
            core_bw_gbs: 11.0,
            llc_bw_gbs: 70.0,
            request_overhead_us: 250.0,
        }
    }

    /// Peak single-core f32 GFLOP/s at full SIMD occupancy (2 FMA
    /// FLOPs per lane per cycle).
    pub fn peak_core_gflops(&self) -> f64 {
        self.freq_ghz * self.simd_width_f32 as f64 * 2.0
    }

    /// SIMD/GEMM efficiency as a function of batch size: wider vector
    /// units need larger batches to fill ("higher batch sizes are
    /// typically required to exploit the benefits of the wider SIMD
    /// units in Intel Skylake", Section IV-A).
    ///
    /// Saturating curve `(b + w/8) / (b + w)` — at batch 1 an AVX-512
    /// machine reaches ~18 % of peak while AVX-2 reaches ~22 %; both
    /// approach 1.0 by batch ≫ width.
    pub fn simd_efficiency(&self, batch: usize) -> f64 {
        let b = batch.max(1) as f64;
        let w = self.simd_width_f32 as f64;
        (b + w / 8.0) / (b + w)
    }

    /// Fraction of the DRAM bandwidth a gather-heavy request extracts at
    /// a given batch size. Small batches expose little memory-level
    /// parallelism (few outstanding misses); large batches keep the
    /// memory system saturated — the paper's observation that for
    /// embedding-dominated models "memory bandwidth utilization can be
    /// improved significantly by running recommendation inference at a
    /// higher batch size" (Section VI-A), which is why their optima sit
    /// at batch 1024 (Figure 12b).
    pub fn gather_efficiency(&self, batch: usize) -> f64 {
        let b = batch.max(1) as f64;
        (b + 4.0) / (b + 64.0)
    }

    /// All-core frequency scaling: running more cores lowers sustained
    /// turbo. Linear 15 % droop at full occupancy.
    pub fn freq_scale(&self, active_cores: usize) -> f64 {
        let occ = (active_cores.min(self.cores)) as f64 / self.cores as f64;
        1.0 - 0.15 * occ
    }

    /// DRAM bandwidth available to one of `active_cores` concurrently
    /// memory-bound cores, GB/s. Combines the per-core extraction limit,
    /// fair sharing of socket bandwidth, and the cache-inclusion
    /// contention penalty (inclusive hierarchies degrade faster — the
    /// paper measured 55 % vs 40 % L2 miss rates on Broadwell when going
    /// request-parallel).
    pub fn per_core_dram_bw(&self, active_cores: usize) -> f64 {
        let active = active_cores.clamp(1, self.cores) as f64;
        let fair = self.dram_bw_gbs / active;
        let base = self.core_bw_gbs.min(fair);
        let occ = active / self.cores as f64;
        let penalty = match self.cache {
            CacheKind::Inclusive => 1.0 + 1.1 * occ * occ,
            CacheKind::Exclusive => 1.0 + 0.3 * occ * occ,
        };
        base / penalty
    }

    /// Effective LLC streaming bandwidth with `active_cores` running
    /// concurrent requests. Every request streams its model weights
    /// through the LLC; on an inclusive hierarchy co-running requests
    /// evict each other's lines aggressively (the paper's 55 % vs 40 %
    /// L2 miss-rate observation), so request-level parallelism is
    /// taxed — the force that pushes Broadwell toward *larger* batches
    /// (fewer, bigger requests) in Figure 12(c).
    pub fn llc_effective_bw(&self, active_cores: usize) -> f64 {
        let occ = (active_cores.clamp(1, self.cores)) as f64 / self.cores as f64;
        let penalty = match self.cache {
            CacheKind::Inclusive => 1.0 + 10.0 * occ * occ,
            CacheKind::Exclusive => 1.0 + 0.5 * occ * occ,
        };
        self.llc_bw_gbs / penalty
    }

    /// Package power at a given core utilization in `[0, 1]` — linear
    /// between idle and TDP.
    pub fn power_w(&self, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        self.idle_w + (self.tdp_w - self.idle_w) * u
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        let skl = CpuPlatform::skylake();
        assert_eq!(skl.cores, 40);
        assert_eq!(skl.simd_width_f32, 16);
        assert_eq!(skl.cache, CacheKind::Exclusive);
        assert_eq!(skl.tdp_w, 125.0);
        let bdw = CpuPlatform::broadwell();
        assert_eq!(bdw.cores, 28);
        assert_eq!(bdw.simd_width_f32, 8);
        assert_eq!(bdw.cache, CacheKind::Inclusive);
        assert_eq!(bdw.tdp_w, 120.0);
        assert!((bdw.freq_ghz - 2.4).abs() < 1e-9);
    }

    #[test]
    fn simd_efficiency_monotone_and_saturating() {
        let skl = CpuPlatform::skylake();
        let mut prev = 0.0;
        for b in [1, 2, 4, 8, 16, 64, 256, 1024] {
            let e = skl.simd_efficiency(b);
            assert!(e > prev, "batch {b}");
            assert!(e <= 1.0);
            prev = e;
        }
        assert!(skl.simd_efficiency(1024) > 0.95);
    }

    #[test]
    fn avx512_needs_bigger_batches() {
        // At small batch Broadwell (AVX-2) is relatively closer to its
        // peak than Skylake (AVX-512) — the Figure 12c mechanism.
        let skl = CpuPlatform::skylake();
        let bdw = CpuPlatform::broadwell();
        for b in [1, 2, 4, 8] {
            assert!(bdw.simd_efficiency(b) > skl.simd_efficiency(b), "batch {b}");
        }
    }

    #[test]
    fn inclusive_cache_contends_harder() {
        let skl = CpuPlatform::skylake();
        let bdw = CpuPlatform::broadwell();
        // Normalize by single-core bandwidth; compare degradation at
        // full occupancy.
        let skl_deg = skl.per_core_dram_bw(skl.cores) / skl.per_core_dram_bw(1);
        let bdw_deg = bdw.per_core_dram_bw(bdw.cores) / bdw.per_core_dram_bw(1);
        assert!(
            bdw_deg < skl_deg,
            "Broadwell should degrade more: {bdw_deg} vs {skl_deg}"
        );
    }

    #[test]
    fn bandwidth_monotone_in_active_cores() {
        let skl = CpuPlatform::skylake();
        let mut prev = f64::INFINITY;
        for a in 1..=skl.cores {
            let bw = skl.per_core_dram_bw(a);
            assert!(bw <= prev + 1e-12, "active {a}");
            assert!(bw > 0.0);
            prev = bw;
        }
    }

    #[test]
    fn freq_droop_bounded() {
        let skl = CpuPlatform::skylake();
        assert!((skl.freq_scale(1) - (1.0 - 0.15 / 40.0)).abs() < 1e-9);
        assert!((skl.freq_scale(40) - 0.85).abs() < 1e-9);
        assert!((skl.freq_scale(100) - 0.85).abs() < 1e-9); // clamps
    }

    #[test]
    fn llc_thrash_hits_inclusive_harder() {
        let skl = CpuPlatform::skylake();
        let bdw = CpuPlatform::broadwell();
        let skl_deg = skl.llc_effective_bw(skl.cores) / skl.llc_effective_bw(1);
        let bdw_deg = bdw.llc_effective_bw(bdw.cores) / bdw.llc_effective_bw(1);
        assert!(
            bdw_deg < skl_deg / 2.0,
            "inclusive LLC must thrash much harder: {bdw_deg} vs {skl_deg}"
        );
        // Monotone non-increasing in active cores.
        let mut prev = f64::INFINITY;
        for a in 1..=bdw.cores {
            let bw = bdw.llc_effective_bw(a);
            assert!(bw <= prev + 1e-12);
            prev = bw;
        }
    }

    #[test]
    fn power_between_idle_and_tdp() {
        let skl = CpuPlatform::skylake();
        assert_eq!(skl.power_w(0.0), skl.idle_w);
        assert_eq!(skl.power_w(1.0), skl.tdp_w);
        assert_eq!(skl.power_w(2.0), skl.tdp_w); // clamps
        let half = skl.power_w(0.5);
        assert!(half > skl.idle_w && half < skl.tdp_w);
    }

    #[test]
    fn peak_flops_formula() {
        assert_eq!(CpuPlatform::skylake().peak_core_gflops(), 64.0);
        assert!((CpuPlatform::broadwell().peak_core_gflops() - 38.4).abs() < 1e-9);
    }
}
