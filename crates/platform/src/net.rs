//! The cluster interconnect: the cost of gathering sharded embedding
//! partials across nodes.
//!
//! Once a model's tables span nodes, every query pays a network
//! exchange — the merging node must collect pooled partial rows from
//! each remote shard. The scale-in literature (Krishna & Krishna,
//! "Accelerating Recommender Systems via Hardware scale-in") quantifies
//! this gather step as the new bottleneck of capacity-driven scale-out;
//! we model it the same way the rest of `drs-platform` models hardware:
//! a small parameter set turned into microseconds.

/// Latency/bandwidth parameters of the node-to-node fabric.
///
/// The exchange of one query is modeled as a parallel fan-out to the
/// remote shards followed by a merge at the home node:
///
/// `per_hop_us` — one round-trip through the fabric (NIC + switch +
/// kernel path), paid once since partial requests fly concurrently;
/// `per_peer_us` — per-remote-shard serialization/merge work at the
/// home node (each partial is deserialized and its rows placed);
/// `bandwidth_gbs` — the home NIC's ingress bandwidth the gathered
/// payload bytes stream through.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterconnectModel {
    /// One network round-trip, microseconds.
    pub per_hop_us: f64,
    /// Per-remote-peer merge/deserialize cost, microseconds.
    pub per_peer_us: f64,
    /// Ingress bandwidth at the merging node, GB/s.
    pub bandwidth_gbs: f64,
}

impl InterconnectModel {
    /// A datacenter rack fabric: 100 GbE (12.5 GB/s), ~50 µs RTT
    /// through the kernel network stack, ~5 µs to merge one peer's
    /// partial.
    pub fn datacenter_100g() -> Self {
        InterconnectModel {
            per_hop_us: 50.0,
            per_peer_us: 5.0,
            bandwidth_gbs: 12.5,
        }
    }

    /// An older 25 GbE fabric (3.125 GB/s) with the same latency
    /// profile — for sensitivity sweeps over the exchange term.
    pub fn datacenter_25g() -> Self {
        InterconnectModel {
            bandwidth_gbs: 3.125,
            ..Self::datacenter_100g()
        }
    }

    /// Exchange time for gathering `payload_bytes` of pooled partials
    /// from `peers` remote shards, microseconds. Zero when there are
    /// no remote peers (a fully local plan exchanges nothing).
    pub fn exchange_us(&self, peers: usize, payload_bytes: f64) -> f64 {
        if peers == 0 {
            return 0.0;
        }
        self.per_hop_us
            + peers as f64 * self.per_peer_us
            + payload_bytes / (self.bandwidth_gbs * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_peers_no_exchange() {
        let net = InterconnectModel::datacenter_100g();
        assert_eq!(net.exchange_us(0, 1e9), 0.0);
    }

    #[test]
    fn exchange_grows_with_peers_and_payload() {
        let net = InterconnectModel::datacenter_100g();
        let base = net.exchange_us(1, 0.0);
        assert!(base >= net.per_hop_us);
        assert!(net.exchange_us(3, 0.0) > base);
        assert!(net.exchange_us(1, 1e6) > net.exchange_us(1, 1e3));
    }

    #[test]
    fn slower_fabric_costs_more() {
        let fast = InterconnectModel::datacenter_100g();
        let slow = InterconnectModel::datacenter_25g();
        let bytes = 1e6;
        assert!(slow.exchange_us(2, bytes) > fast.exchange_us(2, bytes));
    }

    #[test]
    fn bandwidth_term_units() {
        // 12.5 GB/s = 12.5e3 bytes/µs: 1 MB should take 80 µs of wire
        // time on top of the fixed terms.
        let net = InterconnectModel::datacenter_100g();
        let fixed = net.exchange_us(1, 0.0);
        assert!((net.exchange_us(1, 1e6) - fixed - 80.0).abs() < 1e-9);
    }
}
