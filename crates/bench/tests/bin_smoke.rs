//! Smoke coverage for every figure/table binary.
//!
//! Each experiment binary is executed at `--smoke` scale (tiny windows,
//! coarse searches — see `SearchOptions::smoke`) and must exit cleanly
//! with non-trivial output. The numbers are meaningless at this scale;
//! the point is that figure-regeneration code cannot silently rot while
//! the rest of the workspace moves on.
//!
//! Cargo builds the binaries alongside integration tests and exposes
//! their paths through `CARGO_BIN_EXE_<name>`, so this needs no path
//! guessing and works under any target dir.

use std::process::Command;

fn run_smoke(name: &str, exe: &str) {
    let out = Command::new(exe)
        .args(["--smoke", "--seed", "1"])
        .output()
        .unwrap_or_else(|e| panic!("{name}: failed to spawn {exe}: {e}"));
    assert!(
        out.status.success(),
        "{name} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.lines().count() >= 5,
        "{name} produced suspiciously little output:\n{stdout}"
    );
    assert!(
        stdout.contains("mode: smoke"),
        "{name} ignored --smoke (header says otherwise):\n{stdout}"
    );
}

macro_rules! bin_smoke_tests {
    ($($test_name:ident => $bin:literal),+ $(,)?) => {
        $(
            #[test]
            fn $test_name() {
                run_smoke($bin, env!(concat!("CARGO_BIN_EXE_", $bin)));
            }
        )+
    };
}

/// The serving figures also run their `--real` cross-validation
/// sections at smoke scale: the multi-tenant stream bit-exact against
/// virtual time, the sharded run CTR-identical to the unsharded
/// forward, and the tail-anatomy spans bit-exact per query. The assertions live in the binaries; rotting either path
/// fails here.
#[test]
fn real_mode_smokes() {
    for (name, exe) in [
        ("fig_multitenant", env!("CARGO_BIN_EXE_fig_multitenant")),
        (
            "fig_sharded_capacity",
            env!("CARGO_BIN_EXE_fig_sharded_capacity"),
        ),
        ("fig_tail_anatomy", env!("CARGO_BIN_EXE_fig_tail_anatomy")),
        ("fig_fleet_pulse", env!("CARGO_BIN_EXE_fig_fleet_pulse")),
    ] {
        let out = Command::new(exe)
            .args(["--smoke", "--seed", "1", "--real"])
            .output()
            .unwrap_or_else(|e| panic!("{name}: failed to spawn {exe}: {e}"));
        assert!(
            out.status.success(),
            "{name} --real exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            out.status.code(),
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr),
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("Real-engine cross-validation"),
            "{name} ignored --real:\n{stdout}"
        );
    }
}

/// `bench_report` round-trip: an appended entry must satisfy its own
/// `--check` parser, and a corrupted file must fail it.
#[test]
fn bench_report_appends_parseable_entries() {
    let exe = env!("CARGO_BIN_EXE_bench_report");
    let dir = std::env::temp_dir().join(format!("bench_report_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out_path = dir.join("BENCH_engine.json");
    let out_arg = out_path.to_str().unwrap();

    for _ in 0..2 {
        let out = Command::new(exe)
            .args(["--smoke", "--label", "smoketest", "--out", out_arg])
            .output()
            .expect("spawn bench_report");
        assert!(
            out.status.success(),
            "bench_report failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let check = Command::new(exe)
        .args(["--check", "--out", out_arg])
        .output()
        .expect("spawn bench_report --check");
    assert!(
        check.status.success(),
        "--check rejected fresh entries:\n{}",
        String::from_utf8_lossy(&check.stderr)
    );
    assert!(
        String::from_utf8_lossy(&check.stdout).contains("2 entries"),
        "both appends counted"
    );

    std::fs::write(&out_path, "{\"schema\": 1, \"label\": \"x\"\n").unwrap();
    let bad = Command::new(exe)
        .args(["--check", "--out", out_arg])
        .output()
        .expect("spawn bench_report --check");
    assert!(
        !bad.status.success(),
        "--check must reject a malformed history"
    );
    std::fs::remove_dir_all(&dir).ok();
}

bin_smoke_tests! {
    fig01_roofline => "fig01_roofline",
    fig03_op_breakdown => "fig03_op_breakdown",
    fig04_gpu_speedup => "fig04_gpu_speedup",
    fig05_query_sizes => "fig05_query_sizes",
    fig06_query_time_split => "fig06_query_time_split",
    fig07_subsampling => "fig07_subsampling",
    fig09_batch_sweep => "fig09_batch_sweep",
    fig10_threshold_sweep => "fig10_threshold_sweep",
    fig11_headline => "fig11_headline",
    fig12_parallelism => "fig12_parallelism",
    fig13_production => "fig13_production",
    fig13_online_tuning => "fig13_online_tuning",
    fig14_gpu_tradeoff => "fig14_gpu_tradeoff",
    fig_fleet_pulse => "fig_fleet_pulse",
    fig_multitenant => "fig_multitenant",
    fig_sharded_capacity => "fig_sharded_capacity",
    fig_tail_anatomy => "fig_tail_anatomy",
    probe_capacity => "probe_capacity",
    table1_models => "table1_models",
    table2_sla => "table2_sla",
}
