//! Micro-benchmark: span-recording overhead — the gate on the
//! telemetry layer's "free when off, cheap when on" contract.
//!
//! * `record/*` measures the raw sink hot path in ns/span (Criterion's
//!   per-element throughput is the spans/s figure `bench_report`
//!   republishes).
//! * `serve/*` runs the same virtual serving window untraced and
//!   traced with the no-op sink: the two must be indistinguishable,
//!   because `NoopSink::ENABLED == false` compiles every record site
//!   out of the monomorphized loop.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use drs_core::SchedulerPolicy;
use drs_models::zoo;
use drs_platform::{CpuPlatform, GpuPlatform};
use drs_query::{ArrivalProcess, QueryGenerator, SizeDistribution};
use drs_server::{Server, ServerOptions};
use drs_telemetry::{NoopSink, QuerySpan, RingRecorder, Stage, TraceSink, STAGE_COUNT};

fn spans(n: usize) -> Vec<QuerySpan> {
    (0..n as u64)
        .map(|i| {
            let mut stages = [0u64; STAGE_COUNT];
            stages[Stage::QueueWait.index()] = 100_000 + i * 13;
            stages[Stage::EngineService.index()] = 2_000_000 + i * 7;
            QuerySpan {
                query_id: i,
                tenant: (i % 3) as usize,
                node: (i % 4) as usize,
                arrival_ns: i * 1_000_000,
                end_ns: i * 1_000_000 + stages.iter().sum::<u64>(),
                stages,
            }
        })
        .collect()
}

fn bench_record(c: &mut Criterion) {
    let batch = spans(4_096);
    let mut group = c.benchmark_group("telemetry_record");
    group.throughput(Throughput::Elements(batch.len() as u64));
    group.bench_function("noop_sink", |b| {
        b.iter(|| {
            let mut sink = NoopSink;
            for s in &batch {
                sink.record(s);
            }
            sink.breakdown().is_none()
        })
    });
    group.bench_function("ring_recorder", |b| {
        b.iter(|| {
            let mut sink = RingRecorder::new(batch.len());
            for s in &batch {
                sink.record(s);
            }
            sink.recorded()
        })
    });
    group.finish();
}

fn bench_serve(c: &mut Criterion) {
    let queries: Vec<_> = QueryGenerator::new(
        ArrivalProcess::poisson(800.0),
        SizeDistribution::production(),
        7,
    )
    .take(2_000)
    .collect();
    let server = Server::new(
        &zoo::dlrm_rmc1(),
        CpuPlatform::skylake(),
        Some(GpuPlatform::gtx_1080ti()),
        ServerOptions::new(40, SchedulerPolicy::with_gpu(64, 128)),
    );

    let mut group = c.benchmark_group("telemetry_serve");
    group.sample_size(10);
    group.throughput(Throughput::Elements(queries.len() as u64));
    group.bench_function("untraced", |b| {
        b.iter(|| server.serve_virtual(&queries).completed)
    });
    group.bench_function("noop_traced", |b| {
        b.iter(|| {
            server
                .serve_virtual_traced(&queries, &mut NoopSink)
                .completed
        })
    });
    group.bench_function("ring_traced", |b| {
        b.iter(|| {
            let mut rec = RingRecorder::default();
            server.serve_virtual_traced(&queries, &mut rec).completed
        })
    });
    group.finish();
}

criterion_group!(benches, bench_record, bench_serve);
criterion_main!(benches);
