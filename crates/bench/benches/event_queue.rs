//! Micro-benchmark: the discrete-event simulator's core data structure
//! and a full end-to-end simulation window.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use drs_core::ClusterConfig;
use drs_models::zoo;
use drs_query::{ArrivalProcess, QueryGenerator, SizeDistribution};
use drs_sim::{EventQueue, RunOptions, SchedulerPolicy, Simulation};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("push_pop_100k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            // Interleaved, non-monotone times exercise the heap.
            for i in 0u64..100_000 {
                q.push(i.wrapping_mul(2_654_435_761) % 1_000_000, i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            sum
        })
    });
    group.finish();
}

fn bench_sim_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    group.throughput(Throughput::Elements(2_000));
    group.bench_function("rmc1_2k_queries", |b| {
        let sim = Simulation::new(
            &zoo::dlrm_rmc1(),
            ClusterConfig::single_skylake(),
            SchedulerPolicy::cpu_only(64),
        );
        b.iter(|| {
            let mut gen = QueryGenerator::new(
                ArrivalProcess::poisson(5_000.0),
                SizeDistribution::production(),
                9,
            );
            sim.run(&mut gen, RunOptions::queries(2_000))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_event_queue, bench_sim_window);
criterion_main!(benches);
