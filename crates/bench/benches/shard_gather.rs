//! Micro-benchmark: sharded gather/merge throughput — the numeric
//! cost of splitting a model's pooled lookups across shards and
//! reassembling them, versus the unsharded per-table forward.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use drs_nn::{EmbeddingBag, Pooling, ShardedEmbeddingSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TABLES: usize = 10;
const ROWS: usize = 100_000;
const DIM: usize = 32;
const LOOKUPS: usize = 80;

fn bench_shard_gather(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard_gather");
    let mut rng = StdRng::seed_from_u64(13);
    let bags: Vec<EmbeddingBag> = (0..TABLES)
        .map(|_| EmbeddingBag::new(ROWS, DIM, Pooling::Sum, &mut rng))
        .collect();
    for &batch in &[16usize, 64] {
        let indices: Vec<Vec<Vec<u32>>> = (0..TABLES)
            .map(|_| {
                (0..batch)
                    .map(|_| {
                        (0..LOOKUPS)
                            .map(|_| rng.gen_range(0..ROWS as u32))
                            .collect()
                    })
                    .collect()
            })
            .collect();
        group.throughput(Throughput::Elements((TABLES * batch * LOOKUPS) as u64));

        // Baseline: every table forwarded in place, no shard plumbing.
        let unsharded = bags.clone();
        group.bench_with_input(
            BenchmarkId::new("unsharded", format!("b{batch}")),
            &batch,
            |bch, _| {
                bch.iter(|| {
                    unsharded
                        .iter()
                        .zip(&indices)
                        .map(|(bag, idx)| bag.forward_plain(idx))
                        .collect::<Vec<_>>()
                })
            },
        );

        // Sharded: per-shard partial gathers + merge, round-robin
        // table placement over 1/2/4 shards.
        for &shards in &[1usize, 2, 4] {
            let assignment: Vec<usize> = (0..TABLES).map(|t| t % shards).collect();
            let set = ShardedEmbeddingSet::new(bags.clone(), &assignment);
            group.bench_with_input(
                BenchmarkId::new(format!("sharded_x{shards}"), format!("b{batch}")),
                &batch,
                |bch, _| {
                    bch.iter(|| {
                        let partials: Vec<_> = (0..set.num_shards())
                            .map(|s| set.forward_shard(s, &indices))
                            .collect();
                        set.merge(partials)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_shard_gather);
criterion_main!(benches);
