//! Micro-benchmark: pooled embedding lookups — the irregular-access
//! primitive that dominates DLRM-RMC1/RMC2 (Figures 1b and 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use drs_nn::{EmbeddingBag, Pooling};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("embedding_bag");
    let mut rng = StdRng::seed_from_u64(5);
    let bag = EmbeddingBag::new(100_000, 32, Pooling::Sum, &mut rng);
    for &(batch, lookups) in &[(16usize, 80usize), (64, 80), (64, 20), (256, 80)] {
        let indices: Vec<Vec<u32>> = (0..batch)
            .map(|_| (0..lookups).map(|_| rng.gen_range(0..100_000)).collect())
            .collect();
        group.throughput(Throughput::Elements((batch * lookups) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("b{batch}_l{lookups}")),
            &batch,
            |bch, _| bch.iter(|| bag.forward_plain(&indices)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lookup);
criterion_main!(benches);
