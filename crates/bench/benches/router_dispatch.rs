//! Micro-benchmark: the cluster router's per-query hot path — one
//! policy decision plus the outstanding-gauge charge/release cycle.
//!
//! The router sits in front of every query a cluster serves, so its
//! dispatch cost bounds the front end's attainable throughput. The
//! interesting comparison is the policy's read pattern: round-robin is
//! O(1), power-of-two-choices reads d sampled gauges, and
//! least-outstanding scans all N.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use drs_core::{NodeId, RoutingPolicy, TenantId};
use drs_query::{QueryGenerator, SizeDistribution};
use drs_server::Router;

fn bench_route(c: &mut Criterion) {
    // Production-shaped query sizes, pre-generated outside the loop.
    let sizes: Vec<u32> = QueryGenerator::new(
        drs_query::ArrivalProcess::poisson(10_000.0),
        SizeDistribution::production(),
        7,
    )
    .take(10_000)
    .map(|q| q.size)
    .collect();
    let nodes = 16;
    // Half the fleet GPU-attached, for the size-aware class split.
    let gpu_nodes: Vec<bool> = (0..nodes).map(|i| i % 2 == 0).collect();

    let mut group = c.benchmark_group("router_dispatch");
    group.throughput(Throughput::Elements(sizes.len() as u64));
    for routing in [
        RoutingPolicy::RoundRobin,
        RoutingPolicy::LeastOutstanding,
        RoutingPolicy::PowerOfTwoChoices { d: 2 },
        RoutingPolicy::SizeAware,
    ] {
        group.bench_function(format!("route_10k_{}_16_nodes", routing.label()), |b| {
            b.iter(|| {
                let mut router = Router::new(routing, &gpu_nodes, 250, 11);
                // Steady state: each query routes, and an older one
                // completes — gauges stay populated, as in a live
                // cluster.
                let mut inflight: Vec<NodeId> = Vec::with_capacity(64);
                let mut acc = 0usize;
                for &size in &sizes {
                    let n = router.route(TenantId::SOLO, size);
                    acc += n.0;
                    inflight.push(n);
                    if inflight.len() >= 64 {
                        router.complete(inflight.remove(0));
                    }
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_route);
criterion_main!(benches);
