//! Ablation benches for the cost-model design choices DESIGN.md calls
//! out: how much of the scheduler's win disappears when each modeled
//! hardware effect is switched off.
//!
//! These are Criterion benches over the *simulation* (virtual time), so
//! "time" here is harness overhead; the interesting output is printed
//! once per ablation — the tuned QPS with the effect present vs absent.

use criterion::{criterion_group, criterion_main, Criterion};
use drs_core::ClusterConfig;
use drs_models::zoo;
use drs_platform::CpuPlatform;
use drs_sched::{DeepRecSched, SearchOptions};
use std::sync::Once;

static PRINT_ONCE: Once = Once::new();

fn print_ablation_summary() {
    PRINT_ONCE.call_once(|| {
        let mut opts = SearchOptions::quick();
        opts.queries_per_probe = 400;
        let sched = DeepRecSched::new(opts);
        let cfg = zoo::dlrm_rmc1();

        let tuned = |cpu: CpuPlatform| {
            let cluster = ClusterConfig::cluster(1, cpu, None);
            let t = sched.tune_cpu(&cfg, cluster, 100.0);
            (t.policy.max_batch, t.qps)
        };

        let base = tuned(CpuPlatform::skylake());

        // Ablation 1: zero per-request overhead — removes the pressure
        // toward batching.
        let mut no_overhead = CpuPlatform::skylake();
        no_overhead.request_overhead_us = 0.0;
        let a1 = tuned(no_overhead);

        // Ablation 2: no bandwidth cap per core (gathers become free-ish)
        // — removes the memory-bound character.
        let mut wide_bw = CpuPlatform::skylake();
        wide_bw.core_bw_gbs = 1e6;
        wide_bw.dram_bw_gbs = 1e9;
        let a2 = tuned(wide_bw);

        println!("\n=== cost-model ablations (DLRM-RMC1, 100 ms SLA) ===");
        println!(
            "full model:        optimal batch {:4}, {:.0} QPS",
            base.0, base.1
        );
        println!(
            "no request ovhd:   optimal batch {:4}, {:.0} QPS",
            a1.0, a1.1
        );
        println!(
            "infinite DRAM bw:  optimal batch {:4}, {:.0} QPS",
            a2.0, a2.1
        );
        println!("====================================================\n");
    });
}

fn bench_ablations(c: &mut Criterion) {
    print_ablation_summary();
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    let mut opts = SearchOptions::quick();
    opts.queries_per_probe = 200;
    group.bench_function("tune_with_full_cost_model", |b| {
        let sched = DeepRecSched::new(opts);
        let cfg = zoo::dlrm_rmc1();
        b.iter(|| sched.tune_cpu(&cfg, ClusterConfig::single_skylake(), 100.0))
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
