//! Micro-benchmark: fleet-pulse overhead — the gate on the metrics
//! layer's "free when off, cheap when on" contract.
//!
//! * `sample/*` measures the raw registry hot path: gauge writes plus
//!   one snapshot per iteration (ns/sample is what `bench_report`
//!   republishes as `metrics_ns_per_sample`).
//! * `serve/*` runs the same virtual serving window unmetered and
//!   metered with the no-op sink: the two must be indistinguishable,
//!   because `NoopMetrics::ENABLED == false` compiles every record
//!   site (gauge computation, tick bookkeeping) out of the
//!   monomorphized loop. `pulsed` shows the real recording price.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use drs_core::SchedulerPolicy;
use drs_metrics::MetricsRegistry;
use drs_models::zoo;
use drs_platform::{CpuPlatform, GpuPlatform};
use drs_query::{ArrivalProcess, QueryGenerator, SizeDistribution};
use drs_server::{Server, ServerOptions};
use drs_telemetry::{MetricsSink, NoopMetrics, PulseRecorder};

fn bench_sample(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics_sample");
    const TICKS: usize = 1_024;
    group.throughput(Throughput::Elements(TICKS as u64));
    group.bench_function("registry", |b| {
        b.iter(|| {
            let mut reg = MetricsRegistry::new();
            for t in 0..TICKS as u64 {
                reg.set_gauge("queue_depth_n0", (t % 17) as f64);
                reg.set_gauge("gpu_backlog_ns_n0", (t * 31) as f64);
                reg.inc("completed_total", 1);
                reg.observe("latency_ms", 1.0 + (t % 7) as f64);
                reg.sample(t * 1_000_000);
            }
            reg.samples().len()
        })
    });
    group.bench_function("noop_sink", |b| {
        b.iter(|| {
            let mut pulse = NoopMetrics;
            for t in 0..TICKS as u64 {
                pulse.gauge("queue_depth_n0", (t % 17) as f64);
                pulse.inc("completed_total", 1);
                pulse.observe("latency_ms", 1.0);
                pulse.tick(t * 1_000_000);
            }
            pulse.interval_ns()
        })
    });
    group.finish();
}

fn bench_serve(c: &mut Criterion) {
    let queries: Vec<_> = QueryGenerator::new(
        ArrivalProcess::poisson(800.0),
        SizeDistribution::production(),
        7,
    )
    .take(2_000)
    .collect();
    let server = Server::new(
        &zoo::dlrm_rmc1(),
        CpuPlatform::skylake(),
        Some(GpuPlatform::gtx_1080ti()),
        ServerOptions::new(40, SchedulerPolicy::with_gpu(64, 128)),
    );

    let mut group = c.benchmark_group("metrics_serve");
    group.sample_size(10);
    group.throughput(Throughput::Elements(queries.len() as u64));
    group.bench_function("unmetered", |b| {
        b.iter(|| server.serve_virtual(&queries).completed)
    });
    group.bench_function("noop_pulsed", |b| {
        b.iter(|| {
            server
                .serve_virtual_pulsed(&queries, &mut NoopMetrics)
                .completed
        })
    });
    group.bench_function("pulsed", |b| {
        b.iter(|| {
            let mut pulse = PulseRecorder::new(1_000_000);
            server.serve_virtual_pulsed(&queries, &mut pulse).completed
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sample, bench_serve);
criterion_main!(benches);
