//! Micro-benchmark: the GEMM kernel underlying every FC stack
//! (substrate for the Figure 3/4 measurements).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use drs_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for &(m, k, n) in &[
        (16usize, 256usize, 256usize),
        (64, 256, 256),
        (64, 1640, 1024),
        (256, 512, 128),
    ] {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::xavier_uniform(m, k, &mut rng);
        let b = Matrix::xavier_uniform(k, n, &mut rng);
        let mut out = Matrix::zeros(m, n);
        group.throughput(Throughput::Elements((2 * m * k * n) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{k}x{n}")),
            &(m, k, n),
            |bch, _| bch.iter(|| a.matmul_into(&b, &mut out)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
