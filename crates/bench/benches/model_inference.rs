//! Micro-benchmark: real forward-pass latency per model across batch
//! sizes — the measured ground truth behind the Figure 3 and Figure 4
//! characterizations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use drs_models::{zoo, ModelScale, RecModel};
use drs_nn::OpProfiler;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_forward");
    group.sample_size(10);
    for cfg in zoo::all() {
        let mut rng = StdRng::seed_from_u64(3);
        // Tiny scale keeps bench wall-time sane; batch scaling shape is
        // preserved (weights are identical across batch sizes).
        let model = RecModel::instantiate(&cfg, ModelScale::tiny(), &mut rng);
        for &batch in &[1usize, 16, 64] {
            let inputs = model.generate_inputs(batch, &mut rng);
            group.throughput(Throughput::Elements(batch as u64));
            group.bench_with_input(BenchmarkId::new(cfg.name, batch), &batch, |bch, _| {
                bch.iter(|| {
                    let mut prof = OpProfiler::new();
                    model.forward(&inputs, &mut prof)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
