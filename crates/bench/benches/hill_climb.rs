//! Micro-benchmark: cost of one full DeepRecSched tuning pass (the
//! control-plane overhead of the scheduler itself).

use criterion::{criterion_group, criterion_main, Criterion};
use drs_core::ClusterConfig;
use drs_models::zoo;
use drs_sched::{DeepRecSched, SearchOptions};

fn bench_tune(c: &mut Criterion) {
    let mut group = c.benchmark_group("deeprecsched_tune");
    group.sample_size(10);
    let mut opts = SearchOptions::quick();
    opts.queries_per_probe = 300; // keep each probe small for the bench
    group.bench_function("tune_cpu_rmc1", |b| {
        let sched = DeepRecSched::new(opts);
        let cfg = zoo::dlrm_rmc1();
        b.iter(|| sched.tune_cpu(&cfg, ClusterConfig::single_skylake(), 100.0))
    });
    group.bench_function("tune_full_rmc1_gpu", |b| {
        let sched = DeepRecSched::new(opts);
        let cfg = zoo::dlrm_rmc1();
        b.iter(|| sched.tune(&cfg, ClusterConfig::skylake_with_gpu(), 100.0))
    });
    group.finish();
}

criterion_group!(benches, bench_tune);
criterion_main!(benches);
