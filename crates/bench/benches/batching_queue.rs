//! Micro-benchmark: the serving runtime's dynamic batching queue —
//! the per-arrival hot path (split + coalesce) and the retune-time
//! backlog repack.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use drs_query::{ArrivalProcess, QueryGenerator, SizeDistribution};
use drs_server::BatchQueue;

fn bench_enqueue_coalesce(c: &mut Criterion) {
    // A production-shaped arrival stream, pre-generated outside the
    // timing loop.
    let queries: Vec<(u64, u64, u32)> = QueryGenerator::new(
        ArrivalProcess::poisson(10_000.0),
        SizeDistribution::production(),
        7,
    )
    .take(10_000)
    .map(|q| (q.id, (q.arrival_s * 1e9) as u64, q.size))
    .collect();

    let mut group = c.benchmark_group("batching_queue");
    group.throughput(Throughput::Elements(queries.len() as u64));
    group.bench_function("push_10k_production_queries", |b| {
        b.iter(|| {
            let mut q = BatchQueue::new(64, 200_000);
            let mut out = Vec::new();
            for &(id, t_ns, size) in &queries {
                q.push(t_ns, id, size, &mut out);
                q.flush_due(t_ns, &mut out);
            }
            q.flush_all(&mut out);
            out.len()
        })
    });
    group.finish();
}

fn bench_reform(c: &mut Criterion) {
    // Backlog repack: the retune path — thousands of tiny batches
    // consolidated to the new knob.
    let mut seed_queue = BatchQueue::new(1, 0);
    let mut backlog = Vec::new();
    let sizes: Vec<(u64, u32)> = QueryGenerator::new(
        ArrivalProcess::poisson(10_000.0),
        SizeDistribution::production(),
        9,
    )
    .take(200)
    .map(|q| (q.id, q.size))
    .collect();
    for &(id, size) in &sizes {
        seed_queue.push(0, id, size, &mut backlog);
    }

    let mut group = c.benchmark_group("batching_queue");
    group.throughput(Throughput::Elements(backlog.len() as u64));
    group.bench_function("reform_backlog_to_batch_64", |b| {
        b.iter(|| {
            let mut q = BatchQueue::new(64, 200_000);
            let mut out = Vec::new();
            q.reform(backlog.clone(), &mut out);
            out.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_enqueue_coalesce, bench_reform);
criterion_main!(benches);
