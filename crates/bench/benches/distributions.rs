//! Micro-benchmark: load-generator sampler throughput (the simulator
//! draws millions of sizes and gaps per experiment).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use drs_query::{ArrivalProcess, QueryGenerator, SizeDistribution};

fn bench_samplers(c: &mut Criterion) {
    let mut group = c.benchmark_group("load_generator");
    group.throughput(Throughput::Elements(10_000));
    for dist in [
        SizeDistribution::production(),
        SizeDistribution::lognormal_matched(),
        SizeDistribution::normal_matched(),
    ] {
        group.bench_function(dist.name(), |b| {
            b.iter(|| {
                let gen = QueryGenerator::new(ArrivalProcess::poisson(1000.0), dist, 7);
                gen.take(10_000).map(|q| q.size as u64).sum::<u64>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_samplers);
criterion_main!(benches);
