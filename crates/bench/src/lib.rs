//! Shared plumbing for the DeepRecSys experiment harness.
//!
//! Every paper table and figure has a binary under `src/bin/` that
//! regenerates it (see DESIGN.md §5 for the index). Binaries accept:
//!
//! * `--full` — experiment-grade windows (`SearchOptions::standard()`);
//!   the default is the faster `quick()` profile so a laptop can sweep
//!   everything in minutes;
//! * `--smoke` — minimal windows (`SearchOptions::smoke()`); numbers
//!   are meaningless, but every code path runs. Used by the bin smoke
//!   tests (`tests/bin_smoke.rs`) so figure code cannot silently rot;
//! * `--seed N` — override the workload seed;
//! * `--real` — where the binary supports it, additionally
//!   cross-validate on the *real* engine: pace the stream onto
//!   physical worker threads (`serve_real*`) and compare against the
//!   virtual-time report.
//!
//! Criterion micro-benchmarks live under `benches/`.

#![warn(missing_docs)]

use drs_sched::SearchOptions;

/// The three run profiles an experiment binary can be launched in.
/// `--full` wins if both `--full` and `--smoke` appear.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// `--full`: experiment-grade windows.
    Full,
    /// Default: laptop-friendly windows.
    Quick,
    /// `--smoke`: minimal windows for the bin smoke tests.
    Smoke,
}

impl Mode {
    /// Human label of the mode.
    pub fn label(self) -> &'static str {
        match self {
            Mode::Full => "full",
            Mode::Quick => "quick",
            Mode::Smoke => "smoke",
        }
    }
}

/// Parsed command-line options shared by every experiment binary.
#[derive(Debug, Clone, Copy)]
pub struct ExpOptions {
    /// Search/simulation options, preset to match [`Self::mode`].
    pub search: SearchOptions,
    /// The requested run profile.
    pub mode: Mode,
    /// `--real`: also run the real-engine cross-validation section in
    /// binaries that support one.
    pub real: bool,
}

/// Parses `--full` / `--smoke` / `--seed N` / `--real` from the
/// process arguments.
pub fn parse_args() -> ExpOptions {
    let args: Vec<String> = std::env::args().collect();
    let mode = if args.iter().any(|a| a == "--full") {
        Mode::Full
    } else if args.iter().any(|a| a == "--smoke") {
        Mode::Smoke
    } else {
        Mode::Quick
    };
    let real = args.iter().any(|a| a == "--real");
    let mut search = match mode {
        Mode::Full => SearchOptions::standard(),
        Mode::Quick => SearchOptions::quick(),
        Mode::Smoke => SearchOptions::smoke(),
    };
    if let Some(i) = args.iter().position(|a| a == "--seed") {
        if let Some(seed) = args.get(i + 1).and_then(|s| s.parse().ok()) {
            search = search.with_seed(seed);
        }
    }
    ExpOptions { search, mode, real }
}

impl ExpOptions {
    /// Picks a mode-dependent constant: experiment-grade for `--full`,
    /// minimal for `--smoke`, the laptop-friendly default otherwise.
    pub fn pick<T>(&self, full: T, quick: T, smoke: T) -> T {
        match self.mode {
            Mode::Full => full,
            Mode::Quick => quick,
            Mode::Smoke => smoke,
        }
    }

    /// Whether experiment-grade (`--full`) windows were requested.
    pub fn full(&self) -> bool {
        self.mode == Mode::Full
    }
}

/// Prints the standard experiment header: what this binary reproduces
/// and the paper's reference statement to compare against.
pub fn header(id: &str, claim: &str, opts: &ExpOptions) {
    println!("# {id}");
    println!();
    println!("paper reference: {claim}");
    println!(
        "mode: {} (pass --full for experiment-grade windows)",
        opts.mode.label()
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_are_quick() {
        // parse_args reads real argv (the test binary's), which carries
        // no --full flag.
        let o = parse_args();
        assert_eq!(o.mode, Mode::Quick);
        assert!(!o.real, "real cross-validation is opt-in");
        assert_eq!(
            o.search.queries_per_probe,
            SearchOptions::quick().queries_per_probe
        );
    }
}
