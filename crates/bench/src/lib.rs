//! Shared plumbing for the DeepRecSys experiment harness.
//!
//! Every paper table and figure has a binary under `src/bin/` that
//! regenerates it (see DESIGN.md §5 for the index). Binaries accept:
//!
//! * `--full` — experiment-grade windows (`SearchOptions::standard()`);
//!   the default is the faster `quick()` profile so a laptop can sweep
//!   everything in minutes;
//! * `--seed N` — override the workload seed.
//!
//! Criterion micro-benchmarks live under `benches/`.

#![warn(missing_docs)]

use drs_sched::SearchOptions;

/// Parsed command-line options shared by every experiment binary.
#[derive(Debug, Clone, Copy)]
pub struct ExpOptions {
    /// Search/simulation options (quick unless `--full`).
    pub search: SearchOptions,
    /// Whether `--full` was requested.
    pub full: bool,
}

/// Parses `--full` / `--seed N` from the process arguments.
pub fn parse_args() -> ExpOptions {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let mut search = if full {
        SearchOptions::standard()
    } else {
        SearchOptions::quick()
    };
    if let Some(i) = args.iter().position(|a| a == "--seed") {
        if let Some(seed) = args.get(i + 1).and_then(|s| s.parse().ok()) {
            search = search.with_seed(seed);
        }
    }
    ExpOptions { search, full }
}

/// Prints the standard experiment header: what this binary reproduces
/// and the paper's reference statement to compare against.
pub fn header(id: &str, claim: &str, opts: &ExpOptions) {
    println!("# {id}");
    println!();
    println!("paper reference: {claim}");
    println!(
        "mode: {} (pass --full for experiment-grade windows)",
        if opts.full { "full" } else { "quick" }
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_are_quick() {
        // parse_args reads real argv (the test binary's), which carries
        // no --full flag.
        let o = parse_args();
        assert!(!o.full);
        assert_eq!(o.search.queries_per_probe, SearchOptions::quick().queries_per_probe);
    }
}
