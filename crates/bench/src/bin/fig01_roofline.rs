//! Regenerates **Figure 1**: (a) roofline placement of the eight
//! recommendation models against CNN/RNN reference points on a Skylake
//! roofline; (b) memory-access breakdown (dense vs sparse traffic).

use deeprecsys::models::characterize::{characterize, reference_points};
use deeprecsys::prelude::*;
use deeprecsys::table::{fmt3, TextTable};

fn main() {
    let opts = drs_bench::parse_args();
    drs_bench::header(
        "Figure 1 — roofline + memory-access breakdown",
        "(a) rec models are memory-intensive (low arithmetic intensity) vs \
         CNNs/RNNs; (b) dense traffic dominates WND/NCF/RMC3/DIEN, sparse \
         traffic dominates RMC1/RMC2/DIN",
        &opts,
    );

    let cpu = CpuPlatform::skylake();
    let peak = cpu.peak_core_gflops() * cpu.cores as f64;
    let bw = cpu.dram_bw_gbs;

    println!("## (a) Roofline (Skylake: {peak:.0} GFLOP/s peak, {bw:.0} GB/s DRAM)\n");
    let mut t = TextTable::new(vec![
        "workload",
        "AI @ batch 1",
        "AI @ batch 64",
        "attainable GFLOP/s @64",
        "bound",
    ]);
    for cfg in zoo::all() {
        let ch = characterize(&cfg);
        let ai = ch.arithmetic_intensity(64);
        let att = ch.attainable_gflops(64, peak, bw);
        t.row(vec![
            cfg.name.to_string(),
            fmt3(ch.arithmetic_intensity(1)),
            fmt3(ai),
            fmt3(att),
            if att < peak {
                "memory".into()
            } else {
                "compute".into()
            },
        ]);
    }
    for (name, ai, _gflops) in reference_points() {
        let att = peak.min(ai * bw);
        t.row(vec![
            format!("{name} (ref)"),
            fmt3(ai),
            fmt3(ai),
            fmt3(att),
            if att < peak {
                "memory".into()
            } else {
                "compute".into()
            },
        ]);
    }
    println!("{t}");

    println!("## (b) Memory-access breakdown @ batch 64\n");
    let mut t = TextTable::new(vec!["model", "dense bytes %", "sparse (embedding) bytes %"]);
    for cfg in zoo::all() {
        let ch = characterize(&cfg);
        let sparse = ch.sparse_byte_fraction(64);
        t.row(vec![
            cfg.name.to_string(),
            format!("{:.0}%", (1.0 - sparse) * 100.0),
            format!("{:.0}%", sparse * 100.0),
        ]);
    }
    println!("{t}");
}
