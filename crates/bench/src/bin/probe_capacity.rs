//! Internal calibration probe: per-model baseline vs tuned capacity on
//! the fig13 cluster (not a paper experiment; used to pick fig13 loads).
use deeprecsys::prelude::*;

fn main() {
    let opts = drs_bench::parse_args();
    drs_bench::header(
        "Capacity probe — fig13 cluster calibration",
        "internal tool: per-model baseline vs tuned capacity used to pick \
         the fig13 offered loads (no paper counterpart)",
        &opts,
    );
    let cluster = ClusterConfig::cluster(20, CpuPlatform::skylake(), None);
    for cfg in [zoo::dlrm_rmc1(), zoo::dlrm_rmc2(), zoo::dlrm_rmc3()] {
        let sla = SlaTier::Medium.sla_ms(&cfg);
        let base = max_qps_under_sla(
            &cfg,
            cluster,
            SchedulerPolicy::static_baseline(40),
            sla,
            &opts.search,
        );
        let tuned = DeepRecSched::new(opts.search).tune_cpu(&cfg, cluster, sla);
        println!(
            "{:10} baseline {:8.0} | tuned {:8.0} (b={})",
            cfg.name, base.max_qps, tuned.qps, tuned.policy.max_batch
        );
    }
}
