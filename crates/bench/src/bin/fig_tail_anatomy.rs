//! **Tail-latency anatomy** — where the p95/p99 milliseconds actually
//! go, per lifecycle stage, as load rises.
//!
//! Every serving runtime in the stack records the same fixed span
//! schema (`drs_telemetry`): queue-wait on the offload FIFO, coalesce
//! wait in the batch former, ready-queue residency, engine service,
//! and — sharded — exchange + dense-tail. This binary serves the same
//! production-tail workload through three stacks and decomposes the
//! latency distribution into stage contributions:
//!
//! 1. **single node** (DLRM-RMC1, CPU + GPU offload) across load,
//! 2. **multi-tenant** (RMC1 + WND co-located behind DRR lanes),
//! 3. **sharded cluster** (DLRM-RMC2 across two 16 GiB nodes).
//!
//! The Chrome-trace workflow rides along: the highest-load single-node
//! run is exported as `trace_event` JSON (load into `chrome://tracing`
//! or Perfetto) and re-parsed to prove the export is lossless.
//!
//! `--real` adds the cross-runtime span validation axis: an
//! offload-all stream is paced onto physical engine workers and every
//! recorded span must equal the virtual run's, per query, zero
//! tolerance.

use deeprecsys::prelude::*;
use deeprecsys::table::{fmt3, TextTable};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Stages worth a table column (Route is reserved and always zero).
const SHOWN: [Stage; 6] = [
    Stage::QueueWait,
    Stage::CoalesceWait,
    Stage::BatchResidency,
    Stage::EngineService,
    Stage::ShardExchange,
    Stage::DenseTail,
];

fn queries(rate: f64, n: usize, seed: u64) -> Vec<deeprecsys::query::Query> {
    QueryGenerator::new(
        ArrivalProcess::poisson(rate),
        SizeDistribution::production(),
        seed,
    )
    .take(n)
    .collect()
}

fn stage_table(rows: &[(String, StageBreakdown)]) -> TextTable {
    let mut header = vec!["run", "p95 (ms)", "p99 (ms)"];
    for s in SHOWN {
        header.push(s.name());
    }
    let mut t = TextTable::new(header);
    for (label, b) in rows {
        let mut row = vec![label.clone(), fmt3(b.total.p95_ms), fmt3(b.total.p99_ms)];
        for s in SHOWN {
            // Mean share ("N% of the milliseconds") plus the stage's
            // own streaming p95 — the anatomy of the tail.
            row.push(format!(
                "{:>4.1}% | {}",
                100.0 * b.share_of_mean(s),
                fmt3(b.stage(s).p95_ms)
            ));
        }
        t.row(row);
    }
    t
}

fn main() {
    let opts = drs_bench::parse_args();
    drs_bench::header(
        "Tail-latency anatomy — per-stage attribution of p95/p99 across load",
        "end-to-end tail latency decomposes into scheduling stages; DeepRecSys's \
         batching/offload knobs act on specific stages (coalesce wait, FIFO wait, \
         service), so attributing the p95/p99 milliseconds per stage shows *why* a \
         knob moves the tail (§III, Figures 9-10)",
        &opts,
    );
    let seed = opts.search.seed;
    let n = opts.pick(24_000, 6_000, 600);

    // ── 1. Single node across load ──────────────────────────────────
    let cfg = zoo::dlrm_rmc1();
    let server = Server::new(
        &cfg,
        CpuPlatform::skylake(),
        Some(GpuPlatform::gtx_1080ti()),
        ServerOptions::new(40, SchedulerPolicy::with_gpu(64, 128)),
    );
    let mut rows = Vec::new();
    let mut export_spans: Vec<QuerySpan> = Vec::new();
    for rate in [400.0, 800.0, 1200.0] {
        let qs = queries(rate, n, seed);
        let mut rec = RingRecorder::new(qs.len());
        let r = server.serve_virtual_traced(&qs, &mut rec);
        let b = r.stage_breakdown.clone().expect("traced run");
        rows.push((format!("{rate:.0} qps"), b));
        export_spans = rec.spans().copied().collect();
    }
    println!("## Single node — DLRM-RMC1, 40 Skylake workers + GPU (offload > 128), {n} queries\n");
    println!("stage cells: share of mean latency | stage p95 (ms)\n");
    println!("{}", stage_table(&rows));

    // ── Chrome-trace workflow on the highest-load run ───────────────
    let json = to_chrome_trace(&export_spans);
    let events = parse_chrome_trace(&json).expect("exported trace re-parses");
    let path = std::env::temp_dir().join("fig_tail_anatomy_trace.json");
    std::fs::write(&path, &json).expect("write chrome trace");
    println!(
        "chrome trace: {} spans -> {} events, {} bytes at {} (open in chrome://tracing)\n",
        export_spans.len(),
        events.len(),
        json.len(),
        path.display()
    );
    assert!(
        events.len() >= export_spans.len(),
        "every span exports at least one stage event"
    );

    // ── 2. Multi-tenant co-location ─────────────────────────────────
    let spec = MultiModelSpec::new(vec![
        TenantSpec::new(zoo::dlrm_rmc1(), SchedulerPolicy::cpu_only(256)),
        TenantSpec::new(zoo::wide_and_deep(), SchedulerPolicy::cpu_only(64)).with_weight(2),
    ]);
    let mt = Server::new_multi(
        &spec,
        CpuPlatform::skylake(),
        None,
        ServerOptions::new(40, SchedulerPolicy::cpu_only(256)),
    );
    let qs: Vec<_> = MixedStream::new(vec![
        QueryGenerator::new(
            ArrivalProcess::poisson(700.0),
            SizeDistribution::production(),
            seed,
        ),
        QueryGenerator::new(
            ArrivalProcess::poisson(300.0),
            SizeDistribution::production(),
            seed ^ 0x5bd1_e995,
        ),
    ])
    .take(n)
    .collect();
    let mut rec = RingRecorder::new(qs.len());
    let r = mt.serve_virtual_traced(&qs, &mut rec);
    let b = r.stage_breakdown.clone().expect("traced run");
    let mut mt_rows = vec![("all tenants".to_string(), b.clone())];
    for (k, row) in b.tenants.iter().enumerate() {
        // Rebuild a per-tenant view from the tenant's digest row: the
        // breakdown type carries total stats only stream-wide, so the
        // per-tenant rows print stage stats against their own mean.
        let tenant_total_mean: f64 = row.iter().map(|s| s.mean_ms).sum();
        let mut tb = b.clone();
        tb.stages = row.clone();
        tb.total.mean_ms = tenant_total_mean;
        tb.total.p95_ms = f64::NAN; // not tracked per tenant per stage-sum
        mt_rows.push((format!("tenant {k}"), tb));
    }
    println!("## Multi-tenant — RMC1 (batch 256) + WND (batch 64) behind DRR lanes\n");
    let mut t = TextTable::new({
        let mut h = vec!["tenant", "mean (ms)"];
        for s in SHOWN {
            h.push(s.name());
        }
        h
    });
    for (label, tb) in &mt_rows {
        let mut row = vec![label.clone(), fmt3(tb.total.mean_ms)];
        for s in SHOWN {
            row.push(format!(
                "{:>4.1}% | {}",
                100.0 * tb.share_of_mean(s),
                fmt3(tb.stage(s).p95_ms)
            ));
        }
        t.row(row);
    }
    println!("stage cells: share of tenant mean | stage p95 (ms)\n");
    println!("{t}");

    // ── 3. Sharded cluster ──────────────────────────────────────────
    let cfg2 = zoo::dlrm_rmc2();
    let topo = ClusterTopology::new(vec![
        NodeSpec::cpu_only(CpuPlatform::skylake())
            .with_mem_bytes(16 << 30);
        2
    ]);
    let plan = ShardPlan::place(&cfg2, &topo, PlacementPolicy::LookupBalanced).unwrap();
    let sharded = Cluster::new_sharded(
        &cfg2,
        topo,
        RoutingPolicy::ShardAware,
        plan,
        InterconnectModel::datacenter_100g(),
        ServerOptions::new(40, SchedulerPolicy::cpu_only(64)),
    );
    let qs = queries(500.0, n, seed);
    let mut rec = RingRecorder::new(qs.len());
    let r = sharded.serve_virtual_traced(&qs, &mut rec);
    let b = r.stage_breakdown.clone().expect("traced run");
    println!("## Sharded — DLRM-RMC2 across 2 x 16 GiB nodes, 100G fabric\n");
    println!("stage cells: share of mean latency | stage p95 (ms)\n");
    println!("{}", stage_table(&[("500 qps".to_string(), b.clone())]));
    println!(
        "exchange + dense tail carry {:.1}% of the mean sharded latency\n",
        100.0 * (b.share_of_mean(Stage::ShardExchange) + b.share_of_mean(Stage::DenseTail))
    );

    if opts.real {
        real_span_validation(seed, &opts);
    }
}

/// `--real`: pace an offload-all stream onto physical engine workers
/// and require every recorded span to equal the virtual run's — the
/// cross-runtime validation axis for the span schema itself.
fn real_span_validation(seed: u64, opts: &drs_bench::ExpOptions) {
    println!("\n## Real-engine cross-validation (--real): span timelines\n");
    let cfg = zoo::dlrm_rmc1();
    let n = opts.pick(4_000, 1_200, 240);
    let qs = queries(300.0, n, seed);
    let mut so = ServerOptions::new(2, SchedulerPolicy::with_gpu(64, 0));
    so.seed = seed;
    so.warmup_frac = 0.0;
    so.time_scale = 8.0;
    let server = Server::new(
        &cfg,
        CpuPlatform::skylake(),
        Some(GpuPlatform::gtx_1080ti()),
        so,
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let model = Arc::new(RecModel::instantiate(&cfg, ModelScale::tiny(), &mut rng));

    let mut virt_rec = RingRecorder::new(qs.len());
    let mut real_rec = RingRecorder::new(qs.len());
    let virt = server.serve_virtual_traced(&qs, &mut virt_rec);
    let real = server.serve_real_traced(model, &qs, &mut real_rec);

    let sort = |rec: &RingRecorder| {
        let mut v: Vec<QuerySpan> = rec.spans().copied().collect();
        v.sort_by_key(|s| s.query_id);
        v
    };
    let (vs, rs) = (sort(&virt_rec), sort(&real_rec));
    let exact = vs.iter().zip(&rs).filter(|(a, b)| a == b).count();
    println!(
        "{n} queries fully offloaded, time compressed 8x: {exact}/{} spans bit-exact \
         (virtual p95 {} ms, real p95 {} ms)",
        vs.len(),
        fmt3(virt.latency.p95_ms),
        fmt3(real.latency.p95_ms)
    );
    assert_eq!(vs.len() as u64, virt.completed);
    assert_eq!(
        exact,
        vs.len(),
        "offload-all real span timelines drifted from the virtual clock"
    );
}
