//! Regenerates **Figure 14**: (a) QPS versus the tail-latency target
//! for DeepRecSched-CPU and DeepRecSched-GPU, including the share of
//! work the GPU absorbs at each target and the lowest achievable
//! target per path; (b) the QPS/Watt crossover between the two.

use deeprecsys::prelude::*;
use deeprecsys::table::{fmt3, TextTable};

fn main() {
    let opts = drs_bench::parse_args();
    drs_bench::header(
        "Figure 14 — scheduling across CPUs and the accelerator (DLRM-RMC1)",
        "(a) the GPU path unlocks lower tail-latency targets than CPU-only \
         (paper: 41 ms vs 57 ms) and higher QPS at every target; the GPU work \
         share falls as the target relaxes (18% at 120 ms); (b) QPS/W favors \
         the GPU path at tight targets and CPU-only at relaxed ones",
        &opts,
    );

    // With the SW_STACK_FACTOR calibration the interesting band sits at
    // tens of milliseconds, matching the paper's 40-120 ms sweep; the
    // shapes under test are the GPU gain, the falling GPU share, and
    // the QPS/W crossover.
    let cfg = zoo::dlrm_rmc1();
    let sched = DeepRecSched::new(opts.search);
    let targets_ms = [8.0, 12.0, 16.0, 20.0, 30.0, 40.0, 60.0, 80.0, 100.0];

    let mut t = TextTable::new(vec![
        "SLA target (ms)",
        "DRS-CPU QPS",
        "DRS-GPU QPS",
        "GPU gain",
        "GPU work share",
        "DRS-CPU QPS/W",
        "DRS-GPU QPS/W",
        "QPS/W winner",
    ]);
    let mut lowest_cpu: Option<f64> = None;
    let mut lowest_gpu: Option<f64> = None;

    for &sla in &targets_ms {
        let cpu = sched.tune_cpu(&cfg, ClusterConfig::single_skylake(), sla);
        let gpu = sched.tune(&cfg, ClusterConfig::skylake_with_gpu(), sla);
        if cpu.qps > 0.0 && lowest_cpu.is_none() {
            lowest_cpu = Some(sla);
        }
        if gpu.qps > 0.0 && lowest_gpu.is_none() {
            lowest_gpu = Some(sla);
        }
        let qpw = |r: &Option<SimReport>| r.as_ref().map_or(0.0, |x| x.qps_per_watt);
        let share = gpu.at_max.as_ref().map_or(0.0, |r| r.gpu_work_fraction);
        let (cq, gq) = (qpw(&cpu.at_max), qpw(&gpu.at_max));
        t.row(vec![
            fmt3(sla),
            fmt3(cpu.qps),
            fmt3(gpu.qps),
            if cpu.qps > 0.0 {
                format!("{:.2}x", gpu.qps / cpu.qps)
            } else if gpu.qps > 0.0 {
                "CPU infeasible".into()
            } else {
                "-".into()
            },
            format!("{:.0}%", share * 100.0),
            fmt3(cq),
            fmt3(gq),
            if cq == 0.0 && gq == 0.0 {
                "-".into()
            } else if gq > cq {
                "GPU".into()
            } else {
                "CPU".into()
            },
        ]);
    }
    println!("{t}");
    println!(
        "lowest achievable target: CPU-only {} ms, with GPU {} ms",
        lowest_cpu.map_or("none".into(), fmt3),
        lowest_gpu.map_or("none".into(), fmt3)
    );
}
