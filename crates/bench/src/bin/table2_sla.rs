//! Regenerates **Table II**: measured runtime bottleneck class and SLA
//! target per model.
//!
//! The bottleneck is *measured*, not asserted: each model runs for real
//! on the host CPU at batch 64 and the per-operator wall-clock profile
//! is classified with the same rules the paper uses for its labels.

use deeprecsys::engine::profile_operators;
use deeprecsys::models::characterize::classify_bottleneck;
use deeprecsys::prelude::*;
use deeprecsys::table::TextTable;
use rand::SeedableRng;

fn main() {
    let opts = drs_bench::parse_args();
    drs_bench::header(
        "Table II — runtime bottleneck + SLA target",
        "RMC1/RMC2 embedding dominated; RMC3/NCF/WND/MT-WND MLP dominated; \
         DIN embedding+attention; DIEN attention-based GRU; SLA targets 5-400 ms",
        &opts,
    );

    // Real execution: default scale stresses DRAM on embedding gathers;
    // quick mode uses tiny weights (classification of the clear-cut
    // models is unchanged, DLRM variants may lean MLP when their tables
    // fit in cache — noted in EXPERIMENTS.md).
    let scale = if opts.full() {
        ModelScale::default_scale()
    } else {
        ModelScale::tiny()
    };
    let iters = opts.pick(5, 2, 1);

    let mut t = TextTable::new(vec![
        "Model",
        "Measured bottleneck",
        "Paper label",
        "Match",
        "SLA target (ms)",
    ]);
    for cfg in zoo::all() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let model = RecModel::instantiate(&cfg, scale, &mut rng);
        let prof = profile_operators(&model, 64, iters, 11);
        let measured = classify_bottleneck(&prof.fractions());
        let matches = measured == cfg.paper_bottleneck
            || (measured.contains("MLP") && cfg.paper_bottleneck.contains("MLP"))
            || (measured.contains("Embedding") && cfg.paper_bottleneck.contains("Embedding"))
            || (measured.contains("GRU") && cfg.paper_bottleneck.contains("GRU"));
        t.row(vec![
            cfg.name.to_string(),
            measured.to_string(),
            cfg.paper_bottleneck.to_string(),
            if matches { "yes".into() } else { "no".into() },
            format!("{}", cfg.sla_ms),
        ]);
    }
    println!("{t}");
}
