//! Regenerates **Figure 6**: aggregated execution time of small
//! (≤ p75) versus large (> p75) queries on CPU and GPU, per model.

use deeprecsys::prelude::*;
use deeprecsys::table::TextTable;
use rand::SeedableRng;

fn main() {
    let opts = drs_bench::parse_args();
    drs_bench::header(
        "Figure 6 — execution-time split: <=p75 vs >p75 queries, CPU vs GPU",
        "despite the long tail, small queries are over half of CPU time; the \
         25% of large queries are ~50% of time; GPUs accelerate large queries \
         most (up to ~6x)",
        &opts,
    );

    let n = opts.pick(50_000, 10_000, 2_000);
    let cpu = CpuPlatform::skylake();
    let gpu = GpuPlatform::gtx_1080ti();

    // Draw the query set once and find the p75 size.
    let mut rng = rand::rngs::StdRng::seed_from_u64(opts.search.seed);
    let mut sizes = SizeDistribution::production().sample_n(n, &mut rng);
    sizes.sort_unstable();
    let p75 = sizes[(sizes.len() - 1) * 3 / 4];

    let mut t = TextTable::new(vec![
        "model",
        "CPU small %",
        "CPU large %",
        "GPU small %",
        "GPU large %",
        "GPU speedup on large",
    ]);
    for cfg in zoo::all() {
        let cost = ModelCost::new(&cfg);
        let (mut cpu_small, mut cpu_large) = (0.0f64, 0.0f64);
        let (mut gpu_small, mut gpu_large) = (0.0f64, 0.0f64);
        for &s in &sizes {
            // CPU path: whole query on one core (the paper's Figure 6
            // compares per-query execution cost, not split requests).
            let c = cost.cpu_request_us(&cpu, s as usize, 1);
            let g = cost.gpu_query_us(&cpu, &gpu, s as usize);
            if s <= p75 {
                cpu_small += c;
                gpu_small += g;
            } else {
                cpu_large += c;
                gpu_large += g;
            }
        }
        let cpu_tot = cpu_small + cpu_large;
        let gpu_tot = gpu_small + gpu_large;
        t.row(vec![
            cfg.name.to_string(),
            format!("{:.0}%", cpu_small / cpu_tot * 100.0),
            format!("{:.0}%", cpu_large / cpu_tot * 100.0),
            format!("{:.0}%", gpu_small / gpu_tot * 100.0),
            format!("{:.0}%", gpu_large / gpu_tot * 100.0),
            format!("{:.2}x", cpu_large / gpu_large),
        ]);
    }
    println!("query-set p75 size: {p75} items over {n} queries\n");
    println!("{t}");
}
