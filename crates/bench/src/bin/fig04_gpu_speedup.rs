//! Regenerates **Figure 4**: GPU speedup over a single CPU core as a
//! function of batch size, per model, with the crossover batch (first
//! size at which the GPU wins) annotated.

use deeprecsys::prelude::*;
use deeprecsys::table::TextTable;

fn main() {
    let opts = drs_bench::parse_args();
    drs_bench::header(
        "Figure 4 — GPU speedup over CPU vs batch size",
        "GPUs win only past a per-model crossover batch; crossovers span \
         1..1024 across models; data loading is 60-80% of GPU time; \
         large-batch speedups are biggest for compute-heavy WnD-family models",
        &opts,
    );

    let cpu = CpuPlatform::skylake();
    let gpu = GpuPlatform::gtx_1080ti();
    let batches = [1usize, 4, 16, 64, 256, 1024];

    let mut t = TextTable::new(vec![
        "model",
        "b=1",
        "b=4",
        "b=16",
        "b=64",
        "b=256",
        "b=1024",
        "crossover",
        "data-load % @256",
    ]);
    for cfg in zoo::all() {
        let cost = ModelCost::new(&cfg);
        let mut row = vec![cfg.name.to_string()];
        for &b in &batches {
            row.push(format!("{:.2}x", cost.gpu_speedup(&cpu, &gpu, b)));
        }
        row.push(
            cost.gpu_crossover_batch(&cpu, &gpu)
                .map_or("never".into(), |b| b.to_string()),
        );
        row.push(format!(
            "{:.0}%",
            cost.gpu_data_fraction(&cpu, &gpu, 256) * 100.0
        ));
        t.row(row);
    }
    println!("{t}");
    println!(
        "Reading: speedup < 1 means the CPU core wins (left of the paper's \n\
         annotated crossover); compute-bound models (WND/MT-WND/RMC3) cross \n\
         almost immediately, while small (NCF) and launch-bound (DIEN) models \n\
         need batches of ~100+."
    );
}
