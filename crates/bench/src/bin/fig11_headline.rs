//! Regenerates **Figure 11** — the headline result: throughput (QPS)
//! and power efficiency (QPS/Watt) of DeepRecSched-CPU and
//! DeepRecSched-GPU versus the static production baseline, for all
//! eight models at Low/Medium/High tail-latency targets, normalized to
//! the baseline at the Low target, plus the geometric mean.

use deeprecsys::prelude::*;
use deeprecsys::table::TextTable;

fn main() {
    let opts = drs_bench::parse_args();
    drs_bench::header(
        "Figure 11 — DeepRecSched vs static baseline (headline)",
        "DRS-CPU: 1.7x/2.1x/2.7x QPS at low/med/high targets; DRS-GPU: \
         4.0x/5.1x/5.8x; QPS/W gains for DRS-CPU match QPS, DRS-GPU power \
         gains are smaller (GPU power overhead) and can invert for \
         memory-bound models",
        &opts,
    );

    let mut qps_table = TextTable::new(vec![
        "model",
        "tier",
        "baseline QPS",
        "DRS-CPU QPS",
        "DRS-CPU x",
        "DRS-GPU QPS",
        "DRS-GPU x",
    ]);
    let mut power_table = TextTable::new(vec![
        "model",
        "tier",
        "baseline QPS/W",
        "DRS-CPU QPS/W",
        "x",
        "DRS-GPU QPS/W",
        "x",
    ]);
    let mut cpu_gains: Vec<f64> = Vec::new();
    let mut gpu_gains: Vec<f64> = Vec::new();
    let mut cpu_pgains: Vec<f64> = Vec::new();
    let mut gpu_pgains: Vec<f64> = Vec::new();

    for cfg in zoo::all() {
        for tier in SlaTier::ALL {
            let sla = tier.sla_ms(&cfg);
            let cpu_cluster = ClusterConfig::single_skylake();
            let gpu_cluster = ClusterConfig::skylake_with_gpu();
            let sched = DeepRecSched::new(opts.search);

            let base = max_qps_under_sla(
                &cfg,
                cpu_cluster,
                SchedulerPolicy::static_baseline(cpu_cluster.cpu.cores),
                sla,
                &opts.search,
            );
            let drs_cpu = sched.tune_cpu(&cfg, cpu_cluster, sla);
            let drs_gpu = sched.tune(&cfg, gpu_cluster, sla);

            let qpw = |r: &Option<SimReport>| r.as_ref().map_or(0.0, |r| r.qps_per_watt);
            let base_qpw = qpw(&base.at_max);
            let cpu_qpw = qpw(&drs_cpu.at_max);
            let gpu_qpw = qpw(&drs_gpu.at_max);

            // When the static baseline cannot meet the SLA at all (its
            // fixed batch 25 violates the tail target even unloaded),
            // any positive DeepRecSched QPS is an "unlock" — reported
            // textually and excluded from the geomean.
            let rel = |x: f64, b: f64| if b > 0.0 { x / b } else { f64::NAN };
            let rel_label = |x: f64, b: f64| {
                if b > 0.0 {
                    format!("{:.2}x", x / b)
                } else if x > 0.0 {
                    "unlocked".to_string()
                } else {
                    "-".to_string()
                }
            };
            let cpu_x = rel(drs_cpu.qps, base.max_qps);
            let gpu_x = rel(drs_gpu.qps, base.max_qps);
            if cpu_x.is_finite() && cpu_x > 0.0 {
                cpu_gains.push(cpu_x);
            }
            if gpu_x.is_finite() && gpu_x > 0.0 {
                gpu_gains.push(gpu_x);
            }
            let cpu_px = rel(cpu_qpw, base_qpw);
            let gpu_px = rel(gpu_qpw, base_qpw);
            if cpu_px.is_finite() && cpu_px > 0.0 {
                cpu_pgains.push(cpu_px);
            }
            if gpu_px.is_finite() && gpu_px > 0.0 {
                gpu_pgains.push(gpu_px);
            }

            qps_table.row(vec![
                cfg.name.to_string(),
                tier.label().to_string(),
                format!("{:.0}", base.max_qps),
                format!("{:.0} (b={})", drs_cpu.qps, drs_cpu.policy.max_batch),
                rel_label(drs_cpu.qps, base.max_qps),
                format!(
                    "{:.0} (thr={})",
                    drs_gpu.qps,
                    drs_gpu
                        .policy
                        .gpu_threshold
                        .map_or("-".into(), |t| t.to_string())
                ),
                rel_label(drs_gpu.qps, base.max_qps),
            ]);
            power_table.row(vec![
                cfg.name.to_string(),
                tier.label().to_string(),
                format!("{base_qpw:.1}"),
                format!("{cpu_qpw:.1}"),
                rel_label(cpu_qpw, base_qpw),
                format!("{gpu_qpw:.1}"),
                rel_label(gpu_qpw, base_qpw),
            ]);
        }
    }

    println!("## (top) throughput under the p95 SLA\n\n{qps_table}");
    println!("## (bottom) power efficiency\n\n{power_table}");
    let g = |v: &[f64]| geomean(v).unwrap_or(f64::NAN);
    println!("## GeoMean across models and tiers\n");
    println!(
        "- DRS-CPU QPS gain:   {:.2}x (paper: 1.7-2.7x)",
        g(&cpu_gains)
    );
    println!(
        "- DRS-GPU QPS gain:   {:.2}x (paper: 4.0-5.8x)",
        g(&gpu_gains)
    );
    println!(
        "- DRS-CPU QPS/W gain: {:.2}x (paper: 1.7-2.7x)",
        g(&cpu_pgains)
    );
    println!(
        "- DRS-GPU QPS/W gain: {:.2}x (paper: 2.0-2.9x)",
        g(&gpu_pgains)
    );
}
