//! Regenerates **Figure 7**: the latency distribution measured on a
//! handful of machines tracks the datacenter-scale distribution to
//! within ~10 %.

use deeprecsys::prelude::*;
use deeprecsys::table::{fmt3, TextTable};
use drs_metrics::Histogram;

fn run_cluster(
    cfg: &ModelConfig,
    machines: usize,
    per_machine_qps: f64,
    n: usize,
    seed: u64,
) -> Vec<f64> {
    let cluster = ClusterConfig::cluster(machines, CpuPlatform::skylake(), None);
    let sim = Simulation::new(cfg, cluster, SchedulerPolicy::cpu_only(64));
    let mut gen = QueryGenerator::new(
        ArrivalProcess::poisson(per_machine_qps * machines as f64),
        SizeDistribution::production(),
        seed,
    );
    sim.run(&mut gen, RunOptions::queries(n)).latencies_ms
}

fn main() {
    let opts = drs_bench::parse_args();
    drs_bench::header(
        "Figure 7 — subsampling the datacenter fleet with a few machines",
        "per-query latency distributions measured on a handful of nodes track \
         the datacenter-scale distribution within ~10% (max CDF deviation)",
        &opts,
    );

    let (dc_machines, few_machines) = (100usize, 4usize);
    let per_machine_qps = 600.0;
    let n_dc = opts.pick(100_000, 20_000, 4_000);
    let n_few = n_dc / (dc_machines / few_machines);

    let mut t = TextTable::new(vec![
        "model",
        "datacenter p50/p95/p99 (ms)",
        "subsample p50/p95/p99 (ms)",
        "max CDF deviation",
        "within 10%",
    ]);
    for cfg in [zoo::dlrm_rmc1(), zoo::dlrm_rmc3()] {
        let dc = run_cluster(&cfg, dc_machines, per_machine_qps, n_dc, opts.search.seed);
        let few = run_cluster(
            &cfg,
            few_machines,
            per_machine_qps,
            n_few.max(2_000),
            opts.search.seed + 1,
        );

        let mut h_dc = Histogram::new(0.05, 10_000.0, 96);
        let mut h_few = Histogram::new(0.05, 10_000.0, 96);
        for &x in &dc {
            h_dc.record(x);
        }
        for &x in &few {
            h_few.record(x);
        }
        let ks = h_dc.max_cdf_distance(&h_few);

        let summary = |v: &[f64]| {
            let mut rec = LatencyRecorder::new();
            for &x in v {
                rec.record_ms(x);
            }
            let s = rec.summary();
            format!("{}/{}/{}", fmt3(s.p50_ms), fmt3(s.p95_ms), fmt3(s.p99_ms))
        };
        t.row(vec![
            cfg.name.to_string(),
            summary(&dc),
            summary(&few),
            format!("{:.1}%", ks * 100.0),
            if ks < 0.10 { "yes".into() } else { "no".into() },
        ]);
    }
    println!(
        "datacenter = {dc_machines} machines, subsample = {few_machines} machines, \
         equal per-machine load ({per_machine_qps} QPS each)\n"
    );
    println!("{t}");
}
