//! Regenerates **Figure 9**: max QPS under the SLA as a function of the
//! per-request batch size — the request- vs batch-parallelism trade-off.
//!
//! Top panel: the optimum shifts with the tail-latency target
//! (DLRM-RMC3 at Low vs Medium). Bottom panel: the optimum differs
//! across model classes (RMC1 embedding-, RMC3 MLP-, DIEN
//! attention-dominated).

use deeprecsys::prelude::*;
use deeprecsys::table::{fmt3, TextTable};

fn sweep(cfg: &ModelConfig, sla_ms: f64, opts: &drs_bench::ExpOptions) -> Vec<(u32, f64)> {
    let ladder: Vec<u32> = (0..=10).map(|p| 1u32 << p).collect();
    ladder
        .iter()
        .map(|&b| {
            let r = max_qps_under_sla(
                cfg,
                ClusterConfig::single_skylake(),
                SchedulerPolicy::cpu_only(b),
                sla_ms,
                &opts.search,
            );
            (b, r.max_qps)
        })
        .collect()
}

fn print_sweep(label: &str, curve: &[(u32, f64)]) {
    let mut t = TextTable::new(vec!["batch", "max QPS"]);
    let best = curve
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap()
        .0;
    for &(b, q) in curve {
        let marker = if b == best { " <= optimal" } else { "" };
        t.row(vec![b.to_string(), format!("{}{marker}", fmt3(q))]);
    }
    println!("### {label} (optimal batch {best})\n\n{t}");
}

fn main() {
    let opts = drs_bench::parse_args();
    drs_bench::header(
        "Figure 9 — request- vs batch-level parallelism",
        "optimal batch grows as the SLA relaxes (RMC3: 128 @ low -> 256 @ \
         medium in the paper) and differs across models (embedding-bound \
         models prefer larger batches than MLP/attention-bound ones)",
        &opts,
    );

    println!("## (top) DLRM-RMC3 across tail-latency targets\n");
    let rmc3 = zoo::dlrm_rmc3();
    for tier in [SlaTier::Low, SlaTier::Medium] {
        print_sweep(
            &format!("RMC3 @ {} SLA ({} ms)", tier, tier.sla_ms(&rmc3)),
            &sweep(&rmc3, tier.sla_ms(&rmc3), &opts),
        );
    }

    println!("## (bottom) model classes at their Medium SLA\n");
    for cfg in [zoo::dlrm_rmc1(), zoo::dlrm_rmc3(), zoo::dien()] {
        print_sweep(
            &format!("{} ({} ms)", cfg.name, cfg.sla_ms),
            &sweep(&cfg, cfg.sla_ms, &opts),
        );
    }
}
