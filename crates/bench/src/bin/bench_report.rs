//! **Engine benchmark report** — extracts the three serving-critical
//! throughput numbers the Criterion suite tracks (real-engine QPS,
//! router routes/s, shard-gather GB/s) with direct wall-clock
//! harnesses, and appends them as one JSON line to `BENCH_engine.json`
//! at the repo root — one entry per PR, so the file accumulates a
//! performance history the way CHANGES.md accumulates a change log.
//!
//! * `bench_report [--smoke|--full] [--label NAME] [--out PATH]` —
//!   measure and append an entry;
//! * `bench_report --check [--out PATH]` — parse every line of the
//!   existing file and fail loudly if any entry is malformed (the CI
//!   guard that keeps the history machine-readable), warning when a
//!   shared key drops more than 25% between consecutive entries.
//!
//! The JSON is hand-rolled and flat on purpose: no serde dependency,
//! and `--check` carries its own parser so the format is pinned by
//! code in this repo rather than by whatever a library tolerates.

use deeprecsys::prelude::*;
use deeprecsys::telemetry::STAGE_COUNT;
use drs_engine::EngineRequest;
use drs_nn::{EmbeddingBag, Pooling};
use drs_query::TenantId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Keys every entry must carry, in emission order.
const REQUIRED_KEYS: &[&str] = &[
    "schema",
    "label",
    "mode",
    "engine_qps",
    "router_routes_per_s",
    "shard_gather_gbps",
];

/// Keys added by schema 2 (the telemetry layer): span-recording
/// throughput/overhead plus the stage-breakdown medians of a traced
/// serving window. Older schema-1 lines in the history stay valid —
/// `--check` requires these only when `schema >= 2`.
const SCHEMA2_KEYS: &[&str] = &[
    "telemetry_spans_per_s",
    "telemetry_ns_per_span",
    "stage_p50_queue_wait_ms",
    "stage_p50_engine_service_ms",
];

/// Keys added by schema 3 (the static-analysis gate): wall time of a
/// full `drs-lint` workspace scan, so analyzer cost is tracked in the
/// same history as the serving numbers. Required only when
/// `schema >= 3`.
const SCHEMA3_KEYS: &[&str] = &["lint_ms"];

/// Keys added by schema 4 (the fleet-pulse metrics layer): the
/// registry snapshot cost under a representative fleet key load, and
/// the decision-log volume (retune decisions + DRR grants) of a
/// pinned controller run — an integer that doubles as a determinism
/// canary, since the virtual-clock run behind it is seed-exact.
/// Required only when `schema >= 4`.
const SCHEMA4_KEYS: &[&str] = &["metrics_ns_per_sample", "decision_log_events"];

/// Keys added by schema 5 (the interprocedural analyses): wall time of
/// the semantic passes alone (call-graph construction plus the taint
/// fixpoint, excluding discovery/lexing already covered by `lint_ms`),
/// and the workspace call-graph edge count — an integer canary that
/// moves only when code structure changes. Required only when
/// `schema >= 5`.
const SCHEMA5_KEYS: &[&str] = &["taint_ms", "callgraph_edges"];

/// Fractional drop between consecutive entries of the same key that
/// `--check` calls out. Wall-clock harnesses on a shared container are
/// noisy (the pr8 `shard_gather_gbps` dip re-measured firmly inside
/// the smoke-scale noise band), so a drop warns rather than fails —
/// but it warns loudly enough that a real regression cannot slip into
/// the history unremarked.
const DROP_WARN_FRAC: f64 = 0.25;

fn main() {
    let opts = drs_bench::parse_args();
    let args: Vec<String> = std::env::args().collect();
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_engine.json".to_string());

    if args.iter().any(|a| a == "--check") {
        check(&out);
        return;
    }

    let label = args
        .iter()
        .position(|a| a == "--label")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "local".to_string());

    drs_bench::header(
        "Engine benchmark report — real-engine QPS, router routes/s, shard-gather GB/s",
        "the serving hot paths the Criterion suite tracks, extracted to one \
         machine-readable BENCH_engine.json entry per PR",
        &opts,
    );

    let engine_qps = measure_engine_qps(&opts);
    println!("engine           : {engine_qps:.0} requests/s (2-worker pool, batch 16)");
    let routes = measure_router_routes(&opts);
    println!("router           : {routes:.0} routes/s (least-outstanding, 16 nodes)");
    let gather = measure_shard_gather_gbps(&opts);
    println!("shard gather     : {gather:.2} GB/s (2-way shard, merge included)");
    let (spans_per_s, ns_per_span) = measure_span_record(&opts);
    println!(
        "telemetry        : {spans_per_s:.0} spans/s into the ring sink ({ns_per_span:.0} ns/span)"
    );
    let (qw_p50, es_p50) = measure_stage_medians(&opts);
    println!(
        "stage medians    : queue-wait {qw_p50:.3} ms, engine-service {es_p50:.3} ms \
         (traced virtual serve)"
    );
    let lint_ms = measure_lint_ms(&opts);
    println!("lint scan        : {lint_ms:.1} ms (full drs-lint workspace pass)");
    let ns_per_sample = measure_metrics_ns_per_sample(&opts);
    println!("metrics sample   : {ns_per_sample:.0} ns/sample (fleet-shaped registry snapshot)");
    let decision_events = measure_decision_log_events(&opts);
    println!(
        "decision log     : {decision_events} events (retunes + DRR grants, pinned virtual run)"
    );
    let (taint_ms, callgraph_edges) = measure_taint_ms(&opts);
    println!(
        "taint analysis   : {taint_ms:.1} ms (call graph + interprocedural fixpoint, \
         {callgraph_edges} edges)"
    );

    let entry = format!(
        "{{\"schema\": 5, \"label\": {}, \"mode\": {}, \"engine_qps\": {engine_qps:.1}, \
         \"router_routes_per_s\": {routes:.0}, \"shard_gather_gbps\": {gather:.3}, \
         \"telemetry_spans_per_s\": {spans_per_s:.0}, \
         \"telemetry_ns_per_span\": {ns_per_span:.1}, \
         \"stage_p50_queue_wait_ms\": {qw_p50:.4}, \
         \"stage_p50_engine_service_ms\": {es_p50:.4}, \
         \"lint_ms\": {lint_ms:.2}, \
         \"metrics_ns_per_sample\": {ns_per_sample:.1}, \
         \"decision_log_events\": {decision_events}, \
         \"taint_ms\": {taint_ms:.2}, \
         \"callgraph_edges\": {callgraph_edges}}}",
        json_string(&label),
        json_string(opts.mode.label()),
    );
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out)
        .unwrap_or_else(|e| panic!("cannot open {out}: {e}"));
    writeln!(file, "{entry}").expect("append entry");
    println!("\nappended to {out}:\n{entry}");
}

/// Closed-loop throughput of the real worker pool: saturating a
/// 2-worker [`InferenceEngine`] with batch-16 forward requests on a
/// tiny-scaled NCF and counting completions per wall-clock second.
fn measure_engine_qps(opts: &drs_bench::ExpOptions) -> f64 {
    let cfg = zoo::ncf();
    let mut rng = StdRng::seed_from_u64(11);
    let model = Arc::new(RecModel::instantiate(&cfg, ModelScale::tiny(), &mut rng));
    let inputs = model.generate_inputs(16, &mut rng);
    let n = opts.pick(5_000, 1_000, 200);
    let engine = InferenceEngine::start(model, 2);
    // Warm the pool before the timed window.
    for i in 0..16 {
        engine.submit(EngineRequest::forward(i, inputs.clone()));
    }
    for _ in 0..16 {
        engine.completions().recv().expect("warmup completion");
    }
    let start = Instant::now();
    for i in 0..n {
        engine.submit(EngineRequest::forward(i as u64, inputs.clone()));
    }
    for _ in 0..n {
        engine.completions().recv().expect("completion");
    }
    let elapsed = start.elapsed().as_secs_f64();
    engine.shutdown();
    n as f64 / elapsed
}

/// The router's per-query hot path at steady state: one policy
/// decision plus the outstanding-gauge charge/release cycle, under the
/// O(N)-scan least-outstanding policy on a 16-node fleet.
fn measure_router_routes(opts: &drs_bench::ExpOptions) -> f64 {
    let sizes: Vec<u32> = QueryGenerator::new(
        ArrivalProcess::poisson(10_000.0),
        SizeDistribution::production(),
        7,
    )
    .take(10_000)
    .map(|q| q.size)
    .collect();
    let gpu_nodes: Vec<bool> = (0..16).map(|i| i % 2 == 0).collect();
    let reps = opts.pick(200, 50, 5);
    let start = Instant::now();
    let mut acc = 0usize;
    for rep in 0..reps {
        let mut router = Router::new(RoutingPolicy::LeastOutstanding, &gpu_nodes, 250, 11);
        let mut inflight = Vec::with_capacity(64);
        for &size in &sizes {
            let n = router.route(TenantId::SOLO, size);
            acc += n.0;
            inflight.push(n);
            if inflight.len() >= 64 {
                router.complete(inflight.remove(0));
            }
        }
        std::hint::black_box(acc + rep);
    }
    (reps * sizes.len()) as f64 / start.elapsed().as_secs_f64()
}

/// Sharded gather+merge bandwidth: per-shard partial forwards over a
/// 2-way [`ShardedEmbeddingSet`] plus the merge, counting the row
/// bytes the gathers read.
fn measure_shard_gather_gbps(opts: &drs_bench::ExpOptions) -> f64 {
    const TABLES: usize = 8;
    const ROWS: usize = 20_000;
    const DIM: usize = 32;
    const LOOKUPS: usize = 80;
    const BATCH: usize = 32;
    let mut rng = StdRng::seed_from_u64(13);
    let bags: Vec<EmbeddingBag> = (0..TABLES)
        .map(|_| EmbeddingBag::new(ROWS, DIM, Pooling::Sum, &mut rng))
        .collect();
    let indices: Vec<Vec<Vec<u32>>> = (0..TABLES)
        .map(|_| {
            (0..BATCH)
                .map(|_| {
                    (0..LOOKUPS)
                        .map(|_| rng.gen_range(0..ROWS as u32))
                        .collect()
                })
                .collect()
        })
        .collect();
    let assignment: Vec<usize> = (0..TABLES).map(|t| t % 2).collect();
    let set = ShardedEmbeddingSet::new(bags, &assignment);
    let iters = opts.pick(400, 100, 10);
    let start = Instant::now();
    for _ in 0..iters {
        let partials: Vec<_> = (0..set.num_shards())
            .map(|s| set.forward_shard(s, &indices))
            .collect();
        std::hint::black_box(set.merge(partials));
    }
    let bytes = (iters * TABLES * BATCH * LOOKUPS * DIM * 4) as f64;
    bytes / start.elapsed().as_secs_f64() / 1e9
}

/// Span-recording hot path: streaming whole batches of synthetic spans
/// into a fresh [`RingRecorder`] (ring append + per-stage/tenant/node
/// digest updates) and counting spans per wall-clock second.
fn measure_span_record(opts: &drs_bench::ExpOptions) -> (f64, f64) {
    const BATCH: usize = 4_096;
    let batch: Vec<QuerySpan> = (0..BATCH as u64)
        .map(|i| {
            let mut stages = [0u64; STAGE_COUNT];
            stages[Stage::QueueWait.index()] = 100_000 + i * 13;
            stages[Stage::EngineService.index()] = 2_000_000 + i * 7;
            QuerySpan {
                query_id: i,
                tenant: (i % 3) as usize,
                node: (i % 4) as usize,
                arrival_ns: i * 1_000_000,
                end_ns: i * 1_000_000 + stages.iter().sum::<u64>(),
                stages,
            }
        })
        .collect();
    let reps = opts.pick(2_000, 500, 50);
    let start = Instant::now();
    for rep in 0..reps {
        let mut sink = RingRecorder::new(batch.len());
        for s in &batch {
            sink.record(s);
        }
        std::hint::black_box(sink.recorded() + rep as u64);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let total = (reps * BATCH) as f64;
    (total / elapsed, elapsed * 1e9 / total)
}

/// Stage-breakdown medians of a traced serving window: the queue-wait
/// and engine-service p50s a DLRM-RMC1 node pays under GPU offload —
/// the two stages the paper's batching/offload knobs act on.
fn measure_stage_medians(opts: &drs_bench::ExpOptions) -> (f64, f64) {
    let qs: Vec<_> = QueryGenerator::new(
        ArrivalProcess::poisson(600.0),
        SizeDistribution::production(),
        17,
    )
    .take(opts.pick(6_000, 2_000, 400))
    .collect();
    let server = Server::new(
        &zoo::dlrm_rmc1(),
        CpuPlatform::skylake(),
        Some(GpuPlatform::gtx_1080ti()),
        ServerOptions::new(16, SchedulerPolicy::with_gpu(64, 128)),
    );
    let mut rec = RingRecorder::new(qs.len());
    let report = server.serve_virtual_traced(&qs, &mut rec);
    let b = report
        .stage_breakdown
        .expect("traced run yields a breakdown");
    (
        b.stage(Stage::QueueWait).p50_ms,
        b.stage(Stage::EngineService).p50_ms,
    )
}

/// Wall time of one full `drs-lint` workspace scan (discovery, lexing,
/// parsing, every rule pass) — best of a few repetitions, in
/// milliseconds. The analyzer must also come back finding-free, so the
/// benchmark doubles as a cheap self-check.
fn measure_lint_ms(opts: &drs_bench::ExpOptions) -> f64 {
    let root = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(|d| std::path::PathBuf::from(d).join("..").join(".."))
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let reps = opts.pick(7, 3, 1);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let report = drs_lint::workspace::analyze_workspace(&root).expect("workspace scan");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        assert!(
            report.findings.is_empty(),
            "benchmarked workspace must be finding-free, got {} finding(s)",
            report.findings.len()
        );
        std::hint::black_box(report.files_scanned);
        best = best.min(ms);
    }
    best
}

/// Wall time of the semantic passes alone: building the workspace
/// call graph and running the interprocedural taint fixpoint over the
/// already-parsed sources. Discovery and lexing are deliberately paid
/// outside the timed window (that cost is `lint_ms`'s), so this number
/// isolates what the schema-5 analyses added. Best of a few reps, in
/// milliseconds, plus the edge count of the graph — an integer canary
/// that moves only when the code's call structure changes.
fn measure_taint_ms(opts: &drs_bench::ExpOptions) -> (f64, usize) {
    use drs_lint::callgraph::CallGraph;
    use drs_lint::taint::check_taint;
    use drs_lint::workspace::{crate_views, discover, WALL_CLOCK_EXEMPT};
    let root = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(|d| std::path::PathBuf::from(d).join("..").join(".."))
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let crates = discover(&root).expect("workspace discovery");
    let views = crate_views(&crates);
    let reps = opts.pick(7, 3, 1);
    let mut best = f64::INFINITY;
    let mut edges = 0usize;
    for _ in 0..reps {
        let start = Instant::now();
        let graph = CallGraph::build(&views);
        let out = check_taint(&views, WALL_CLOCK_EXEMPT);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        assert!(
            out.findings.is_empty(),
            "benchmarked workspace must be taint-free, got {} finding(s)",
            out.findings.len()
        );
        edges = graph.edges.len();
        std::hint::black_box((edges, out.suppressed.len()));
        best = best.min(ms);
    }
    (best, edges)
}

/// Registry snapshot cost under a fleet-shaped key load: the ~14
/// gauge/counter/window series a two-node, two-lane deployment emits,
/// refreshed and sampled once per tick — nanoseconds per `sample`
/// call, the number `fig_fleet_pulse` pays at every virtual tick.
fn measure_metrics_ns_per_sample(opts: &drs_bench::ExpOptions) -> f64 {
    let ticks = opts.pick(20_000, 5_000, 1_000);
    let mut reg = MetricsRegistry::new();
    let start = Instant::now();
    for t in 0..ticks {
        for n in 0..2u32 {
            reg.set_gauge(&format!("queue_depth_n{n}"), (t % 13) as f64);
            reg.set_gauge(
                &format!("gpu_backlog_ns_n{n}"),
                ((t * 31) % 1_000_000) as f64,
            );
            for lane in 0..2u32 {
                reg.set_gauge(&format!("max_batch_n{n}_t{lane}"), 64.0);
                reg.set_gauge(&format!("drr_deficit_n{n}_t{lane}"), (t % 97) as f64);
            }
        }
        reg.inc("completed_total", 3);
        reg.observe("latency_ms", 4.0 + (t % 11) as f64);
        reg.sample(t as u64 * 1_000_000);
    }
    let elapsed = start.elapsed().as_nanos() as f64;
    std::hint::black_box(reg.samples().len());
    elapsed / ticks as f64
}

/// Decision-log volume of a pinned controller run: a diurnal
/// DLRM-RMC1 window on the virtual clock, counting retune decisions
/// plus DRR grants. The run is seed-exact, so within one mode the
/// count is an integer that only changes when serving or controller
/// semantics change — a determinism canary riding in the perf history.
fn measure_decision_log_events(opts: &drs_bench::ExpOptions) -> u64 {
    let n = opts.pick(12_000, 4_000, 800);
    let day_s = opts.pick(20.0, 8.0, 3.0);
    let queries: Vec<_> = QueryGenerator::new(
        ArrivalProcess::diurnal(300.0, 0.6, day_s),
        SizeDistribution::production(),
        23,
    )
    .take(n)
    .collect();
    let server = Server::new(
        &zoo::dlrm_rmc1(),
        CpuPlatform::skylake(),
        Some(GpuPlatform::gtx_1080ti()),
        ServerOptions::new(40, SchedulerPolicy::with_gpu(4, 192))
            .with_controller(ControllerConfig::smoke()),
    );
    let mut pulse = PulseRecorder::new(((day_s * 1e9) / 240.0) as u64);
    let report = server.serve_virtual_pulsed(&queries, &mut pulse);
    std::hint::black_box(report.completed);
    pulse.decisions().len() as u64 + pulse.drr_rounds().len() as u64
}

/// `--check`: every line of the history must parse as a flat JSON
/// object carrying the required keys with numeric measurements.
fn check(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e} (run bench_report to create it)"));
    let mut entries = 0usize;
    let mut prev: Option<(String, Vec<(String, JsonVal)>)> = None;
    let mut drops = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let obj = parse_flat_object(line)
            .unwrap_or_else(|e| panic!("{path}:{}: malformed entry: {e}", lineno + 1));
        let schema = match obj.iter().find(|(k, _)| k == "schema") {
            Some((_, JsonVal::Num(v))) => *v,
            _ => panic!("{path}:{}: missing numeric schema", lineno + 1),
        };
        let required = REQUIRED_KEYS
            .iter()
            .chain(if schema >= 2.0 { SCHEMA2_KEYS } else { &[] })
            .chain(if schema >= 3.0 { SCHEMA3_KEYS } else { &[] })
            .chain(if schema >= 4.0 { SCHEMA4_KEYS } else { &[] })
            .chain(if schema >= 5.0 { SCHEMA5_KEYS } else { &[] });
        for key in required {
            let val = obj
                .iter()
                .find(|(k, _)| k == key)
                .unwrap_or_else(|| panic!("{path}:{}: missing key {key:?}", lineno + 1));
            let want_numeric = !matches!(*key, "label" | "mode");
            match &val.1 {
                JsonVal::Num(x) => {
                    assert!(
                        want_numeric && x.is_finite(),
                        "{path}:{}: key {key:?} must be a finite measurement",
                        lineno + 1
                    );
                }
                JsonVal::Str(s) => {
                    assert!(
                        !want_numeric && !s.is_empty(),
                        "{path}:{}: key {key:?} must be a non-empty string",
                        lineno + 1
                    );
                }
            }
        }
        let label = match obj.iter().find(|(k, _)| k == "label") {
            Some((_, JsonVal::Str(s))) => s.clone(),
            _ => format!("line {}", lineno + 1),
        };
        if let Some((prev_label, prev_obj)) = &prev {
            drops += warn_drops(path, lineno + 1, prev_label, prev_obj, &label, &obj);
        }
        prev = Some((label, obj));
        entries += 1;
    }
    assert!(entries > 0, "{path} holds no entries");
    if drops > 0 {
        println!("{path}: {drops} key(s) dropped >{:.0}% between consecutive entries (warnings above, not failures — wall-clock harnesses are noisy; re-measure before trusting a single dip)", DROP_WARN_FRAC * 100.0);
    }
    println!("{path}: {entries} entries, all parseable");
}

/// Warns (to stderr) for every numeric key both entries carry whose
/// value fell by more than [`DROP_WARN_FRAC`], and returns how many
/// warnings fired. `schema` is structural, not a measurement, and is
/// skipped.
fn warn_drops(
    path: &str,
    lineno: usize,
    prev_label: &str,
    prev: &[(String, JsonVal)],
    label: &str,
    cur: &[(String, JsonVal)],
) -> usize {
    let mut n = 0;
    for (key, val) in cur {
        if key == "schema" {
            continue;
        }
        let (JsonVal::Num(now), Some(JsonVal::Num(before))) =
            (val, prev.iter().find(|(k, _)| k == key).map(|(_, v)| v))
        else {
            continue;
        };
        if *before > 0.0 && *now < *before * (1.0 - DROP_WARN_FRAC) {
            eprintln!(
                "{path}:{lineno}: warning: {key} dropped {:.0}% ({before} at {prev_label:?} -> {now} at {label:?})",
                100.0 * (1.0 - now / before)
            );
            n += 1;
        }
    }
    n
}

/// A leaf value in a flat benchmark entry.
enum JsonVal {
    Num(f64),
    Str(String),
}

/// Parses one flat JSON object (`{"key": value, ...}` with string or
/// number values — exactly the shape `bench_report` emits).
fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonVal)>, String> {
    let inner = line
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or("not wrapped in { }")?;
    let mut out = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        let (key, after_key) = parse_string(rest)?;
        rest = after_key
            .trim_start()
            .strip_prefix(':')
            .ok_or("missing : after key")?
            .trim_start();
        let (val, after_val) = if rest.starts_with('"') {
            let (s, r) = parse_string(rest)?;
            (JsonVal::Str(s), r)
        } else {
            let end = rest
                .find(|c: char| c == ',' || c.is_whitespace())
                .unwrap_or(rest.len());
            let num: f64 = rest[..end]
                .parse()
                .map_err(|_| format!("bad number {:?}", &rest[..end]))?;
            (JsonVal::Num(num), &rest[end..])
        };
        out.push((key, val));
        rest = after_val.trim_start();
        match rest.strip_prefix(',') {
            Some(r) => rest = r.trim_start(),
            None if rest.is_empty() => break,
            None => return Err(format!("trailing garbage: {rest:?}")),
        }
    }
    if out.is_empty() {
        return Err("empty object".into());
    }
    Ok(out)
}

/// Parses a leading `"..."` (no escapes — labels and modes are plain
/// identifiers) and returns the remainder.
fn parse_string(s: &str) -> Result<(String, &str), String> {
    let body = s.strip_prefix('"').ok_or("expected opening quote")?;
    let end = body.find('"').ok_or("unterminated string")?;
    Ok((body[..end].to_string(), &body[end + 1..]))
}

/// Emits a JSON string literal (labels are plain identifiers; quotes
/// and backslashes are rejected rather than escaped so `--check`'s
/// escape-free parser stays honest).
fn json_string(s: &str) -> String {
    assert!(
        !s.contains('"') && !s.contains('\\'),
        "label must not contain quotes or backslashes: {s:?}"
    );
    format!("{s:?}")
}
