//! Regenerates **Figure 3**: operator time breakdown per model at batch
//! size 64, measured by really executing each model on the host CPU.

use deeprecsys::engine::profile_operators;
use deeprecsys::prelude::*;
use deeprecsys::table::TextTable;
use rand::SeedableRng;

fn main() {
    let opts = drs_bench::parse_args();
    drs_bench::header(
        "Figure 3 — operator breakdown @ batch 64 (real execution)",
        "RMC1/RMC2 dominated by embedding lookups; RMC3/NCF/WND/MT-WND by FC \
         layers; DIN split across attention/embedding/FC; DIEN by recurrent layers",
        &opts,
    );

    // --full uses realistically sized tables (DRAM-resident gathers);
    // quick mode keeps tables tiny so the sweep finishes in seconds.
    let scale = if opts.full() {
        ModelScale::default_scale()
    } else {
        ModelScale::tiny()
    };
    let iters = opts.pick(5, 2, 1);

    let mut t = TextTable::new(vec![
        "model",
        "DenseFC",
        "PredictFC",
        "Embedding",
        "Attention",
        "Recurrent",
        "Interaction",
        "dominant",
    ]);
    for cfg in zoo::all() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let model = RecModel::instantiate(&cfg, scale, &mut rng);
        let prof = profile_operators(&model, 64, iters, 17);
        let fr = prof.fractions();
        let (dom, share) = prof.dominant().expect("profiled");
        let mut row = vec![cfg.name.to_string()];
        row.extend(fr.iter().map(|f| format!("{:.1}%", f * 100.0)));
        row.push(format!("{dom} ({:.0}%)", share * 100.0));
        t.row(row);
    }
    println!("{t}");
}
