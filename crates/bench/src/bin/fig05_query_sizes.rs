//! Regenerates **Figure 5**: the production query working-set size
//! distribution versus the canonical log-normal / normal assumptions.

use deeprecsys::prelude::*;
use deeprecsys::query::tail_work_share;
use deeprecsys::table::TextTable;
use drs_metrics::percentile_of_sorted;
use rand::SeedableRng;

fn main() {
    let opts = drs_bench::parse_args();
    drs_bench::header(
        "Figure 5 — query working-set size distributions",
        "production sizes have a heavier tail than log-normal, cap at ~1000 \
         items, and the top quartile of queries carries ~half the total work",
        &opts,
    );

    let n = opts.pick(1_000_000, 100_000, 5_000);
    let dists = [
        SizeDistribution::production(),
        SizeDistribution::lognormal_matched(),
        SizeDistribution::normal_matched(),
    ];

    let mut t = TextTable::new(vec![
        "distribution",
        "mean",
        "p50",
        "p75",
        "p95",
        "p99",
        "p99.9",
        "max",
        ">p75 work share",
    ]);
    for d in dists {
        let mut rng = rand::rngs::StdRng::seed_from_u64(opts.search.seed);
        let sizes = d.sample_n(n, &mut rng);
        let mut sorted: Vec<f64> = sizes.iter().map(|&s| s as f64).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q = |p: f64| percentile_of_sorted(&sorted, p);
        t.row(vec![
            d.name().to_string(),
            format!("{:.1}", sorted.iter().sum::<f64>() / n as f64),
            format!("{:.0}", q(0.50)),
            format!("{:.0}", q(0.75)),
            format!("{:.0}", q(0.95)),
            format!("{:.0}", q(0.99)),
            format!("{:.0}", q(0.999)),
            format!("{:.0}", sorted.last().unwrap()),
            format!("{:.0}%", tail_work_share(&sizes, 0.75) * 100.0),
        ]);
    }
    println!("{t}");
    println!(
        "The production mixture's p99/p99.9 dwarf the log-normal's at a \n\
         comparable mean — the heavy tail that drives every DeepRecSched \n\
         design decision."
    );
}
