//! Regenerates **Figure 13**: the production-datacenter study — a
//! cluster of machines serving live diurnal traffic for 24 (virtual)
//! hours, comparing tail latency under the fixed production batch size
//! against the DeepRecSched-tuned batch size.

use deeprecsys::metrics as drs_metrics;
use deeprecsys::prelude::*;
use deeprecsys::table::{fmt3, TextTable};

fn main() {
    let opts = drs_bench::parse_args();
    drs_bench::header(
        "Figure 13 — tail-latency reduction in an at-scale production cluster",
        "across models and servers over 24h of live traffic, the tuned batch \
         size reduces p95 by 1.39x and p99 by 1.31x versus the fixed baseline",
        &opts,
    );

    // A mixed fleet: several models sharing the diurnal day. The paper
    // aggregates across "a wide collection of recommendation models and
    // server-class Intel CPUs"; we aggregate across the DLRM family on
    // a Skylake cluster.
    let machines = 20;
    let cluster = ClusterConfig::cluster(machines, CpuPlatform::skylake(), None);
    let day_s = opts.pick(86_400.0, 600.0, 60.0);
    let queries = opts.pick(2_000_000, 80_000, 4_000);

    let mut all_base = LatencyRecorder::new();
    let mut all_tuned = LatencyRecorder::new();
    let mut p95_ratios: Vec<f64> = Vec::new();
    let mut p99_ratios: Vec<f64> = Vec::new();
    let mut t = TextTable::new(vec![
        "model",
        "load (QPS)",
        "baseline p95/p99 (ms)",
        "tuned p95/p99 (ms)",
        "p95 reduction",
        "p99 reduction",
    ]);

    // Offered loads sit at ~85% of the *baseline's* per-machine
    // capacity — the regime production fleets run in, where the fixed
    // batch size queues at the diurnal peak while the tuned batch
    // (higher capacity) stays comfortable.
    for (cfg, base_qps) in [
        (zoo::dlrm_rmc1(), 14_900.0),
        (zoo::dlrm_rmc2(), 3_700.0),
        (zoo::dlrm_rmc3(), 16_000.0),
    ] {
        let tuned_policy = DeepRecSched::new(opts.search)
            .tune_cpu(&cfg, cluster, SlaTier::Medium.sla_ms(&cfg))
            .policy;
        // The simulator backend is selected through the unified
        // `ServingStack` constructor — swapping `StackSpec::Sim` for
        // `StackSpec::Cluster(..)` reruns the figure on the real
        // serving path.
        let stream: Vec<_> = QueryGenerator::new(
            ArrivalProcess::diurnal(base_qps, 0.3, day_s),
            SizeDistribution::production(),
            opts.search.seed,
        )
        .take(queries)
        .collect();
        let infra = DeepRecInfra::new(cfg.clone()).with_cluster(cluster);
        let run =
            |policy: SchedulerPolicy| infra.stack(policy, StackSpec::Sim).serve_queries(&stream);
        let base = run(SchedulerPolicy::static_baseline(cluster.cpu.cores));
        let tuned = run(tuned_policy);
        for &x in &base.latencies_ms {
            all_base.record_ms(x);
        }
        for &x in &tuned.latencies_ms {
            all_tuned.record_ms(x);
        }
        p95_ratios.push(base.latency.p95_ms / tuned.latency.p95_ms);
        p99_ratios.push(base.latency.p99_ms / tuned.latency.p99_ms);
        t.row(vec![
            cfg.name.to_string(),
            fmt3(base_qps),
            format!(
                "{}/{}",
                fmt3(base.latency.p95_ms),
                fmt3(base.latency.p99_ms)
            ),
            format!(
                "{}/{}",
                fmt3(tuned.latency.p95_ms),
                fmt3(tuned.latency.p99_ms)
            ),
            format!("{:.2}x", base.latency.p95_ms / tuned.latency.p95_ms),
            format!("{:.2}x", base.latency.p99_ms / tuned.latency.p99_ms),
        ]);
    }

    println!("{machines} Skylake machines per model group, diurnal load +/-30% over {day_s} s\n");
    println!("{t}");
    let b = all_base.summary();
    let u = all_tuned.summary();
    println!("## Aggregated across the fleet (paper: 1.39x p95, 1.31x p99)\n");
    println!(
        "- geomean per-model reduction: p95 {:.2}x, p99 {:.2}x",
        drs_metrics::geomean(&p95_ratios).unwrap_or(f64::NAN),
        drs_metrics::geomean(&p99_ratios).unwrap_or(f64::NAN)
    );
    println!(
        "- pooled-latency view (mixes model latency scales): p95 {} -> {} ms ({:.2}x), p99 {} -> {} ms ({:.2}x)",
        fmt3(b.p95_ms),
        fmt3(u.p95_ms),
        b.p95_ms / u.p95_ms,
        fmt3(b.p99_ms),
        fmt3(u.p99_ms),
        b.p99_ms / u.p99_ms
    );
}
