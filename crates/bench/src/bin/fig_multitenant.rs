//! **Multi-tenant co-location** — the paper's datacenter setting:
//! several recommendation services share one engine pool, and the
//! batching knob must be tuned **per model**, not globally (§III).
//!
//! Two zoo models with opposite resource profiles — embedding-heavy
//! DLRM-RMC1 (100 ms SLA) and compute-heavy WND (25 ms SLA) — serve a
//! mixed arrival stream on one shared Skylake node through
//! [`drs_server::Server::new_multi`]: one batching queue per tenant
//! behind a deficit-round-robin shared-pool arbiter. The sweep serves
//! the identical stream under every *global* knob (both tenants forced
//! to the same batch size), then under the best *per-tenant* pair, and
//! reports each tenant's SLA-bounded throughput. The headline is the
//! paper's co-location result: no single global knob matches per-model
//! knobs on aggregate SLA-bounded QPS.

use deeprecsys::prelude::*;
use deeprecsys::table::{fmt3, TextTable};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Aggregate SLA-bounded QPS: each tenant contributes its sustained
/// throughput only while meeting its own tier.
fn aggregate(r: &ServerReport) -> f64 {
    r.tenant_breakdowns
        .iter()
        .map(|b| b.sla_bounded_qps())
        .sum()
}

fn main() {
    let opts = drs_bench::parse_args();
    drs_bench::header(
        "Multi-tenant co-location — per-model batching knobs vs one global knob",
        "batching/offload knobs must be tuned per model: co-located services with \
         divergent compute/memory profiles and SLA tiers cannot share one \
         configuration (DeepRecSys §III; Facebook's DNN recommendation \
         characterization documents the divergence)",
        &opts,
    );

    let model_a = zoo::dlrm_rmc1(); // embedding-heavy, 100 ms tier
    let model_b = zoo::wide_and_deep(); // MLP/compute-heavy, 25 ms tier
                                        // Calibrated against solo capacity on one 40-worker Skylake:
                                        // RMC1 sustains ~1.5k QPS only at batch 256 (its 100 ms tier
                                        // tolerates the batching delay), while WND's tight 25 ms tier is
                                        // broken by batch 256 at *any* load (p95 ≈ 36 ms) and wants ≤ 64.
                                        // At these rates the co-location is ~85 % utilized under the right
                                        // per-tenant knobs, and no global knob serves both tiers.
    let (rate_a, rate_b) = (900.0, 400.0);
    let num_queries = opts.pick(120_000, 24_000, 2_400);
    let seed = opts.search.seed;
    let queries: Vec<_> = MixedStream::new(vec![
        QueryGenerator::new(
            ArrivalProcess::poisson(rate_a),
            SizeDistribution::production(),
            seed,
        ),
        QueryGenerator::new(
            ArrivalProcess::poisson(rate_b),
            SizeDistribution::production(),
            seed ^ 0x5bd1_e995,
        ),
    ])
    .take(num_queries)
    .collect();

    let serve = |batch_a: u32, batch_b: u32| -> ServerReport {
        let spec = MultiModelSpec::new(vec![
            TenantSpec::new(model_a.clone(), SchedulerPolicy::cpu_only(batch_a)),
            TenantSpec::new(model_b.clone(), SchedulerPolicy::cpu_only(batch_b)),
        ]);
        let mut so = ServerOptions::new(40, SchedulerPolicy::cpu_only(batch_a));
        so.seed = seed;
        Server::new_multi(&spec, CpuPlatform::skylake(), None, so).serve_virtual(&queries)
    };

    let knobs: &[u32] = &[4, 16, 64, 256];
    let mut t = TextTable::new(vec![
        "knob (A/B)",
        "A qps",
        "A p95 (ms)",
        "A SLA",
        "B qps",
        "B p95 (ms)",
        "B SLA",
        "aggregate OK-QPS",
    ]);
    let mut row = |label: String, r: &ServerReport| {
        let (a, b) = (&r.tenant_breakdowns[0], &r.tenant_breakdowns[1]);
        t.row(vec![
            label,
            fmt3(a.qps),
            fmt3(a.latency.p95_ms),
            if a.met_sla() { "yes" } else { "NO" }.to_string(),
            fmt3(b.qps),
            fmt3(b.latency.p95_ms),
            if b.met_sla() { "yes" } else { "NO" }.to_string(),
            fmt3(aggregate(r)),
        ]);
    };

    // The full knob grid: the diagonal is the global-knob baseline
    // (one configuration forced on both services), the off-diagonal
    // pairs are per-tenant tunings — the paper's per-model knobs.
    let mut best_global: (u32, f64) = (knobs[0], f64::NEG_INFINITY);
    let mut best_pair: ((u32, u32), f64) = ((knobs[0], knobs[0]), f64::NEG_INFINITY);
    let mut pair_report = None;
    for &ka in knobs {
        for &kb in knobs {
            let r = serve(ka, kb);
            let agg = aggregate(&r);
            if ka == kb {
                if agg > best_global.1 {
                    best_global = (ka, agg);
                }
                row(format!("{ka}/{kb} (global)"), &r);
            }
            if agg > best_pair.1 {
                best_pair = ((ka, kb), agg);
                pair_report = Some(r);
            }
        }
    }
    let ((ka, kb), per_tenant_agg) = best_pair;
    // Label honestly: if the grid's best pair sits on the diagonal,
    // per-tenant tuning found no win over the global knob at this
    // scale (expected at --smoke windows), and the row must say so
    // rather than dress a global configuration up as per-tenant.
    let pair_label = if ka == kb {
        format!("{ka}/{kb} (per-tenant = global)")
    } else {
        format!("{ka}/{kb} (per-tenant)")
    };
    row(
        pair_label,
        pair_report.as_ref().expect("grid served at least one pair"),
    );

    println!(
        "{} queries: RMC1 @ {rate_a:.0} QPS + WND @ {rate_b:.0} QPS mixed onto one \
         40-worker Skylake, DRR shared pool\n",
        queries.len()
    );
    println!("{t}");
    println!("## Headline\n");
    println!(
        "- best single global knob ({}): {} aggregate SLA-bounded QPS",
        best_global.0,
        fmt3(best_global.1)
    );
    println!(
        "- per-tenant knobs ({ka} for RMC1, {kb} for WND): {} aggregate SLA-bounded QPS \
         ({:.2}x the best global knob)",
        fmt3(per_tenant_agg),
        per_tenant_agg / best_global.1.max(1e-9)
    );

    if opts.real {
        // A quarter of the co-location load: the single offload-all
        // device (the real path's exactly-priced clock) sustains this
        // comfortably, so the SLA columns stay meaningful.
        real_cross_validation(&model_a, &model_b, rate_a / 4.0, rate_b / 4.0, seed, &opts);
    }
}

/// `--real`: the same two tenants on one *physical* engine pool.
/// With every query offloaded the GPU path completes on the virtual
/// clock, so the real run must reproduce the virtual report exactly —
/// per query, per tenant — while genuinely pacing arrivals onto
/// worker threads arbitrated by the shared-pool DRR.
fn real_cross_validation(
    model_a: &ModelConfig,
    model_b: &ModelConfig,
    rate_a: f64,
    rate_b: f64,
    seed: u64,
    opts: &drs_bench::ExpOptions,
) {
    println!("\n## Real-engine cross-validation (--real)\n");
    let n = opts.pick(4_000, 1_200, 240);
    let queries: Vec<_> = MixedStream::new(vec![
        QueryGenerator::new(
            ArrivalProcess::poisson(rate_a),
            SizeDistribution::production(),
            seed,
        ),
        QueryGenerator::new(
            ArrivalProcess::poisson(rate_b),
            SizeDistribution::production(),
            seed ^ 0x5bd1_e995,
        ),
    ])
    .take(n)
    .collect();

    let spec = MultiModelSpec::new(vec![
        TenantSpec::new(model_a.clone(), SchedulerPolicy::with_gpu(64, 0)),
        TenantSpec::new(model_b.clone(), SchedulerPolicy::with_gpu(64, 0)),
    ]);
    let mut so = ServerOptions::new(2, SchedulerPolicy::with_gpu(64, 0));
    so.seed = seed;
    so.warmup_frac = 0.0;
    so.time_scale = 8.0;
    let server = Server::new_multi(
        &spec,
        CpuPlatform::skylake(),
        Some(GpuPlatform::gtx_1080ti()),
        so,
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let models = vec![
        Arc::new(RecModel::instantiate(model_a, ModelScale::tiny(), &mut rng)),
        Arc::new(RecModel::instantiate(model_b, ModelScale::tiny(), &mut rng)),
    ];

    let virt = server.serve_virtual(&queries);
    let real = server.serve_real_multi(models, &queries);

    let exact = real
        .latencies_ms
        .iter()
        .zip(&virt.latencies_ms)
        .filter(|(a, b)| a.to_bits() == b.to_bits())
        .count();
    let mut t = TextTable::new(vec![
        "clock",
        "A SLA-QPS",
        "A p95 (ms)",
        "B SLA-QPS",
        "B p95 (ms)",
        "aggregate OK-QPS",
    ]);
    for (label, r) in [("virtual", &virt), ("real", &real)] {
        let (a, b) = (&r.tenant_breakdowns[0], &r.tenant_breakdowns[1]);
        t.row(vec![
            label.to_string(),
            fmt3(a.sla_bounded_qps()),
            fmt3(a.latency.p95_ms),
            fmt3(b.sla_bounded_qps()),
            fmt3(b.latency.p95_ms),
            fmt3(aggregate(r)),
        ]);
    }
    println!(
        "{n} queries, both tenants fully offloaded (threshold 0) on a shared \
         2-worker engine pool, time compressed 8x\n"
    );
    println!("{t}");
    println!(
        "per-query latency match: {exact}/{} bit-exact (the offload-all cost \
         model permits exact real-vs-virtual agreement)",
        queries.len()
    );
    assert_eq!(
        exact,
        queries.len(),
        "real multi-tenant serving drifted from the virtual clock"
    );
}
