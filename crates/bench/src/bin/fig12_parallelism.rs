//! Regenerates **Figure 12**: where the optimal batch size lands as a
//! function of (a) the SLA target and the query-size distribution,
//! (b) the model class, and (c) the CPU microarchitecture
//! (Broadwell vs Skylake).

use deeprecsys::prelude::*;
use deeprecsys::table::{fmt3, TextTable};

fn optimal_batch(
    cfg: &ModelConfig,
    cluster: ClusterConfig,
    sla_ms: f64,
    opts: &SearchOptions,
) -> (u32, f64) {
    // Denser ladder than the tuner's default power-of-two rungs: the
    // Figure 12 comparisons are about *where* the optimum sits, so we
    // trade extra probes for resolution.
    let tuned = DeepRecSched::new(*opts)
        .with_batch_ladder(vec![
            1, 2, 4, 8, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024,
        ])
        .tune_cpu(cfg, cluster, sla_ms);
    (tuned.policy.max_batch, tuned.qps)
}

fn main() {
    let opts = drs_bench::parse_args();
    drs_bench::header(
        "Figure 12 — what moves the optimal batch size",
        "(a) laxer SLAs and heavier-tailed (production) size distributions \
         push the optimum up; optimizing for lognormal then serving \
         production traffic costs up to 1.7x; (b) embedding-bound models \
         prefer larger batches than compute-bound ones; (c) Broadwell \
         (inclusive LLC, AVX-2) prefers strictly larger batches than Skylake",
        &opts,
    );

    // (a) SLA target x size distribution, DLRM-RMC1.
    let cfg = zoo::dlrm_rmc1();
    let mut t = TextTable::new(vec![
        "SLA tier",
        "production: optimal batch",
        "lognormal: optimal batch",
        "cross-penalty",
    ]);
    for tier in SlaTier::ALL {
        let sla = tier.sla_ms(&cfg);
        let prod_opts = opts.search;
        let logn_opts = opts
            .search
            .with_size_dist(SizeDistribution::lognormal_matched());
        let (b_prod, q_prod) =
            optimal_batch(&cfg, ClusterConfig::single_skylake(), sla, &prod_opts);
        let (b_logn, _) = optimal_batch(&cfg, ClusterConfig::single_skylake(), sla, &logn_opts);
        // Apply the lognormal-optimal batch to production traffic — the
        // paper's 1.2-1.7x degradation experiment.
        let cross = max_qps_under_sla(
            &cfg,
            ClusterConfig::single_skylake(),
            SchedulerPolicy::cpu_only(b_logn),
            sla,
            &prod_opts,
        );
        let penalty = if cross.max_qps > 0.0 {
            q_prod / cross.max_qps
        } else {
            f64::NAN
        };
        t.row(vec![
            format!("{tier} ({sla} ms)"),
            b_prod.to_string(),
            b_logn.to_string(),
            format!("{penalty:.2}x"),
        ]);
    }
    println!("## (a) DLRM-RMC1: SLA x size distribution\n\n{t}");

    // (b) Across models at Medium SLA.
    let mut t = TextTable::new(vec!["model", "class", "optimal batch", "max QPS"]);
    for cfg in [
        zoo::dlrm_rmc1(),
        zoo::dlrm_rmc2(),
        zoo::dlrm_rmc3(),
        zoo::wide_and_deep(),
        zoo::dien(),
    ] {
        let (b, q) = optimal_batch(
            &cfg,
            ClusterConfig::single_skylake(),
            cfg.sla_ms,
            &opts.search,
        );
        t.row(vec![
            cfg.name.to_string(),
            cfg.paper_bottleneck.to_string(),
            b.to_string(),
            fmt3(q),
        ]);
    }
    println!("## (b) model classes @ Medium SLA\n\n{t}");

    // (c) Broadwell vs Skylake, DLRM-RMC3 across tiers.
    let cfg = zoo::dlrm_rmc3();
    let mut t = TextTable::new(vec![
        "SLA tier",
        "Skylake optimal batch",
        "Broadwell optimal batch",
    ]);
    for tier in SlaTier::ALL {
        let sla = tier.sla_ms(&cfg);
        let (b_skl, _) = optimal_batch(&cfg, ClusterConfig::single_skylake(), sla, &opts.search);
        let bdw = ClusterConfig::cluster(1, CpuPlatform::broadwell(), None);
        let (b_bdw, _) = optimal_batch(&cfg, bdw, sla, &opts.search);
        t.row(vec![
            format!("{tier} ({sla} ms)"),
            b_skl.to_string(),
            b_bdw.to_string(),
        ]);
    }
    println!("## (c) DLRM-RMC3: Skylake vs Broadwell\n\n{t}");
}
