//! Regenerates **Table I**: architectural features of the eight
//! recommendation models.

use deeprecsys::prelude::*;
use deeprecsys::table::TextTable;
use drs_models::{PoolingKind, TableRole};

fn pooling_label(cfg: &ModelConfig) -> &'static str {
    match cfg.pooling {
        PoolingKind::Sum => "Sum",
        PoolingKind::Concat => "Concat",
        PoolingKind::Gmf => "Concat (GMF)",
        PoolingKind::Attention => "Attention+FC",
        PoolingKind::AttentionRnn => "Attention+RNN",
    }
}

fn fc_label(widths: &[usize], tasks: usize) -> String {
    if widths.is_empty() {
        return "-".into();
    }
    let joined = widths
        .iter()
        .map(|w| w.to_string())
        .collect::<Vec<_>>()
        .join("-");
    if tasks > 1 {
        format!("{tasks} x ({joined})")
    } else {
        joined
    }
}

fn main() {
    let opts = drs_bench::parse_args();
    drs_bench::header(
        "Table I — model zoo architecture",
        "eight industry models spanning GMF, WnD, DLRM and attention families \
         with the Dense-FC / Predict-FC / table geometries of Table I",
        &opts,
    );

    let mut t = TextTable::new(vec![
        "Model",
        "Domain",
        "Dense-FC",
        "Predict-FC",
        "Tables",
        "Lookups",
        "Pooling",
    ]);
    for cfg in zoo::all() {
        let max_lookups = cfg.tables.iter().map(|tb| tb.lookups).max().unwrap_or(0);
        let behavior = cfg.tables.iter().any(|tb| tb.role == TableRole::Behavior);
        t.row(vec![
            cfg.name.to_string(),
            cfg.domain.to_string(),
            fc_label(&cfg.dense_fc, 1),
            fc_label(&cfg.predict_fc, cfg.num_tasks),
            cfg.tables.len().to_string(),
            if behavior {
                format!("{max_lookups} (seq)")
            } else {
                max_lookups.to_string()
            },
            pooling_label(&cfg).to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "paper-scale embedding storage: {}",
        zoo::all()
            .iter()
            .map(|m| format!("{} {:.1} GB", m.name, m.embedding_bytes() as f64 / 1e9))
            .collect::<Vec<_>>()
            .join(" | ")
    );
}
