//! **Cluster routing sweep** — the scale-out experiment our single-node
//! figures could not express: one model served by a heterogeneous
//! 4-node fleet (2x Skylake + GTX 1080Ti, 2x Broadwell CPU-only)
//! behind a front-end router, under a skewed diurnal day.
//!
//! The scale-out literature's headline (Lui et al., "Understanding
//! Capacity-Driven Scale-Out Neural Recommendation Inference") is that
//! the routing policy dominates cluster tail latency once a service
//! spans nodes: an oblivious round-robin queues work behind the slow
//! nodes while fast capacity idles, and a power-of-two-choices sampler
//! recovers nearly the full least-outstanding tail at O(d) gauge reads.
//! This binary reproduces that on our stack: every policy serves the
//! identical query stream through [`drs_server::Cluster`] (selected
//! via the shared `ServingStack` entry point), and the table reports
//! the tail per policy.

use deeprecsys::prelude::*;
use deeprecsys::table::{fmt3, TextTable};

/// Serve through the unified entry point — any `ServingStack` backend
/// drops in here.
fn run_stack<S: ServingStack>(stack: &S, queries: &[deeprecsys::query::Query]) -> S::Report {
    stack.serve_queries(queries)
}

fn main() {
    let opts = drs_bench::parse_args();
    drs_bench::header(
        "Cluster routing — tail latency per front-end routing policy on a mixed fleet",
        "power-of-two-choices recovers nearly the least-outstanding tail and beats \
         round-robin by an order of magnitude once slow nodes saturate \
         (Lui et al.: routing policy dominates scale-out tail latency)",
        &opts,
    );

    let cfg = zoo::dlrm_rmc1();
    // The mixed fleet of Section IV-A: two GPU-attached Skylakes
    // (~1400 QPS each at batch 64 / threshold 300) and two CPU-only
    // Broadwells (~420 QPS each) — aggregate ~3.6k QPS, with a 3.3x
    // per-node capacity skew for oblivious routing to trip over.
    let topology = ClusterTopology::new(vec![
        NodeSpec::with_gpu(CpuPlatform::skylake(), GpuPlatform::gtx_1080ti()),
        NodeSpec::with_gpu(CpuPlatform::skylake(), GpuPlatform::gtx_1080ti()),
        NodeSpec::cpu_only(CpuPlatform::broadwell()),
        NodeSpec::cpu_only(CpuPlatform::broadwell()),
    ]);
    let policy = SchedulerPolicy::with_gpu(64, 300);

    // A skewed diurnal day at ~60% of aggregate capacity: the peak
    // (+40%) approaches the fleet's knee, and round-robin's quarter
    // share exceeds a Broadwell's capacity through most of the day.
    let base_qps = 2_200.0;
    let day_s = opts.pick(600.0, 30.0, 6.0);
    let num_queries = opts.pick(400_000, 40_000, 4_000);
    let queries: Vec<_> = QueryGenerator::new(
        ArrivalProcess::diurnal(base_qps, 0.4, day_s),
        SizeDistribution::production(),
        opts.search.seed,
    )
    .take(num_queries)
    .collect();

    let routings = [
        RoutingPolicy::RoundRobin,
        RoutingPolicy::LeastOutstanding,
        RoutingPolicy::PowerOfTwoChoices { d: 2 },
        RoutingPolicy::SizeAware,
    ];

    let mut t = TextTable::new(vec![
        "routing",
        "p50 (ms)",
        "p95 (ms)",
        "p99 (ms)",
        "QPS",
        "GPU share",
        "node split (%)",
    ]);
    let mut p95s = Vec::new();
    for routing in routings {
        let cluster = Cluster::new(
            &cfg,
            topology.clone(),
            routing,
            ServerOptions::new(40, policy),
        );
        let r = run_stack(&cluster, &queries);
        let total: u64 = r.node_queries.iter().sum::<u64>().max(1);
        let split: Vec<String> = r
            .node_queries
            .iter()
            .map(|&n| format!("{:.0}", 100.0 * n as f64 / total as f64))
            .collect();
        p95s.push((routing.label(), r.latency.p95_ms));
        t.row(vec![
            routing.label(),
            fmt3(r.latency.p50_ms),
            fmt3(r.latency.p95_ms),
            fmt3(r.latency.p99_ms),
            fmt3(r.qps),
            format!("{:.2}", r.gpu_work_fraction),
            split.join("/"),
        ]);
    }

    println!(
        "{} queries, diurnal +/-40% around {base_qps:.0} QPS over {day_s} s, \
         fleet = 2x Skylake+1080Ti / 2x Broadwell, batch 64 / threshold 300\n",
        queries.len()
    );
    println!("{t}");

    let get = |label: &str| {
        p95s.iter()
            .find(|(l, _)| l == label)
            .map(|&(_, p)| p)
            .unwrap_or(f64::NAN)
    };
    let rr = get("round-robin");
    let lo = get("least-outstanding");
    let po2c = get("po2c");
    println!("## Headline\n");
    println!(
        "- po2c vs round-robin p95: {:.2}x lower ({} -> {} ms)",
        rr / po2c,
        fmt3(rr),
        fmt3(po2c)
    );
    println!(
        "- po2c vs full least-outstanding p95: {:.2}x (two sampled gauges \
         recover {}% of the full-scan win)",
        po2c / lo,
        ((rr - po2c) / (rr - lo).max(1e-9) * 100.0).round()
    );
}
