//! **Figure 13, online edition**: the production diurnal scenario run
//! on the open-loop serving runtime (`drs-server`) instead of the
//! simulator — a day of load ramping ±30 % around its mean, served
//! three ways over the identical query stream:
//!
//! 1. the fixed production baseline batch size,
//! 2. the offline DeepRecSched-tuned policy, frozen,
//! 3. the online controller, cold-starting its climb from the paper's
//!    unit batch and hill-climbing against its own live tail.
//!
//! The paper's claim is that tuning the batch size cuts the production
//! tail (p95 1.39x, p99 1.31x); this binary shows the *online*
//! controller recovering most of the offline tuner's win without ever
//! consulting a simulator.

use deeprecsys::prelude::*;
use deeprecsys::table::{fmt3, TextTable};

fn tail_quarter(latencies: &[f64]) -> LatencySummary {
    let tail = &latencies[latencies.len() - latencies.len() / 4..];
    let mut rec = LatencyRecorder::with_capacity(tail.len());
    for &ms in tail {
        rec.record_ms(ms);
    }
    rec.summary()
}

fn main() {
    let opts = drs_bench::parse_args();
    drs_bench::header(
        "Figure 13 (online) — offline-tuned vs online-tuned tail latency under a diurnal ramp",
        "the online hill-climbing controller, cold-starting from a unit batch, \
         converges to the offline tuner's operating point as load shifts \
         (paper: tuned batching cuts production p95 by 1.39x)",
        &opts,
    );

    let cfg = zoo::dlrm_rmc1();
    let cluster = ClusterConfig::single_skylake();
    let workers = cluster.cpu.cores;
    let sla_ms = SlaTier::Medium.sla_ms(&cfg);

    // Offline phase: the simulator-backed tuner picks the reference
    // policy and tells us the node's capacity.
    let tuned = DeepRecSched::new(opts.search).tune_cpu(&cfg, cluster, sla_ms);
    let baseline_policy = SchedulerPolicy::static_baseline(workers);
    println!(
        "offline tuner: batch {} at {:.0} QPS under the {:.0} ms p95 SLA (baseline batch {})\n",
        tuned.policy.max_batch, tuned.qps, sla_ms, baseline_policy.max_batch
    );

    // A diurnal day at half the tuned capacity: the mean load is
    // comfortable, the peak is not — exactly where retuning pays.
    let base_qps = 0.5 * tuned.qps;
    let day_s = opts.pick(600.0, 30.0, 4.0);
    let num_queries = opts.pick(300_000, 30_000, 4_000);
    let queries: Vec<_> = QueryGenerator::new(
        ArrivalProcess::diurnal(base_qps.max(1.0), 0.3, day_s),
        SizeDistribution::production(),
        opts.search.seed,
    )
    .take(num_queries)
    .collect();

    let controller_cfg = if opts.mode == drs_bench::Mode::Smoke {
        ControllerConfig::smoke()
    } else {
        ControllerConfig::standard()
    };
    // The backend is constructed and driven through the unified
    // `ServingStack` entry point; the associated report type keeps the
    // server-specific counters (trajectory, retunes) available.
    let serve = |policy: SchedulerPolicy, controller: Option<ControllerConfig>| {
        let mut server_opts = ServerOptions::new(workers, policy);
        if let Some(c) = controller {
            server_opts = server_opts.with_controller(c);
        }
        let server = Server::new(&cfg, cluster.cpu, None, server_opts);
        ServingStack::serve_queries(&server, &queries)
    };

    let baseline = serve(baseline_policy, None);
    let offline = serve(tuned.policy, None);
    let online = serve(baseline_policy, Some(controller_cfg));

    let mut t = TextTable::new(vec![
        "scenario",
        "final batch",
        "steady p95/p99 (ms)",
        "overall p95/p99 (ms)",
        "QPS",
        "retunes",
    ]);
    for (name, r) in [
        ("fixed baseline", &baseline),
        ("offline-tuned", &offline),
        ("online controller", &online),
    ] {
        let steady = tail_quarter(&r.latencies_ms);
        t.row(vec![
            name.to_string(),
            r.final_policy.max_batch.to_string(),
            format!("{}/{}", fmt3(steady.p95_ms), fmt3(steady.p99_ms)),
            format!("{}/{}", fmt3(r.latency.p95_ms), fmt3(r.latency.p99_ms)),
            fmt3(r.qps),
            r.retunes.to_string(),
        ]);
    }
    println!(
        "{} queries, diurnal +/-30% around {:.0} QPS over {day_s} s, {workers} workers\n",
        queries.len(),
        base_qps
    );
    println!("{t}");

    let s_base = tail_quarter(&baseline.latencies_ms);
    let s_off = tail_quarter(&offline.latencies_ms);
    let s_on = tail_quarter(&online.latencies_ms);
    println!("## Steady-state tail (last quarter of the stream)\n");
    println!(
        "- offline tuning vs baseline: p95 {:.2}x, p99 {:.2}x",
        s_base.p95_ms / s_off.p95_ms.max(1e-9),
        s_base.p99_ms / s_off.p99_ms.max(1e-9),
    );
    println!(
        "- online vs offline (1.0 = full recovery): p95 {:.2}x, p99 {:.2}x",
        s_on.p95_ms / s_off.p95_ms.max(1e-9),
        s_on.p99_ms / s_off.p99_ms.max(1e-9),
    );
    println!(
        "- online controller trajectory (batch rung, window p95 ms): {:?}",
        online
            .batch_trajectory
            .iter()
            .map(|&(b, p)| (b, (p * 100.0).round() / 100.0))
            .collect::<Vec<_>>()
    );
}
