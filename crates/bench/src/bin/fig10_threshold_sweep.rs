//! Regenerates **Figure 10**: max QPS under the SLA as a function of
//! the GPU query-size offload threshold, per model class.
//!
//! Threshold 0 sends everything to the accelerator ("All GPU");
//! threshold 1000 sends nothing ("All CPU"); the optimum sits in
//! between and differs across models.

use deeprecsys::prelude::*;
use deeprecsys::table::{fmt3, TextTable};

fn main() {
    let opts = drs_bench::parse_args();
    drs_bench::header(
        "Figure 10 — GPU query-size threshold sweep",
        "QPS rises from the all-GPU extreme, peaks at a model-specific \
         threshold, and falls toward the all-CPU extreme; the paper's optima \
         differ across RMC1/RMC3/DIEN",
        &opts,
    );

    let thresholds = [0u32, 25, 50, 100, 150, 200, 300, 400, 500, 650, 800, 1000];
    for cfg in [zoo::dlrm_rmc1(), zoo::dlrm_rmc3(), zoo::dien()] {
        // Use the model's tuned CPU batch so the sweep isolates the
        // threshold knob (the paper fixes batch from phase 1).
        let tuned = DeepRecSched::new(opts.search).tune_cpu(
            &cfg,
            ClusterConfig::skylake_with_gpu(),
            cfg.sla_ms,
        );
        let batch = tuned.policy.max_batch;

        let mut t = TextTable::new(vec!["GPU threshold", "max QPS"]);
        let mut curve = Vec::new();
        for &th in &thresholds {
            let r = max_qps_under_sla(
                &cfg,
                ClusterConfig::skylake_with_gpu(),
                SchedulerPolicy::with_gpu(batch, th),
                cfg.sla_ms,
                &opts.search,
            );
            curve.push((th, r.max_qps));
        }
        let best = curve
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
            .0;
        for &(th, q) in &curve {
            let label = match th {
                0 => "0 (all GPU)".to_string(),
                1000 => "1000 (all CPU)".to_string(),
                _ => th.to_string(),
            };
            let marker = if th == best { " <= optimal" } else { "" };
            t.row(vec![label, format!("{}{marker}", fmt3(q))]);
        }
        println!(
            "## {} (batch {batch}, SLA {} ms; optimal threshold {best})\n\n{t}",
            cfg.name, cfg.sla_ms
        );
    }
}
