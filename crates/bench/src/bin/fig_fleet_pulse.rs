//! **Fleet pulse** — deterministic time-series observability across
//! the serving stack.
//!
//! Every serving runtime samples the same fleet-pulse registry
//! (`drs_metrics::MetricsRegistry`) on the **virtual clock**: queue
//! depths, GPU backlog, controller knobs, and DRR lane deficits tick
//! at a fixed virtual interval, so two runs of the same seed export
//! byte-identical series. Alongside the series ride two structured
//! event logs: one [`ControlDecision`] per online-controller retune
//! (trigger, window scores, hysteresis streak, old → new knob) and one
//! [`DrrRound`] per arbiter grant. This binary exercises all of it:
//!
//! 1. **diurnal overlay** — a day of load ramping around its mean on a
//!    GPU-attached node with the online controller live; the sampled
//!    queue/backlog/knob timelines print against the offered rate, and
//!    the decision log pins *when* and *why* the controller moved as
//!    the load shifted;
//! 2. **multi-tenant lanes** — two co-located tenants behind the DRR
//!    arbiter; the grant log and per-lane deficit series expose the
//!    bandwidth split;
//! 3. **exports** — the same run rendered as JSONL and Prometheus text
//!    exposition, re-parsed to prove the exposition lossless, and
//!    re-served to prove the bytes seed-deterministic.
//!
//! `--real` adds the cross-runtime validation axis: an offload-all
//! stream is paced onto physical engine workers and the virtual-clock
//! sampled series must equal the virtual run's, bit for bit.

use deeprecsys::prelude::*;
use deeprecsys::table::{fmt3, TextTable};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Gauge/counter families whose sampled series must be bit-identical
/// between a virtual run and its offload-all real twin. Window-digest
/// quantile columns (`latency_ms_p50`/`_p95`) are excluded: P² digests
/// are insertion-order-sensitive and same-instant completions may
/// drain in either order across runtimes; the order-invariant window
/// count still pins the sampling alignment.
const PINNED_PREFIXES: [&str; 8] = [
    "queue_depth",
    "gpu_backlog_ns",
    "gpu_completed",
    "max_batch",
    "gpu_threshold",
    "drr_deficit",
    "completed_total",
    "latency_ms_count",
];

fn diurnal_queries(
    base_qps: f64,
    amplitude: f64,
    period_s: f64,
    n: usize,
    seed: u64,
) -> Vec<deeprecsys::query::Query> {
    QueryGenerator::new(
        ArrivalProcess::diurnal(base_qps, amplitude, period_s),
        SizeDistribution::production(),
        seed,
    )
    .take(n)
    .collect()
}

/// Prints roughly `rows` evenly spaced sample rows as a timeline table,
/// overlaying the offered diurnal rate at each sample instant.
fn timeline_table(
    pulse: &PulseRecorder,
    base_qps: f64,
    amplitude: f64,
    period_s: f64,
    rows: usize,
) -> TextTable {
    let samples = pulse.registry().samples();
    let mut t = TextTable::new(vec![
        "t (s)",
        "offered qps",
        "queue depth",
        "gpu backlog (ms)",
        "batch knob",
        "gpu threshold",
        "window p95 (ms)",
        "completed",
    ]);
    let step = (samples.len() / rows).max(1);
    for s in samples.iter().step_by(step) {
        let ts = s.t_ns as f64 / 1e9;
        let offered =
            base_qps * (1.0 + amplitude * (2.0 * std::f64::consts::PI * ts / period_s).sin());
        t.row(vec![
            format!("{ts:.2}"),
            format!("{offered:.0}"),
            format!("{:.0}", s.get("queue_depth_n0").unwrap_or(0.0)),
            fmt3(s.get("gpu_backlog_ns_n0").unwrap_or(0.0) / 1e6),
            format!("{:.0}", s.get("max_batch_n0_t0").unwrap_or(0.0)),
            format!("{:.0}", s.get("gpu_threshold_n0_t0").unwrap_or(-1.0)),
            fmt3(s.get("latency_ms_p95").unwrap_or(0.0)),
            format!("{:.0}", s.get("completed_total").unwrap_or(0.0)),
        ]);
    }
    t
}

fn main() {
    let opts = drs_bench::parse_args();
    drs_bench::header(
        "Fleet pulse — virtual-clock time-series metrics and the controller decision log",
        "production recommendation fleets are tuned from time-series telemetry (queue \
         depths, knob trajectories, per-lane bandwidth); DeepRecSys's diurnal study \
         (Figure 13) hinges on *when* the tuner moved — the decision log makes every \
         retune a structured, replayable event",
        &opts,
    );
    let seed = opts.search.seed;

    // ── 1. Diurnal overlay: one GPU node, controller live ───────────
    let cfg = zoo::dlrm_rmc1();
    let workers = 40;
    let base_qps = opts.pick(900.0, 700.0, 300.0);
    let amplitude = 0.6;
    let day_s = opts.pick(120.0, 20.0, 3.0);
    let n = opts.pick(80_000, 12_000, 800);
    let queries = diurnal_queries(base_qps, amplitude, day_s, n, seed);
    let controller_cfg = if opts.mode == drs_bench::Mode::Smoke {
        ControllerConfig::smoke()
    } else {
        ControllerConfig::standard()
    };
    let server = Server::new(
        &cfg,
        CpuPlatform::skylake(),
        Some(GpuPlatform::gtx_1080ti()),
        ServerOptions::new(workers, SchedulerPolicy::with_gpu(4, 192))
            .with_controller(controller_cfg),
    );
    // ~240 samples over the day, whatever the profile.
    let interval_ns = ((day_s * 1e9) / 240.0) as u64;
    let mut pulse = PulseRecorder::new(interval_ns.max(1));
    let report = server.serve_virtual_pulsed(&queries, &mut pulse);
    let summary = report.pulse.clone().expect("pulsed run summarizes");

    println!(
        "## Diurnal day — DLRM-RMC1 + GPU, {n} queries, +/-{:.0}% around {base_qps:.0} QPS over {day_s} s\n",
        100.0 * amplitude
    );
    println!(
        "{} samples every {:.1} ms of virtual time; peak sampled queue depth {:.0}\n",
        summary.samples,
        interval_ns as f64 / 1e6,
        summary.peak_queue_depth
    );
    println!("{}", timeline_table(&pulse, base_qps, amplitude, day_s, 12));

    // ── Controller decision log ─────────────────────────────────────
    println!("## Controller decision log — every retune, attributed\n");
    if pulse.decisions().is_empty() {
        println!("(no retunes: the controller never saw a drifted window at this scale)\n");
    } else {
        let mut t = TextTable::new(vec![
            "t (s)",
            "trigger",
            "rate (window/settled)",
            "p95 ms (window/settled)",
            "streak",
            "batch knob",
            "ladder",
        ]);
        for d in pulse.decisions() {
            t.row(vec![
                format!("{:.2}", d.t_ns as f64 / 1e9),
                d.trigger.label().to_string(),
                format!("{:.0}/{:.0}", d.rate_qps, d.settled_rate_qps),
                format!("{}/{}", fmt3(d.p95_ms), fmt3(d.settled_p95_ms)),
                d.streak.to_string(),
                format!("{} -> {}", d.old_max_batch, d.new_max_batch),
                if d.downward { "walk-down" } else { "climb" }.to_string(),
            ]);
        }
        println!("{t}");
    }
    assert_eq!(
        pulse.decisions().len() as u64,
        report.retunes,
        "every controller retune logs exactly one decision"
    );

    // ── 2. Multi-tenant DRR lanes ───────────────────────────────────
    let spec = MultiModelSpec::new(vec![
        TenantSpec::new(zoo::dlrm_rmc1(), SchedulerPolicy::cpu_only(256)),
        TenantSpec::new(zoo::wide_and_deep(), SchedulerPolicy::cpu_only(64)).with_weight(2),
    ]);
    let mt = Server::new_multi(
        &spec,
        CpuPlatform::skylake(),
        None,
        ServerOptions::new(workers, SchedulerPolicy::cpu_only(256)),
    );
    let mt_n = opts.pick(24_000, 6_000, 600);
    let mt_queries: Vec<_> = MixedStream::new(vec![
        QueryGenerator::new(
            ArrivalProcess::poisson(700.0),
            SizeDistribution::production(),
            seed,
        ),
        QueryGenerator::new(
            ArrivalProcess::poisson(300.0),
            SizeDistribution::production(),
            seed ^ 0x5bd1_e995,
        ),
    ])
    .take(mt_n)
    .collect();
    let mut mt_pulse = PulseRecorder::new(2_000_000); // 2 ms ticks
    let mt_report = mt.serve_virtual_pulsed(&mt_queries, &mut mt_pulse);
    let grants = mt_pulse.drr_rounds();
    let mut per_lane = [0u64; 2];
    for g in grants {
        per_lane[g.lane] += 1;
    }
    println!("## Multi-tenant — RMC1 + WND (weight 2) behind DRR lanes, {mt_n} queries\n");
    println!(
        "{} DRR grants logged: lane 0 (RMC1) won {}, lane 1 (WND, 2x weight) won {}; \
         final logged deficits {:?}\n",
        grants.len(),
        per_lane[0],
        per_lane[1],
        grants
            .last()
            .map(|g| g.deficits.clone())
            .unwrap_or_default()
    );
    assert!(
        !grants.is_empty(),
        "a multi-tenant run must log arbiter grants"
    );
    assert!(mt_report.completed > 0);

    // ── 3. Exports: JSONL, Prometheus, determinism ──────────────────
    let jsonl = pulse.registry().to_jsonl();
    let prom = pulse.registry().to_prometheus();
    let decisions = pulse.decisions_jsonl();
    println!("## Exports\n");
    println!(
        "- series JSONL: {} rows, {} bytes",
        jsonl.lines().count(),
        jsonl.len()
    );
    println!(
        "- decision log JSONL: {} rows, {} bytes",
        decisions.lines().count(),
        decisions.len()
    );
    println!("- Prometheus exposition: {} bytes", prom.len());
    let parsed = parse_prometheus(&prom).expect("exposition parses");
    assert_eq!(
        parsed.render(),
        prom,
        "Prometheus exposition must round-trip byte-identically"
    );
    println!(
        "- exposition re-parsed: {} families, {} points, re-render byte-identical",
        parsed.families.len(),
        parsed.points()
    );
    let out_dir = std::env::temp_dir();
    let jsonl_path = out_dir.join("fig_fleet_pulse_series.jsonl");
    let prom_path = out_dir.join("fig_fleet_pulse.prom");
    std::fs::write(&jsonl_path, &jsonl).expect("write series JSONL");
    std::fs::write(&prom_path, &prom).expect("write Prometheus exposition");
    println!(
        "- written to {} and {}",
        jsonl_path.display(),
        prom_path.display()
    );

    // Same seed, fresh recorder: the exported bytes must not move.
    let mut rerun = PulseRecorder::new(interval_ns.max(1));
    let _ = server.serve_virtual_pulsed(&queries, &mut rerun);
    assert_eq!(
        rerun.registry().to_jsonl(),
        jsonl,
        "same-seed rerun drifted the JSONL export"
    );
    assert_eq!(
        rerun.decisions_jsonl(),
        decisions,
        "same-seed rerun drifted the decision log"
    );
    println!("- same-seed rerun: JSONL and decision log byte-identical\n");

    if opts.real {
        real_series_validation(seed, &opts);
    }
}

/// `--real`: pace an offload-all stream onto physical engine workers
/// and require the virtual-clock sampled series to equal the virtual
/// run's — the PR 6 span-level cross-validation axis, extended to time
/// series. Ticks fire only on model-time events in the real runtime,
/// so sample instants and sampled values line up exactly.
fn real_series_validation(seed: u64, opts: &drs_bench::ExpOptions) {
    println!("\n## Real-engine cross-validation (--real): sampled series\n");
    let cfg = zoo::dlrm_rmc1();
    let n = opts.pick(4_000, 1_200, 240);
    let qs: Vec<_> = QueryGenerator::new(
        ArrivalProcess::poisson(300.0),
        SizeDistribution::production(),
        seed,
    )
    .take(n)
    .collect();
    let mut so = ServerOptions::new(2, SchedulerPolicy::with_gpu(64, 0));
    so.seed = seed;
    so.warmup_frac = 0.0;
    so.time_scale = 8.0;
    let server = Server::new(
        &cfg,
        CpuPlatform::skylake(),
        Some(GpuPlatform::gtx_1080ti()),
        so,
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let model = Arc::new(RecModel::instantiate(&cfg, ModelScale::tiny(), &mut rng));

    let mut virt_pulse = PulseRecorder::new(2_000_000); // 2 ms ticks
    let mut real_pulse = PulseRecorder::new(2_000_000);
    let virt = server.serve_virtual_pulsed(&qs, &mut virt_pulse);
    let real = server.serve_real_pulsed(model, &qs, &mut real_pulse);

    assert_eq!(
        virt_pulse.registry().samples().len(),
        real_pulse.registry().samples().len(),
        "virtual and real runs must tick the same number of samples"
    );
    let mut compared = 0usize;
    for key in virt_pulse.registry().keys() {
        if PINNED_PREFIXES.iter().any(|p| key.starts_with(p)) {
            assert_eq!(
                virt_pulse.registry().series(&key),
                real_pulse.registry().series(&key),
                "series `{key}` drifted between virtual and offload-all real runs"
            );
            compared += 1;
        }
    }
    assert!(
        compared >= 5,
        "expected at least queue/backlog/knob/counter series, compared {compared}"
    );
    println!(
        "{n} queries fully offloaded, time compressed 8x: {} samples x {compared} series \
         bit-exact (virtual p95 {} ms, real p95 {} ms)",
        virt_pulse.registry().samples().len(),
        fmt3(virt.latency.p95_ms),
        fmt3(real.latency.p95_ms)
    );
}
