//! **Sharded capacity scale-out** — the experiment the single-node
//! stack could not run at all: DLRM-RMC2's embedding tables (25.6 GB
//! at paper scale) do not fit a 16 GiB node, so the model *cannot*
//! serve anywhere until `drs-shard` partitions its tables across the
//! fleet. This binary reproduces the capacity-driven scale-out
//! headline (Lui et al.): placement fails on one node, then the same
//! model serves on 2/4/8-node shards, sweeping placement policy ×
//! routing policy and reporting the tail plus the exchange overhead
//! the cross-node gather step adds (Krishna & Krishna's scale-in
//! concern).

use deeprecsys::prelude::*;
use deeprecsys::table::{fmt3, TextTable};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Per-shard-node offered load: comfortably inside one node's gather
/// capacity for its 1/N table share, so the sweep measures scale-out
/// shape rather than raw saturation.
const QPS_PER_NODE: f64 = 200.0;

/// 16 GiB of model memory per node — the capacity wall RMC2 overflows.
const NODE_MEM: u64 = 16 << 30;

fn fleet(n: usize) -> ClusterTopology {
    ClusterTopology::new(vec![
        NodeSpec::cpu_only(CpuPlatform::skylake())
            .with_mem_bytes(NODE_MEM);
        n
    ])
}

fn main() {
    let opts = drs_bench::parse_args();
    drs_bench::header(
        "Sharded capacity — a model too large for one node serves across 2/4/8 shards",
        "capacity, not compute, forces distributed serving (Lui et al.); the \
         cross-node gather/exchange is the new overhead to watch (Krishna & Krishna)",
        &opts,
    );

    let cfg = zoo::dlrm_rmc2();
    let net = InterconnectModel::datacenter_100g();
    println!(
        "model: {} — {:.1} GB of embedding tables at paper scale, {:.0} ms p95 SLA",
        cfg.name,
        cfg.embedding_bytes() as f64 / 1e9,
        cfg.sla_ms
    );

    // The capacity wall: one node refuses the model outright.
    match ShardPlan::place(&cfg, &fleet(1), PlacementPolicy::SizeGreedy) {
        Err(e) => println!("1 node : placement fails — {e}"),
        Ok(_) => unreachable!("a 16 GiB node cannot hold 25.6 GB of tables"),
    }
    println!();

    let num_queries = opts.pick(200_000, 20_000, 2_000);
    let mut t = TextTable::new(vec![
        "nodes",
        "placement",
        "routing",
        "p50 (ms)",
        "p95 (ms)",
        "QPS",
        "exch (ms)",
        "SLA",
        "home split (%)",
    ]);
    let mut headline: Option<(usize, f64, f64, f64)> = None;
    for nodes in [2usize, 4, 8] {
        let topo = fleet(nodes);
        let queries: Vec<_> = QueryGenerator::new(
            ArrivalProcess::poisson(QPS_PER_NODE * nodes as f64),
            SizeDistribution::production(),
            opts.search.seed,
        )
        .take(num_queries)
        .collect();
        for placement in [PlacementPolicy::SizeGreedy, PlacementPolicy::LookupBalanced] {
            let plan = match ShardPlan::place(&cfg, &topo, placement) {
                Ok(p) => p,
                Err(e) => {
                    println!("{nodes} nodes / {}: {e}", placement.label());
                    continue;
                }
            };
            for routing in [
                RoutingPolicy::ShardAware,
                RoutingPolicy::RoundRobin,
                RoutingPolicy::PowerOfTwoChoices { d: 2 },
            ] {
                let cluster = Cluster::new_sharded(
                    &cfg,
                    topo.clone(),
                    routing,
                    plan.clone(),
                    net,
                    ServerOptions::new(40, SchedulerPolicy::cpu_only(64)),
                );
                let r = cluster.serve_queries(&queries);
                let total: u64 = r.node_queries.iter().sum::<u64>().max(1);
                let split: Vec<String> = r
                    .node_queries
                    .iter()
                    .map(|&n| format!("{:.0}", 100.0 * n as f64 / total as f64))
                    .collect();
                if nodes == 4
                    && placement == PlacementPolicy::LookupBalanced
                    && routing == RoutingPolicy::ShardAware
                {
                    headline = Some((nodes, r.latency.p95_ms, r.mean_exchange_ms, r.qps));
                }
                t.row(vec![
                    nodes.to_string(),
                    placement.label().to_string(),
                    routing.label(),
                    fmt3(r.latency.p50_ms),
                    fmt3(r.latency.p95_ms),
                    fmt3(r.qps),
                    fmt3(r.mean_exchange_ms),
                    if r.meets_sla(cfg.sla_ms) {
                        "ok"
                    } else {
                        "MISS"
                    }
                    .to_string(),
                    split.join("/"),
                ]);
            }
        }
    }

    println!(
        "{} queries per fleet, {QPS_PER_NODE:.0} QPS offered per shard node, \
         16 GiB model memory per node, 100 GbE fabric\n",
        num_queries
    );
    println!("{t}");

    println!("## Headline\n");
    if let Some((nodes, p95, exch, qps)) = headline {
        println!(
            "- a {:.1} GB model with no single-node home sustains {qps:.0} QPS on a \
             {nodes}-node lookup-balanced shard at p95 {} ms ({} the {:.0} ms SLA), \
             paying {} ms of exchange+merge per query",
            cfg.embedding_bytes() as f64 / 1e9,
            fmt3(p95),
            if p95 <= cfg.sla_ms {
                "inside"
            } else {
                "OUTSIDE"
            },
            cfg.sla_ms,
            fmt3(exch),
        );
    }
    println!(
        "- placement dominates: lookup-balanced keeps the tail flat-or-better as the \
         fleet grows ({QPS_PER_NODE:.0} QPS/node weak scaling), while size-greedy \
         first-fit crams every table onto the first two nodes — they saturate under \
         the 4/8-node load and blow the SLA despite six idle machines",
    );

    if opts.real {
        real_cross_validation(&cfg, net, &opts);
    }
}

/// `--real`: the 2-node shard on the *physical* engine — per-node
/// partial gathers over a real `ShardedEmbeddingSet`, exchange booked
/// on the virtual clock, and a real dense tail at the home node. The
/// real tail is wall-clock (tiny-scaled model), so latencies are
/// reported side by side rather than matched; the exact contract here
/// is output correctness — every CTR vector must equal the unsharded
/// single-process forward bit for bit.
fn real_cross_validation(cfg: &ModelConfig, net: InterconnectModel, opts: &drs_bench::ExpOptions) {
    println!("\n## Real-engine cross-validation (--real)\n");
    let nodes = 2;
    let topo = fleet(nodes);
    let plan = ShardPlan::place(cfg, &topo, PlacementPolicy::LookupBalanced)
        .expect("RMC2 fits two 16 GiB nodes");
    let seed = opts.search.seed;
    let mut so = ServerOptions::new(2, SchedulerPolicy::cpu_only(64));
    so.seed = seed;
    so.warmup_frac = 0.0;
    so.time_scale = 4.0;
    let cluster = Cluster::new_sharded(cfg, topo, RoutingPolicy::ShardAware, plan, net, so);
    let n = opts.pick(400, 150, 50);
    let queries: Vec<_> = QueryGenerator::new(
        ArrivalProcess::poisson(QPS_PER_NODE * nodes as f64),
        SizeDistribution::production(),
        seed,
    )
    .take(n)
    .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let model = Arc::new(RecModel::instantiate(cfg, ModelScale::tiny(), &mut rng));

    let virt = cluster.serve_virtual(&queries);
    let (real, outputs) = cluster.serve_real_with_outputs(model.clone(), &queries);

    let mut t = TextTable::new(vec![
        "clock",
        "completed",
        "p95 (ms)",
        "QPS",
        "exch (ms)",
        "home split",
    ]);
    for (label, r) in [("virtual", &virt), ("real", &real)] {
        t.row(vec![
            label.to_string(),
            r.completed.to_string(),
            fmt3(r.latency.p95_ms),
            fmt3(r.qps),
            fmt3(r.mean_exchange_ms),
            r.node_queries
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join("/"),
        ]);
    }
    println!(
        "{n} queries on a {nodes}-node lookup-balanced shard (tiny-scaled tables, \
         time compressed 4x): per-shard real gathers, fabric cost on the virtual \
         clock, real dense tail at the home\n"
    );
    println!("{t}");

    let by_id: std::collections::HashMap<u64, &drs_query::Query> =
        queries.iter().map(|q| (q.id, q)).collect();
    let exact = outputs
        .iter()
        .filter(|(qid, ctrs)| {
            let inputs = drs_server::sharded_query_inputs(&model, seed, by_id[qid]);
            *ctrs == model.forward(&inputs, &mut OpProfiler::new())
        })
        .count();
    println!(
        "CTR bit-identity vs unsharded forward: {exact}/{} queries",
        outputs.len()
    );
    assert_eq!(
        exact,
        outputs.len(),
        "sharded real outputs diverged from the single-process forward"
    );
}
