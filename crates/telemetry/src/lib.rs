//! Query-lifecycle tracing for the DeepRecSys reproduction.
//!
//! Every serving layer in this workspace — the discrete-event
//! simulator (`drs-sim`), the single-node server and cluster
//! (`drs-server`), and the physical engine's open-loop harness
//! (`drs-engine`) — answers the same question badly without help:
//! *where* did a query's latency go? This crate makes that attribution
//! first-class:
//!
//! * [`Stage`]/[`QuerySpan`] — a fixed per-query stage schema
//!   (arrival → route → queue-wait → coalesce-wait → batch-residency →
//!   engine-service → shard-exchange → dense-tail → completion) whose
//!   stage durations sum to the end-to-end latency *exactly*, in
//!   integer nanoseconds;
//! * [`TraceSink`] — the recording trait serving loops are generic
//!   over. The [`NoopSink`] implementation carries
//!   `ENABLED == false`, so untraced runs monomorphize every recording
//!   site away and pay nothing measurable;
//! * [`RingRecorder`] — an in-memory sink: a bounded span ring plus
//!   per-stage / per-tenant / per-node streaming quantiles
//!   ([`drs_metrics::P2Quantile`], constant memory) snapshotted into a
//!   [`StageBreakdown`] for reports;
//! * [`to_chrome_trace`]/[`parse_chrome_trace`] — export spans as
//!   Chrome `trace_event` JSON (`chrome://tracing`, Perfetto) and
//!   re-parse the export, so the format is pinned by code in this
//!   repo;
//! * [`MetricsSink`]/[`PulseRecorder`] — the fleet-pulse twin of the
//!   span layer: virtual-clock-sampled time-series metrics
//!   ([`drs_metrics::MetricsRegistry`]) plus the structured controller
//!   decision log ([`ControlDecision`]) and DRR grant log
//!   ([`DrrRound`]), behind the same `const ENABLED` zero-overhead
//!   contract ([`NoopMetrics`]).
//!
//! Because the real runtimes book virtual-clock decisions at due
//! times (bit-exact against virtual time on the offload path), the
//! same schema records in both runtimes and span timelines themselves
//! become a cross-validation axis.

#![warn(missing_docs)]

mod chrome;
mod pulse;
mod ring;
mod sink;
mod span;

pub use chrome::{parse_chrome_trace, to_chrome_trace, ChromeEvent};
pub use pulse::{
    ControlDecision, DrrRound, MetricsSink, NoopMetrics, PulseRecorder, PulseSummary, RetuneTrigger,
};
pub use ring::{RingRecorder, StageBreakdown, StageStats, DEFAULT_RING_CAPACITY};
pub use sink::{NoopSink, TraceSink};
pub use span::{QuerySpan, Stage, STAGE_COUNT};
