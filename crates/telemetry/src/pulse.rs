//! Fleet-pulse recording: the metrics sink serving loops are generic
//! over, plus the structured controller/arbiter decision log.
//!
//! [`MetricsSink`] is the time-series twin of [`crate::TraceSink`]:
//! the same associated-`const ENABLED` contract, so the
//! [`NoopMetrics`] instantiation monomorphizes every record site away
//! and metrics-off serving pays nothing measurable (gated by the
//! `metrics_overhead` Criterion bench). The recording implementation,
//! [`PulseRecorder`], owns a [`drs_metrics::MetricsRegistry`] sampled
//! on the virtual clock plus two structured event logs:
//!
//! * [`ControlDecision`] — one per `OnlineController` retune: what
//!   tripped it (rate shift vs tail drift), the window scores and
//!   settled baselines it compared, the hysteresis streak, and the
//!   old → new batching knob;
//! * [`DrrRound`] — one per deficit-round-robin grant: which lane won
//!   and every lane's post-grant deficit.
//!
//! All recorded times are rebased to the run's epoch
//! ([`MetricsSink::set_epoch`], the stream's first arrival), so
//! virtual runs (absolute arrival clocks) and real runs (due-based
//! clocks already anchored at zero) export identical timelines.

use drs_metrics::MetricsRegistry;

/// Why an `OnlineController` re-entered tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetuneTrigger {
    /// The window's completion rate moved beyond the shift tolerance.
    RateShift,
    /// The window's p95 drifted beyond the tail-drift band.
    TailDrift,
}

impl RetuneTrigger {
    /// Stable lowercase label (used by the JSONL decision-log export).
    pub fn label(self) -> &'static str {
        match self {
            RetuneTrigger::RateShift => "rate_shift",
            RetuneTrigger::TailDrift => "tail_drift",
        }
    }
}

/// One structured controller retune event.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlDecision {
    /// When the retune committed (ns since the run's epoch).
    pub t_ns: u64,
    /// Node whose controller retuned (filled by the serving loop).
    pub node: usize,
    /// Tenant lane the controller tunes.
    pub tenant: usize,
    /// What tripped the retune.
    pub trigger: RetuneTrigger,
    /// The drifted window's completion rate (QPS).
    pub rate_qps: f64,
    /// The settled baseline rate the window was judged against.
    pub settled_rate_qps: f64,
    /// The drifted window's p95 (ms).
    pub p95_ms: f64,
    /// The settled baseline p95 the window was judged against.
    pub settled_p95_ms: f64,
    /// Consecutive stale windows when hysteresis finally tripped.
    pub streak: u32,
    /// The batching knob before the retune.
    pub old_max_batch: u32,
    /// Where the re-entered ladder starts.
    pub new_max_batch: u32,
    /// Whether the controller chose the downward (walk-down) ladder.
    pub downward: bool,
}

/// One deficit-round-robin grant: the lane that won and every lane's
/// deficit right after the grant was charged.
#[derive(Debug, Clone, PartialEq)]
pub struct DrrRound {
    /// When the grant happened (ns since the run's epoch).
    pub t_ns: u64,
    /// Node whose arbiter granted.
    pub node: usize,
    /// The winning tenant lane.
    pub lane: usize,
    /// Post-grant deficits, in lane order.
    pub deficits: Vec<u64>,
}

/// Per-run pulse totals surfaced through `ReportView`.
#[derive(Debug, Clone, PartialEq)]
pub struct PulseSummary {
    /// Sample rows exported.
    pub samples: usize,
    /// Sampling interval (virtual ns).
    pub interval_ns: u64,
    /// Controller retunes logged.
    pub decisions: usize,
    /// DRR grants logged.
    pub drr_rounds: usize,
    /// Peak sampled queue depth across all `queue_depth_*` series.
    pub peak_queue_depth: f64,
    /// Last sample's timestamp (ns since epoch; 0 when no samples).
    pub end_ns: u64,
}

/// A consumer of fleet-pulse metrics and decision events.
///
/// Serving loops are generic over `M: MetricsSink` and guard every
/// record site with `if M::ENABLED { ... }` (machine-checked by the
/// `metrics-guard` lint rule). Because `ENABLED` is an associated
/// *constant*, the unmetered instantiation ([`NoopMetrics`])
/// monomorphizes those sites to dead code.
pub trait MetricsSink {
    /// Whether this sink actually records. Call sites skip gauge
    /// computation and tick bookkeeping entirely when this is `false`.
    const ENABLED: bool = true;

    /// Declares the run's epoch: all subsequently recorded times are
    /// stored relative to it. Virtual loops pass the stream's first
    /// arrival; real loops already run due-based clocks from zero.
    fn set_epoch(&mut self, t_ns: u64);

    /// Snapshots every live metric into a sample row at `t_ns`
    /// (absolute; the epoch is subtracted on record).
    fn tick(&mut self, t_ns: u64);

    /// Sets gauge `key` to `v`.
    fn gauge(&mut self, key: &str, v: f64);

    /// Adds `by` to counter `key`.
    fn inc(&mut self, key: &str, by: u64);

    /// Feeds `v` into windowed histogram `key`.
    fn observe(&mut self, key: &str, v: f64);

    /// Logs one controller retune (`d.t_ns` absolute; rebased on
    /// record).
    fn decision(&mut self, d: ControlDecision);

    /// Logs one DRR grant at absolute time `t_ns` on `node`: lane
    /// `lane` won, `deficits` are the post-grant lane deficits.
    fn drr_round(&mut self, t_ns: u64, node: usize, lane: usize, deficits: &[u64]);

    /// The virtual-clock sampling interval serving loops should tick
    /// at; `0` means "never tick" (the no-op contract).
    fn interval_ns(&self) -> u64 {
        0
    }

    /// Per-run totals for the report, if this sink keeps any.
    fn summary(&self) -> Option<PulseSummary> {
        None
    }
}

/// The do-nothing metrics sink: `ENABLED == false`, so metered serving
/// loops compile down to the unmetered ones.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopMetrics;

impl MetricsSink for NoopMetrics {
    const ENABLED: bool = false;

    fn set_epoch(&mut self, _t_ns: u64) {}
    fn tick(&mut self, _t_ns: u64) {}
    fn gauge(&mut self, _key: &str, _v: f64) {}
    fn inc(&mut self, _key: &str, _by: u64) {}
    fn observe(&mut self, _key: &str, _v: f64) {}
    fn decision(&mut self, _d: ControlDecision) {}
    fn drr_round(&mut self, _t_ns: u64, _node: usize, _lane: usize, _deficits: &[u64]) {}
}

/// The recording metrics sink: a [`MetricsRegistry`] sampled every
/// `interval_ns` of virtual time, plus the structured decision log.
///
/// # Examples
///
/// ```
/// use drs_telemetry::{MetricsSink, PulseRecorder};
///
/// let mut pulse = PulseRecorder::new(1_000_000); // 1 ms ticks
/// pulse.set_epoch(5_000);
/// pulse.gauge("queue_depth_n0", 2.0);
/// pulse.tick(1_005_000);
/// assert_eq!(pulse.registry().samples()[0].t_ns, 1_000_000);
/// ```
#[derive(Debug, Clone)]
pub struct PulseRecorder {
    registry: MetricsRegistry,
    interval_ns: u64,
    epoch_ns: u64,
    decisions: Vec<ControlDecision>,
    drr_rounds: Vec<DrrRound>,
}

impl PulseRecorder {
    /// A recorder sampling every `interval_ns` of virtual time.
    ///
    /// # Panics
    ///
    /// Panics if `interval_ns` is zero (zero is the no-op contract).
    pub fn new(interval_ns: u64) -> Self {
        assert!(interval_ns > 0, "a recording pulse needs an interval");
        PulseRecorder {
            registry: MetricsRegistry::new(),
            interval_ns,
            epoch_ns: 0,
            decisions: Vec::new(),
            drr_rounds: Vec::new(),
        }
    }

    /// The sampled time-series registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The controller decision log, in commit order.
    pub fn decisions(&self) -> &[ControlDecision] {
        &self.decisions
    }

    /// The DRR grant log, in grant order.
    pub fn drr_rounds(&self) -> &[DrrRound] {
        &self.drr_rounds
    }

    /// Renders the decision log as JSONL, one retune per line —
    /// byte-deterministic per seed, like the registry exports.
    pub fn decisions_jsonl(&self) -> String {
        let mut out = String::new();
        for d in &self.decisions {
            out.push_str(&format!(
                "{{\"t_ns\": {}, \"node\": {}, \"tenant\": {}, \"trigger\": \"{}\", \
                 \"rate_qps\": {}, \"settled_rate_qps\": {}, \"p95_ms\": {}, \
                 \"settled_p95_ms\": {}, \"streak\": {}, \"old_max_batch\": {}, \
                 \"new_max_batch\": {}, \"downward\": {}}}\n",
                d.t_ns,
                d.node,
                d.tenant,
                d.trigger.label(),
                d.rate_qps,
                d.settled_rate_qps,
                d.p95_ms,
                d.settled_p95_ms,
                d.streak,
                d.old_max_batch,
                d.new_max_batch,
                d.downward
            ));
        }
        out
    }

    fn rebase(&self, t_ns: u64) -> u64 {
        t_ns.saturating_sub(self.epoch_ns)
    }
}

impl MetricsSink for PulseRecorder {
    fn set_epoch(&mut self, t_ns: u64) {
        self.epoch_ns = t_ns;
    }

    fn tick(&mut self, t_ns: u64) {
        let t = self.rebase(t_ns);
        self.registry.sample(t);
    }

    fn gauge(&mut self, key: &str, v: f64) {
        self.registry.set_gauge(key, v);
    }

    fn inc(&mut self, key: &str, by: u64) {
        self.registry.inc(key, by);
    }

    fn observe(&mut self, key: &str, v: f64) {
        self.registry.observe(key, v);
    }

    fn decision(&mut self, mut d: ControlDecision) {
        d.t_ns = self.rebase(d.t_ns);
        self.decisions.push(d);
    }

    fn drr_round(&mut self, t_ns: u64, node: usize, lane: usize, deficits: &[u64]) {
        self.drr_rounds.push(DrrRound {
            t_ns: self.rebase(t_ns),
            node,
            lane,
            deficits: deficits.to_vec(),
        });
    }

    fn interval_ns(&self) -> u64 {
        self.interval_ns
    }

    fn summary(&self) -> Option<PulseSummary> {
        let samples = self.registry.samples();
        let mut peak = 0.0f64;
        for s in samples {
            for (k, v) in &s.values {
                if k.starts_with("queue_depth") && *v > peak {
                    peak = *v;
                }
            }
        }
        Some(PulseSummary {
            samples: samples.len(),
            interval_ns: self.interval_ns,
            decisions: self.decisions.len(),
            drr_rounds: self.drr_rounds.len(),
            peak_queue_depth: peak,
            end_ns: samples.last().map(|s| s.t_ns).unwrap_or(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_rebases_to_epoch() {
        let mut p = PulseRecorder::new(500);
        p.set_epoch(1_000);
        p.gauge("queue_depth_n0", 4.0);
        p.tick(1_500);
        p.tick(2_000);
        let ts: Vec<u64> = p.registry().samples().iter().map(|s| s.t_ns).collect();
        assert_eq!(ts, vec![500, 1_000]);
        p.drr_round(2_500, 0, 1, &[10, 0]);
        assert_eq!(p.drr_rounds()[0].t_ns, 1_500);
        assert_eq!(p.drr_rounds()[0].deficits, vec![10, 0]);
    }

    #[test]
    fn summary_counts_everything() {
        let mut p = PulseRecorder::new(100);
        p.set_epoch(0);
        p.gauge("queue_depth_n0", 7.0);
        p.tick(100);
        p.gauge("queue_depth_n0", 2.0);
        p.tick(200);
        p.decision(ControlDecision {
            t_ns: 150,
            node: 0,
            tenant: 0,
            trigger: RetuneTrigger::RateShift,
            rate_qps: 10.0,
            settled_rate_qps: 20.0,
            p95_ms: 1.0,
            settled_p95_ms: 1.0,
            streak: 3,
            old_max_batch: 64,
            new_max_batch: 32,
            downward: true,
        });
        let s = MetricsSink::summary(&p).expect("recorder summarizes");
        assert_eq!(s.samples, 2);
        assert_eq!(s.decisions, 1);
        assert_eq!(s.drr_rounds, 0);
        assert_eq!(s.peak_queue_depth, 7.0);
        assert_eq!(s.end_ns, 200);
        assert_eq!(s.interval_ns, 100);
    }

    #[test]
    fn decision_jsonl_is_structured() {
        let mut p = PulseRecorder::new(100);
        p.decision(ControlDecision {
            t_ns: 42,
            node: 1,
            tenant: 2,
            trigger: RetuneTrigger::TailDrift,
            rate_qps: 5.5,
            settled_rate_qps: 5.0,
            p95_ms: 9.0,
            settled_p95_ms: 3.0,
            streak: 4,
            old_max_batch: 128,
            new_max_batch: 128,
            downward: false,
        });
        let line = p.decisions_jsonl();
        assert!(line.contains("\"trigger\": \"tail_drift\""), "{line}");
        assert!(line.contains("\"t_ns\": 42"), "{line}");
        assert!(line.ends_with("}\n"), "{line}");
    }

    #[test]
    fn noop_sink_is_disabled() {
        const { assert!(!NoopMetrics::ENABLED) };
        let mut m = NoopMetrics;
        m.gauge("x", 1.0);
        m.tick(1);
        assert_eq!(m.interval_ns(), 0);
        assert!(MetricsSink::summary(&m).is_none());
    }

    #[test]
    #[should_panic(expected = "needs an interval")]
    fn zero_interval_rejected() {
        let _ = PulseRecorder::new(0);
    }
}
