//! Chrome `trace_event` JSON export and re-parse.
//!
//! The export emits the "JSON object format" Chrome's `about:tracing`
//! and Perfetto load directly: `{"traceEvents": [...]}` where each
//! non-zero stage of each span becomes one complete ("ph":"X") event.
//! Timestamps and durations are microseconds (the format's unit);
//! `pid` carries the node, `tid` the tenant, and `args.query` the
//! query id, so per-node lanes stack per-tenant timelines.
//!
//! Like `bench_report`'s history format, the JSON is hand-rolled and
//! the module carries its own parser, so the shape is pinned by code
//! in this repo rather than by whatever a library tolerates.

use crate::span::{QuerySpan, Stage};

/// One parsed `trace_event` entry (the subset the exporter emits).
#[derive(Clone, Debug, PartialEq)]
pub struct ChromeEvent {
    /// Event name: the stage's [`Stage::name`].
    pub name: String,
    /// Event phase; the exporter only emits complete events (`"X"`).
    pub ph: String,
    /// Start timestamp, microseconds.
    pub ts_us: f64,
    /// Duration, microseconds.
    pub dur_us: f64,
    /// Process id lane — the serving node.
    pub pid: u64,
    /// Thread id lane — the tenant.
    pub tid: u64,
    /// The query id carried in `args.query`.
    pub query: u64,
}

/// Renders spans as Chrome `trace_event` JSON.
///
/// Stages are laid out back-to-back from each span's arrival in
/// schema order — which is chronological order, since the mutually
/// exclusive stages are zero-length — so the timeline in the viewer
/// reproduces the query's actual lifecycle. Zero-length stages are
/// skipped.
pub fn to_chrome_trace<'a>(spans: impl IntoIterator<Item = &'a QuerySpan>) -> String {
    let mut out = String::from("{\"traceEvents\": [");
    let mut first = true;
    for span in spans {
        let mut cursor_ns = span.arrival_ns;
        for stage in Stage::ALL {
            let dur_ns = span.stage_ns(stage);
            if dur_ns == 0 {
                continue;
            }
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\": \"{}\", \"cat\": \"lifecycle\", \"ph\": \"X\", \
                 \"ts\": {:.3}, \"dur\": {:.3}, \"pid\": {}, \"tid\": {}, \
                 \"args\": {{\"query\": {}}}}}",
                stage.name(),
                cursor_ns as f64 / 1e3,
                dur_ns as f64 / 1e3,
                span.node,
                span.tenant,
                span.query_id
            ));
            cursor_ns += dur_ns;
        }
    }
    out.push_str("]}\n");
    out
}

/// Parses an exported Chrome trace back into events.
///
/// Accepts exactly the shape [`to_chrome_trace`] emits: a top-level
/// object with a `traceEvents` array of flat event objects (one level
/// of nesting for `args`). Strings carry no escapes.
pub fn parse_chrome_trace(json: &str) -> Result<Vec<ChromeEvent>, String> {
    let json = json.trim();
    let start = json
        .find("\"traceEvents\"")
        .ok_or("missing traceEvents key")?;
    let array = json[start..]
        .find('[')
        .map(|i| &json[start + i + 1..])
        .ok_or("missing traceEvents array")?;
    let mut events = Vec::new();
    let mut depth = 0usize;
    let mut obj_start = None;
    for (i, c) in array.char_indices() {
        match c {
            '{' => {
                if depth == 0 {
                    obj_start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth = depth
                    .checked_sub(1)
                    .ok_or("unbalanced braces in traceEvents")?;
                if depth == 0 {
                    let obj = &array[obj_start.take().ok_or("object end without start")?..=i];
                    events.push(parse_event(obj)?);
                }
            }
            ']' if depth == 0 => return Ok(events),
            _ => {}
        }
    }
    Err("unterminated traceEvents array".into())
}

/// Parses one event object by keyed lookup (the exporter's flat
/// shape; `args` is the only nested object and only `query` is read).
fn parse_event(obj: &str) -> Result<ChromeEvent, String> {
    Ok(ChromeEvent {
        name: string_field(obj, "name")?,
        ph: string_field(obj, "ph")?,
        ts_us: number_field(obj, "ts")?,
        dur_us: number_field(obj, "dur")?,
        pid: number_field(obj, "pid")? as u64,
        tid: number_field(obj, "tid")? as u64,
        query: number_field(obj, "query")? as u64,
    })
}

fn field_value<'a>(obj: &'a str, key: &str) -> Result<&'a str, String> {
    let pat = format!("\"{key}\"");
    let at = obj.find(&pat).ok_or_else(|| format!("missing {key:?}"))?;
    let rest = obj[at + pat.len()..]
        .trim_start()
        .strip_prefix(':')
        .ok_or_else(|| format!("missing : after {key:?}"))?;
    Ok(rest.trim_start())
}

fn string_field(obj: &str, key: &str) -> Result<String, String> {
    let rest = field_value(obj, key)?;
    let body = rest
        .strip_prefix('"')
        .ok_or_else(|| format!("{key:?} is not a string"))?;
    let end = body
        .find('"')
        .ok_or_else(|| format!("unterminated string for {key:?}"))?;
    Ok(body[..end].to_string())
}

fn number_field(obj: &str, key: &str) -> Result<f64, String> {
    let rest = field_value(obj, key)?;
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end]
        .parse()
        .map_err(|_| format!("bad number for {key:?}: {:?}", &rest[..end]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::STAGE_COUNT;

    fn span(id: u64, wait_ns: u64, service_ns: u64) -> QuerySpan {
        let mut stages = [0u64; STAGE_COUNT];
        stages[Stage::QueueWait.index()] = wait_ns;
        stages[Stage::EngineService.index()] = service_ns;
        QuerySpan {
            query_id: id,
            tenant: 1,
            node: 2,
            arrival_ns: 10_000 * id,
            end_ns: 10_000 * id + wait_ns + service_ns,
            stages,
        }
    }

    #[test]
    fn round_trips_spans_through_json() {
        let spans = [span(1, 1_500, 2_500), span(2, 0, 4_000)];
        let json = to_chrome_trace(spans.iter());
        let events = parse_chrome_trace(&json).expect("parseable export");
        // Span 1 contributes two stage events, span 2 one.
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].name, "queue-wait");
        assert_eq!(events[0].ph, "X");
        assert_eq!(events[0].query, 1);
        assert_eq!(events[0].pid, 2);
        assert_eq!(events[0].tid, 1);
        assert!((events[0].ts_us - 10.0).abs() < 1e-9);
        assert!((events[0].dur_us - 1.5).abs() < 1e-9);
        // Stages lay out back-to-back from the arrival.
        assert!((events[1].ts_us - 11.5).abs() < 1e-9);
        assert_eq!(events[2].name, "engine-service");
        assert!((events[2].ts_us - 20.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(parse_chrome_trace("{}").is_err());
        assert!(parse_chrome_trace("{\"traceEvents\": [{\"name\": ").is_err());
    }
}
