//! The recording trait serving loops are generic over.

use crate::ring::StageBreakdown;
use crate::span::QuerySpan;

/// A consumer of completed query spans.
///
/// Serving loops are generic over `S: TraceSink` and guard every
/// recording site with `if S::ENABLED { ... }`. Because `ENABLED` is
/// an associated *constant*, the untraced instantiation
/// ([`NoopSink`]) monomorphizes those sites to dead code — tracing
/// off costs nothing measurable, which is what lets the default
/// public serving APIs stay untraced without a second code path.
pub trait TraceSink {
    /// Whether this sink actually records. Call sites skip span
    /// assembly entirely when this is `false`.
    const ENABLED: bool = true;

    /// Record one completed query's span.
    fn record(&mut self, span: &QuerySpan);

    /// A streaming stage-latency snapshot, if this sink maintains
    /// one. Serving wrappers attach this to their report so traced
    /// runs surface the breakdown through `ReportView` with no extra
    /// plumbing.
    fn breakdown(&self) -> Option<StageBreakdown> {
        None
    }
}

/// The do-nothing sink: `ENABLED == false`, so traced serving loops
/// compile down to the untraced ones.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    const ENABLED: bool = false;

    fn record(&mut self, _span: &QuerySpan) {}
}
