//! The in-memory sink: a bounded span ring plus streaming per-stage
//! quantiles, snapshotted into the report-facing [`StageBreakdown`].

use crate::sink::TraceSink;
use crate::span::{QuerySpan, Stage, STAGE_COUNT};
use drs_metrics::P2Quantile;
use std::collections::VecDeque;

/// Default span-ring capacity: enough to hold a smoke run whole while
/// bounding a soak to a few hundred KB.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Streaming digest for one stage of one group: exact count/mean plus
/// P² quantile estimators — constant memory regardless of run length.
#[derive(Clone, Debug)]
struct StageDigest {
    count: u64,
    sum_ms: f64,
    p50: P2Quantile,
    p95: P2Quantile,
    p99: P2Quantile,
}

impl StageDigest {
    fn new() -> Self {
        StageDigest {
            count: 0,
            sum_ms: 0.0,
            p50: P2Quantile::new(0.50),
            p95: P2Quantile::new(0.95),
            p99: P2Quantile::new(0.99),
        }
    }

    fn observe_ms(&mut self, ms: f64) {
        self.count += 1;
        self.sum_ms += ms;
        self.p50.observe(ms);
        self.p95.observe(ms);
        self.p99.observe(ms);
    }

    fn stats(&self) -> StageStats {
        StageStats {
            count: self.count,
            mean_ms: if self.count == 0 {
                0.0
            } else {
                self.sum_ms / self.count as f64
            },
            p50_ms: self.p50.value().unwrap_or(0.0),
            p95_ms: self.p95.value().unwrap_or(0.0),
            p99_ms: self.p99.value().unwrap_or(0.0),
        }
    }
}

fn new_digest_row() -> [StageDigest; STAGE_COUNT] {
    std::array::from_fn(|_| StageDigest::new())
}

/// Snapshot of one stage's streaming latency statistics,
/// milliseconds.
///
/// Every recorded span contributes to every stage (inactive stages
/// contribute zero), so the per-stage `mean_ms` values sum to the
/// end-to-end `mean_ms` and stage *shares* of the mean add up to one.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StageStats {
    /// Spans observed.
    pub count: u64,
    /// Mean stage duration (exact, not estimated).
    pub mean_ms: f64,
    /// Streaming median (P² estimate).
    pub p50_ms: f64,
    /// Streaming 95th percentile (P² estimate).
    pub p95_ms: f64,
    /// Streaming 99th percentile (P² estimate).
    pub p99_ms: f64,
}

/// The report-facing stage-latency breakdown: overall, per-stage,
/// per-tenant, and per-node streaming statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StageBreakdown {
    /// Spans recorded into the snapshot.
    pub spans: u64,
    /// End-to-end latency statistics across all recorded spans.
    pub total: StageStats,
    /// Per-stage statistics, indexed by [`Stage::index`].
    pub stages: Vec<StageStats>,
    /// Per-tenant rows of per-stage statistics (tenant index → row).
    pub tenants: Vec<Vec<StageStats>>,
    /// Per-node rows of per-stage statistics (node index → row).
    pub nodes: Vec<Vec<StageStats>>,
}

impl StageBreakdown {
    /// Statistics for one stage.
    pub fn stage(&self, stage: Stage) -> &StageStats {
        &self.stages[stage.index()]
    }

    /// The stage's share of mean end-to-end latency, in `[0, 1]`
    /// (shares across all stages sum to one).
    pub fn share_of_mean(&self, stage: Stage) -> f64 {
        if self.total.mean_ms <= 0.0 {
            0.0
        } else {
            self.stage(stage).mean_ms / self.total.mean_ms
        }
    }
}

/// The in-memory recording sink.
///
/// Keeps the most recent `capacity` spans verbatim (for Chrome-trace
/// export and exact per-query checks) and feeds *every* span — also
/// the ones that later rotate out of the ring — into streaming
/// per-stage / per-tenant / per-node digests, so quantiles cover the
/// whole run in constant memory.
#[derive(Clone, Debug)]
pub struct RingRecorder {
    capacity: usize,
    ring: VecDeque<QuerySpan>,
    dropped: u64,
    total: StageDigest,
    stages: [StageDigest; STAGE_COUNT],
    tenants: Vec<[StageDigest; STAGE_COUNT]>,
    nodes: Vec<[StageDigest; STAGE_COUNT]>,
}

impl RingRecorder {
    /// A recorder retaining at most `capacity` spans in the ring.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingRecorder {
            capacity,
            ring: VecDeque::with_capacity(capacity.min(DEFAULT_RING_CAPACITY)),
            dropped: 0,
            total: StageDigest::new(),
            stages: new_digest_row(),
            tenants: Vec::new(),
            nodes: Vec::new(),
        }
    }

    /// Spans recorded overall (including any rotated out of the ring).
    pub fn recorded(&self) -> u64 {
        self.total.count
    }

    /// Spans that rotated out of the bounded ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained spans, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &QuerySpan> {
        self.ring.iter()
    }

    /// Snapshot the streaming digests into a [`StageBreakdown`].
    pub fn snapshot(&self) -> StageBreakdown {
        let row = |digests: &[StageDigest; STAGE_COUNT]| -> Vec<StageStats> {
            digests.iter().map(StageDigest::stats).collect()
        };
        StageBreakdown {
            spans: self.total.count,
            total: self.total.stats(),
            stages: row(&self.stages),
            tenants: self.tenants.iter().map(row).collect(),
            nodes: self.nodes.iter().map(row).collect(),
        }
    }
}

impl Default for RingRecorder {
    fn default() -> Self {
        RingRecorder::new(DEFAULT_RING_CAPACITY)
    }
}

fn observe_row(row: &mut [StageDigest; STAGE_COUNT], span: &QuerySpan) {
    for (digest, &ns) in row.iter_mut().zip(&span.stages) {
        digest.observe_ms(ns as f64 / 1e6);
    }
}

impl TraceSink for RingRecorder {
    fn record(&mut self, span: &QuerySpan) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(*span);
        self.total.observe_ms(span.latency_ms());
        observe_row(&mut self.stages, span);
        if span.tenant >= self.tenants.len() {
            self.tenants.resize_with(span.tenant + 1, new_digest_row);
        }
        observe_row(&mut self.tenants[span.tenant], span);
        if span.node >= self.nodes.len() {
            self.nodes.resize_with(span.node + 1, new_digest_row);
        }
        observe_row(&mut self.nodes[span.node], span);
    }

    fn breakdown(&self) -> Option<StageBreakdown> {
        Some(self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, tenant: usize, node: usize, wait_ns: u64, service_ns: u64) -> QuerySpan {
        let mut stages = [0u64; STAGE_COUNT];
        stages[Stage::QueueWait.index()] = wait_ns;
        stages[Stage::EngineService.index()] = service_ns;
        QuerySpan {
            query_id: id,
            tenant,
            node,
            arrival_ns: 1_000 * id,
            end_ns: 1_000 * id + wait_ns + service_ns,
            stages,
        }
    }

    #[test]
    fn ring_bounds_retention_but_digests_cover_everything() {
        let mut rec = RingRecorder::new(4);
        for i in 0..10 {
            rec.record(&span(i, 0, 0, 100, 900));
        }
        assert_eq!(rec.recorded(), 10);
        assert_eq!(rec.dropped(), 6);
        assert_eq!(rec.spans().count(), 4);
        assert_eq!(rec.spans().next().unwrap().query_id, 6, "oldest kept");
        let snap = rec.snapshot();
        assert_eq!(snap.spans, 10);
        assert_eq!(snap.total.count, 10);
    }

    #[test]
    fn stage_means_decompose_the_total_mean() {
        let mut rec = RingRecorder::new(16);
        for i in 0..8 {
            rec.record(&span(i, i as usize % 2, 0, 50 * i, 1_000));
        }
        let snap = rec.snapshot();
        let stage_mean_sum: f64 = Stage::ALL.iter().map(|&s| snap.stage(s).mean_ms).sum();
        assert!(
            (stage_mean_sum - snap.total.mean_ms).abs() < 1e-12,
            "stage means {stage_mean_sum} vs total {}",
            snap.total.mean_ms
        );
        let share_sum: f64 = Stage::ALL.iter().map(|&s| snap.share_of_mean(s)).sum();
        assert!((share_sum - 1.0).abs() < 1e-12);
        assert_eq!(snap.tenants.len(), 2);
        assert_eq!(snap.tenants[0][Stage::EngineService.index()].count, 4);
    }

    #[test]
    fn breakdown_via_sink_trait_matches_snapshot() {
        let mut rec = RingRecorder::default();
        rec.record(&span(1, 0, 0, 10, 20));
        assert_eq!(rec.breakdown().unwrap(), rec.snapshot());
    }
}
