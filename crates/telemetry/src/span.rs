//! The per-query span schema: fixed lifecycle stages whose durations
//! sum to the end-to-end latency exactly.

/// Number of lifecycle stages in the fixed schema.
pub const STAGE_COUNT: usize = 7;

/// A query's lifecycle stage, in chronological order.
///
/// Every query passes through the stages in this order; stages that do
/// not apply to a given path are simply zero-length. The two execution
/// disciplines partition like this:
///
/// * **CPU path** — `CoalesceWait` (open batch-former window) →
///   `BatchResidency` (formed batch waiting in the ready/DRR queue) →
///   `EngineService` (forward pass, virtual-priced or physical);
/// * **GPU offload** — `QueueWait` (device FIFO) → `EngineService`
///   (device service time);
/// * **sharded tail** — after the last partial credits,
///   `ShardExchange` (interconnect fabric) then `DenseTail` (merge-home
///   dense layers) run before completion.
///
/// `Route` is reserved for front-door routing delay; both runtimes
/// route instantaneously today, so it records zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Front-door routing decision (instantaneous today).
    Route,
    /// Wait in the GPU offload FIFO before device service starts.
    QueueWait,
    /// Time in the batch former's open coalesce window before the
    /// batch carrying this query's last segment was emitted.
    CoalesceWait,
    /// Time a formed batch waits in the ready queue (DRR lane or
    /// machine queue) before dispatch.
    BatchResidency,
    /// Service time: the forward pass on CPU workers or the GPU
    /// device, whichever executed the final segment.
    EngineService,
    /// Interconnect share of a sharded query's merge delay.
    ShardExchange,
    /// Dense-tail share of a sharded query's merge delay (the
    /// merge-home forward of the pooled embeddings).
    DenseTail,
}

impl Stage {
    /// All stages, in chronological (and schema-index) order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Route,
        Stage::QueueWait,
        Stage::CoalesceWait,
        Stage::BatchResidency,
        Stage::EngineService,
        Stage::ShardExchange,
        Stage::DenseTail,
    ];

    /// The stage's index into [`QuerySpan::stages`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short kebab-case stage name (also the Chrome trace event name).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Route => "route",
            Stage::QueueWait => "queue-wait",
            Stage::CoalesceWait => "coalesce-wait",
            Stage::BatchResidency => "batch-residency",
            Stage::EngineService => "engine-service",
            Stage::ShardExchange => "shard-exchange",
            Stage::DenseTail => "dense-tail",
        }
    }

    /// Looks a stage up by its [`name`](Stage::name).
    pub fn from_name(name: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|s| s.name() == name)
    }
}

/// One query's complete lifecycle timeline.
///
/// The invariant every producer upholds (and [`validate`] checks):
/// the stage durations are non-negative integers that sum to
/// `end_ns - arrival_ns` **exactly** — no rounding slack — so a span
/// is a lossless decomposition of the latency the reports record
/// (`latency_ms == total_ns() as f64 / 1e6`, bit for bit).
///
/// [`validate`]: QuerySpan::validate
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuerySpan {
    /// The query's stream id.
    pub query_id: u64,
    /// Owning tenant index.
    pub tenant: usize,
    /// Node that served (or, sharded, merged) the query.
    pub node: usize,
    /// Arrival timestamp, nanoseconds since the stream's first
    /// arrival — every runtime (virtual, real, simulator, engine)
    /// rebases to this epoch so spans compare across clocks.
    pub arrival_ns: u64,
    /// Completion timestamp, nanoseconds since the stream's first
    /// arrival.
    pub end_ns: u64,
    /// Per-stage durations in nanoseconds, indexed by
    /// [`Stage::index`].
    pub stages: [u64; STAGE_COUNT],
}

impl QuerySpan {
    /// End-to-end latency in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.arrival_ns)
    }

    /// End-to-end latency in milliseconds — the same expression the
    /// serving reports use, so it matches `latencies_ms` bit for bit.
    pub fn latency_ms(&self) -> f64 {
        self.total_ns() as f64 / 1e6
    }

    /// Duration of one stage, nanoseconds.
    pub fn stage_ns(&self, stage: Stage) -> u64 {
        self.stages[stage.index()]
    }

    /// Checks the span's well-formedness: completion not before
    /// arrival, and stage durations summing to the end-to-end latency
    /// exactly.
    pub fn validate(&self) -> Result<(), String> {
        if self.end_ns < self.arrival_ns {
            return Err(format!(
                "query {}: end {} precedes arrival {}",
                self.query_id, self.end_ns, self.arrival_ns
            ));
        }
        let sum: u64 = self.stages.iter().sum();
        if sum != self.total_ns() {
            return Err(format!(
                "query {}: stage durations sum to {} ns but end-to-end is {} ns",
                self.query_id,
                sum,
                self.total_ns()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_indices_are_schema_order() {
        for (i, s) in Stage::ALL.into_iter().enumerate() {
            assert_eq!(s.index(), i);
            assert_eq!(Stage::from_name(s.name()), Some(s));
        }
        assert_eq!(Stage::from_name("nonsense"), None);
    }

    #[test]
    fn validate_accepts_exact_decomposition() {
        let mut stages = [0u64; STAGE_COUNT];
        stages[Stage::QueueWait.index()] = 300;
        stages[Stage::EngineService.index()] = 700;
        let span = QuerySpan {
            query_id: 1,
            tenant: 0,
            node: 0,
            arrival_ns: 5_000,
            end_ns: 6_000,
            stages,
        };
        span.validate().expect("well-formed");
        assert_eq!(span.total_ns(), 1_000);
        assert_eq!(span.latency_ms(), 1_000.0 / 1e6);
    }

    #[test]
    fn validate_rejects_gaps() {
        let span = QuerySpan {
            query_id: 2,
            tenant: 0,
            node: 0,
            arrival_ns: 0,
            end_ns: 100,
            stages: [0; STAGE_COUNT],
        };
        assert!(span.validate().is_err(), "99-ns gap must be rejected");
    }
}
