//! Property-based tests for the tensor kernels.

use drs_tensor::{dot, softmax_in_place, Activation, Matrix};
use proptest::prelude::*;

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    // Case budget audited so the whole workspace suite stays fast in
    // debug CI; raise at runtime with PROPTEST_CASES for a deeper soak.
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// (A + B) × C == A×C + B×C — GEMM distributes over addition.
    #[test]
    fn matmul_distributive(a in small_matrix(3, 4), b in small_matrix(3, 4), c in small_matrix(4, 2)) {
        let left = Matrix::sum_elementwise(&[&a, &b]).matmul(&c);
        let right = Matrix::sum_elementwise(&[&a.matmul(&c), &b.matmul(&c)]);
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// Multiplying by the identity preserves the matrix.
    #[test]
    fn matmul_identity_right(a in small_matrix(4, 5)) {
        let c = a.matmul(&Matrix::identity(5));
        for (x, y) in c.as_slice().iter().zip(a.as_slice()) {
            prop_assert!((x - y).abs() < 1e-6);
        }
    }

    /// Transposition is an involution and swaps shape.
    #[test]
    fn transpose_involution(a in small_matrix(3, 7)) {
        let t = a.transposed();
        prop_assert_eq!(t.rows(), 7);
        prop_assert_eq!(t.cols(), 3);
        prop_assert_eq!(t.transposed(), a);
    }

    /// dot(a, b) == dot(b, a) and dot(a, a) >= 0.
    #[test]
    fn dot_symmetric_nonneg(v in prop::collection::vec(-100.0f32..100.0, 0..64),
                            w in prop::collection::vec(-100.0f32..100.0, 0..64)) {
        let n = v.len().min(w.len());
        let (a, b) = (&v[..n], &w[..n]);
        prop_assert!((dot(a, b) - dot(b, a)).abs() < 1e-2);
        prop_assert!(dot(a, a) >= 0.0);
    }

    /// Softmax outputs a probability vector for any finite input.
    #[test]
    fn softmax_is_distribution(mut v in prop::collection::vec(-50.0f32..50.0, 1..64)) {
        softmax_in_place(&mut v);
        let sum: f32 = v.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4, "sum {sum}");
        prop_assert!(v.iter().all(|x| (0.0..=1.0).contains(x)));
    }

    /// ReLU output is non-negative and idempotent.
    #[test]
    fn relu_idempotent(mut v in prop::collection::vec(-10.0f32..10.0, 0..64)) {
        Activation::Relu.apply_slice(&mut v);
        prop_assert!(v.iter().all(|x| *x >= 0.0));
        let once = v.clone();
        Activation::Relu.apply_slice(&mut v);
        prop_assert_eq!(v, once);
    }

    /// concat_cols preserves every element and total width.
    #[test]
    fn concat_preserves(a in small_matrix(2, 3), b in small_matrix(2, 4)) {
        let c = Matrix::concat_cols(&[&a, &b]);
        prop_assert_eq!(c.cols(), 7);
        for r in 0..2 {
            prop_assert_eq!(&c.row(r)[..3], a.row(r));
            prop_assert_eq!(&c.row(r)[3..], b.row(r));
        }
    }

    /// `linear` with identity weights and zero bias is the activation alone.
    #[test]
    fn linear_reduces_to_activation(a in small_matrix(3, 4)) {
        let out = a.linear(&Matrix::identity(4), &[0.0; 4], Activation::Relu);
        for (x, y) in out.as_slice().iter().zip(a.as_slice()) {
            prop_assert!((x - y.max(0.0)).abs() < 1e-6);
        }
    }
}
