//! Minimal dense f32 tensor kernels for the DeepRecSys reproduction.
//!
//! The paper's models run on Caffe2 with Intel MKL as the CPU backend.
//! This crate is our from-scratch substitute: just enough dense linear
//! algebra to execute the eight recommendation models *for real* in
//! `drs-engine` — a row-major [`Matrix`] with a cache-friendly GEMM,
//! fused bias+activation, and the vector helpers the attention and GRU
//! operators need.
//!
//! Performance is deliberately "good naive" (ikj loop order, streaming
//! writes): the reproduction's claims rest on *relative* operator costs,
//! which this preserves, not on matching MKL's absolute GFLOP/s.
//!
//! # Examples
//!
//! ```
//! use drs_tensor::Matrix;
//!
//! let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
//! let b = Matrix::identity(3);
//! let c = a.matmul(&b);
//! assert_eq!(c.as_slice(), a.as_slice());
//! ```

#![warn(missing_docs)]

mod matrix;
mod ops;

pub use matrix::Matrix;
pub use ops::{add_scaled, dot, softmax_in_place, Activation};
