//! Scalar activations and small vector helpers.

/// Non-linearity applied after a fully-connected layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Activation {
    /// Identity (no activation) — used on final CTR logits before the
    /// sigmoid head.
    #[default]
    None,
    /// Rectified linear unit, the default for hidden FC layers.
    Relu,
    /// Logistic sigmoid — CTR output heads and GRU gates.
    Sigmoid,
    /// Hyperbolic tangent — GRU candidate state.
    Tanh,
}

impl Activation {
    /// Applies the activation to one scalar.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::None => x,
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
        }
    }

    /// Applies the activation to a slice in place.
    pub fn apply_slice(self, xs: &mut [f32]) {
        if self == Activation::None {
            return;
        }
        for x in xs {
            *x = self.apply(*x);
        }
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the lengths differ.
///
/// # Examples
///
/// ```
/// assert_eq!(drs_tensor::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `acc += scale * src`, the axpy primitive behind embedding sum-pooling
/// and attention-weighted sums.
///
/// # Panics
///
/// Panics if the lengths differ.
#[inline]
pub fn add_scaled(acc: &mut [f32], src: &[f32], scale: f32) {
    assert_eq!(acc.len(), src.len(), "add_scaled length mismatch");
    for (a, s) in acc.iter_mut().zip(src) {
        *a += scale * s;
    }
}

/// Numerically-stable in-place softmax (subtracts the max before
/// exponentiation). Used to normalize attention scores.
///
/// An empty slice is left untouched.
///
/// # Examples
///
/// ```
/// let mut v = [1.0f32, 1.0, 1.0];
/// drs_tensor::softmax_in_place(&mut v);
/// assert!((v[0] - 1.0 / 3.0).abs() < 1e-6);
/// ```
pub fn softmax_in_place(xs: &mut [f32]) {
    if xs.is_empty() {
        return;
    }
    let max = xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in xs.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in xs.iter_mut() {
            *x /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activations_pointwise() {
        assert_eq!(Activation::None.apply(-2.0), -2.0);
        assert_eq!(Activation::Relu.apply(-2.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-7);
        assert!((Activation::Tanh.apply(0.0)).abs() < 1e-7);
    }

    #[test]
    fn sigmoid_bounded() {
        for x in [-100.0, -1.0, 0.0, 1.0, 100.0] {
            let y = Activation::Sigmoid.apply(x);
            assert!((0.0..=1.0).contains(&y), "sigmoid({x}) = {y}");
        }
    }

    #[test]
    fn apply_slice_none_is_noop() {
        let mut v = [1.0, -2.0];
        Activation::None.apply_slice(&mut v);
        assert_eq!(v, [1.0, -2.0]);
    }

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(dot(&[2.0, 3.0], &[4.0, 5.0]), 23.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut acc = vec![1.0, 1.0];
        add_scaled(&mut acc, &[2.0, 3.0], 0.5);
        assert_eq!(acc, vec![2.0, 2.5]);
    }

    #[test]
    fn softmax_sums_to_one() {
        let mut v = [3.0f32, 1.0, 0.2];
        softmax_in_place(&mut v);
        let s: f32 = v.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        assert!(v[0] > v[1] && v[1] > v[2]);
    }

    #[test]
    fn softmax_handles_extremes() {
        let mut v = [1000.0f32, -1000.0];
        softmax_in_place(&mut v);
        assert!((v[0] - 1.0).abs() < 1e-6);
        assert!(v[1].abs() < 1e-6);
        let mut empty: [f32; 0] = [];
        softmax_in_place(&mut empty); // must not panic
    }
}
