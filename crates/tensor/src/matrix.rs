//! Row-major dense f32 matrix and GEMM kernels.

use crate::ops::Activation;
use rand::Rng;

/// A row-major dense matrix of `f32`.
///
/// Rows index samples within a batch throughout this workspace: a batch
/// of `B` feature vectors of width `D` is a `B × D` matrix.
///
/// # Examples
///
/// ```
/// use drs_tensor::Matrix;
///
/// let m = Matrix::from_fn(2, 2, |r, c| (r * 2 + c) as f32);
/// assert_eq!(m.get(1, 0), 2.0);
/// assert_eq!(m.row(1), &[2.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Matrix::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Xavier/Glorot-uniform initialized matrix: samples from
    /// `U(-limit, limit)` with `limit = sqrt(6 / (rows + cols))`.
    ///
    /// This is the standard initialization for the FC stacks in the model
    /// zoo; it keeps forward activations in a numerically sane range so
    /// CTR outputs stay meaningful at any batch size.
    pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Self {
        let limit = (6.0 / (rows + cols) as f64).sqrt() as f32;
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            data.push(rng.gen_range(-limit..=limit));
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the underlying row-major storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self × rhs`, allocating the output.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// Matrix product into a preallocated output (overwrites `out`).
    ///
    /// Uses the i-k-j loop order so the inner loop streams over rows of
    /// `rhs` and `out` — cache-friendly for the tall-thin shapes the FC
    /// stacks produce.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.rows,
            "inner dimensions differ: {}x{} × {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(out.rows, self.rows, "output rows mismatch");
        assert_eq!(out.cols, rhs.cols, "output cols mismatch");
        out.data.fill(0.0);
        let n = rhs.cols;
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let c_row = &mut out.data[i * n..(i + 1) * n];
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[k * n..(k + 1) * n];
                for (c, &b) in c_row.iter_mut().zip(b_row) {
                    *c += a_ik * b;
                }
            }
        }
    }

    /// Fused `act(self × weights + bias)`, the fully-connected-layer
    /// primitive. `bias.len()` must equal `weights.cols()`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn linear(&self, weights: &Matrix, bias: &[f32], act: Activation) -> Matrix {
        assert_eq!(bias.len(), weights.cols, "bias length mismatch");
        let mut out = self.matmul(weights);
        for r in 0..out.rows {
            let row = out.row_mut(r);
            for (v, b) in row.iter_mut().zip(bias) {
                *v += b;
            }
            act.apply_slice(row);
        }
        out
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Concatenates matrices horizontally (same row count).
    ///
    /// This is the `Concat` feature-interaction operator of Figure 2.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or row counts differ.
    pub fn concat_cols(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat of zero matrices");
        let rows = parts[0].rows;
        assert!(
            parts.iter().all(|m| m.rows == rows),
            "row counts differ in concat"
        );
        let cols: usize = parts.iter().map(|m| m.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut offset = 0;
            for m in parts {
                out.data[r * cols + offset..r * cols + offset + m.cols].copy_from_slice(m.row(r));
                offset += m.cols;
            }
        }
        out
    }

    /// Element-wise sum of matrices with identical shape.
    ///
    /// This is the `Sum` feature-interaction operator of Figure 2.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or shapes differ.
    pub fn sum_elementwise(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "sum of zero matrices");
        let (rows, cols) = (parts[0].rows, parts[0].cols);
        assert!(
            parts.iter().all(|m| m.rows == rows && m.cols == cols),
            "shapes differ in sum"
        );
        let mut out = parts[0].clone();
        for m in &parts[1..] {
            for (o, v) in out.data.iter_mut().zip(&m.data) {
                *o += v;
            }
        }
        out
    }

    /// Element-wise (Hadamard) product with another matrix of the same
    /// shape — used by NCF's generalized matrix factorization pooling.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "hadamard shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a * b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Frobenius norm (for test assertions on weight magnitudes).
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Consumes the matrix, returning its row-major storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the matrix with a new shape covering the same
    /// row-major data (free; no copy).
    ///
    /// Used to view a `B × (seq·dim)` concat-pooled embedding block as
    /// the `(B·seq) × dim` sequence the attention/GRU operators expect —
    /// the row-major layouts coincide.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` differs from the element count.
    pub fn reshaped(self, rows: usize, cols: usize) -> Matrix {
        assert_eq!(
            rows * cols,
            self.data.len(),
            "cannot reshape {} elements to {rows}x{cols}",
            self.data.len()
        );
        Matrix {
            rows,
            cols,
            data: self.data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                c.set(i, j, acc);
            }
        }
        c
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = StdRng::seed_from_u64(42);
        let a = Matrix::xavier_uniform(7, 13, &mut rng);
        let b = Matrix::xavier_uniform(13, 5, &mut rng);
        let fast = a.matmul(&b);
        let slow = naive_matmul(&a, &b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::xavier_uniform(4, 6, &mut rng);
        let c = a.matmul(&Matrix::identity(6));
        assert_eq!(c, a);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = a.matmul(&b);
    }

    #[test]
    fn linear_applies_bias_and_activation() {
        let x = Matrix::from_vec(1, 2, vec![1.0, -1.0]);
        let w = Matrix::identity(2);
        let out = x.linear(&w, &[0.5, 0.5], Activation::Relu);
        assert_eq!(out.as_slice(), &[1.5, 0.0]);
    }

    #[test]
    fn concat_cols_layout() {
        let a = Matrix::from_vec(2, 1, vec![1.0, 3.0]);
        let b = Matrix::from_vec(2, 2, vec![10.0, 20.0, 30.0, 40.0]);
        let c = Matrix::concat_cols(&[&a, &b]);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 3);
        assert_eq!(c.row(0), &[1.0, 10.0, 20.0]);
        assert_eq!(c.row(1), &[3.0, 30.0, 40.0]);
    }

    #[test]
    #[should_panic(expected = "row counts differ")]
    fn concat_mismatched_rows_panics() {
        let a = Matrix::zeros(2, 1);
        let b = Matrix::zeros(3, 1);
        let _ = Matrix::concat_cols(&[&a, &b]);
    }

    #[test]
    fn sum_elementwise_adds() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(1, 2, vec![10.0, 20.0]);
        let s = Matrix::sum_elementwise(&[&a, &b]);
        assert_eq!(s.as_slice(), &[11.0, 22.0]);
    }

    #[test]
    fn hadamard_multiplies() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = Matrix::xavier_uniform(3, 5, &mut rng);
        assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    fn xavier_within_limit() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = Matrix::xavier_uniform(100, 50, &mut rng);
        let limit = (6.0f64 / 150.0).sqrt() as f32 + 1e-6;
        assert!(m.as_slice().iter().all(|v| v.abs() <= limit));
        // Not all zeros.
        assert!(m.frobenius_norm() > 0.0);
    }

    #[test]
    fn row_access() {
        let m = Matrix::from_fn(3, 2, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.row(2), &[20.0, 21.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_out_of_bounds_panics() {
        let m = Matrix::zeros(1, 1);
        let _ = m.row(1);
    }
}
