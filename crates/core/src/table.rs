//! Plain-text/Markdown table formatting for experiment output.
//!
//! Every experiment binary prints its figure or table as a Markdown
//! table next to the paper's reference values; this tiny formatter keeps
//! that output consistent without pulling a serialization dependency.

use std::fmt;

/// A Markdown table under construction.
///
/// # Examples
///
/// ```
/// use deeprecsys::table::TextTable;
///
/// let mut t = TextTable::new(vec!["model", "QPS"]);
/// t.row(vec!["NCF".into(), "123.4".into()]);
/// let s = t.to_string();
/// assert!(s.contains("| model | QPS |"));
/// assert!(s.contains("| NCF | 123.4 |"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<&'static str>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(headers: Vec<&'static str>) -> Self {
        assert!(!headers.is_empty(), "a table needs columns");
        TextTable {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "|")?;
        for h in &self.headers {
            write!(f, " {h} |")?;
        }
        writeln!(f)?;
        write!(f, "|")?;
        for _ in &self.headers {
            write!(f, "---|")?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write!(f, "|")?;
            for c in row {
                write!(f, " {c} |")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Formats a float with three significant-ish decimals for tables.
pub fn fmt3(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["x".into(), "y".into()]);
        let s = t.to_string();
        assert!(s.starts_with("| a | b |\n|---|---|\n"));
        assert!(s.contains("| x | y |\n"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt3(0.0), "0");
        assert_eq!(fmt3(1234.5), "1234"); // ties-to-even at .5
        assert_eq!(fmt3(12.345), "12.35");
        assert_eq!(fmt3(0.1234), "0.123");
    }
}
