//! # DeepRecSys — at-scale neural recommendation inference, in Rust
//!
//! A from-scratch reproduction of *DeepRecSys: A System for Optimizing
//! End-To-End At-Scale Neural Recommendation Inference* (Gupta et al.,
//! ISCA 2020). This crate is the public face of the workspace: it
//! re-exports every subsystem and offers [`DeepRecInfra`], a high-level
//! handle combining the three ingredients of the paper's evaluation
//! methodology —
//!
//! 1. an industry-representative **model** ([`zoo`], Table I),
//! 2. a **real-time query workload** (Poisson arrivals over the
//!    production heavy-tail size distribution, Figure 5),
//! 3. a **hardware platform** (Skylake/Broadwell CPU models, optional
//!    GPU; Section V),
//!
//! — plus the **DeepRecSched** tuner that maximizes QPS under a p95
//! tail-latency SLA by balancing request- vs batch-level parallelism
//! and offloading large queries to the accelerator.
//!
//! # Quickstart
//!
//! ```
//! use deeprecsys::prelude::*;
//!
//! // DLRM-RMC1 served on one Skylake under production traffic.
//! let infra = DeepRecInfra::new(zoo::dlrm_rmc1());
//! let report = infra.simulate(SchedulerPolicy::cpu_only(64), 500.0, 1000, 7);
//! assert!(report.latency.p95_ms > 0.0);
//!
//! // How much load can this policy sustain under the 100 ms SLA?
//! let cap = infra.max_qps(SchedulerPolicy::cpu_only(64), 100.0, &SearchOptions::quick());
//! assert!(cap.max_qps > 0.0);
//! ```

#![warn(missing_docs)]

pub mod table;

pub use drs_core as core_types;
pub use drs_engine as engine;
pub use drs_metrics as metrics;
pub use drs_models as models;
pub use drs_nn as nn;
pub use drs_platform as platform;
pub use drs_query as query;
pub use drs_sched as sched;
pub use drs_server as server;
pub use drs_shard as shard;
pub use drs_sim as sim;
pub use drs_telemetry as telemetry;
pub use drs_tensor as tensor;

pub use drs_models::zoo;

/// Everything needed for typical experiments, in one import.
pub mod prelude {
    pub use crate::{DeepRecInfra, ServingHandle, StackSpec};
    pub use drs_core::{
        ClusterConfig, ClusterTopology, MultiModelSpec, NodeId, NodeSpec, ReportView,
        RoutingPolicy, ServingStack, TenantBreakdown, TenantSpec,
    };
    pub use drs_engine::{serve_closed_loop, InferenceEngine, ServeOptions};
    pub use drs_metrics::{
        geomean, parse_prometheus, LatencyRecorder, LatencySummary, MetricsRegistry,
    };
    pub use drs_models::{zoo, ModelConfig, ModelScale, RecModel};
    pub use drs_nn::{OpKind, OpProfiler, ShardedEmbeddingSet};
    pub use drs_platform::{CpuPlatform, GpuPlatform, InterconnectModel, ModelCost};
    pub use drs_query::{ArrivalProcess, MixedStream, QueryGenerator, SizeDistribution, TenantId};
    pub use drs_sched::{
        max_qps_under_sla, max_qps_under_sla_stack, DeepRecSched, SearchOptions, SlaTier,
        TunedConfig,
    };
    pub use drs_server::{
        BatchingConfig, Cluster, ControllerConfig, Router, Server, ServerOptions, ServerReport,
    };
    pub use drs_shard::{PlacementError, PlacementPolicy, ShardPlan};
    pub use drs_sim::{RunOptions, SchedulerPolicy, SimReport, Simulation};
    pub use drs_telemetry::{
        parse_chrome_trace, to_chrome_trace, ControlDecision, DrrRound, MetricsSink, NoopMetrics,
        NoopSink, PulseRecorder, PulseSummary, QuerySpan, RetuneTrigger, RingRecorder, Stage,
        StageBreakdown, StageStats, TraceSink,
    };
}

use drs_core::{ClusterConfig, ReportView, RoutingPolicy, ServingStack};
use drs_models::ModelConfig;
use drs_query::{ArrivalProcess, Query, QueryGenerator, SizeDistribution, Trace};
use drs_sched::{max_qps_under_sla, DeepRecSched, QpsSearchResult, SearchOptions, TunedConfig};
use drs_server::{Cluster, Server, ServerOptions};
use drs_sim::{RunOptions, SchedulerPolicy, SimReport, Simulation};

/// One model + one workload + one cluster: the unit every experiment in
/// the paper is run on (Figure 8's left half).
#[derive(Debug, Clone)]
pub struct DeepRecInfra {
    model: ModelConfig,
    size_dist: SizeDistribution,
    cluster: ClusterConfig,
}

impl DeepRecInfra {
    /// Infra for `model` with production traffic on a single Skylake.
    pub fn new(model: ModelConfig) -> Self {
        DeepRecInfra {
            model,
            size_dist: SizeDistribution::production(),
            cluster: ClusterConfig::single_skylake(),
        }
    }

    /// Replaces the cluster (e.g. Broadwell, GPU-attached, N machines).
    pub fn with_cluster(mut self, cluster: ClusterConfig) -> Self {
        self.cluster = cluster;
        self
    }

    /// Replaces the query-size distribution (Figure 12a's
    /// lognormal-vs-production comparison).
    pub fn with_size_dist(mut self, dist: SizeDistribution) -> Self {
        self.size_dist = dist;
        self
    }

    /// The model configuration.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// The cluster configuration.
    pub fn cluster(&self) -> ClusterConfig {
        self.cluster
    }

    /// The query-size distribution.
    pub fn size_dist(&self) -> SizeDistribution {
        self.size_dist
    }

    /// Runs one simulation window at a Poisson load of `rate_qps`.
    pub fn simulate(
        &self,
        policy: SchedulerPolicy,
        rate_qps: f64,
        num_queries: usize,
        seed: u64,
    ) -> SimReport {
        let sim = Simulation::new(&self.model, self.cluster, policy);
        let mut gen = QueryGenerator::new(ArrivalProcess::poisson(rate_qps), self.size_dist, seed);
        sim.run(&mut gen, RunOptions::queries(num_queries))
    }

    /// Maximum sustainable QPS under `sla_ms` for a fixed policy.
    pub fn max_qps(
        &self,
        policy: SchedulerPolicy,
        sla_ms: f64,
        opts: &SearchOptions,
    ) -> QpsSearchResult {
        let opts = opts.with_size_dist(self.size_dist);
        max_qps_under_sla(&self.model, self.cluster, policy, sla_ms, &opts)
    }

    /// The production static baseline for this cluster (fixed batch =
    /// ⌈max query size / cores⌉, no GPU).
    pub fn baseline_policy(&self) -> SchedulerPolicy {
        SchedulerPolicy::static_baseline(self.cluster.cpu.cores)
    }

    /// Runs the full DeepRecSched tuner (batch size, then GPU threshold
    /// when the cluster has an accelerator).
    pub fn tune(&self, sla_ms: f64, opts: &SearchOptions) -> TunedConfig {
        let opts = opts.with_size_dist(self.size_dist);
        DeepRecSched::new(opts).tune(&self.model, self.cluster, sla_ms)
    }

    /// The one constructor for every execution layer: builds the
    /// serving stack described by `spec` over this infra's model and
    /// cluster, serving `policy`. Replaces the three bespoke call
    /// sites (simulator constructor, server constructor, cluster
    /// constructor) for experiments that only need the common
    /// [`ReportView`] measurements.
    ///
    /// ```
    /// use deeprecsys::prelude::*;
    ///
    /// let infra = DeepRecInfra::new(zoo::ncf())
    ///     .with_cluster(ClusterConfig::cluster(2, CpuPlatform::skylake(), None));
    /// let queries: Vec<_> = QueryGenerator::new(
    ///     ArrivalProcess::poisson(400.0),
    ///     SizeDistribution::production(),
    ///     7,
    /// )
    /// .take(300)
    /// .collect();
    /// for spec in [
    ///     StackSpec::Sim,
    ///     StackSpec::Server,
    ///     StackSpec::Cluster(RoutingPolicy::PowerOfTwoChoices { d: 2 }),
    /// ] {
    ///     let stack = infra.stack(SchedulerPolicy::cpu_only(64), spec);
    ///     let report = stack.serve_queries(&queries);
    ///     assert!(report.completed > 0, "{}", stack.label());
    /// }
    /// ```
    pub fn stack(&self, policy: SchedulerPolicy, spec: StackSpec) -> ServingHandle {
        let server_opts = || ServerOptions::new(self.cluster.cpu.cores, policy);
        match spec {
            StackSpec::Sim => {
                ServingHandle::Sim(Box::new(Simulation::new(&self.model, self.cluster, policy)))
            }
            StackSpec::Server => ServingHandle::Server(Box::new(Server::new(
                &self.model,
                self.cluster.cpu,
                self.cluster.gpu,
                server_opts(),
            ))),
            StackSpec::Cluster(routing) => ServingHandle::Cluster(Box::new(Cluster::new(
                &self.model,
                self.cluster.topology(),
                routing,
                server_opts(),
            ))),
        }
    }
}

/// Which execution layer a [`DeepRecInfra::stack`] should build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StackSpec {
    /// The discrete-event simulator over the infra's cluster.
    Sim,
    /// The open-loop virtual-time server on one node of the infra's
    /// cluster (its CPU core count as the worker pool).
    Server,
    /// A router-fronted [`Cluster`] over the infra's whole topology,
    /// dispatching under the given routing policy.
    Cluster(RoutingPolicy),
}

/// A serving stack built by [`DeepRecInfra::stack`]: one of the three
/// execution layers behind the common [`ServingStack`] face, reporting
/// the shared [`SimReport`] view.
#[derive(Debug)]
pub enum ServingHandle {
    /// Discrete-event simulator.
    Sim(Box<Simulation>),
    /// Open-loop single-node server (virtual time).
    Server(Box<Server>),
    /// Router-fronted cluster of servers (virtual time).
    Cluster(Box<Cluster>),
}

impl ServingStack for ServingHandle {
    type Report = SimReport;

    fn label(&self) -> String {
        match self {
            ServingHandle::Sim(s) => s.label(),
            ServingHandle::Server(s) => s.label(),
            ServingHandle::Cluster(c) => c.label(),
        }
    }

    fn serve_queries(&self, queries: &[Query]) -> SimReport {
        match self {
            ServingHandle::Sim(s) => s.serve_queries(queries),
            ServingHandle::Server(s) => s.serve_virtual(queries).to_common(),
            ServingHandle::Cluster(c) => c.serve_virtual(queries).to_common(),
        }
    }

    fn serve_trace(&self, trace: &Trace) -> SimReport {
        match self {
            ServingHandle::Sim(s) => ServingStack::serve_trace(s.as_ref(), trace),
            ServingHandle::Server(s) => s.serve_trace(trace).to_common(),
            ServingHandle::Cluster(c) => c.serve_trace(trace).to_common(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_models::zoo;

    #[test]
    fn infra_builder_round_trip() {
        let infra = DeepRecInfra::new(zoo::ncf())
            .with_cluster(ClusterConfig::skylake_with_gpu())
            .with_size_dist(SizeDistribution::lognormal_matched());
        assert_eq!(infra.model().name, "NCF");
        assert!(infra.cluster().gpu.is_some());
        assert_eq!(infra.size_dist().name(), "lognormal");
    }

    #[test]
    fn simulate_and_search_work_together() {
        let infra = DeepRecInfra::new(zoo::dlrm_rmc1());
        let report = infra.simulate(infra.baseline_policy(), 300.0, 600, 3);
        assert!(report.completed > 0);
        let cap = infra.max_qps(infra.baseline_policy(), 100.0, &SearchOptions::quick());
        assert!(cap.max_qps > 0.0);
    }

    #[test]
    fn baseline_matches_cluster_cores() {
        let skl = DeepRecInfra::new(zoo::ncf());
        assert_eq!(skl.baseline_policy().max_batch, 25);
        let bdw = DeepRecInfra::new(zoo::ncf()).with_cluster(ClusterConfig::cluster(
            1,
            drs_platform::CpuPlatform::broadwell(),
            None,
        ));
        assert_eq!(bdw.baseline_policy().max_batch, 36);
    }
}
