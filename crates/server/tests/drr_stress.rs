//! Concurrency stress gate for the shared-pool DRR arbiter.
//!
//! Drives the real multi-tenant path (`Server::serve_real_multi`) —
//! the deficit-round-robin arbiter feeding one shared engine pool —
//! with more workers than physical cores and compressed pacing, and
//! asserts the completion set is identical across repeated runs.
//! Per-query *latencies* are wall-clock and legitimately vary; which
//! queries complete (all of them, exactly once) must not.

use drs_core::{MultiModelSpec, SchedulerPolicy, TenantSpec};
use drs_models::{zoo, ModelScale, RecModel};
use drs_platform::CpuPlatform;
use drs_query::{ArrivalProcess, MixedStream, QueryGenerator, SizeDistribution};
use drs_server::{Server, ServerOptions};
use drs_telemetry::RingRecorder;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::sync::Arc;

fn tiny(cfg: &drs_models::ModelConfig, seed: u64) -> Arc<RecModel> {
    let mut rng = StdRng::seed_from_u64(seed);
    Arc::new(RecModel::instantiate(cfg, ModelScale::tiny(), &mut rng))
}

fn mixed(rates: &[f64], seed: u64, n: usize) -> Vec<drs_query::Query> {
    MixedStream::new(
        rates
            .iter()
            .enumerate()
            .map(|(k, &r)| {
                QueryGenerator::new(
                    ArrivalProcess::poisson(r),
                    SizeDistribution::production(),
                    seed.wrapping_add(k as u64 * 0x9E37),
                )
            })
            .collect(),
    )
    .take(n)
    .collect()
}

/// Which query ids the traced run completed.
fn completion_set(rec: &RingRecorder) -> BTreeSet<u64> {
    assert_eq!(rec.dropped(), 0, "ring sized to retain the whole run");
    let mut seen = BTreeSet::new();
    for s in rec.spans() {
        assert!(
            seen.insert(s.query_id),
            "query {} completed twice",
            s.query_id
        );
    }
    seen
}

#[test]
fn drr_under_oversubscription_completes_every_query_each_run() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let (cfg_a, cfg_b, cfg_c) = (zoo::ncf(), zoo::wide_and_deep(), zoo::dlrm_rmc1());
    // Unequal DRR weights: the arbiter must interleave three lanes of
    // different priority on one oversubscribed pool.
    let spec = MultiModelSpec::new(vec![
        TenantSpec::new(cfg_a.clone(), SchedulerPolicy::cpu_only(8)),
        TenantSpec::new(cfg_b.clone(), SchedulerPolicy::cpu_only(8)).with_weight(2),
        TenantSpec::new(cfg_c.clone(), SchedulerPolicy::cpu_only(8)).with_weight(3),
    ]);
    let mut opts = ServerOptions::new(cores * 2, SchedulerPolicy::cpu_only(8));
    opts.warmup_frac = 0.0;
    // Compress pacing so the stress run finishes quickly; forward
    // passes are physical, so workers still contend for real cores.
    opts.time_scale = 64.0;
    let server = Server::new_multi(&spec, CpuPlatform::skylake(), None, opts);
    let models = vec![tiny(&cfg_a, 31), tiny(&cfg_b, 32), tiny(&cfg_c, 33)];
    let queries = mixed(&[900.0, 600.0, 300.0], 17, 240);
    let all_ids: BTreeSet<u64> = queries.iter().map(|q| q.id).collect();

    let mut baseline = None;
    for run in 0..3 {
        let mut rec = RingRecorder::new(queries.len());
        let report = server.serve_real_multi_traced(models.clone(), &queries, &mut rec);
        assert_eq!(
            report.completed,
            queries.len() as u64,
            "run {run}: the arbiter must drain every lane"
        );
        let set = completion_set(&rec);
        assert_eq!(
            set, all_ids,
            "run {run}: completion set must cover the workload"
        );
        match &baseline {
            None => baseline = Some(set),
            Some(b) => assert_eq!(&set, b, "run {run}: completion set diverged across runs"),
        }
    }
}
