//! Multi-tenant serving acceptance: several zoo models co-located on
//! one shared engine pool, each with its own batching queue, knobs,
//! controller, and SLA tier (PAPER §III's per-model tuning result).

use drs_core::{
    ClusterTopology, MultiModelSpec, RoutingPolicy, SchedulerPolicy, ServingStack, TenantSpec,
};
use drs_models::{zoo, ModelScale, RecModel};
use drs_platform::CpuPlatform;
use drs_query::{ArrivalProcess, MixedStream, QueryGenerator, SizeDistribution, TenantId, Trace};
use drs_server::{Cluster, ControllerConfig, Server, ServerOptions, ServerReport};
use std::sync::Arc;

fn mixed(rates: &[f64], seed: u64, n: usize) -> Vec<drs_query::Query> {
    MixedStream::new(
        rates
            .iter()
            .enumerate()
            .map(|(k, &r)| {
                QueryGenerator::new(
                    ArrivalProcess::poisson(r),
                    SizeDistribution::production(),
                    seed.wrapping_add(k as u64 * 0x9E37),
                )
            })
            .collect(),
    )
    .take(n)
    .collect()
}

fn co_locate(batch_a: u32, batch_b: u32) -> Server {
    let spec = MultiModelSpec::new(vec![
        TenantSpec::new(zoo::dlrm_rmc1(), SchedulerPolicy::cpu_only(batch_a)),
        TenantSpec::new(zoo::wide_and_deep(), SchedulerPolicy::cpu_only(batch_b)),
    ]);
    Server::new_multi(
        &spec,
        CpuPlatform::skylake(),
        None,
        ServerOptions::new(40, SchedulerPolicy::cpu_only(batch_a)),
    )
}

/// The co-location headline (the paper's per-model-knobs result,
/// reproduced by `fig_multitenant` at full scale): an embedding-heavy
/// model that needs a big batch for capacity shares the node with a
/// compute-heavy model whose tight tier a big batch violates — so the
/// per-tenant pair beats every global knob on aggregate SLA-bounded
/// QPS.
#[test]
fn per_tenant_knobs_beat_every_global_knob() {
    let queries = mixed(&[900.0, 400.0], 11, 16_000);
    let agg = |r: &ServerReport| -> f64 {
        r.tenant_breakdowns
            .iter()
            .map(|b| b.sla_bounded_qps())
            .sum()
    };
    let serve = |a: u32, b: u32| co_locate(a, b).serve_virtual(&queries);

    let per_tenant = serve(256, 64);
    assert!(
        per_tenant.tenant_breakdowns.iter().all(|b| b.met_sla()),
        "per-tenant knobs serve both tiers: {:?}",
        per_tenant
            .tenant_breakdowns
            .iter()
            .map(|b| (b.latency.p95_ms, b.sla_ms))
            .collect::<Vec<_>>()
    );
    for g in [64, 256] {
        let global = serve(g, g);
        assert!(
            agg(&per_tenant) > 1.2 * agg(&global),
            "per-tenant {} must beat global {g}/{g} {} by a clear margin",
            agg(&per_tenant),
            agg(&global)
        );
    }
}

/// Deficit round-robin on the shared pool: a saturating tenant's
/// backlog must not starve a light tenant sharing the node.
#[test]
fn heavy_tenant_cannot_starve_light_tenant() {
    // Both tenants serve RMC1; tenant 0 offers ~3x one node's
    // capacity at this knob, tenant 1 a sliver.
    let spec = MultiModelSpec::new(vec![
        TenantSpec::new(zoo::dlrm_rmc1(), SchedulerPolicy::cpu_only(64)),
        TenantSpec::new(zoo::dlrm_rmc1(), SchedulerPolicy::cpu_only(64)),
    ]);
    let mut opts = ServerOptions::new(40, SchedulerPolicy::cpu_only(64));
    opts.warmup_frac = 0.0;
    let server = Server::new_multi(&spec, CpuPlatform::skylake(), None, opts);
    let queries = mixed(&[3_000.0, 100.0], 7, 10_000);
    let light_offered = queries.iter().filter(|q| q.tenant == TenantId(1)).count() as u64;
    let r = server.serve_virtual(&queries);
    let (heavy, light) = (&r.tenant_breakdowns[0], &r.tenant_breakdowns[1]);
    assert_eq!(
        light.completed, light_offered,
        "every light-tenant query completes"
    );
    assert!(
        heavy.latency.p95_ms > 1_000.0,
        "the heavy tenant is genuinely overloaded (p95 {} ms)",
        heavy.latency.p95_ms
    );
    assert!(
        light.latency.p95_ms < 100.0,
        "the light tenant rides its own lane, not the heavy backlog \
         (p95 {} ms vs heavy {} ms)",
        light.latency.p95_ms,
        heavy.latency.p95_ms
    );
}

/// Fair-share weights bite under contention: draining the same burst,
/// the weight-2 tenant earns two-thirds of the pool while both are
/// backlogged, so its queries clear markedly sooner than the
/// weight-1 tenant's. (In virtual time *every* query completes
/// eventually — the split shows up in drain latency, not counts.)
#[test]
fn drr_weights_split_a_saturated_pool() {
    let spec = MultiModelSpec::new(vec![
        TenantSpec::new(zoo::dlrm_rmc1(), SchedulerPolicy::cpu_only(64)).with_weight(2),
        TenantSpec::new(zoo::dlrm_rmc1(), SchedulerPolicy::cpu_only(64)),
    ]);
    let mut opts = ServerOptions::new(40, SchedulerPolicy::cpu_only(64));
    opts.warmup_frac = 0.0;
    let server = Server::new_multi(&spec, CpuPlatform::skylake(), None, opts);
    // A dead-heat burst: 1500 queries per tenant, interleaved arrivals
    // a microsecond apart — the arbiter's split is the only thing
    // deciding whose backlog drains first.
    let triples: Vec<(f64, u32, TenantId)> = (0..3_000)
        .map(|i| (i as f64 * 1e-6, 100, TenantId((i % 2) as u32)))
        .collect();
    let trace = Trace::from_tagged(&triples);
    let r = server.serve_trace(&trace);
    let (w2, w1) = (&r.tenant_breakdowns[0], &r.tenant_breakdowns[1]);
    assert_eq!(w2.completed, 1_500);
    assert_eq!(w1.completed, 1_500);
    let ratio = w1.latency.mean_ms / w2.latency.mean_ms;
    assert!(
        (1.3..=2.2).contains(&ratio),
        "weight-1 tenant should wait ~1.67x the weight-2 tenant's mean drain \
         (uniform-drain model), got {ratio:.2} ({} ms vs {} ms)",
        w1.latency.mean_ms,
        w2.latency.mean_ms
    );
}

/// Per-tenant controllers are genuinely independent: a tenant that
/// receives no traffic keeps its ladder-base policy while the active
/// tenant's controller climbs away from it.
#[test]
fn controllers_tune_per_tenant_independently() {
    let spec = MultiModelSpec::new(vec![
        TenantSpec::new(zoo::dlrm_rmc1(), SchedulerPolicy::cpu_only(1)),
        TenantSpec::new(zoo::wide_and_deep(), SchedulerPolicy::cpu_only(1)),
    ]);
    let opts = ServerOptions::new(40, SchedulerPolicy::cpu_only(1))
        .with_controller(ControllerConfig::smoke());
    let server = Server::new_multi(&spec, CpuPlatform::skylake(), None, opts);
    // Every query belongs to tenant 0; tenant 1's lane never sees a
    // completion, so its control windows never close.
    let queries: Vec<_> = QueryGenerator::new(
        ArrivalProcess::poisson(400.0),
        SizeDistribution::production(),
        5,
    )
    .take(2_000)
    .collect();
    let r = server.serve_virtual(&queries);
    assert_eq!(r.tenant_breakdowns[1].completed, 0);
    assert!(
        r.tenant_final_policies[0].max_batch > 1,
        "the active tenant's controller climbed: {:?}",
        r.tenant_final_policies[0]
    );
    assert_eq!(
        r.tenant_final_policies[1].max_batch, 1,
        "the idle tenant's controller never moved"
    );
}

/// Multi-tenant virtual serving is byte-identical per seed, with
/// per-tenant controllers engaged — the determinism contract every
/// A/B comparison rests on.
#[test]
fn multi_tenant_serving_is_byte_identical_per_seed() {
    let run = |seed: u64| -> String {
        let spec = MultiModelSpec::new(vec![
            TenantSpec::new(zoo::dlrm_rmc1(), SchedulerPolicy::cpu_only(1)).with_weight(2),
            TenantSpec::new(zoo::ncf(), SchedulerPolicy::cpu_only(1)),
        ]);
        let mut opts = ServerOptions::new(40, SchedulerPolicy::cpu_only(1))
            .with_controller(ControllerConfig::smoke());
        opts.seed = seed;
        let server = Server::new_multi(&spec, CpuPlatform::skylake(), None, opts);
        let queries = mixed(&[600.0, 300.0], seed, 1_500);
        format!("{:?}", server.serve_virtual(&queries))
    };
    assert_eq!(run(3), run(3), "same seed must reproduce");
    assert_ne!(run(3), run(4), "different seeds must differ");
}

/// A mixed-tenant cluster spreads both tenants across nodes and still
/// reports per-tenant slices; replaying the recorded trace through the
/// `ServingStack` face reproduces the run exactly.
#[test]
fn cluster_serves_tenants_and_replays_traces() {
    let spec = MultiModelSpec::new(vec![
        TenantSpec::new(zoo::dlrm_rmc1(), SchedulerPolicy::cpu_only(128)),
        TenantSpec::new(zoo::ncf(), SchedulerPolicy::cpu_only(64)),
    ]);
    let mut opts = ServerOptions::new(40, SchedulerPolicy::cpu_only(128));
    opts.seed = 9;
    let cluster = Cluster::new_multi(
        &spec,
        ClusterTopology::uniform(2, CpuPlatform::skylake(), None),
        RoutingPolicy::PowerOfTwoChoices { d: 2 },
        opts,
    );
    assert_eq!(cluster.label(), "cluster[po2c x2 multi x2]");
    let queries = mixed(&[700.0, 350.0], 21, 2_000);
    let direct = cluster.serve_virtual(&queries);
    assert_eq!(direct.tenant_breakdowns.len(), 2);
    let total: u64 = direct.tenant_breakdowns.iter().map(|b| b.completed).sum();
    assert_eq!(total, direct.completed, "breakdowns partition the window");
    assert_eq!(direct.node_queries.iter().sum::<u64>(), 2_000);

    // Trace replay (tenant tags survive the round-trip).
    let trace = Trace::record(queries.iter().copied(), queries.len());
    let mut buf = Vec::new();
    trace.write(&mut buf).unwrap();
    let parsed = Trace::read(buf.as_slice()).unwrap();
    let replayed = cluster.serve_trace(&parsed);
    assert_eq!(direct.completed, replayed.completed);
    assert_eq!(
        direct.tenant_breakdowns[1].completed,
        replayed.tenant_breakdowns[1].completed
    );
}

/// Multi-tenant real serving end-to-end: one shared
/// [`drs_engine::InferenceEngine`] pool executes both tenants' lanes
/// (arbitrated by the same deficit round-robin as virtual time), with
/// each tenant's own instantiated model behind the pool — and the
/// report still partitions per tenant.
#[test]
fn real_engine_serves_two_tenants_on_one_pool() {
    let (cfg_a, cfg_b) = (zoo::ncf(), zoo::wide_and_deep());
    let spec = MultiModelSpec::new(vec![
        TenantSpec::new(cfg_a.clone(), SchedulerPolicy::cpu_only(16)),
        TenantSpec::new(cfg_b.clone(), SchedulerPolicy::cpu_only(16)).with_weight(2),
    ]);
    let mut opts = ServerOptions::new(2, SchedulerPolicy::cpu_only(16));
    opts.warmup_frac = 0.0;
    opts.time_scale = 4.0;
    let server = Server::new_multi(&spec, CpuPlatform::skylake(), None, opts);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let models = vec![
        Arc::new(RecModel::instantiate(&cfg_a, ModelScale::tiny(), &mut rng)),
        Arc::new(RecModel::instantiate(&cfg_b, ModelScale::tiny(), &mut rng)),
    ];
    let queries = mixed(&[800.0, 500.0], 3, 80);
    let per_tenant: Vec<u64> = (0..2)
        .map(|k| queries.iter().filter(|q| q.tenant == TenantId(k)).count() as u64)
        .collect();
    let r = server.serve_real_multi(models, &queries);
    assert_eq!(r.completed, 80, "every query completes on the real pool");
    assert_eq!(r.tenant_breakdowns.len(), 2);
    for (k, b) in r.tenant_breakdowns.iter().enumerate() {
        assert_eq!(
            b.completed, per_tenant[k],
            "tenant {k} completes exactly its own stream"
        );
    }
    assert!(r.latency.p95_ms > 0.0, "real latencies are measured");
}

/// One model per tenant is a hard contract on the real path: a
/// single-model call against a two-tenant server is a configuration
/// error, not a silent mis-serve.
#[test]
#[should_panic(expected = "one model per tenant")]
fn real_engine_rejects_model_count_mismatch() {
    let cfg = zoo::ncf();
    let spec = MultiModelSpec::new(vec![
        TenantSpec::new(cfg.clone(), SchedulerPolicy::cpu_only(16)),
        TenantSpec::new(cfg.clone(), SchedulerPolicy::cpu_only(16)),
    ]);
    let server = Server::new_multi(
        &spec,
        CpuPlatform::skylake(),
        None,
        ServerOptions::new(2, SchedulerPolicy::cpu_only(16)),
    );
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let model = Arc::new(RecModel::instantiate(&cfg, ModelScale::tiny(), &mut rng));
    let queries = mixed(&[100.0, 100.0], 1, 20);
    let _ = server.serve_real(model, &queries);
}

/// Queries tagged for a tenant the spec does not know are a
/// configuration error, not silent misattribution.
#[test]
#[should_panic(expected = "tagged t1 but the stack serves 1 tenant")]
fn unknown_tenant_rejected() {
    let server = Server::new(
        &zoo::ncf(),
        CpuPlatform::skylake(),
        None,
        ServerOptions::new(4, SchedulerPolicy::cpu_only(16)),
    );
    let queries = mixed(&[100.0, 100.0], 1, 50);
    let _ = server.serve_virtual(&queries);
}
