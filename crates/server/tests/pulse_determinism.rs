//! Export-determinism contract for the fleet-pulse metrics layer:
//! re-serving the same seed must reproduce the JSONL dump and the
//! Prometheus exposition **byte for byte** on every runtime shape —
//! simulator, virtual cluster, and multi-tenant server — and the
//! exposition must survive a round trip through the in-repo parser
//! unchanged. Diffing two runs' exports is the cheapest fleet-wide
//! regression check the repo has; these tests keep it trustworthy.

use drs_core::{
    ClusterConfig, ClusterTopology, MultiModelSpec, NodeSpec, RoutingPolicy, SchedulerPolicy,
    TenantSpec,
};
use drs_metrics::parse_prometheus;
use drs_models::zoo;
use drs_platform::{CpuPlatform, GpuPlatform};
use drs_query::{ArrivalProcess, MixedStream, QueryGenerator, SizeDistribution};
use drs_server::{Cluster, ControllerConfig, Server, ServerOptions};
use drs_sim::{RunOptions, Simulation};
use drs_telemetry::PulseRecorder;

/// Serves one pulsed window and returns `(jsonl, prometheus,
/// decisions_jsonl)` for byte comparison.
fn exports(pulse: &PulseRecorder) -> (String, String, String) {
    (
        pulse.registry().to_jsonl(),
        pulse.registry().to_prometheus(),
        pulse.decisions_jsonl(),
    )
}

fn sim_exports(seed: u64) -> (String, String, String) {
    let sim = Simulation::new(
        &zoo::dlrm_rmc1(),
        ClusterConfig::single_skylake(),
        SchedulerPolicy::cpu_only(64),
    );
    let mut gen = QueryGenerator::new(
        ArrivalProcess::poisson(400.0),
        SizeDistribution::production(),
        seed,
    );
    let mut pulse = PulseRecorder::new(5_000_000);
    let report = sim.run_pulsed(&mut gen, RunOptions::queries(600), &mut pulse);
    assert!(report.completed > 0);
    assert!(pulse.registry().samples().len() > 10, "sampling must tick");
    exports(&pulse)
}

fn cluster_exports(seed: u64) -> (String, String, String) {
    let queries: Vec<_> = QueryGenerator::new(
        ArrivalProcess::diurnal(500.0, 0.4, 4.0),
        SizeDistribution::production(),
        seed,
    )
    .take(700)
    .collect();
    let mut opts = ServerOptions::new(24, SchedulerPolicy::with_gpu(8, 300))
        .with_controller(ControllerConfig::smoke());
    opts.seed = seed;
    let cluster = Cluster::new(
        &zoo::dlrm_rmc1(),
        ClusterTopology::new(vec![
            NodeSpec::with_gpu(CpuPlatform::skylake(), GpuPlatform::gtx_1080ti()),
            NodeSpec::cpu_only(CpuPlatform::broadwell()),
        ]),
        RoutingPolicy::PowerOfTwoChoices { d: 2 },
        opts,
    );
    let mut pulse = PulseRecorder::new(4_000_000);
    let report = cluster.serve_virtual_pulsed(&queries, &mut pulse);
    assert!(report.completed > 0);
    exports(&pulse)
}

fn multitenant_exports(seed: u64) -> (String, String, String) {
    let spec = MultiModelSpec::new(vec![
        TenantSpec::new(zoo::dlrm_rmc1(), SchedulerPolicy::cpu_only(128)),
        TenantSpec::new(zoo::wide_and_deep(), SchedulerPolicy::cpu_only(64)).with_weight(2),
    ]);
    let server = Server::new_multi(
        &spec,
        CpuPlatform::skylake(),
        None,
        ServerOptions::new(24, SchedulerPolicy::cpu_only(128)),
    );
    let queries: Vec<_> = MixedStream::new(vec![
        QueryGenerator::new(
            ArrivalProcess::poisson(500.0),
            SizeDistribution::production(),
            seed,
        ),
        QueryGenerator::new(
            ArrivalProcess::poisson(250.0),
            SizeDistribution::production(),
            seed ^ 0x5bd1_e995,
        ),
    ])
    .take(600)
    .collect();
    let mut pulse = PulseRecorder::new(3_000_000);
    let report = server.serve_virtual_pulsed(&queries, &mut pulse);
    assert!(report.completed > 0);
    assert!(
        !pulse.drr_rounds().is_empty(),
        "two lanes must log DRR grants"
    );
    exports(&pulse)
}

fn assert_byte_identical(shape: &str, a: (String, String, String), b: (String, String, String)) {
    assert_eq!(a.0, b.0, "{shape}: JSONL must be byte-identical per seed");
    assert_eq!(
        a.1, b.1,
        "{shape}: Prometheus must be byte-identical per seed"
    );
    assert_eq!(
        a.2, b.2,
        "{shape}: decision log must be byte-identical per seed"
    );
    assert!(
        !a.0.is_empty() && !a.1.is_empty(),
        "{shape}: exports non-empty"
    );
}

#[test]
fn sim_exports_are_byte_identical_per_seed() {
    assert_byte_identical("sim", sim_exports(11), sim_exports(11));
}

#[test]
fn cluster_exports_are_byte_identical_per_seed() {
    assert_byte_identical("cluster", cluster_exports(7), cluster_exports(7));
}

#[test]
fn multitenant_exports_are_byte_identical_per_seed() {
    assert_byte_identical(
        "multi-tenant",
        multitenant_exports(3),
        multitenant_exports(3),
    );
}

/// The Prometheus exposition parses with the in-repo parser and
/// re-renders to the exact input bytes on every shape — nothing about
/// the format is lost (or invented) in transit.
#[test]
fn prometheus_round_trips_losslessly() {
    for (shape, (_, prom, _)) in [
        ("sim", sim_exports(19)),
        ("cluster", cluster_exports(19)),
        ("multi-tenant", multitenant_exports(19)),
    ] {
        let parsed = parse_prometheus(&prom)
            .unwrap_or_else(|e| panic!("{shape}: exposition must parse: {e}"));
        assert_eq!(
            parsed.render(),
            prom,
            "{shape}: render(parse(x)) must reproduce x byte for byte"
        );
        assert!(parsed.points() > 0, "{shape}: exposition carries samples");
    }
}

/// Different seeds must actually produce different series — otherwise
/// the byte-identity assertions above would pass vacuously.
#[test]
fn different_seeds_diverge() {
    assert_ne!(
        cluster_exports(7).0,
        cluster_exports(8).0,
        "a seed change must perturb the sampled series"
    );
}
