//! Property contracts of the dynamic batching queue's retune path.
//!
//! Items-conservation across `reform` is already pinned by the unit
//! tests in `batcher.rs`; what they do not pin is *ordering*: a retune
//! repack must keep every query's items in the order they were queued
//! — per-query FIFO — or a re-batched backlog could complete a query's
//! later chunk before an earlier one and skew its latency accounting.

use drs_server::{Batch, BatchQueue};
use proptest::prelude::*;

/// Flattens batches into the per-item sequence of owning query ids —
/// the total order the pool will serve items in.
fn item_sequence(batches: &[Batch]) -> Vec<u64> {
    batches
        .iter()
        .flat_map(|b| &b.segments)
        .flat_map(|s| std::iter::repeat_n(s.query_id, s.items as usize))
        .collect()
}

proptest! {
    /// Reforming a backlog at any new batch size is a pure repack: the
    /// item-level sequence (which query each served item belongs to,
    /// in order) is exactly the queued sequence. This subsumes both
    /// per-query segment order and cross-query FIFO.
    #[test]
    fn reform_preserves_per_query_item_order(
        sizes in prop::collection::vec(1u32..600, 1..40),
        old_max in 1u32..200,
        new_max in 1u32..200,
    ) {
        let mut q = BatchQueue::new(old_max, 1_000_000);
        let mut queued = Vec::new();
        for (i, &s) in sizes.iter().enumerate() {
            q.push(i as u64 * 10, i as u64, s, &mut queued);
        }
        q.flush_all(&mut queued);
        let before = item_sequence(&queued);

        let mut reformed = Vec::new();
        q.set_max_batch(new_max, &mut reformed);
        prop_assert!(reformed.is_empty(), "nothing open after flush_all");
        q.reform(queued, &mut reformed);

        prop_assert_eq!(item_sequence(&reformed), before);
        // And the repack honours the new knob.
        prop_assert!(reformed.iter().all(|b| b.items <= new_max));
    }

    /// Batch ids stay unique across the original formation and the
    /// repack (the engine keys in-flight requests by them).
    #[test]
    fn reform_issues_fresh_unique_ids(
        sizes in prop::collection::vec(1u32..300, 1..20),
        new_max in 1u32..100,
    ) {
        let mut q = BatchQueue::new(64, 1_000_000);
        let mut queued = Vec::new();
        for (i, &s) in sizes.iter().enumerate() {
            q.push(i as u64, i as u64, s, &mut queued);
        }
        q.flush_all(&mut queued);
        let old_ids: Vec<u64> = queued.iter().map(|b| b.id).collect();
        let mut reformed = Vec::new();
        q.set_max_batch(new_max, &mut reformed);
        q.reform(queued, &mut reformed);
        let mut ids: Vec<u64> = old_ids
            .iter()
            .copied()
            .chain(reformed.iter().map(|b| b.id))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), old_ids.len() + reformed.len());
    }
}
