//! Span well-formedness: across seeds, loads, and policies, every
//! recorded query span is a lossless decomposition of the latency the
//! report records — stages monotone (chronological by schema index),
//! no gaps, durations summing to the end-to-end latency exactly — and
//! the Chrome-trace export round-trips through its own parser.

use drs_core::MultiModelSpec;
use drs_core::{ClusterTopology, NodeSpec, RoutingPolicy, SchedulerPolicy, TenantSpec};
use drs_models::zoo;
use drs_platform::{CpuPlatform, GpuPlatform, InterconnectModel};
use drs_query::{ArrivalProcess, MixedStream, QueryGenerator, SizeDistribution};
use drs_server::{Cluster, Server, ServerOptions};
use drs_shard::{PlacementPolicy, ShardPlan};
use drs_sim::Simulation;
use drs_telemetry::{parse_chrome_trace, to_chrome_trace, QuerySpan, RingRecorder, Stage};
use proptest::prelude::*;

fn queries(rate: f64, n: usize, seed: u64) -> Vec<drs_query::Query> {
    QueryGenerator::new(
        ArrivalProcess::poisson(rate),
        SizeDistribution::production(),
        seed,
    )
    .take(n)
    .collect()
}

/// The shared well-formedness contract: every span validates, and the
/// recorded span stream mirrors the report's `latencies_ms` bit for
/// bit, entry for entry (both are appended at completion).
fn assert_spans_decompose(rec: &RingRecorder, latencies_ms: &[f64], completed: u64) {
    assert_eq!(rec.dropped(), 0, "ring sized to the run");
    assert_eq!(rec.recorded(), completed);
    let spans: Vec<QuerySpan> = rec.spans().copied().collect();
    assert_eq!(spans.len(), latencies_ms.len());
    for (span, &ms) in spans.iter().zip(latencies_ms) {
        span.validate().expect("well-formed span");
        assert_eq!(
            span.latency_ms().to_bits(),
            ms.to_bits(),
            "query {}: span decomposition must equal the recorded latency",
            span.query_id
        );
        // Chronological schema: a stage can only consume time the
        // earlier stages left — checked implicitly by the exact-sum
        // validate() plus non-negative (u64) durations.
        assert!(span.end_ns >= span.arrival_ns);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Virtual single-node serving, GPU offload enabled: spans hold
    /// across arrival seeds and offload thresholds.
    #[test]
    fn server_spans_well_formed(seed in 0u64..500, threshold_idx in 0usize..3) {
        let threshold = [0u32, 64, 10_000][threshold_idx];
        let qs = queries(250.0, 120, seed);
        let server = Server::new(
            &zoo::dlrm_rmc1(),
            CpuPlatform::skylake(),
            Some(GpuPlatform::gtx_1080ti()),
            ServerOptions::new(8, SchedulerPolicy::with_gpu(64, threshold)),
        );
        let mut rec = RingRecorder::new(qs.len());
        let report = server.serve_virtual_traced(&qs, &mut rec);
        assert_spans_decompose(&rec, &report.latencies_ms, report.completed);
    }

    /// The simulator emits the same schema under the same contract.
    #[test]
    fn sim_spans_well_formed(seed in 0u64..500) {
        let qs = queries(300.0, 120, seed);
        let sim = Simulation::new(
            &zoo::dlrm_rmc1(),
            drs_core::ClusterConfig::skylake_with_gpu(),
            SchedulerPolicy::with_gpu(64, 128),
        );
        let mut rec = RingRecorder::new(qs.len());
        let report = sim.serve_queries_traced(&qs, &mut rec);
        assert_spans_decompose(&rec, &report.latencies_ms, report.completed);
    }
}

#[test]
fn multi_tenant_spans_attribute_to_their_tenants() {
    let spec = MultiModelSpec::new(vec![
        TenantSpec::new(zoo::ncf(), SchedulerPolicy::with_gpu(32, 0)),
        TenantSpec::new(zoo::wide_and_deep(), SchedulerPolicy::cpu_only(32)).with_weight(2),
    ]);
    let server = Server::new_multi(
        &spec,
        CpuPlatform::skylake(),
        Some(GpuPlatform::gtx_1080ti()),
        ServerOptions::new(4, SchedulerPolicy::with_gpu(32, 0)),
    );
    let qs: Vec<_> = MixedStream::new(vec![
        QueryGenerator::new(
            ArrivalProcess::poisson(400.0),
            SizeDistribution::production(),
            11,
        ),
        QueryGenerator::new(
            ArrivalProcess::poisson(200.0),
            SizeDistribution::production(),
            12,
        ),
    ])
    .take(200)
    .collect();
    let mut rec = RingRecorder::new(qs.len());
    let report = server.serve_virtual_traced(&qs, &mut rec);
    assert_spans_decompose(&rec, &report.latencies_ms, report.completed);
    let breakdown = report.stage_breakdown.as_ref().expect("traced run");
    assert_eq!(breakdown.tenants.len(), 2, "both tenants recorded spans");
    // Tenant 0 offloads everything: its service must be all
    // engine-service + queue-wait, never batch residency.
    assert_eq!(
        breakdown.tenants[0][Stage::BatchResidency.index()].mean_ms,
        0.0
    );
    assert!(breakdown.tenants[0][Stage::EngineService.index()].mean_ms > 0.0);
    // Tenant 1 is CPU-path: coalesce + residency + service, no FIFO.
    assert_eq!(breakdown.tenants[1][Stage::QueueWait.index()].mean_ms, 0.0);
}

#[test]
fn sharded_spans_split_exchange_from_dense_tail() {
    let cfg = zoo::dlrm_rmc2();
    let topo = ClusterTopology::new(vec![
        NodeSpec::cpu_only(CpuPlatform::skylake())
            .with_mem_bytes(16 << 30);
        2
    ]);
    let plan = ShardPlan::place(&cfg, &topo, PlacementPolicy::LookupBalanced).unwrap();
    let cluster = Cluster::new_sharded(
        &cfg,
        topo,
        RoutingPolicy::ShardAware,
        plan,
        InterconnectModel::datacenter_100g(),
        ServerOptions::new(40, SchedulerPolicy::cpu_only(64)),
    );
    let qs = queries(400.0, 300, 7);
    let mut rec = RingRecorder::new(qs.len());
    let report = cluster.serve_virtual_traced(&qs, &mut rec);
    assert_spans_decompose(&rec, &report.latencies_ms, report.completed);
    let breakdown = report.stage_breakdown.as_ref().expect("traced run");
    assert!(
        breakdown.stage(Stage::ShardExchange).mean_ms > 0.0,
        "a 2-node shard pays the fabric"
    );
    assert!(
        breakdown.stage(Stage::DenseTail).mean_ms > 0.0,
        "the merge home pays the dense tail"
    );
    for span in rec.spans() {
        let merge = span.stage_ns(Stage::ShardExchange) + span.stage_ns(Stage::DenseTail);
        assert!(merge > 0, "every sharded query merges");
    }
}

#[test]
fn chrome_trace_export_reparses_losslessly() {
    let qs = queries(300.0, 150, 21);
    let server = Server::new(
        &zoo::dlrm_rmc1(),
        CpuPlatform::skylake(),
        Some(GpuPlatform::gtx_1080ti()),
        ServerOptions::new(8, SchedulerPolicy::with_gpu(64, 128)),
    );
    let mut rec = RingRecorder::new(qs.len());
    let report = server.serve_virtual_traced(&qs, &mut rec);
    let spans: Vec<QuerySpan> = rec.spans().copied().collect();
    let json = to_chrome_trace(&spans);
    let events = parse_chrome_trace(&json).expect("exporter output parses");
    let expected: usize = spans
        .iter()
        .map(|s| s.stages.iter().filter(|&&ns| ns > 0).count())
        .sum();
    assert_eq!(events.len(), expected, "one X event per non-empty stage");
    assert!(
        events.len() as u64 >= report.completed,
        "spans have >= 1 stage"
    );
    for ev in &events {
        assert!(Stage::from_name(&ev.name).is_some(), "schema names only");
        assert!(ev.dur_us > 0.0);
    }
}

/// A no-op sink leaves the report without a breakdown, and a traced
/// rerun of the same stream changes no measurement.
#[test]
fn tracing_is_measurement_invariant() {
    let qs = queries(300.0, 150, 33);
    let server = Server::new(
        &zoo::dlrm_rmc1(),
        CpuPlatform::skylake(),
        Some(GpuPlatform::gtx_1080ti()),
        ServerOptions::new(8, SchedulerPolicy::with_gpu(64, 128)),
    );
    let untraced = server.serve_virtual(&qs);
    assert!(untraced.stage_breakdown.is_none());
    let mut rec = RingRecorder::new(qs.len());
    let traced = server.serve_virtual_traced(&qs, &mut rec);
    assert!(traced.stage_breakdown.is_some());
    assert_eq!(traced.latencies_ms, untraced.latencies_ms);
    assert_eq!(traced.completed, untraced.completed);
    assert_eq!(
        traced.latency.p95_ms.to_bits(),
        untraced.latency.p95_ms.to_bits()
    );
}
