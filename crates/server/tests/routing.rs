//! Routing-policy acceptance: the front-end router's dispatch choice
//! must show up in the tail, reproducing the scale-out literature's
//! headline (adaptive routing beats oblivious round-robin once node
//! capacities diverge).

use drs_core::{
    ClusterTopology, NodeId, NodeSpec, ReportView, RoutingPolicy, SchedulerPolicy, ServingStack,
    TenantId,
};
use drs_models::zoo;
use drs_platform::{CpuPlatform, GpuPlatform};
use drs_query::{ArrivalProcess, QueryGenerator, SizeDistribution};
use drs_server::{Cluster, Router, ServerOptions};

fn serve(
    topology: ClusterTopology,
    routing: RoutingPolicy,
    load: f64,
    n: usize,
) -> (f64, Vec<u64>) {
    let queries: Vec<_> = QueryGenerator::new(
        ArrivalProcess::poisson(load),
        SizeDistribution::production(),
        53,
    )
    .take(n)
    .collect();
    let policy = if topology.has_gpu() {
        SchedulerPolicy::with_gpu(64, 300)
    } else {
        SchedulerPolicy::cpu_only(64)
    };
    let cluster = Cluster::new(
        &zoo::dlrm_rmc1(),
        topology,
        routing,
        ServerOptions::new(40, policy),
    );
    let r = cluster.serve_virtual(&queries);
    (r.latency.p95_ms, r.node_queries)
}

/// A deliberately skewed fleet (one fast Skylake, one slow Broadwell)
/// under a burst that exceeds the slow node's half-share:
/// least-outstanding must strictly beat round-robin's p95, because
/// round-robin keeps feeding the saturated slow node.
#[test]
fn least_outstanding_strictly_beats_round_robin_p95_on_skewed_burst() {
    let topo = || {
        ClusterTopology::new(vec![
            NodeSpec::cpu_only(CpuPlatform::skylake()),
            NodeSpec::cpu_only(CpuPlatform::broadwell()),
        ])
    };
    // ~900 QPS: round-robin hands the Broadwell ~450 QPS, past its
    // ~420 QPS knee at batch 64; the fleet's aggregate (~1.4k) has
    // plenty of room if routing adapts.
    let (rr_p95, rr_split) = serve(topo(), RoutingPolicy::RoundRobin, 900.0, 5_000);
    let (lo_p95, lo_split) = serve(topo(), RoutingPolicy::LeastOutstanding, 900.0, 5_000);
    assert!(
        lo_p95 < rr_p95,
        "least-outstanding p95 {lo_p95} must strictly beat round-robin {rr_p95}"
    );
    // And the mechanism is visible: round-robin splits evenly, while
    // least-outstanding shifts load onto the fast node.
    assert!((rr_split[0] as i64 - rr_split[1] as i64).abs() <= 1);
    assert!(
        lo_split[0] > lo_split[1],
        "fast node absorbs more: {lo_split:?}"
    );
}

/// The acceptance sweep from the issue: on the 4-node heterogeneous
/// fleet under skewed diurnal load, power-of-two-choices achieves a
/// lower p95 than round-robin (the fig_cluster_routing headline).
#[test]
fn power_of_two_choices_beats_round_robin_p95_on_mixed_fleet() {
    let topo = || {
        ClusterTopology::new(vec![
            NodeSpec::with_gpu(CpuPlatform::skylake(), GpuPlatform::gtx_1080ti()),
            NodeSpec::with_gpu(CpuPlatform::skylake(), GpuPlatform::gtx_1080ti()),
            NodeSpec::cpu_only(CpuPlatform::broadwell()),
            NodeSpec::cpu_only(CpuPlatform::broadwell()),
        ])
    };
    let queries: Vec<_> = QueryGenerator::new(
        ArrivalProcess::diurnal(2_200.0, 0.4, 4.0),
        SizeDistribution::production(),
        7,
    )
    .take(8_000)
    .collect();
    let policy = SchedulerPolicy::with_gpu(64, 300);
    let run = |routing| {
        let cluster = Cluster::new(
            &zoo::dlrm_rmc1(),
            topo(),
            routing,
            ServerOptions::new(40, policy),
        );
        ServingStack::serve_queries(&cluster, &queries)
    };
    let rr = run(RoutingPolicy::RoundRobin);
    let po2c = run(RoutingPolicy::PowerOfTwoChoices { d: 2 });
    assert!(
        po2c.latency.p95_ms < rr.latency.p95_ms,
        "po2c p95 {} must beat round-robin p95 {}",
        po2c.latency.p95_ms,
        rr.latency.p95_ms
    );
    // Sanity on the common report view both backends share.
    assert!(po2c.qps() > rr.qps() * 0.9);
}

/// Size-aware routing must put the large-query tail on GPU nodes.
#[test]
fn size_aware_concentrates_large_queries_on_gpu_nodes() {
    let mut router = Router::new(RoutingPolicy::SizeAware, &[true, false, false], 250, 1);
    for _ in 0..50 {
        let n = router.route(TenantId::SOLO, 800); // large: must go to the GPU node
        assert_eq!(n, NodeId(0));
        router.complete(n);
    }
    // Small queries balance across the whole fleet.
    let picks: Vec<NodeId> = (0..3).map(|_| router.route(TenantId::SOLO, 10)).collect();
    assert_eq!(picks, vec![NodeId(0), NodeId(1), NodeId(2)]);
}

/// Router gauge bookkeeping: routes charge, completions release, and
/// ties always resolve toward the smaller NodeId.
#[test]
fn router_gauges_and_tie_breaks() {
    let mut r = Router::new(
        RoutingPolicy::LeastOutstanding,
        &[false, false, false],
        0,
        9,
    );
    let a = r.route(TenantId::SOLO, 1);
    let b = r.route(TenantId::SOLO, 1);
    let c = r.route(TenantId::SOLO, 1);
    assert_eq!((a, b, c), (NodeId(0), NodeId(1), NodeId(2)));
    r.complete(NodeId(1));
    assert_eq!(r.route(TenantId::SOLO, 1), NodeId(1), "freed node wins");
    assert_eq!(
        r.route(TenantId::SOLO, 1),
        NodeId(0),
        "then the tie breaks low"
    );
    assert_eq!(r.dispatched(), &[2, 2, 1]);
}

/// Round-robin ignores gauges entirely: the cursor cycles.
#[test]
fn round_robin_cycles() {
    let mut r = Router::new(RoutingPolicy::RoundRobin, &[false, false], 0, 9);
    let picks: Vec<usize> = (0..5).map(|_| r.route(TenantId::SOLO, 1).0).collect();
    assert_eq!(picks, vec![0, 1, 0, 1, 0]);
}

/// Tenant pins confine one tenant to its node set while other tenants
/// keep the whole fleet — tenant-aware placement on top of the
/// dispatch policy.
#[test]
fn tenant_pins_confine_routing() {
    let mut r = Router::new(
        RoutingPolicy::LeastOutstanding,
        &[false, false, false],
        0,
        3,
    )
    .pin_tenant_to(TenantId(1), &[false, false, true]);
    for _ in 0..5 {
        assert_eq!(
            r.route(TenantId(1), 10),
            NodeId(2),
            "pinned tenant stays put"
        );
    }
    // The unpinned tenant balances over the whole fleet — and node 2's
    // gauge (inflated by the pinned tenant) steers it away.
    let picks: Vec<usize> = (0..4).map(|_| r.route(TenantId(0), 10).0).collect();
    assert_eq!(picks, vec![0, 1, 0, 1]);
}

/// Round-robin rotation is per universe: a pinned tenant's routes
/// (whose universe is a single node) must not reset or advance the
/// unpinned tenants' cursor — interleaved arrivals still alternate
/// cleanly over the full fleet.
#[test]
fn round_robin_rotation_survives_interleaved_pinned_tenant() {
    let mut r = Router::new(RoutingPolicy::RoundRobin, &[false, false], 0, 9)
        .pin_tenant_to(TenantId(1), &[false, true]);
    let mut unpinned = Vec::new();
    for _ in 0..4 {
        unpinned.push(r.route(TenantId(0), 1).0);
        assert_eq!(r.route(TenantId(1), 1), NodeId(1), "pin holds");
    }
    assert_eq!(
        unpinned,
        vec![0, 1, 0, 1],
        "unpinned rotation must be undisturbed by the pinned tenant's routes"
    );
}

/// A pin that admits no eligible node is a configuration error.
#[test]
#[should_panic(expected = "tenant pin admits no eligible node")]
fn empty_tenant_pin_rejected() {
    let _ = Router::new(RoutingPolicy::LeastOutstanding, &[false, false], 0, 1)
        .pin_tenant_to(TenantId(0), &[false, false]);
}
