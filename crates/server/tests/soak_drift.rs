//! Long-horizon soak with drift injection: a recorded trace whose
//! arrival rate *and* size distribution shift mid-stream replays
//! through `ServingStack::serve_trace` on a sharded cluster, and the
//! online controller must notice the shift, re-tune, and re-settle
//! (ROADMAP "trace-driven serving" extension).

use drs_core::{
    ClusterTopology, NodeSpec, ReportView, RoutingPolicy, SchedulerPolicy, ServingStack,
};
use drs_models::zoo;
use drs_platform::{CpuPlatform, InterconnectModel};
use drs_query::{ArrivalProcess, QueryGenerator, SizeDistribution, Trace};
use drs_server::{Cluster, ControllerConfig, ServerOptions};
use drs_shard::{PlacementPolicy, ShardPlan};

/// Two recorded segments stitched into one trace: a calm first phase,
/// then a mid-trace drift to ~2.3x the rate on a heavier-tailed size
/// distribution.
fn drifting_trace() -> Trace {
    let calm: Vec<_> = QueryGenerator::new(
        ArrivalProcess::poisson(600.0),
        SizeDistribution::production(),
        71,
    )
    .take(2_500)
    .collect();
    let t_shift = calm.last().unwrap().arrival_s;
    let stormy = QueryGenerator::new(
        ArrivalProcess::poisson(1_400.0),
        SizeDistribution::lognormal_matched(),
        72,
    )
    .take(2_500);
    let pairs: Vec<(f64, u32)> = calm
        .iter()
        .map(|q| (q.arrival_s, q.size))
        .chain(stormy.map(|q| (q.arrival_s + t_shift, q.size)))
        .collect();
    Trace::from_pairs(&pairs)
}

#[test]
fn controller_resettles_after_mid_trace_drift_on_sharded_cluster() {
    let cfg = zoo::dlrm_rmc2();
    let topo = ClusterTopology::new(vec![
        NodeSpec::cpu_only(CpuPlatform::skylake())
            .with_mem_bytes(8 << 30);
        4
    ]);
    let plan = ShardPlan::place(&cfg, &topo, PlacementPolicy::LookupBalanced).unwrap();
    let opts = ServerOptions::new(40, SchedulerPolicy::cpu_only(1))
        .with_controller(ControllerConfig::smoke().with_sla_ms(cfg.sla_ms));
    let cluster = Cluster::new_sharded(
        &cfg,
        topo,
        RoutingPolicy::ShardAware,
        plan,
        InterconnectModel::datacenter_100g(),
        opts,
    );

    let trace = drifting_trace();
    let report = cluster.serve_trace(&trace);

    // The whole stream completed through the sharded fan-out.
    assert_eq!(report.completed, 4_500, "10% warm-up excluded");
    assert_eq!(report.exchanged_queries, 4_500);
    // The controller saw the drift and re-tuned at least once...
    assert!(
        report.retunes >= 1,
        "a 2.3x rate + size-distribution shift must trigger a re-tune"
    );
    // ...and re-settled: queries completed under a settled policy
    // exist *after* the storm (the settled recorder is only fed while
    // the controller holds a settled policy, so a controller left
    // thrashing at end of stream reports a starved settled window).
    assert!(
        report.settled_latency.count > 500,
        "controller failed to re-settle: only {} settled completions",
        report.settled_latency.count
    );
    // The settled tail is inside the model's (generous) SLA even
    // under the stormy phase.
    assert!(
        report.settled_latency.p95_ms < cfg.sla_ms,
        "settled p95 {} breaches the {} ms SLA",
        report.settled_latency.p95_ms,
        cfg.sla_ms
    );
    // Determinism holds for trace replay too.
    let again = cluster.serve_trace(&trace);
    assert_eq!(report.latencies_ms, again.latencies_ms);
    assert_eq!(report.retunes, again.retunes);
    // And the replay equals serving the equivalent prepared stream.
    let direct = cluster.serve_queries(&trace.replay().collect::<Vec<_>>());
    assert_eq!(direct.latencies_ms(), report.latencies_ms);
}
