//! Sharded serving on the real engine: per-node partial forwards over
//! a `ShardedEmbeddingSet`, exchanged to the router-chosen home and
//! finished with a real dense tail — the serving-layer extension of
//! the `sharded_equivalence` contract in `drs-nn`.

use drs_core::{ClusterTopology, NodeSpec, RoutingPolicy, SchedulerPolicy};
use drs_models::{zoo, ModelScale, RecModel};
use drs_nn::OpProfiler;
use drs_platform::{CpuPlatform, InterconnectModel};
use drs_query::{ArrivalProcess, QueryGenerator, SizeDistribution};
use drs_server::{sharded_query_inputs, Cluster, ServerOptions};
use drs_shard::{PlacementPolicy, ShardPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;

const SEED: u64 = 19;

fn fleet(n: usize, gib: u64) -> ClusterTopology {
    ClusterTopology::new(vec![
        NodeSpec::cpu_only(CpuPlatform::skylake())
            .with_mem_bytes(gib << 30);
        n
    ])
}

fn sharded_real_cluster(nodes: usize) -> (Cluster, Arc<RecModel>) {
    // DLRM-RMC2 at paper scale cannot fit one 16 GiB node, so the plan
    // genuinely spreads tables; the instantiated model is tiny-scaled
    // (same table count, small dims) so real forwards stay CI-fast.
    let cfg = zoo::dlrm_rmc2();
    let topo = fleet(nodes, 16);
    let plan = ShardPlan::place(&cfg, &topo, PlacementPolicy::LookupBalanced).unwrap();
    let mut opts = ServerOptions::new(2, SchedulerPolicy::cpu_only(64));
    opts.seed = SEED;
    opts.warmup_frac = 0.0;
    opts.time_scale = 4.0;
    let cluster = Cluster::new_sharded(
        &cfg,
        topo,
        RoutingPolicy::ShardAware,
        plan,
        InterconnectModel::datacenter_100g(),
        opts,
    );
    let mut rng = StdRng::seed_from_u64(SEED);
    let model = Arc::new(RecModel::instantiate(&cfg, ModelScale::tiny(), &mut rng));
    (cluster, model)
}

fn queries(n: usize) -> Vec<drs_query::Query> {
    QueryGenerator::new(
        ArrivalProcess::poisson(500.0),
        SizeDistribution::production(),
        SEED,
    )
    .take(n)
    .collect()
}

/// A 2-node sharded cluster serves a real stream end to end: every
/// query fans out to both shards, exchanges its partials at the home,
/// and completes with a real dense tail — with the fabric cost booked
/// on the virtual clock.
#[test]
fn sharded_real_cluster_completes_every_query() {
    let (cluster, model) = sharded_real_cluster(2);
    let qs = queries(60);
    let r = cluster.serve_real(model, &qs);
    assert_eq!(r.completed, qs.len() as u64);
    assert_eq!(
        r.exchanged_queries,
        qs.len() as u64,
        "every query crossed the exchange"
    );
    assert!(
        r.mean_exchange_ms > 0.0,
        "interconnect cost lands on the virtual clock"
    );
    assert_eq!(
        r.node_queries.iter().filter(|&&n| n > 0).count(),
        2,
        "shard-aware homes use both shard nodes: {:?}",
        r.node_queries
    );
    assert!(r.latency.p95_ms > 0.0);
}

/// The bit-identity contract: CTRs produced by the sharded real path
/// (per-shard gathers, cross-node merge, dense tail at the home) must
/// equal the unsharded single-process forward on the same inputs,
/// exactly — same floats, not merely close.
#[test]
fn sharded_real_outputs_match_unsharded_forward_bit_for_bit() {
    let (cluster, model) = sharded_real_cluster(2);
    let qs = queries(40);
    let (report, outputs) = cluster.serve_real_with_outputs(model.clone(), &qs);
    assert_eq!(report.completed, qs.len() as u64);
    assert_eq!(outputs.len(), qs.len(), "one CTR vector per query");

    let by_id: HashMap<u64, &drs_query::Query> = qs.iter().map(|q| (q.id, q)).collect();
    for (qid, ctrs) in &outputs {
        let q = by_id[qid];
        let inputs = sharded_query_inputs(&model, SEED, q);
        let expect = model.forward(&inputs, &mut OpProfiler::new());
        assert_eq!(ctrs, &expect, "query {qid}: sharded CTRs diverged");
    }
}
