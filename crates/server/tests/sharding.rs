//! Sharded cluster serving: a model whose tables exceed one node's
//! memory serves across the fleet — fan-out to every shard, partial
//! completions merged after the exchange — deterministically.

use drs_core::{
    ClusterTopology, NodeSpec, ReportView, RoutingPolicy, SchedulerPolicy, ServingStack,
};
use drs_models::zoo;
use drs_platform::{CpuPlatform, InterconnectModel};
use drs_query::{ArrivalProcess, QueryGenerator, SizeDistribution};
use drs_server::{Cluster, ControllerConfig, ServerOptions};
use drs_shard::{PlacementPolicy, ShardPlan};

/// A homogeneous Skylake fleet of `n` nodes with `gib` GiB each.
fn fleet(n: usize, gib: u64) -> ClusterTopology {
    ClusterTopology::new(vec![
        NodeSpec::cpu_only(CpuPlatform::skylake())
            .with_mem_bytes(gib << 30);
        n
    ])
}

fn queries(rate: f64, n: usize, seed: u64) -> Vec<drs_query::Query> {
    QueryGenerator::new(
        ArrivalProcess::poisson(rate),
        SizeDistribution::production(),
        seed,
    )
    .take(n)
    .collect()
}

fn sharded_cluster(nodes: usize, gib: u64, routing: RoutingPolicy, seed: u64) -> Cluster {
    let cfg = zoo::dlrm_rmc2(); // 25.6 GB of tables at paper scale
    let topo = fleet(nodes, gib);
    let plan = ShardPlan::place(&cfg, &topo, PlacementPolicy::LookupBalanced).unwrap();
    let mut opts = ServerOptions::new(40, SchedulerPolicy::cpu_only(64));
    opts.seed = seed;
    Cluster::new_sharded(
        &cfg,
        topo,
        routing,
        plan,
        InterconnectModel::datacenter_100g(),
        opts,
    )
}

#[test]
fn model_too_big_for_one_node_serves_sharded() {
    // The capacity headline: DLRM-RMC2 cannot fit one 16 GiB node...
    let cfg = zoo::dlrm_rmc2();
    assert!(ShardPlan::place(&cfg, &fleet(1, 16), PlacementPolicy::LookupBalanced).is_err());
    // ...but serves across two of them, completing every query.
    let cluster = sharded_cluster(2, 16, RoutingPolicy::ShardAware, 7);
    let qs = queries(600.0, 1_000, 7);
    let r = cluster.serve_virtual(&qs);
    assert_eq!(r.completed, 900, "10% warm-up excluded, all others done");
    assert_eq!(r.exchanged_queries, 900, "every measured query exchanged");
    assert!(r.mean_exchange_ms > 0.0);
    assert!(r.latency.p95_ms > 0.0);
    // Homes land only on shard nodes, which is all of them here.
    assert_eq!(r.node_queries.iter().filter(|&&n| n > 0).count(), 2);
}

#[test]
fn shard_aware_serving_is_byte_deterministic_per_seed() {
    let run = |seed: u64| {
        let cluster = sharded_cluster(4, 8, RoutingPolicy::ShardAware, seed);
        format!(
            "{:?}",
            cluster.serve_virtual(&queries(1_200.0, 1_500, seed))
        )
    };
    assert_eq!(run(13), run(13), "same seed must reproduce byte-for-byte");
    assert_ne!(run(13), run(14), "different seeds must differ");
}

#[test]
fn sharded_with_controller_is_deterministic_too() {
    // The nondeterminism-prone combination: sharded fan-out + per-node
    // online controllers + sampled merge-home policy.
    let run = |seed: u64| {
        let cfg = zoo::dlrm_rmc2();
        let topo = fleet(4, 8);
        let plan = ShardPlan::place(&cfg, &topo, PlacementPolicy::SizeGreedy).unwrap();
        let mut opts = ServerOptions::new(40, SchedulerPolicy::cpu_only(1))
            .with_controller(ControllerConfig::smoke());
        opts.seed = seed;
        let cluster = Cluster::new_sharded(
            &cfg,
            topo,
            RoutingPolicy::PowerOfTwoChoices { d: 2 },
            plan,
            InterconnectModel::datacenter_100g(),
            opts,
        );
        format!("{:?}", cluster.serve_virtual(&queries(900.0, 1_200, seed)))
    };
    assert_eq!(run(5), run(5));
}

#[test]
fn more_shard_nodes_relieve_the_tail() {
    // Scale-out: at a load that saturates the 2-node shard, spreading
    // the same tables over 8 nodes cuts the gather work per node and
    // with it the tail.
    let load = 2_000.0;
    let two = sharded_cluster(2, 16, RoutingPolicy::ShardAware, 3);
    let eight = sharded_cluster(8, 16, RoutingPolicy::ShardAware, 3);
    let qs = queries(load, 2_000, 3);
    let r2 = two.serve_virtual(&qs);
    let r8 = eight.serve_virtual(&qs);
    assert!(
        r8.latency.p95_ms < r2.latency.p95_ms / 2.0,
        "8-node p95 {} vs 2-node {}",
        r8.latency.p95_ms,
        r2.latency.p95_ms
    );
}

#[test]
fn exchange_overhead_prices_the_scale_out() {
    // Two faces of the exchange model on identical hardware. (1) For
    // an embedding-dominated model the *parallel* gather across two
    // shards outweighs the exchange at light load — the scale-in
    // literature's observation that the gather step, not compute, is
    // what distribution parallelizes. (2) The fabric still charges:
    // starving its bandwidth (100 GbE → 25 GbE) visibly lifts the
    // sharded tail while the unsharded path is untouched by it.
    let cfg = zoo::dlrm_rmc2();
    let topo = fleet(2, 64); // roomy: fits whole OR sharded
    let qs = queries(50.0, 400, 11);
    let whole = Cluster::new(
        &cfg,
        topo.clone(),
        RoutingPolicy::LeastOutstanding,
        ServerOptions::new(40, SchedulerPolicy::cpu_only(64)),
    )
    .serve_virtual(&qs);
    let sharded_on = |net: InterconnectModel| {
        let plan = ShardPlan::place(&cfg, &topo, PlacementPolicy::LookupBalanced).unwrap();
        Cluster::new_sharded(
            &cfg,
            topo.clone(),
            RoutingPolicy::ShardAware,
            plan,
            net,
            ServerOptions::new(40, SchedulerPolicy::cpu_only(64)),
        )
        .serve_virtual(&qs)
    };
    let fast = sharded_on(InterconnectModel::datacenter_100g());
    let slow = sharded_on(InterconnectModel::datacenter_25g());
    assert_eq!(whole.exchanged_queries, 0);
    assert!(fast.mean_exchange_ms > 0.0);
    assert!(
        fast.latency.p50_ms < whole.latency.p50_ms,
        "split gather should beat the whole-node gather: {} vs {}",
        fast.latency.p50_ms,
        whole.latency.p50_ms
    );
    // The merge delay is dominated by the dense tail (RMC2's stacks),
    // but the wire term must still register: a quarter of the
    // bandwidth strictly raises the mean exchange price.
    assert!(
        slow.mean_exchange_ms > fast.mean_exchange_ms,
        "bandwidth starvation must show in the exchange price: {} vs {}",
        slow.mean_exchange_ms,
        fast.mean_exchange_ms
    );
    assert!(
        slow.latency.p95_ms > fast.latency.p95_ms,
        "fabric starvation must lift the sharded tail: {} vs {}",
        slow.latency.p95_ms,
        fast.latency.p95_ms
    );
}

#[test]
fn mean_exchange_is_completion_weighted_across_homes() {
    // An asymmetric 2-node plan: node 0 holds far more tables than
    // node 1, so a query merging at home 0 pays a different exchange
    // price (it pulls node 1's small remote share) than one merging at
    // home 1 (which pulls node 0's large share). Under round-robin
    // homes with an odd query count the per-home populations are
    // unequal too, so `mean_exchange_ms` only comes out right if it is
    // completion-weighted over every exchanged query — an average of
    // per-home means gives a measurably different number. Pin the
    // weighted definition exactly.
    let cfg = zoo::dlrm_rmc2();
    let topo = ClusterTopology::new(vec![
        NodeSpec::cpu_only(CpuPlatform::skylake()).with_mem_bytes(20 << 30),
        NodeSpec::cpu_only(CpuPlatform::skylake()).with_mem_bytes(8 << 30),
    ]);
    let plan = ShardPlan::place(&cfg, &topo, PlacementPolicy::SizeGreedy).unwrap();
    assert!(plan.is_sharded());
    assert_ne!(
        plan.tables_on(drs_core::NodeId(0)).len(),
        plan.tables_on(drs_core::NodeId(1)).len(),
        "placement must be asymmetric for this pin to bite"
    );
    let net = InterconnectModel::datacenter_100g();
    let geo = plan.geometry(net);

    // Three queries, distinct sizes, round-robin homes 0, 1, 0.
    let sizes = [100u32, 700, 40];
    let trace =
        drs_query::Trace::from_pairs(&[(0.00, sizes[0]), (0.05, sizes[1]), (0.10, sizes[2])]);
    let mut opts = ServerOptions::new(40, SchedulerPolicy::cpu_only(64));
    opts.warmup_frac = 0.0;
    let cluster = Cluster::new_sharded(&cfg, topo, RoutingPolicy::RoundRobin, plan, net, opts);
    let r = cluster.serve_trace(&trace);
    assert_eq!(r.exchanged_queries, 3);

    // Recompute both candidate definitions from the plan's geometry,
    // quantized exactly as the serving loop prices them.
    let ns_of = |home: usize, size: u32| drs_core::us_to_ns(geo.exchange_us(home, size)) as f64;
    let per_query = [ns_of(0, sizes[0]), ns_of(1, sizes[1]), ns_of(0, sizes[2])];
    let weighted_ms = per_query.iter().sum::<f64>() / 3.0 / 1e6;
    let home0_mean = (per_query[0] + per_query[2]) / 2.0;
    let home1_mean = per_query[1];
    let avg_of_means_ms = (home0_mean + home1_mean) / 2.0 / 1e6;

    assert!(
        (r.mean_exchange_ms - weighted_ms).abs() < 1e-9,
        "report {} vs completion-weighted {}",
        r.mean_exchange_ms,
        weighted_ms
    );
    assert!(
        (weighted_ms - avg_of_means_ms).abs() > 1e-6,
        "scenario too symmetric to distinguish the definitions: {} vs {}",
        weighted_ms,
        avg_of_means_ms
    );
}

#[test]
fn single_shard_node_plan_exchanges_nothing() {
    // A roomy fleet lets size-greedy first-fit put every table on
    // node 0: the "sharded" cluster degenerates to one shard node.
    // Nothing crosses the fabric, so the exchange counters must stay
    // zero (the dense tail still runs, but that is not an exchange).
    let cfg = zoo::dlrm_rmc2();
    let topo = fleet(4, 32);
    let plan = ShardPlan::place(&cfg, &topo, PlacementPolicy::SizeGreedy).unwrap();
    assert!(!plan.is_sharded());
    let cluster = Cluster::new_sharded(
        &cfg,
        topo,
        RoutingPolicy::ShardAware,
        plan,
        InterconnectModel::datacenter_100g(),
        ServerOptions::new(40, SchedulerPolicy::cpu_only(64)),
    );
    let r = cluster.serve_virtual(&queries(300.0, 600, 19));
    assert_eq!(r.completed, 540);
    assert_eq!(r.exchanged_queries, 0, "no remote peers, no exchange");
    assert_eq!(r.mean_exchange_ms, 0.0);
    // Every merge home is the single shard node.
    assert_eq!(r.node_queries[0], 600);
    assert!(r.node_queries[1..].iter().all(|&n| n == 0));
}

#[test]
fn serving_stack_face_works_sharded() {
    let cluster = sharded_cluster(2, 16, RoutingPolicy::ShardAware, 9);
    let label = cluster.label();
    assert!(label.contains("shard-aware"), "{label}");
    assert!(label.contains("sharded x2"), "{label}");
    let r = cluster.serve_queries(&queries(400.0, 500, 9));
    assert!(r.completed() > 0);
}

#[test]
#[should_panic(expected = "policy must not offload")]
fn sharded_offload_policy_rejected() {
    let cfg = zoo::dlrm_rmc2();
    let topo = fleet(2, 16);
    let plan = ShardPlan::place(&cfg, &topo, PlacementPolicy::SizeGreedy).unwrap();
    let _ = Cluster::new_sharded(
        &cfg,
        topo,
        RoutingPolicy::ShardAware,
        plan,
        InterconnectModel::datacenter_100g(),
        ServerOptions::new(40, SchedulerPolicy::with_gpu(64, 200)),
    );
}

#[test]
#[should_panic(expected = "shard plan covers 4 nodes, topology has 2")]
fn plan_for_wrong_fleet_rejected() {
    let cfg = zoo::dlrm_rmc2();
    let plan = ShardPlan::place(&cfg, &fleet(4, 16), PlacementPolicy::SizeGreedy).unwrap();
    let _ = Cluster::new_sharded(
        &cfg,
        fleet(2, 16),
        RoutingPolicy::ShardAware,
        plan,
        InterconnectModel::datacenter_100g(),
        ServerOptions::new(40, SchedulerPolicy::cpu_only(64)),
    );
}

#[test]
fn unsharded_shard_aware_degrades_to_least_outstanding() {
    // Without a plan, ShardAware must behave exactly like
    // least-outstanding (same router maths, unrestricted universe).
    let cfg = zoo::dlrm_rmc1();
    let topo = fleet(3, 64);
    let qs = queries(2_000.0, 1_200, 21);
    let mk = |routing| {
        Cluster::new(
            &cfg,
            topo.clone(),
            routing,
            ServerOptions::new(40, SchedulerPolicy::cpu_only(64)),
        )
        .serve_virtual(&qs)
    };
    let lo = mk(RoutingPolicy::LeastOutstanding);
    let sa = mk(RoutingPolicy::ShardAware);
    assert_eq!(lo.latencies_ms, sa.latencies_ms);
    assert_eq!(lo.node_queries, sa.node_queries);
}
