//! Cross-validation: the server's GPU virtual-time path must agree
//! with the discrete-event simulator, because both are built on the
//! same `ModelCost` math. This is the test that keeps the two
//! execution layers from silently drifting apart.

use drs_core::{ClusterConfig, ClusterTopology, RoutingPolicy, SchedulerPolicy};
use drs_models::zoo;
use drs_platform::{CpuPlatform, GpuPlatform, ModelCost};
use drs_query::{ArrivalProcess, QueryGenerator, SizeDistribution};
use drs_server::{Cluster, GpuExecutor, Server, ServerOptions};
use drs_sim::{RunOptions, Simulation};

#[test]
fn gpu_executor_uses_exactly_the_simulator_cost_math() {
    for cfg in zoo::all() {
        let cost = ModelCost::new(&cfg);
        let cpu = CpuPlatform::skylake();
        let gpu = GpuPlatform::gtx_1080ti();
        let gx = GpuExecutor::new(cost.clone(), cpu, gpu);
        for size in [1u32, 7, 64, 150, 400, 1000] {
            assert_eq!(
                gx.service_us(0, size),
                cost.gpu_query_us(&cpu, &gpu, size as usize),
                "{} size {size}",
                cfg.name
            );
        }
    }
}

/// With every query offloaded (threshold 0), the server's GPU FIFO and
/// the simulator's GPU queue are the same machine: identical arrivals
/// must produce identical per-query latencies.
#[test]
fn offload_all_latencies_match_simulator_within_tolerance() {
    let cfg = zoo::dlrm_rmc1();
    let policy = SchedulerPolicy::with_gpu(64, 0);
    let mk_gen = || {
        QueryGenerator::new(
            ArrivalProcess::poisson(150.0),
            SizeDistribution::production(),
            23,
        )
    };
    let n = 600;

    let sim = Simulation::new(&cfg, ClusterConfig::skylake_with_gpu(), policy);
    let sim_report = sim.run(&mut mk_gen(), RunOptions::queries(n));

    let queries: Vec<_> = mk_gen().take(n).collect();
    let server = Server::new(
        &cfg,
        CpuPlatform::skylake(),
        Some(GpuPlatform::gtx_1080ti()),
        ServerOptions::new(40, policy),
    );
    let server_report = server.serve_virtual(&queries);

    assert_eq!(server_report.completed, sim_report.completed);
    assert!(
        (server_report.gpu_work_fraction - 1.0).abs() < 1e-12,
        "threshold 0 offloads every item"
    );
    assert_eq!(
        server_report.latencies_ms.len(),
        sim_report.latencies_ms.len()
    );
    for (i, (a, b)) in server_report
        .latencies_ms
        .iter()
        .zip(&sim_report.latencies_ms)
        .enumerate()
    {
        let tol = 1e-9 * b.abs().max(1.0);
        assert!(
            (a - b).abs() <= tol,
            "query {i}: server {a} ms vs sim {b} ms"
        );
    }
    assert!(
        (server_report.latency.p95_ms - sim_report.latency.p95_ms).abs() < 1e-6,
        "p95 server {} vs sim {}",
        server_report.latency.p95_ms,
        sim_report.latency.p95_ms
    );
}

/// The multi-node version of the exact-match test: with every query
/// offloaded (threshold 0), a 4-node cluster under least-outstanding
/// routing is the *same machine* as the simulator's 4-machine
/// least-loaded dispatch — each query is one unit of outstanding work
/// on both sides, ties break toward the lower node id on both sides,
/// and the GPU FIFOs share one cost formula. Identical arrivals must
/// produce identical per-query latencies.
#[test]
fn cluster_offload_all_latencies_match_simulator() {
    let cfg = zoo::dlrm_rmc1();
    let policy = SchedulerPolicy::with_gpu(64, 0);
    let n_nodes = 4;
    let mk_gen = || {
        QueryGenerator::new(
            ArrivalProcess::poisson(500.0),
            SizeDistribution::production(),
            37,
        )
    };
    let n = 800;

    let sim = Simulation::new(
        &cfg,
        ClusterConfig::cluster(
            n_nodes,
            CpuPlatform::skylake(),
            Some(GpuPlatform::gtx_1080ti()),
        ),
        policy,
    );
    let sim_report = sim.run(&mut mk_gen(), RunOptions::queries(n));

    let queries: Vec<_> = mk_gen().take(n).collect();
    let cluster = Cluster::new(
        &cfg,
        ClusterTopology::uniform(
            n_nodes,
            CpuPlatform::skylake(),
            Some(GpuPlatform::gtx_1080ti()),
        ),
        RoutingPolicy::LeastOutstanding,
        ServerOptions::new(40, policy),
    );
    let cluster_report = cluster.serve_virtual(&queries);

    assert_eq!(cluster_report.completed, sim_report.completed);
    assert_eq!(cluster_report.node_queries.len(), n_nodes);
    assert!(
        cluster_report.node_queries.iter().all(|&q| q > 0),
        "least-outstanding spreads offload work across every node: {:?}",
        cluster_report.node_queries
    );
    assert_eq!(
        cluster_report.latencies_ms.len(),
        sim_report.latencies_ms.len()
    );
    for (i, (a, b)) in cluster_report
        .latencies_ms
        .iter()
        .zip(&sim_report.latencies_ms)
        .enumerate()
    {
        let tol = 1e-9 * b.abs().max(1.0);
        assert!(
            (a - b).abs() <= tol,
            "query {i}: cluster {a} ms vs sim {b} ms"
        );
    }
}

/// With coalescing disabled the server's CPU path is the simulator's
/// split-and-queue discipline; tails should land in the same band even
/// though dispatch details differ (shared ready queue vs. per-machine
/// queues are identical for one machine).
#[test]
fn cpu_only_tail_tracks_simulator() {
    let cfg = zoo::ncf();
    let policy = SchedulerPolicy::cpu_only(64);
    let mk_gen = || {
        QueryGenerator::new(
            ArrivalProcess::poisson(400.0),
            SizeDistribution::production(),
            31,
        )
    };
    let n = 800;
    let sim = Simulation::new(&cfg, ClusterConfig::single_skylake(), policy);
    let sim_report = sim.run(&mut mk_gen(), RunOptions::queries(n));

    let queries: Vec<_> = mk_gen().take(n).collect();
    let mut opts = ServerOptions::new(CpuPlatform::skylake().cores, policy);
    opts.batching.coalesce_timeout_us = 0.0;
    let server = Server::new(&cfg, CpuPlatform::skylake(), None, opts);
    let server_report = server.serve_virtual(&queries);

    assert_eq!(server_report.completed, sim_report.completed);
    let ratio = server_report.latency.p95_ms / sim_report.latency.p95_ms;
    assert!(
        (0.5..2.0).contains(&ratio),
        "server p95 {} vs sim p95 {}",
        server_report.latency.p95_ms,
        sim_report.latency.p95_ms
    );
}
