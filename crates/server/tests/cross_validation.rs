//! Cross-validation: the server's GPU virtual-time path must agree
//! with the discrete-event simulator, because both are built on the
//! same `ModelCost` math. This is the test that keeps the two
//! execution layers from silently drifting apart.

use drs_core::{
    ClusterConfig, ClusterTopology, MultiModelSpec, RoutingPolicy, SchedulerPolicy, TenantSpec,
};
use drs_models::{zoo, ModelScale, RecModel};
use drs_platform::{CpuPlatform, GpuPlatform, ModelCost};
use drs_query::{ArrivalProcess, MixedStream, QueryGenerator, SizeDistribution, Trace};
use drs_server::{Cluster, GpuExecutor, Server, ServerOptions};
use drs_sim::{RunOptions, Simulation};
use drs_telemetry::{QuerySpan, RingRecorder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// The recorder's retained spans in query-id order, validated — the
/// common setup for exact span cross-checks (every test below sizes
/// its ring to hold the full run, so retention is complete).
fn spans_by_id(rec: &RingRecorder) -> Vec<QuerySpan> {
    assert_eq!(rec.dropped(), 0, "ring sized to retain the whole run");
    let mut spans: Vec<QuerySpan> = rec.spans().copied().collect();
    for s in &spans {
        s.validate().expect("well-formed span");
    }
    spans.sort_by_key(|s| s.query_id);
    spans
}

fn tiny_model(cfg: &drs_models::ModelConfig, seed: u64) -> Arc<RecModel> {
    let mut rng = StdRng::seed_from_u64(seed);
    Arc::new(RecModel::instantiate(cfg, ModelScale::tiny(), &mut rng))
}

fn mixed(rates: &[f64], seed: u64, n: usize) -> Vec<drs_query::Query> {
    MixedStream::new(
        rates
            .iter()
            .enumerate()
            .map(|(k, &r)| {
                QueryGenerator::new(
                    ArrivalProcess::poisson(r),
                    SizeDistribution::production(),
                    seed.wrapping_add(k as u64 * 0x9E37),
                )
            })
            .collect(),
    )
    .take(n)
    .collect()
}

#[test]
fn gpu_executor_uses_exactly_the_simulator_cost_math() {
    for cfg in zoo::all() {
        let cost = ModelCost::new(&cfg);
        let cpu = CpuPlatform::skylake();
        let gpu = GpuPlatform::gtx_1080ti();
        let gx = GpuExecutor::new(cost.clone(), cpu, gpu);
        for size in [1u32, 7, 64, 150, 400, 1000] {
            assert_eq!(
                gx.service_us(0, size),
                cost.gpu_query_us(&cpu, &gpu, size as usize),
                "{} size {size}",
                cfg.name
            );
        }
    }
}

/// With every query offloaded (threshold 0), the server's GPU FIFO and
/// the simulator's GPU queue are the same machine: identical arrivals
/// must produce identical per-query latencies.
#[test]
fn offload_all_latencies_match_simulator_within_tolerance() {
    let cfg = zoo::dlrm_rmc1();
    let policy = SchedulerPolicy::with_gpu(64, 0);
    let mk_gen = || {
        QueryGenerator::new(
            ArrivalProcess::poisson(150.0),
            SizeDistribution::production(),
            23,
        )
    };
    let n = 600;

    let sim = Simulation::new(&cfg, ClusterConfig::skylake_with_gpu(), policy);
    let sim_report = sim.run(&mut mk_gen(), RunOptions::queries(n));

    let queries: Vec<_> = mk_gen().take(n).collect();
    let server = Server::new(
        &cfg,
        CpuPlatform::skylake(),
        Some(GpuPlatform::gtx_1080ti()),
        ServerOptions::new(40, policy),
    );
    let server_report = server.serve_virtual(&queries);

    assert_eq!(server_report.completed, sim_report.completed);
    assert!(
        (server_report.gpu_work_fraction - 1.0).abs() < 1e-12,
        "threshold 0 offloads every item"
    );
    assert_eq!(
        server_report.latencies_ms.len(),
        sim_report.latencies_ms.len()
    );
    for (i, (a, b)) in server_report
        .latencies_ms
        .iter()
        .zip(&sim_report.latencies_ms)
        .enumerate()
    {
        let tol = 1e-9 * b.abs().max(1.0);
        assert!(
            (a - b).abs() <= tol,
            "query {i}: server {a} ms vs sim {b} ms"
        );
    }
    assert!(
        (server_report.latency.p95_ms - sim_report.latency.p95_ms).abs() < 1e-6,
        "p95 server {} vs sim {}",
        server_report.latency.p95_ms,
        sim_report.latency.p95_ms
    );
}

/// The multi-node version of the exact-match test: with every query
/// offloaded (threshold 0), a 4-node cluster under least-outstanding
/// routing is the *same machine* as the simulator's 4-machine
/// least-loaded dispatch — each query is one unit of outstanding work
/// on both sides, ties break toward the lower node id on both sides,
/// and the GPU FIFOs share one cost formula. Identical arrivals must
/// produce identical per-query latencies.
#[test]
fn cluster_offload_all_latencies_match_simulator() {
    let cfg = zoo::dlrm_rmc1();
    let policy = SchedulerPolicy::with_gpu(64, 0);
    let n_nodes = 4;
    let mk_gen = || {
        QueryGenerator::new(
            ArrivalProcess::poisson(500.0),
            SizeDistribution::production(),
            37,
        )
    };
    let n = 800;

    let sim = Simulation::new(
        &cfg,
        ClusterConfig::cluster(
            n_nodes,
            CpuPlatform::skylake(),
            Some(GpuPlatform::gtx_1080ti()),
        ),
        policy,
    );
    let sim_report = sim.run(&mut mk_gen(), RunOptions::queries(n));

    let queries: Vec<_> = mk_gen().take(n).collect();
    let cluster = Cluster::new(
        &cfg,
        ClusterTopology::uniform(
            n_nodes,
            CpuPlatform::skylake(),
            Some(GpuPlatform::gtx_1080ti()),
        ),
        RoutingPolicy::LeastOutstanding,
        ServerOptions::new(40, policy),
    );
    let cluster_report = cluster.serve_virtual(&queries);

    assert_eq!(cluster_report.completed, sim_report.completed);
    assert_eq!(cluster_report.node_queries.len(), n_nodes);
    assert!(
        cluster_report.node_queries.iter().all(|&q| q > 0),
        "least-outstanding spreads offload work across every node: {:?}",
        cluster_report.node_queries
    );
    assert_eq!(
        cluster_report.latencies_ms.len(),
        sim_report.latencies_ms.len()
    );
    for (i, (a, b)) in cluster_report
        .latencies_ms
        .iter()
        .zip(&sim_report.latencies_ms)
        .enumerate()
    {
        let tol = 1e-9 * b.abs().max(1.0);
        assert!(
            (a - b).abs() <= tol,
            "query {i}: cluster {a} ms vs sim {b} ms"
        );
    }
}

/// The real engine against its own virtual twin: with every query
/// offloaded (threshold 0), completions happen entirely on the
/// virtual-time GPU, so pacing the identical stream onto physical
/// worker threads must reproduce the virtual run *bit for bit*. The
/// real path anchors its clock at the first arrival's integer
/// nanosecond timestamp and books every arrival at its due time, so
/// there is no tolerance here — any drift is a scheduling bug, not
/// jitter.
#[test]
fn real_offload_all_matches_virtual_exactly() {
    let cfg = zoo::dlrm_rmc1();
    let model = tiny_model(&cfg, 7);
    let queries: Vec<_> = QueryGenerator::new(
        ArrivalProcess::poisson(300.0),
        SizeDistribution::production(),
        47,
    )
    .take(300)
    .collect();
    let mut opts = ServerOptions::new(2, SchedulerPolicy::with_gpu(64, 0));
    opts.warmup_frac = 0.0;
    opts.time_scale = 8.0;
    let server = Server::new(
        &cfg,
        CpuPlatform::skylake(),
        Some(GpuPlatform::gtx_1080ti()),
        opts,
    );
    let mut virt_rec = RingRecorder::new(queries.len());
    let mut real_rec = RingRecorder::new(queries.len());
    let virt = server.serve_virtual_traced(&queries, &mut virt_rec);
    let real = server.serve_real_traced(model, &queries, &mut real_rec);

    assert_eq!(real.completed, virt.completed);
    assert_eq!(
        real.latencies_ms, virt.latencies_ms,
        "offload-all real latencies are the virtual run, exactly"
    );
    assert_eq!(real.latency.p95_ms.to_bits(), virt.latency.p95_ms.to_bits());

    // The span timelines agree per query with zero tolerance: every
    // offload-all stage lives on the virtual clock, so arrival, FIFO
    // wait, and device service decompose identically on both runtimes.
    let (vs, rs) = (spans_by_id(&virt_rec), spans_by_id(&real_rec));
    assert_eq!(vs.len() as u64, virt.completed);
    assert_eq!(rs, vs, "offload-all real spans are the virtual spans");
    assert_eq!(
        real.stage_breakdown
            .as_ref()
            .unwrap()
            .total
            .p95_ms
            .to_bits(),
        virt.stage_breakdown
            .as_ref()
            .unwrap()
            .total
            .p95_ms
            .to_bits(),
        "streaming stage digests see identical observation sequences"
    );
}

/// The multi-tenant version of the exact-match contract: two tenants
/// on one shared pool, both fully offloaded — per-tenant deficit
/// round-robin, per-tenant GPU pricing, and the shared device FIFO
/// must all sequence identically whether lanes run in virtual time or
/// against the physical engine pool.
#[test]
fn multi_tenant_real_offload_all_matches_virtual_exactly() {
    let (cfg_a, cfg_b) = (zoo::ncf(), zoo::wide_and_deep());
    let spec = MultiModelSpec::new(vec![
        TenantSpec::new(cfg_a.clone(), SchedulerPolicy::with_gpu(32, 0)),
        TenantSpec::new(cfg_b.clone(), SchedulerPolicy::with_gpu(32, 0)).with_weight(2),
    ]);
    let mut opts = ServerOptions::new(2, SchedulerPolicy::with_gpu(32, 0));
    opts.warmup_frac = 0.0;
    opts.time_scale = 8.0;
    let server = Server::new_multi(
        &spec,
        CpuPlatform::skylake(),
        Some(GpuPlatform::gtx_1080ti()),
        opts,
    );
    let models = vec![tiny_model(&cfg_a, 2), tiny_model(&cfg_b, 3)];
    let queries = mixed(&[600.0, 300.0], 13, 200);

    let mut virt_rec = RingRecorder::new(queries.len());
    let mut real_rec = RingRecorder::new(queries.len());
    let virt = server.serve_virtual_traced(&queries, &mut virt_rec);
    let real = server.serve_real_multi_traced(models, &queries, &mut real_rec);

    assert_eq!(real.completed, virt.completed);
    assert_eq!(real.latencies_ms, virt.latencies_ms);
    assert_eq!(
        spans_by_id(&real_rec),
        spans_by_id(&virt_rec),
        "per-tenant offload-all spans agree per query, zero tolerance"
    );
    assert_eq!(real.tenant_breakdowns.len(), virt.tenant_breakdowns.len());
    for (r, v) in real.tenant_breakdowns.iter().zip(&virt.tenant_breakdowns) {
        assert_eq!(r.completed, v.completed);
        assert_eq!(
            r.latency.p95_ms.to_bits(),
            v.latency.p95_ms.to_bits(),
            "per-tenant tails agree bit-for-bit"
        );
    }
}

/// Two nodes behind the router, fully offloaded: the real cluster
/// drains its per-node GPU heaps in global (time, query-id) order,
/// which is exactly the virtual event queue's ordering — so routing
/// decisions, per-node counts, and every latency must match the
/// virtual run with zero tolerance.
#[test]
fn cluster_real_offload_all_matches_virtual_exactly() {
    let cfg = zoo::dlrm_rmc1();
    let model = tiny_model(&cfg, 11);
    let queries: Vec<_> = QueryGenerator::new(
        ArrivalProcess::poisson(500.0),
        SizeDistribution::production(),
        53,
    )
    .take(300)
    .collect();
    let mut opts = ServerOptions::new(1, SchedulerPolicy::with_gpu(64, 0));
    opts.warmup_frac = 0.0;
    opts.time_scale = 8.0;
    let cluster = Cluster::new(
        &cfg,
        ClusterTopology::uniform(2, CpuPlatform::skylake(), Some(GpuPlatform::gtx_1080ti())),
        RoutingPolicy::LeastOutstanding,
        opts,
    );
    let mut virt_rec = RingRecorder::new(queries.len());
    let mut real_rec = RingRecorder::new(queries.len());
    let virt = cluster.serve_virtual_traced(&queries, &mut virt_rec);
    let real = cluster.serve_real_traced(model, &queries, &mut real_rec);

    assert_eq!(real.completed, virt.completed);
    assert_eq!(
        real.node_queries, virt.node_queries,
        "the router makes the same per-node decisions on both clocks"
    );
    assert_eq!(real.latencies_ms, virt.latencies_ms);
    let (vs, rs) = (spans_by_id(&virt_rec), spans_by_id(&real_rec));
    assert_eq!(rs, vs, "cluster offload-all spans agree, node ids included");
    assert!(
        vs.iter().any(|s| s.node == 0) && vs.iter().any(|s| s.node == 1),
        "spans attribute work to both nodes"
    );
}

/// Satellite regression: `Cluster::serve_trace_real` replays a
/// recorded trace through the real path and must reproduce the direct
/// real run exactly (an in-memory trace stores queries verbatim, and
/// the offload-all cluster is deterministic).
#[test]
fn cluster_trace_replay_matches_direct_on_the_real_engine() {
    let cfg = zoo::dlrm_rmc1();
    let model = tiny_model(&cfg, 17);
    let queries: Vec<_> = QueryGenerator::new(
        ArrivalProcess::poisson(400.0),
        SizeDistribution::production(),
        59,
    )
    .take(200)
    .collect();
    let trace = Trace::record(queries.iter().copied(), queries.len());
    let mut opts = ServerOptions::new(1, SchedulerPolicy::with_gpu(64, 0));
    opts.warmup_frac = 0.0;
    opts.time_scale = 8.0;
    let cluster = Cluster::new(
        &cfg,
        ClusterTopology::uniform(2, CpuPlatform::skylake(), Some(GpuPlatform::gtx_1080ti())),
        RoutingPolicy::LeastOutstanding,
        opts,
    );
    let direct = cluster.serve_real(model.clone(), &queries);
    let replayed = cluster.serve_trace_real(model, &trace);

    assert_eq!(replayed.completed, direct.completed);
    assert_eq!(replayed.node_queries, direct.node_queries);
    assert_eq!(replayed.latencies_ms, direct.latencies_ms);
}

/// With coalescing disabled the server's CPU path is the simulator's
/// split-and-queue discipline; tails should land in the same band even
/// though dispatch details differ (shared ready queue vs. per-machine
/// queues are identical for one machine).
#[test]
fn cpu_only_tail_tracks_simulator() {
    let cfg = zoo::ncf();
    let policy = SchedulerPolicy::cpu_only(64);
    let mk_gen = || {
        QueryGenerator::new(
            ArrivalProcess::poisson(400.0),
            SizeDistribution::production(),
            31,
        )
    };
    let n = 800;
    let sim = Simulation::new(&cfg, ClusterConfig::single_skylake(), policy);
    let sim_report = sim.run(&mut mk_gen(), RunOptions::queries(n));

    let queries: Vec<_> = mk_gen().take(n).collect();
    let mut opts = ServerOptions::new(CpuPlatform::skylake().cores, policy);
    opts.batching.coalesce_timeout_us = 0.0;
    let server = Server::new(&cfg, CpuPlatform::skylake(), None, opts);
    let server_report = server.serve_virtual(&queries);

    assert_eq!(server_report.completed, sim_report.completed);
    let ratio = server_report.latency.p95_ms / sim_report.latency.p95_ms;
    assert!(
        (0.5..2.0).contains(&ratio),
        "server p95 {} vs sim p95 {}",
        server_report.latency.p95_ms,
        sim_report.latency.p95_ms
    );
}
