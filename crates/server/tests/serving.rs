//! End-to-end serving acceptance: the open-loop runtime on the real
//! engine, and the online controller's convergence contract.

use drs_core::{ClusterConfig, ClusterTopology, RoutingPolicy, SchedulerPolicy, ServingStack};
use drs_models::{zoo, ModelScale, RecModel};
use drs_platform::{CpuPlatform, GpuPlatform};
use drs_query::{ArrivalProcess, QueryGenerator, SizeDistribution, Trace};
use drs_sched::{DeepRecSched, SearchOptions};
use drs_server::{Cluster, ControllerConfig, Server, ServerOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn tiny_model(cfg: &drs_models::ModelConfig, seed: u64) -> Arc<RecModel> {
    let mut rng = StdRng::seed_from_u64(seed);
    Arc::new(RecModel::instantiate(cfg, ModelScale::tiny(), &mut rng))
}

/// The headline acceptance: an open-loop Poisson stream served end to
/// end on the *real* engine — every query completes, latencies include
/// genuine queueing, and the batching stats show coalescing happened.
#[test]
fn real_engine_serves_open_loop_poisson_stream() {
    let cfg = zoo::ncf();
    let model = tiny_model(&cfg, 3);
    let queries: Vec<_> = QueryGenerator::new(
        ArrivalProcess::poisson(1_500.0),
        SizeDistribution::production(),
        11,
    )
    .take(80)
    .collect();
    let mut opts = ServerOptions::new(2, SchedulerPolicy::cpu_only(32));
    opts.warmup_frac = 0.0; // count every query
    opts.time_scale = 4.0; // compress pacing for CI
    opts.batching.coalesce_timeout_us = 500.0;
    let server = Server::new(&cfg, CpuPlatform::skylake(), None, opts);
    let report = server.serve_real(model, &queries);

    assert_eq!(report.completed, queries.len() as u64);
    assert_eq!(report.latencies_ms.len(), queries.len());
    assert!(report.latency.p95_ms > 0.0);
    assert!(report.qps > 0.0);
    assert!(report.batches > 0);
    let items: u64 = queries.iter().map(|q| q.size as u64).sum();
    assert!(
        report.batches <= items,
        "batches bounded by items: {} vs {items}",
        report.batches
    );
    assert!(
        report.mean_batch_items >= 1.0 && report.mean_batch_items <= 32.0,
        "mean batch {} within [1, max_batch]",
        report.mean_batch_items
    );
}

/// GPU offload on the real serving path: big queries bypass the CPU
/// pool and complete on the virtual-time device.
#[test]
fn real_engine_offloads_large_queries() {
    let cfg = zoo::ncf();
    let model = tiny_model(&cfg, 5);
    let queries: Vec<_> = QueryGenerator::new(
        ArrivalProcess::poisson(800.0),
        SizeDistribution::production(),
        17,
    )
    .take(60)
    .collect();
    assert!(
        queries.iter().any(|q| q.size > 100),
        "stream carries offloadable queries"
    );
    let mut opts = ServerOptions::new(2, SchedulerPolicy::with_gpu(32, 100));
    opts.warmup_frac = 0.0;
    opts.time_scale = 4.0;
    let server = Server::new(
        &cfg,
        CpuPlatform::skylake(),
        Some(GpuPlatform::gtx_1080ti()),
        opts,
    );
    let report = server.serve_real(model, &queries);
    assert_eq!(report.completed, queries.len() as u64);
    assert!(
        report.gpu_work_fraction > 0.0,
        "some work ran on the device"
    );
    assert!(report.gpu_utilization > 0.0);
}

/// The convergence contract from the issue: starting from a
/// deliberately bad `max_batch`, the online controller must retune to
/// within 25 % of the offline tuner's tail latency at the same load —
/// while the bad policy left alone is far worse.
#[test]
fn online_controller_converges_to_offline_tail() {
    let cfg = zoo::dlrm_rmc1();
    let cluster = ClusterConfig::single_skylake();
    let sla_ms = 100.0;
    let tuned = DeepRecSched::new(SearchOptions::quick()).tune_cpu(&cfg, cluster, sla_ms);
    assert!(tuned.qps > 0.0, "offline tuner found an operating point");
    // Serve at half the tuned capacity: enough load that a bad batch
    // size visibly queues, enough headroom that the controller's
    // cold-start backlog (it pilots a unit batch first) can drain.
    // The horizon covers the cold-start climb plus the hysteresis-paced
    // walk-down re-judgments (each retune now waits for two confirming
    // windows before piloting a rung).
    let load = 0.5 * tuned.qps;
    let queries: Vec<_> = QueryGenerator::new(
        ArrivalProcess::poisson(load),
        SizeDistribution::production(),
        29,
    )
    .take(24_000)
    .collect();
    let workers = cluster.cpu.cores;

    let serve_fixed = |policy: SchedulerPolicy| {
        let server = Server::new(&cfg, cluster.cpu, None, ServerOptions::new(workers, policy));
        server.serve_virtual(&queries)
    };
    // A deliberately bad fixed policy: the largest rung of the
    // canonical ladder, far past the optimum for this load. The
    // controller-driven run ignores the initial max_batch and
    // cold-starts from the paper's unit batch — the other deliberately
    // bad extreme.
    let bad_policy = SchedulerPolicy::cpu_only(1024);
    let bad = serve_fixed(bad_policy);
    let offline = serve_fixed(tuned.policy);

    let online_opts =
        ServerOptions::new(workers, bad_policy).with_controller(ControllerConfig::standard());
    let online_server = Server::new(&cfg, cluster.cpu, None, online_opts);
    let online = online_server.serve_virtual(&queries);

    assert!(
        online.settled_latency.count > 0,
        "controller settled within the stream (trajectory: {:?})",
        online.batch_trajectory
    );
    // Converged-state tail: the last quarter of the stream, long after
    // the climb finished and its cold-start backlog drained.
    let tail_p95 = |latencies: &[f64]| {
        let tail = &latencies[latencies.len() - latencies.len() / 4..];
        let mut rec = drs_metrics::LatencyRecorder::with_capacity(tail.len());
        for &ms in tail {
            rec.record_ms(ms);
        }
        rec.summary().p95_ms
    };
    let p95_online = tail_p95(&online.latencies_ms);
    let p95_offline = tail_p95(&offline.latencies_ms);
    assert!(
        p95_online <= 1.25 * p95_offline,
        "online converged p95 {p95_online} ms vs offline {p95_offline} ms \
         (trajectory {:?}, final policy {:?})",
        online.batch_trajectory,
        online.final_policy
    );
    assert!(
        p95_online < tail_p95(&bad.latencies_ms),
        "online {p95_online} must beat the untuned bad policy {}",
        tail_p95(&bad.latencies_ms)
    );
}

/// Trace replay through the serving path: recording a stream and
/// replaying it must reproduce the direct run byte-for-byte, on the
/// single-node server and on a cluster (via the shared `ServingStack`
/// entry point).
#[test]
fn trace_replay_matches_direct_serving() {
    let cfg = zoo::dlrm_rmc1();
    let mk_gen = || {
        QueryGenerator::new(
            ArrivalProcess::poisson(700.0),
            SizeDistribution::production(),
            61,
        )
    };
    let n = 900;
    let queries: Vec<_> = mk_gen().take(n).collect();
    let trace = Trace::record(mk_gen(), n);

    let server = Server::new(
        &cfg,
        CpuPlatform::skylake(),
        None,
        ServerOptions::new(40, SchedulerPolicy::cpu_only(64)),
    );
    let direct = server.serve_virtual(&queries);
    let replayed = server.serve_trace(&trace);
    assert_eq!(direct.completed, replayed.completed);
    assert_eq!(direct.latencies_ms, replayed.latencies_ms);

    let cluster = Cluster::new(
        &cfg,
        ClusterTopology::uniform(2, CpuPlatform::skylake(), None),
        RoutingPolicy::LeastOutstanding,
        ServerOptions::new(40, SchedulerPolicy::cpu_only(64)),
    );
    let c_direct = cluster.serve_virtual(&queries);
    let c_replayed = ServingStack::serve_trace(&cluster, &trace);
    assert_eq!(c_direct.completed, c_replayed.completed);
    assert_eq!(c_direct.latencies_ms, c_replayed.latencies_ms);
    assert_eq!(c_direct.node_queries, c_replayed.node_queries);
}

/// A recorded trace also drives the *real* serving path end to end
/// (ROADMAP "Trace-driven serving"): every query in the trace
/// completes on the physical worker pool.
#[test]
fn trace_drives_the_real_engine() {
    let cfg = zoo::ncf();
    let model = tiny_model(&cfg, 9);
    let trace = Trace::record(
        QueryGenerator::new(
            ArrivalProcess::poisson(1_200.0),
            SizeDistribution::production(),
            19,
        ),
        60,
    );
    let mut opts = ServerOptions::new(2, SchedulerPolicy::cpu_only(32));
    opts.warmup_frac = 0.0;
    opts.time_scale = 4.0;
    let server = Server::new(&cfg, CpuPlatform::skylake(), None, opts);
    let report = server.serve_trace_real(model, &trace);
    assert_eq!(report.completed, trace.len() as u64);
    assert!(report.latency.p95_ms > 0.0);
}

/// The cluster's real path: two nodes, each with its own engine worker
/// pool, behind the router — every query completes and both nodes see
/// work.
#[test]
fn cluster_serves_real_engines_end_to_end() {
    let cfg = zoo::ncf();
    let model = tiny_model(&cfg, 13);
    let queries: Vec<_> = QueryGenerator::new(
        ArrivalProcess::poisson(1_500.0),
        SizeDistribution::production(),
        23,
    )
    .take(80)
    .collect();
    let mut opts = ServerOptions::new(1, SchedulerPolicy::cpu_only(32));
    opts.warmup_frac = 0.0;
    opts.time_scale = 4.0;
    let cluster = Cluster::new(
        &cfg,
        ClusterTopology::uniform(2, CpuPlatform::skylake(), None),
        RoutingPolicy::LeastOutstanding,
        opts,
    );
    let report = cluster.serve_real(model, &queries);
    assert_eq!(report.completed, queries.len() as u64);
    assert_eq!(report.latencies_ms.len(), queries.len());
    assert_eq!(
        report.node_queries.iter().sum::<u64>(),
        queries.len() as u64
    );
    assert!(
        report.node_queries.iter().all(|&n| n > 0),
        "both nodes served work: {:?}",
        report.node_queries
    );
    assert!(report.qps > 0.0);
}

/// Under sustained overload the bounded dispatch path must register
/// backpressure instead of buffering silently.
#[test]
fn overload_registers_backpressure() {
    let cfg = zoo::dlrm_rmc2();
    // 2 modelled workers, a tiny queue bound, and a load far past what
    // two cores sustain.
    let mut opts = ServerOptions::new(2, SchedulerPolicy::cpu_only(64));
    opts.batching.queue_bound = 4;
    let queries: Vec<_> = QueryGenerator::new(
        ArrivalProcess::poisson(4_000.0),
        SizeDistribution::production(),
        41,
    )
    .take(1_500)
    .collect();
    let server = Server::new(&cfg, CpuPlatform::skylake(), None, opts);
    let report = server.serve_virtual(&queries);
    assert_eq!(report.completed, 1_350, "all post-warm-up queries finish");
    assert!(
        report.backpressure_stalls > 0,
        "queue bound 4 under 2-worker overload must stall"
    );
    assert!(report.max_queue_depth > 4);
}
