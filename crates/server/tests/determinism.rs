//! Determinism contract for the serving runtime: virtual-time runs
//! must be **byte-identical** across executions for a fixed seed, even
//! with dynamic batching, GPU offload, and the online controller all
//! engaged. Every offline-vs-online comparison rests on this.
//!
//! Regression note (PR 8): the per-query / in-flight bookkeeping in
//! `node.rs`, `server.rs`, and `cluster.rs` moved from `HashMap` to
//! `BTreeMap` when `drs-lint`'s `hash-iter` rule landed. All access
//! was keyed, so the reports here were confirmed byte-identical
//! before and after the swap (the smoke-figure outputs were diffed
//! byte-for-byte); these tests now also guard that the swap — or any
//! future map change — never perturbs a report.

use drs_core::{ClusterTopology, NodeSpec, RoutingPolicy, SchedulerPolicy};
use drs_models::zoo;
use drs_platform::{CpuPlatform, GpuPlatform};
use drs_query::{ArrivalProcess, QueryGenerator, SizeDistribution};
use drs_server::{Cluster, ControllerConfig, Server, ServerOptions};

fn smoke_run(seed: u64) -> String {
    let queries: Vec<_> = QueryGenerator::new(
        ArrivalProcess::diurnal(600.0, 0.3, 10.0),
        SizeDistribution::production(),
        seed,
    )
    .take(800)
    .collect();
    let opts = ServerOptions::new(40, SchedulerPolicy::with_gpu(4, 400))
        .with_controller(ControllerConfig::smoke());
    let server = Server::new(
        &zoo::dlrm_rmc1(),
        CpuPlatform::skylake(),
        Some(GpuPlatform::gtx_1080ti()),
        opts,
    );
    // Debug rendering covers every field, including the raw latency
    // vector and both controller trajectories: any drift shows up.
    format!("{:?}", server.serve_virtual(&queries))
}

#[test]
fn server_report_is_byte_identical_per_seed() {
    assert_eq!(smoke_run(13), smoke_run(13), "same seed must reproduce");
    assert_ne!(smoke_run(13), smoke_run(14), "different seeds must differ");
}

/// A heterogeneous cluster behind a *sampled* routing policy
/// (power-of-two-choices) with per-node online controllers — the most
/// nondeterminism-prone configuration we have — must still reproduce
/// byte-for-byte per seed: the router's RNG is seeded, and every tie
/// breaks by `NodeId`.
fn cluster_run(seed: u64) -> String {
    let queries: Vec<_> = QueryGenerator::new(
        ArrivalProcess::diurnal(1_500.0, 0.3, 8.0),
        SizeDistribution::production(),
        seed,
    )
    .take(1_000)
    .collect();
    let mut opts = ServerOptions::new(40, SchedulerPolicy::with_gpu(32, 300))
        .with_controller(ControllerConfig::smoke());
    opts.seed = seed;
    let cluster = Cluster::new(
        &zoo::dlrm_rmc1(),
        ClusterTopology::new(vec![
            NodeSpec::with_gpu(CpuPlatform::skylake(), GpuPlatform::gtx_1080ti()),
            NodeSpec::cpu_only(CpuPlatform::broadwell()),
            NodeSpec::cpu_only(CpuPlatform::skylake()),
        ]),
        RoutingPolicy::PowerOfTwoChoices { d: 2 },
        opts,
    );
    format!("{:?}", cluster.serve_virtual(&queries))
}

#[test]
fn cluster_report_is_byte_identical_per_seed() {
    assert_eq!(cluster_run(3), cluster_run(3), "same seed must reproduce");
    assert_ne!(
        cluster_run(3),
        cluster_run(4),
        "different seeds must differ"
    );
}

#[test]
fn cpu_only_fixed_policy_is_byte_identical() {
    let run = || {
        let queries: Vec<_> = QueryGenerator::new(
            ArrivalProcess::poisson(900.0),
            SizeDistribution::production(),
            5,
        )
        .take(600)
        .collect();
        let server = Server::new(
            &zoo::ncf(),
            CpuPlatform::skylake(),
            None,
            ServerOptions::new(40, SchedulerPolicy::cpu_only(32)),
        );
        format!("{:?}", server.serve_virtual(&queries))
    };
    assert_eq!(run(), run());
}
