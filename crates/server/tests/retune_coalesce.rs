//! Regression: a controller retune that lands mid-coalesce must not
//! strand the open residual until the coalesce window it was buffered
//! under expires.
//!
//! The push paths re-arm the coalesce event whenever an arrival opens
//! a fresh buffer (the `deadline_before` pattern in `node.rs`); the
//! retune path's obligation is the dual: when the controller moves the
//! knob, the open residual was buffered under assumptions that no
//! longer hold, so the retune flushes it into the reform repack —
//! collapsing its remaining window to *now* — and re-arms against the
//! post-retune `BatchQueue::deadline()`. Before that fix, a residual
//! coalescing under a long window would sit out the full window even
//! though the lane had already been re-tuned and had idle workers.

use drs_core::SchedulerPolicy;
use drs_models::zoo;
use drs_platform::CpuPlatform;
use drs_query::Trace;
use drs_server::{ControllerConfig, Server, ServerOptions};

/// One-second coalesce window, a controller whose first window close
/// retunes the batch knob (ladder [2, 4]), and a size-3 query whose
/// 1-item residual is mid-coalesce when the retune fires.
#[test]
fn retune_mid_coalesce_flushes_the_open_residual() {
    let window = 8;
    let cfg = ControllerConfig {
        window,
        batch_ladder: vec![2, 4],
        ..ControllerConfig::standard()
    };
    let mut opts = ServerOptions::new(4, SchedulerPolicy::cpu_only(2)).with_controller(cfg);
    opts.warmup_frac = 0.0;
    // A one-second coalesce window: stranded residuals are unmissable.
    opts.batching.coalesce_timeout_us = 1_000_000.0;

    // Eight size-2 queries close the first control window (each is one
    // full chunk at the ladder base of 2 — no residuals); the size-3
    // query between them banks a 1-item residual in the coalesce
    // buffer. The 8th completion closes the window, the climb steps
    // 2 -> 4, and the retune must flush that residual rather than
    // leave it waiting out the remaining ~993 ms.
    let mut pairs: Vec<(f64, u32)> = (0..7).map(|i| (i as f64 * 1e-3, 2)).collect();
    pairs.push((6.5e-3, 3));
    pairs.push((7e-3, 2));
    let trace = Trace::from_pairs(&pairs);

    let server = Server::new(&zoo::ncf(), CpuPlatform::skylake(), None, opts);
    let r = server.serve_trace(&trace);

    assert_eq!(r.completed, 9, "every query completes");
    assert!(
        r.retunes == 0,
        "the knob move is the initial climb, not a settled-phase retune"
    );
    assert!(
        r.final_policy.max_batch >= 4,
        "the climb moved the knob: {:?}",
        r.final_policy
    );
    // The stranded-residual symptom: without the retune-path flush the
    // size-3 query completes only when the 1 s window expires, pushing
    // its latency (and the run's max) past 990 ms. With the fix every
    // latency stays in the service-time regime.
    assert!(
        r.latency.max_ms < 500.0,
        "residual stranded mid-coalesce: max latency {} ms",
        r.latency.max_ms
    );
    assert_eq!(
        r.timeout_flushes, 0,
        "nothing should be left to the coalesce timer in this run"
    );
}
