//! The open-loop serving runtime: arrivals → batching queue → CPU
//! worker pool / GPU offload, with the online controller in the loop.

use crate::batcher::Batch;
use crate::cluster::Router;
use crate::controller::ControllerConfig;
use crate::node::{
    self, CpuUtilOverride, NodeCore, NodeSetup, NodeUtilization, Route, RunOutcome, StreamStats,
    TenantSetup, TimedBatch,
};
use crate::report::ServerReport;
use drs_core::{
    assert_nonempty_queries, assert_nonempty_trace, secs_to_ns, stream_offered_qps, MultiModelSpec,
    RoutingPolicy, SchedulerPolicy, ServingStack, SimTime,
};
use drs_engine::{EngineCompletion, EngineRequest, InferenceEngine};
use drs_models::{ModelConfig, RecModel};
use drs_platform::{CpuPlatform, GpuPlatform, ModelCost};
use drs_query::{Query, Trace};
use drs_telemetry::{MetricsSink, NoopMetrics, NoopSink, TraceSink};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Dynamic-batching parameters.
#[derive(Debug, Clone, Copy)]
pub struct BatchingConfig {
    /// How long a sub-batch residual may wait for company before the
    /// open batch ships anyway, microseconds. `0` disables coalescing.
    pub coalesce_timeout_us: f64,
    /// Dispatch-queue depth at which the server counts backpressure
    /// (and, on the real engine, stops submitting until workers catch
    /// up).
    pub queue_bound: usize,
}

impl BatchingConfig {
    /// Serving defaults: a 200 µs coalesce window, 64 pending requests.
    pub fn standard() -> Self {
        BatchingConfig {
            coalesce_timeout_us: 200.0,
            queue_bound: 64,
        }
    }
}

/// Configuration of one serving run.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// CPU worker slots (threads on the real engine, modelled cores in
    /// virtual time). A [`crate::Cluster`] grants this many slots per
    /// node, capped at each node's core count.
    pub workers: usize,
    /// Scheduling policy served when no controller is attached. With a
    /// controller, only its `gpu_threshold` is kept (for the batch
    /// phase): the controller pilots `max_batch` from the ladder base,
    /// per the paper's unit-batch starting point (Section IV-C).
    pub policy: SchedulerPolicy,
    /// Dynamic-batching parameters.
    pub batching: BatchingConfig,
    /// Online controller; `None` serves the fixed policy.
    pub controller: Option<ControllerConfig>,
    /// Leading fraction of queries excluded from statistics (warm-up).
    pub warmup_frac: f64,
    /// Seed for synthetic input generation (real engine) and the
    /// router's sampled dispatch policies (cluster).
    pub seed: u64,
    /// Real-mode pacing compression: 2.0 replays arrivals (and the
    /// GPU's virtual clock) at twice real time. CPU forward passes are
    /// physical and do not scale.
    pub time_scale: f64,
}

impl ServerOptions {
    /// Defaults: standard batching, no controller, 10 % warm-up, real
    /// time.
    pub fn new(workers: usize, policy: SchedulerPolicy) -> Self {
        ServerOptions {
            workers,
            policy,
            batching: BatchingConfig::standard(),
            controller: None,
            warmup_frac: 0.1,
            seed: 0,
            time_scale: 1.0,
        }
    }

    /// Attaches an online controller.
    pub fn with_controller(mut self, cfg: ControllerConfig) -> Self {
        self.controller = Some(cfg);
        self
    }

    /// Overrides the batching parameters.
    pub fn with_batching(mut self, batching: BatchingConfig) -> Self {
        self.batching = batching;
        self
    }

    /// Validates the hardware-independent invariants shared by every
    /// constructor (`Server::new`, `Cluster::new`).
    ///
    /// # Panics
    ///
    /// Panics if any option is degenerate.
    pub(crate) fn validate(&self) {
        assert!(self.workers > 0, "need at least one worker");
        assert!(self.time_scale > 0.0, "time scale must be positive");
        assert!(
            (0.0..1.0).contains(&self.warmup_frac),
            "warm-up fraction must be in [0, 1)"
        );
        assert!(
            self.batching.queue_bound > 0,
            "queue bound must be positive"
        );
    }
}

/// An open-loop recommendation inference server for one model on one
/// node.
///
/// Two execution substrates share one scheduling brain (batching
/// queue, offload routing, online controller):
///
/// * [`Server::serve_virtual`] — deterministic virtual time; CPU and
///   GPU service times come from [`drs_platform::ModelCost`], so runs
///   are byte-reproducible and cross-validate against `drs-sim`.
/// * [`Server::serve_real`] — wall-clock time; CPU batches execute as
///   real forward passes on a [`drs_engine::InferenceEngine`] worker
///   pool (with bounded-queue backpressure), while GPU offloads run on
///   the virtual-time cost model.
///
/// The per-node brain itself lives in `node.rs`; a [`crate::Cluster`]
/// instantiates it N times behind a front-end [`crate::Router`].
///
/// # Examples
///
/// ```
/// use drs_core::SchedulerPolicy;
/// use drs_models::zoo;
/// use drs_platform::CpuPlatform;
/// use drs_query::{ArrivalProcess, QueryGenerator, SizeDistribution};
/// use drs_server::{Server, ServerOptions};
///
/// let queries: Vec<_> = QueryGenerator::new(
///     ArrivalProcess::poisson(500.0),
///     SizeDistribution::production(),
///     7,
/// )
/// .take(400)
/// .collect();
/// let server = Server::new(
///     &zoo::dlrm_rmc1(),
///     CpuPlatform::skylake(),
///     None,
///     ServerOptions::new(40, SchedulerPolicy::cpu_only(64)),
/// );
/// let report = server.serve_virtual(&queries);
/// assert!(report.completed > 0);
/// assert!(report.latency.p95_ms > 0.0);
/// ```
#[derive(Debug)]
pub struct Server {
    /// Per-tenant cost models, in tenant order.
    costs: Vec<ModelCost>,
    /// Per-tenant serving parameters, in tenant order.
    tenants: Vec<TenantSetup>,
    cpu: CpuPlatform,
    gpu: Option<GpuPlatform>,
    opts: ServerOptions,
}

impl Server {
    /// Builds a server for one model on one node.
    ///
    /// # Panics
    ///
    /// Panics if options are degenerate or the policy offloads without
    /// a GPU on the node.
    pub fn new(
        cfg: &ModelConfig,
        cpu: CpuPlatform,
        gpu: Option<GpuPlatform>,
        opts: ServerOptions,
    ) -> Self {
        opts.validate();
        assert!(
            opts.policy.gpu_threshold.is_none() || gpu.is_some(),
            "policy offloads to a GPU the node does not have"
        );
        Server {
            costs: vec![ModelCost::new(cfg)],
            tenants: vec![TenantSetup::solo(opts.policy, cfg.sla_ms)],
            cpu,
            gpu,
            opts,
        }
    }

    /// Builds a server co-locating the spec's models on one node's
    /// shared worker pool: each tenant gets its own batching queue and
    /// (when `opts.controller` is set) its own online controller tuned
    /// against its own SLA tier, while the pool is arbitrated by
    /// deficit round-robin across tenants (PAPER §III: per-model
    /// knobs on shared hardware).
    ///
    /// `opts.policy` is ignored; each tenant serves its spec policy.
    ///
    /// # Panics
    ///
    /// Panics if options are degenerate or any tenant's policy
    /// offloads without a GPU on the node.
    pub fn new_multi(
        spec: &MultiModelSpec,
        cpu: CpuPlatform,
        gpu: Option<GpuPlatform>,
        opts: ServerOptions,
    ) -> Self {
        opts.validate();
        for t in spec.tenants() {
            assert!(
                t.policy.gpu_threshold.is_none() || gpu.is_some(),
                "tenant {} offloads to a GPU the node does not have",
                t.name
            );
        }
        Server {
            costs: spec
                .tenants()
                .iter()
                .map(|t| ModelCost::new(&t.model))
                .collect(),
            tenants: spec
                .tenants()
                .iter()
                .map(|t| TenantSetup {
                    policy: t.policy,
                    weight: t.weight,
                    report_sla_ms: t.sla_ms,
                    controller_sla_ms: Some(t.sla_ms),
                })
                .collect(),
            cpu,
            gpu,
            opts,
        }
    }

    /// The options this server runs with.
    pub fn options(&self) -> &ServerOptions {
        &self.opts
    }

    /// The cost model in use (the first tenant's, on a multi-tenant
    /// server; shared with the simulator's math).
    pub fn cost(&self) -> &ModelCost {
        &self.costs[0]
    }

    /// Number of co-located tenants this server serves.
    pub fn tenants(&self) -> usize {
        self.tenants.len()
    }

    fn setup(&self) -> NodeSetup {
        NodeSetup {
            cpu: self.cpu,
            gpu: self.gpu,
            workers: self.opts.workers,
        }
    }

    /// Serves `queries` in deterministic virtual time and reports.
    ///
    /// # Panics
    ///
    /// Panics if `queries` is empty.
    pub fn serve_virtual(&self, queries: &[Query]) -> ServerReport {
        self.serve_virtual_traced(queries, &mut NoopSink)
    }

    /// [`Server::serve_virtual`] with query-lifecycle tracing: every
    /// measured query's per-stage span is recorded into `sink` (see
    /// [`drs_telemetry`]). With a recording sink the report also
    /// carries a [`drs_telemetry::StageBreakdown`].
    ///
    /// # Panics
    ///
    /// Panics if `queries` is empty.
    pub fn serve_virtual_traced<S: TraceSink>(
        &self,
        queries: &[Query],
        sink: &mut S,
    ) -> ServerReport {
        self.serve_virtual_inner(queries, sink, &mut NoopMetrics)
    }

    /// [`Server::serve_virtual`] with fleet-pulse metrics: time-series
    /// gauges sample on the virtual clock at `pulse`'s interval, and
    /// controller re-tunes / DRR grants land in the decision log (see
    /// [`drs_telemetry::PulseRecorder`]). With a recording pulse the
    /// report also carries a [`drs_telemetry::PulseSummary`].
    ///
    /// # Panics
    ///
    /// Panics if `queries` is empty.
    pub fn serve_virtual_pulsed<M: MetricsSink>(
        &self,
        queries: &[Query],
        pulse: &mut M,
    ) -> ServerReport {
        self.serve_virtual_inner(queries, &mut NoopSink, pulse)
    }

    fn serve_virtual_inner<S: TraceSink, M: MetricsSink>(
        &self,
        queries: &[Query],
        sink: &mut S,
        pulse: &mut M,
    ) -> ServerReport {
        // A single node behind a trivial router: the same loop a
        // Cluster runs, with N = 1.
        let router = Router::new(
            RoutingPolicy::LeastOutstanding,
            &[self.gpu.is_some()],
            0,
            self.opts.seed,
        );
        node::serve_virtual_multi(
            &self.costs,
            &self.tenants,
            &[self.setup()],
            &self.opts,
            router,
            None,
            queries,
            sink,
            pulse,
        )
    }

    /// Replays a recorded [`Trace`] through the virtual-time serving
    /// path — deterministic, production-shaped replay (ROADMAP
    /// "Trace-driven serving").
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn serve_trace(&self, trace: &Trace) -> ServerReport {
        assert_nonempty_trace(trace);
        let queries: Vec<Query> = trace.replay().collect();
        self.serve_virtual(&queries)
    }

    /// Replays a recorded [`Trace`] through [`Server::serve_real`]: a
    /// wall-clock soak run shaped by captured production traffic.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn serve_trace_real(&self, model: Arc<RecModel>, trace: &Trace) -> ServerReport {
        assert_nonempty_trace(trace);
        let queries: Vec<Query> = trace.replay().collect();
        self.serve_real(model, &queries)
    }

    /// Serves `queries` on the real inference engine: arrivals are
    /// paced by the wall clock (compressed by `time_scale`), CPU
    /// batches run as physical forward passes through a bounded worker
    /// pool, GPU offloads complete on the cost model's virtual clock.
    ///
    /// Latencies are reported on the (scaled) arrival clock, measured
    /// from each query's *scheduled* arrival (so submitter jitter
    /// counts as queueing, not as a shifted arrival), and at
    /// `time_scale = 1.0` they are wall-clock milliseconds. On a
    /// multi-tenant server use [`Server::serve_real_multi`] with one
    /// model per tenant.
    ///
    /// # Panics
    ///
    /// Panics if `queries` is empty, the server co-locates more than
    /// one tenant, or the model geometry disagrees with the server's
    /// configuration.
    pub fn serve_real(&self, model: Arc<RecModel>, queries: &[Query]) -> ServerReport {
        self.serve_real_multi(vec![model], queries)
    }

    /// [`Server::serve_real`] with query-lifecycle tracing into `sink`.
    /// Span stages on the cost-model clock (GPU offloads) are
    /// identical to the virtual path's; engine-executed stages carry
    /// scaled wall time.
    ///
    /// # Panics
    ///
    /// Panics as [`Server::serve_real`] does.
    pub fn serve_real_traced<S: TraceSink>(
        &self,
        model: Arc<RecModel>,
        queries: &[Query],
        sink: &mut S,
    ) -> ServerReport {
        self.serve_real_multi_traced(vec![model], queries, sink)
    }

    /// The multi-tenant real path: one shared [`InferenceEngine`]
    /// worker pool executes every tenant's lane, with `models[t]`
    /// serving tenant `t`'s requests. Per-tenant batching queues and
    /// controllers run exactly as in virtual time, and lanes are
    /// arbitrated onto the pool by the same deficit-round-robin
    /// discipline the virtual node uses; GPU offloads share the
    /// virtual-time device with per-tenant pricing.
    ///
    /// # Panics
    ///
    /// Panics if `queries` is empty, `models` does not provide exactly
    /// one model per tenant, or a model's geometry disagrees with its
    /// tenant's cost model.
    pub fn serve_real_multi(&self, models: Vec<Arc<RecModel>>, queries: &[Query]) -> ServerReport {
        self.serve_real_multi_traced(models, queries, &mut NoopSink)
    }

    /// [`Server::serve_real_multi`] with query-lifecycle tracing into
    /// `sink` (see [`Server::serve_real_traced`]).
    ///
    /// # Panics
    ///
    /// Panics as [`Server::serve_real_multi`] does.
    pub fn serve_real_multi_traced<S: TraceSink>(
        &self,
        models: Vec<Arc<RecModel>>,
        queries: &[Query],
        sink: &mut S,
    ) -> ServerReport {
        self.serve_real_multi_inner(models, queries, sink, &mut NoopMetrics)
    }

    /// [`Server::serve_real`] with fleet-pulse metrics into `pulse`.
    /// Ticks fire on the model-time clock at event boundaries (GPU
    /// completions, arrivals), so on the offload-all path the sampled
    /// series are bit-identical to [`Server::serve_virtual_pulsed`]'s.
    ///
    /// # Panics
    ///
    /// Panics as [`Server::serve_real`] does.
    pub fn serve_real_pulsed<M: MetricsSink>(
        &self,
        model: Arc<RecModel>,
        queries: &[Query],
        pulse: &mut M,
    ) -> ServerReport {
        self.serve_real_multi_inner(vec![model], queries, &mut NoopSink, pulse)
    }

    /// [`Server::serve_real_multi`] with fleet-pulse metrics into
    /// `pulse` (see [`Server::serve_real_pulsed`]).
    ///
    /// # Panics
    ///
    /// Panics as [`Server::serve_real_multi`] does.
    pub fn serve_real_multi_pulsed<M: MetricsSink>(
        &self,
        models: Vec<Arc<RecModel>>,
        queries: &[Query],
        pulse: &mut M,
    ) -> ServerReport {
        self.serve_real_multi_inner(models, queries, &mut NoopSink, pulse)
    }

    fn serve_real_multi_inner<S: TraceSink, M: MetricsSink>(
        &self,
        models: Vec<Arc<RecModel>>,
        queries: &[Query],
        sink: &mut S,
        pulse: &mut M,
    ) -> ServerReport {
        assert_nonempty_queries(queries);
        assert_eq!(
            models.len(),
            self.tenants.len(),
            "one model per tenant: got {} models for {} tenants",
            models.len(),
            self.tenants.len()
        );
        let setup = self.setup();
        let engine = InferenceEngine::start_multi(models.clone(), self.opts.workers)
            .with_queue_bound(self.opts.batching.queue_bound);
        let pulse_tick_ns = pulse.interval_ns().max(1);
        let mut rt = RealRuntime {
            stats: StreamStats::new(queries.len(), self.opts.warmup_frac, self.tenants.len()),
            node: NodeCore::new(&self.costs, &self.tenants, &setup, &self.opts),
            arbiter: node::DrrArbiter::new(&self.tenants),
            engine,
            models,
            rng: StdRng::seed_from_u64(self.opts.seed),
            pending: self.tenants.iter().map(|_| VecDeque::new()).collect(),
            pending_total: 0,
            next_req: 0,
            inflight: BTreeMap::new(),
            gpu_heap: BinaryHeap::new(),
            outstanding: 0,
            busy_service_ns: 0,
            // Real-path submitter: wall-clock anchors the pacing loop.
            t0: Instant::now(), // lint:allow(wall-clock)
            scale: self.opts.time_scale,
            sink: &mut *sink,
            pulse: &mut *pulse,
            tick_ns: pulse_tick_ns,
            // The real clock anchors at the first arrival (epoch 0), so
            // the first tick lands one interval in — exactly where the
            // virtual loop's first rebased tick lands.
            next_tick: pulse_tick_ns,
        };
        // Shift arrivals by an integer nanosecond offset so the paced
        // clock starts near zero while staying exactly the virtual
        // clock minus a constant — per-query latencies then match the
        // virtual path bit for bit wherever service is cost-model
        // priced.
        let base_ns = secs_to_ns(queries[0].arrival_s);

        for q in queries {
            let due = secs_to_ns(q.arrival_s) - base_ns; // model-time ns
            loop {
                rt.pump(due);
                let now = rt.now();
                if now >= due {
                    break;
                }
                let mut next = due;
                if let Some(&Reverse((t, _))) = rt.gpu_heap.peek() {
                    next = next.min(t.max(now));
                }
                if let Some(d) = rt.node.earliest_deadline() {
                    next = next.min(d.max(now));
                }
                // Floor the wait in *wall-clock* terms, after scaling:
                // a model-time floor shrinks toward zero at high
                // `time_scale` and the submitter busy-spins.
                let wait = Duration::from_secs_f64((next - now) as f64 / rt.scale / 1e9)
                    .max(Duration::from_micros(20));
                if let Ok(c) = rt.engine.completions().recv_timeout(wait) {
                    rt.handle_cpu(c);
                }
            }
            // Dispatch on the scheduled arrival clock: the virtual
            // queue state (GPU FIFO, coalesce windows, controller) sees
            // `due`, not the submitter's overshoot.
            rt.drain_ticks(due);
            rt.outstanding += 1;
            let measured = rt.stats.note_arrival(due, q, 0);
            match rt.node.on_arrival(due, q) {
                Route::Gpu { start, done } => {
                    rt.stats.span_gpu(q.id, start);
                    rt.stats.note_gpu_items(measured, q.size);
                    rt.gpu_heap.push(Reverse((done, q.id)));
                }
                Route::Cpu(batches) => rt.queue_batches(due, q.tenant.index(), batches),
            }
        }

        // Drain the tail: everything still queued, batching, in flight
        // on the engine, or ticking down on the GPU's virtual clock.
        while rt.outstanding > 0 {
            rt.pump(SimTime::MAX);
            if rt.outstanding == 0 {
                break;
            }
            if let Ok(c) = rt
                .engine
                .completions()
                .recv_timeout(Duration::from_micros(200))
            {
                rt.handle_cpu(c);
            }
        }

        let end_model_ns = rt.now();
        let wall_elapsed_ns = rt.t0.elapsed().as_nanos().max(1);
        let cpu_util =
            rt.busy_service_ns as f64 / (self.opts.workers as f64 * wall_elapsed_ns as f64);
        let RealRuntime {
            stats,
            node,
            engine,
            ..
        } = rt;
        engine.shutdown();
        let mut report = node::assemble_report(
            RunOutcome {
                stats,
                cores: vec![node],
                setups: vec![setup],
                tenant_setups: self.tenants.clone(),
                utilization: vec![NodeUtilization {
                    busy_core_ns: 0,
                    workers: self.opts.workers,
                }],
                end_ns: end_model_ns,
                node_queries: vec![queries.len() as u64],
                cpu_utilization_override: Some(CpuUtilOverride {
                    per_node: vec![cpu_util],
                    overall: cpu_util,
                }),
            },
            stream_offered_qps(queries),
        );
        if S::ENABLED {
            report.stage_breakdown = sink.breakdown();
        }
        if M::ENABLED {
            report.pulse = pulse.summary();
        }
        report
    }
}

impl ServingStack for Server {
    type Report = ServerReport;

    fn label(&self) -> String {
        if self.tenants.len() > 1 {
            format!("server multi x{}", self.tenants.len())
        } else {
            "server".to_string()
        }
    }

    fn serve_queries(&self, queries: &[Query]) -> ServerReport {
        self.serve_virtual(queries)
    }

    fn serve_trace(&self, trace: &Trace) -> ServerReport {
        Server::serve_trace(self, trace)
    }
}

/// Wall-clock serving state for [`Server::serve_real`] /
/// [`Server::serve_real_multi`]: one shared engine pool, one pending
/// lane per tenant, arbitrated by the same [`node::DrrArbiter`] the
/// virtual node runs.
struct RealRuntime<'s, S: TraceSink, M: MetricsSink> {
    stats: StreamStats,
    node: NodeCore,
    arbiter: node::DrrArbiter,
    engine: InferenceEngine,
    /// One model per tenant, in tenant order.
    models: Vec<Arc<RecModel>>,
    rng: StdRng,
    /// Per-tenant batches awaiting engine admission (a head may carry
    /// its already generated request after a backpressure refusal).
    pending: Vec<VecDeque<(TimedBatch, Option<EngineRequest>)>>,
    pending_total: usize,
    /// Engine request ids — globally unique across tenant lanes (batch
    /// ids are per-lane and collide).
    next_req: u64,
    inflight: BTreeMap<u64, (usize, TimedBatch)>,
    /// GPU completions on the virtual clock, earliest first.
    gpu_heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    outstanding: usize,
    /// Sum of worker-side service durations (wall ns) — the CPU busy
    /// integral.
    busy_service_ns: u128,
    t0: Instant,
    scale: f64,
    /// Where completed queries' lifecycle spans go.
    sink: &'s mut S,
    /// Where fleet-pulse samples, window observations, and decisions
    /// go.
    pulse: &'s mut M,
    /// Sampling interval on the model-time clock, ns.
    tick_ns: SimTime,
    /// Next due sample time (model-time ns); ticks fire at event
    /// boundaries via [`RealRuntime::drain_ticks`], mirroring the
    /// virtual loop's pre-pop drain.
    next_tick: SimTime,
}

impl<S: TraceSink, M: MetricsSink> RealRuntime<'_, S, M> {
    /// Model-time now: scaled wall nanoseconds since start.
    fn now(&self) -> SimTime {
        (self.t0.elapsed().as_secs_f64() * self.scale * 1e9) as SimTime // lint:allow(clock-taint): wall time enters model time here, by design
    }

    /// Fires every fleet-pulse tick due at or before `t` (model-time
    /// ns), sampling the same gauge set at the same tie-break the
    /// virtual loop uses (a tick at T fires before any event at T).
    /// Only model-time events drive this — GPU completions at their
    /// scheduled times and arrivals at their due times — never the raw
    /// wall clock, so on cost-model-priced paths the sampled series
    /// are bit-identical to the virtual runtime's. The engine-pool
    /// depth gauges are real-path extras (the virtual loop has no
    /// engine) and carry keys no virtual series uses.
    fn drain_ticks(&mut self, t: SimTime) {
        if M::ENABLED {
            while self.next_tick <= t {
                let depth = self.engine.queue_depth() + self.pending_total;
                self.pulse.gauge("queue_depth_n0", depth as f64);
                if let Some(g) = &self.node.gpu {
                    self.pulse.gauge(
                        "gpu_backlog_ns_n0",
                        g.busy_until().saturating_sub(self.next_tick) as f64,
                    );
                    self.pulse.gauge("gpu_completed_n0", g.completed() as f64);
                }
                for lane in 0..self.pending.len() {
                    let pol = self.node.policy(lane);
                    self.pulse
                        .gauge(&format!("max_batch_n0_t{lane}"), pol.max_batch as f64);
                    self.pulse.gauge(
                        &format!("gpu_threshold_n0_t{lane}"),
                        pol.gpu_threshold.map_or(-1.0, |v| v as f64),
                    );
                    self.pulse.gauge(
                        &format!("drr_deficit_n0_t{lane}"),
                        self.arbiter.deficits()[lane] as f64,
                    );
                }
                self.pulse
                    .gauge("engine_queue_depth_n0", self.engine.queue_depth() as f64);
                self.pulse.gauge(
                    "engine_peak_depth_n0",
                    self.engine.peak_queue_depth() as f64,
                );
                self.pulse.tick(self.next_tick);
                self.next_tick += self.tick_ns;
            }
        }
    }

    /// Drains everything that is ready without blocking: engine
    /// completions, GPU completions the virtual clock finishes before
    /// `gpu_bound` (the next arrival's scheduled time, so offload
    /// completions interleave with arrivals in exactly the virtual
    /// event order, independent of wall-clock jitter), due coalesce
    /// flushes, and pending submissions.
    fn pump(&mut self, gpu_bound: SimTime) {
        loop {
            if let Some(c) = self.engine.try_completion() {
                self.handle_cpu(c);
                continue;
            }
            if let Some(&Reverse((t, qid))) = self.gpu_heap.peek() {
                if t < gpu_bound {
                    self.gpu_heap.pop();
                    let items = self.stats.remaining_items(qid);
                    // Complete at the scheduled virtual time, not the
                    // drain time — ticks due by then fire first.
                    self.drain_ticks(t);
                    self.finish_items(t, qid, items);
                    continue;
                }
            }
            let now = self.now();
            if self.node.earliest_deadline().is_some_and(|d| d <= now) {
                for t in 0..self.pending.len() {
                    if self.node.batcher(t).deadline().is_some_and(|d| d <= now) {
                        let mut out = Vec::new();
                        self.node.batcher_mut(t).flush_due(now, &mut out);
                        self.queue_batches(now, t, out);
                    }
                }
                continue;
            }
            break;
        }
        for t in 0..self.pending.len() {
            if self.node.take_policy_dirty(t) {
                // Tenant `t`'s controller retuned: `rebatch_lane`
                // repacks everything not yet admitted to the engine
                // (in-flight requests are committed) plus the open
                // coalesce residual at the new knob. Cached requests
                // are stale and regenerated.
                let queued: Vec<Batch> =
                    self.pending[t].drain(..).map(|(tb, _)| tb.batch).collect();
                self.pending_total -= queued.len();
                let now = self.now();
                for b in self.node.rebatch_lane(t, queued) {
                    self.pending[t].push_back((TimedBatch::formed_at(b, now), None));
                    self.pending_total += 1;
                }
            }
        }
        self.submit_pending();
    }

    /// Queues batches formed at `formed` (model-time ns) for engine
    /// admission.
    fn queue_batches(&mut self, formed: SimTime, tenant: usize, batches: Vec<Batch>) {
        for b in batches {
            self.pending[tenant].push_back((TimedBatch::formed_at(b, formed), None));
            self.pending_total += 1;
        }
        self.submit_pending();
    }

    fn submit_pending(&mut self) {
        while let Some((t, (mut batch, cached))) = self
            .arbiter
            .next(&mut self.pending, |(tb, _)| tb.batch.items as u64)
        {
            self.pending_total -= 1;
            if M::ENABLED {
                self.pulse
                    .drr_round(self.now(), 0, t, self.arbiter.deficits());
            }
            // A cached request means this batch was already refused
            // once: retries are not fresh backpressure.
            let first_attempt = cached.is_none();
            let req = cached.unwrap_or_else(|| {
                let inputs =
                    self.models[t].generate_inputs(batch.batch.items as usize, &mut self.rng);
                let req = EngineRequest::forward_for(self.next_req, t, inputs);
                self.next_req += 1;
                req
            });
            let rid = req.query_id;
            match self.engine.try_submit(req) {
                Ok(()) => {
                    // Admission is the dispatch mark: residency ends
                    // when the engine's bounded queue accepts the work.
                    batch.dispatched = self.now();
                    self.inflight.insert(rid, (t, batch));
                }
                Err(req) => {
                    if first_attempt {
                        self.node.backpressure_stalls += 1;
                    }
                    self.arbiter.refund(t, batch.batch.items as u64);
                    self.pending[t].push_front((batch, Some(req)));
                    self.pending_total += 1;
                    break;
                }
            }
        }
        // Backpressure itself is counted at each refusal above; the
        // gauge tracks total unadmitted depth (engine queue + held
        // batches).
        let depth = self.engine.queue_depth() + self.pending_total;
        self.node.note_queue_depth(depth);
    }

    fn handle_cpu(&mut self, c: EngineCompletion) {
        self.busy_service_ns += c.service.as_nanos();
        let (t, tb) = self.inflight.remove(&c.query_id).expect("known batch");
        debug_assert_eq!(t, c.model);
        debug_assert_eq!(tb.batch.items as usize, c.batch);
        let now = self.now();
        for seg in &tb.batch.segments {
            self.stats
                .span_batch(seg.query_id, tb.formed, tb.dispatched);
            self.finish_items(now, seg.query_id, seg.items);
        }
    }

    fn finish_items(&mut self, now: SimTime, qid: u64, items: u32) {
        match self.stats.credit_items(now, qid, items) {
            node::Credit::Pending => {}
            node::Credit::Done(f) => {
                let settled = self.node.on_query_done(now, f.tenant, f.latency_ms);
                if M::ENABLED {
                    // Single node: the controller already stamps node 0.
                    for d in self.node.drain_decisions() {
                        self.pulse.decision(d);
                    }
                }
                self.stats
                    .record(now, &f, settled, &mut *self.sink, &mut *self.pulse);
                self.outstanding -= 1;
            }
            node::Credit::AwaitExchange { .. } => {
                unreachable!("single-node serving never shards")
            }
        }
    }
}
