//! The open-loop serving runtime: arrivals → batching queue → CPU
//! worker pool / GPU offload, with the online controller in the loop.

use crate::batcher::{Batch, BatchQueue};
use crate::controller::{ControllerConfig, OnlineController};
use crate::gpu::GpuExecutor;
use crate::report::ServerReport;
use drs_core::{secs_to_ns, us_to_ns, EventQueue, SchedulerPolicy, SimTime, NS_PER_SEC};
use drs_engine::{EngineCompletion, EngineRequest, InferenceEngine};
use drs_metrics::LatencyRecorder;
use drs_models::{ModelConfig, RecModel};
use drs_platform::{CpuPlatform, GpuPlatform, ModelCost};
use drs_query::Query;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Dynamic-batching parameters.
#[derive(Debug, Clone, Copy)]
pub struct BatchingConfig {
    /// How long a sub-batch residual may wait for company before the
    /// open batch ships anyway, microseconds. `0` disables coalescing.
    pub coalesce_timeout_us: f64,
    /// Dispatch-queue depth at which the server counts backpressure
    /// (and, on the real engine, stops submitting until workers catch
    /// up).
    pub queue_bound: usize,
}

impl BatchingConfig {
    /// Serving defaults: a 200 µs coalesce window, 64 pending requests.
    pub fn standard() -> Self {
        BatchingConfig {
            coalesce_timeout_us: 200.0,
            queue_bound: 64,
        }
    }
}

/// Configuration of one serving run.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// CPU worker slots (threads on the real engine, modelled cores in
    /// virtual time).
    pub workers: usize,
    /// Scheduling policy served when no controller is attached. With a
    /// controller, only its `gpu_threshold` is kept (for the batch
    /// phase): the controller pilots `max_batch` from the ladder base,
    /// per the paper's unit-batch starting point (Section IV-C).
    pub policy: SchedulerPolicy,
    /// Dynamic-batching parameters.
    pub batching: BatchingConfig,
    /// Online controller; `None` serves the fixed policy.
    pub controller: Option<ControllerConfig>,
    /// Leading fraction of queries excluded from statistics (warm-up).
    pub warmup_frac: f64,
    /// Seed for synthetic input generation (real engine only).
    pub seed: u64,
    /// Real-mode pacing compression: 2.0 replays arrivals (and the
    /// GPU's virtual clock) at twice real time. CPU forward passes are
    /// physical and do not scale.
    pub time_scale: f64,
}

impl ServerOptions {
    /// Defaults: standard batching, no controller, 10 % warm-up, real
    /// time.
    pub fn new(workers: usize, policy: SchedulerPolicy) -> Self {
        ServerOptions {
            workers,
            policy,
            batching: BatchingConfig::standard(),
            controller: None,
            warmup_frac: 0.1,
            seed: 0,
            time_scale: 1.0,
        }
    }

    /// Attaches an online controller.
    pub fn with_controller(mut self, cfg: ControllerConfig) -> Self {
        self.controller = Some(cfg);
        self
    }

    /// Overrides the batching parameters.
    pub fn with_batching(mut self, batching: BatchingConfig) -> Self {
        self.batching = batching;
        self
    }
}

/// An open-loop recommendation inference server for one model on one
/// node.
///
/// Two execution substrates share one scheduling brain (batching
/// queue, offload routing, online controller):
///
/// * [`Server::serve_virtual`] — deterministic virtual time; CPU and
///   GPU service times come from [`drs_platform::ModelCost`], so runs
///   are byte-reproducible and cross-validate against `drs-sim`.
/// * [`Server::serve_real`] — wall-clock time; CPU batches execute as
///   real forward passes on a [`drs_engine::InferenceEngine`] worker
///   pool (with bounded-queue backpressure), while GPU offloads run on
///   the virtual-time cost model.
///
/// # Examples
///
/// ```
/// use drs_core::SchedulerPolicy;
/// use drs_models::zoo;
/// use drs_platform::CpuPlatform;
/// use drs_query::{ArrivalProcess, QueryGenerator, SizeDistribution};
/// use drs_server::{Server, ServerOptions};
///
/// let queries: Vec<_> = QueryGenerator::new(
///     ArrivalProcess::poisson(500.0),
///     SizeDistribution::production(),
///     7,
/// )
/// .take(400)
/// .collect();
/// let server = Server::new(
///     &zoo::dlrm_rmc1(),
///     CpuPlatform::skylake(),
///     None,
///     ServerOptions::new(40, SchedulerPolicy::cpu_only(64)),
/// );
/// let report = server.serve_virtual(&queries);
/// assert!(report.completed > 0);
/// assert!(report.latency.p95_ms > 0.0);
/// ```
#[derive(Debug)]
pub struct Server {
    cost: ModelCost,
    cpu: CpuPlatform,
    gpu: Option<GpuPlatform>,
    opts: ServerOptions,
}

impl Server {
    /// Builds a server for one model on one node.
    ///
    /// # Panics
    ///
    /// Panics if options are degenerate or the policy offloads without
    /// a GPU on the node.
    pub fn new(
        cfg: &ModelConfig,
        cpu: CpuPlatform,
        gpu: Option<GpuPlatform>,
        opts: ServerOptions,
    ) -> Self {
        assert!(opts.workers > 0, "need at least one worker");
        assert!(opts.time_scale > 0.0, "time scale must be positive");
        assert!(
            (0.0..1.0).contains(&opts.warmup_frac),
            "warm-up fraction must be in [0, 1)"
        );
        assert!(
            opts.batching.queue_bound > 0,
            "queue bound must be positive"
        );
        assert!(
            opts.policy.gpu_threshold.is_none() || gpu.is_some(),
            "policy offloads to a GPU the node does not have"
        );
        Server {
            cost: ModelCost::new(cfg),
            cpu,
            gpu,
            opts,
        }
    }

    /// The options this server runs with.
    pub fn options(&self) -> &ServerOptions {
        &self.opts
    }

    /// The cost model in use (shared with the simulator's math).
    pub fn cost(&self) -> &ModelCost {
        &self.cost
    }

    /// Serves `queries` in deterministic virtual time and reports.
    ///
    /// # Panics
    ///
    /// Panics if `queries` is empty.
    pub fn serve_virtual(&self, queries: &[Query]) -> ServerReport {
        assert!(!queries.is_empty(), "no queries to serve");
        let mut core = RunCore::new(self, queries.len());
        let mut events: EventQueue<Ev> = EventQueue::new();
        for (idx, q) in queries.iter().enumerate() {
            events.push(secs_to_ns(q.arrival_s), Ev::Arrival { idx });
        }

        let workers = self.opts.workers;
        let queue_bound = self.opts.batching.queue_bound;
        let mut ready: VecDeque<Batch> = VecDeque::new();
        let mut inflight: HashMap<u64, Batch> = HashMap::new();
        let mut busy = 0usize;
        let mut last_ns: SimTime = 0;
        let mut busy_core_ns: u128 = 0;
        let mut end_ns: SimTime = 0;

        macro_rules! dispatch {
            ($now:expr) => {
                while busy < workers {
                    let Some(b) = ready.pop_front() else { break };
                    busy += 1;
                    let service = self.cost.cpu_request_us(&self.cpu, b.items as usize, busy);
                    events.push($now + us_to_ns(service), Ev::CpuDone { batch: b.id });
                    inflight.insert(b.id, b);
                }
                core.note_queue_depth(ready.len());
            };
        }

        // Enqueues freshly formed batches, counting each one that meets
        // a dispatch queue already at its bound (the backpressure
        // signal — same per-batch semantics as serve_real's refusals).
        macro_rules! enqueue {
            ($batches:expr) => {
                for b in $batches {
                    if ready.len() >= queue_bound {
                        core.backpressure_stalls += 1;
                    }
                    ready.push_back(b);
                }
            };
        }

        while let Some((now, ev)) = events.pop() {
            busy_core_ns += (now - last_ns) as u128 * busy as u128;
            last_ns = now;
            end_ns = now;
            match ev {
                Ev::Arrival { idx } => {
                    let q = &queries[idx];
                    let deadline_before = core.batcher.deadline();
                    match core.on_arrival(now, q) {
                        Route::Gpu(done) => events.push(done, Ev::GpuDone { qid: q.id }),
                        Route::Cpu(batches) => {
                            enqueue!(batches);
                            // Schedule a flush only when this arrival
                            // opened a fresh coalesce buffer; an
                            // unchanged deadline already has its event.
                            match core.batcher.deadline() {
                                Some(d) if deadline_before != Some(d) => {
                                    events.push(d, Ev::Coalesce)
                                }
                                _ => {}
                            }
                            dispatch!(now);
                        }
                    }
                }
                Ev::Coalesce => {
                    let mut out = Vec::new();
                    core.batcher.flush_due(now, &mut out);
                    if !out.is_empty() {
                        enqueue!(out);
                        dispatch!(now);
                    }
                }
                Ev::CpuDone { batch } => {
                    busy -= 1;
                    let b = inflight.remove(&batch).expect("known batch");
                    for seg in &b.segments {
                        core.complete_items(now, seg.query_id, seg.items);
                    }
                    dispatch!(now);
                }
                Ev::GpuDone { qid } => {
                    let items = core.remaining_items(qid);
                    core.complete_items(now, qid, items);
                }
            }
            if core.take_policy_dirty() {
                // The controller retuned: re-batch the queued backlog
                // at the new size so it drains at the new knob's cost.
                // (Repacked batches are the same queued work, not new
                // pressure — no backpressure accounting here.)
                let pol = core.policy();
                let mut out = Vec::new();
                core.batcher.set_max_batch(pol.max_batch, &mut out);
                let queued: Vec<Batch> = ready.drain(..).collect();
                core.batcher.reform(queued, &mut out);
                ready.extend(out);
                dispatch!(now);
            }
        }

        let cpu_util = if end_ns > 0 {
            busy_core_ns as f64 / (workers as f64 * end_ns as f64)
        } else {
            0.0
        };
        let gpu_util = match (&core.gpu, end_ns) {
            (Some(g), e) if e > 0 => g.busy_ns() as f64 / e as f64,
            _ => 0.0,
        };
        core.into_report(self, offered_qps(queries), cpu_util, gpu_util)
    }

    /// Serves `queries` on the real inference engine: arrivals are
    /// paced by the wall clock (compressed by `time_scale`), CPU
    /// batches run as physical forward passes through a bounded worker
    /// pool, GPU offloads complete on the cost model's virtual clock.
    ///
    /// Latencies are reported on the (scaled) arrival clock, so at
    /// `time_scale = 1.0` they are wall-clock milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `queries` is empty or the model geometry disagrees
    /// with the server's configuration.
    pub fn serve_real(&self, model: Arc<RecModel>, queries: &[Query]) -> ServerReport {
        assert!(!queries.is_empty(), "no queries to serve");
        let engine = InferenceEngine::start(Arc::clone(&model), self.opts.workers)
            .with_queue_bound(self.opts.batching.queue_bound);
        let mut rt = RealRuntime {
            core: RunCore::new(self, queries.len()),
            engine,
            model,
            rng: StdRng::seed_from_u64(self.opts.seed),
            pending: VecDeque::new(),
            inflight: HashMap::new(),
            gpu_heap: BinaryHeap::new(),
            outstanding: 0,
            busy_service_ns: 0,
            t0: Instant::now(),
            scale: self.opts.time_scale,
        };
        let base_s = queries[0].arrival_s;

        for q in queries {
            let due = secs_to_ns(q.arrival_s - base_s); // model-time ns
            loop {
                rt.pump();
                let now = rt.now();
                if now >= due {
                    break;
                }
                let mut next = due;
                if let Some(&Reverse((t, _))) = rt.gpu_heap.peek() {
                    next = next.min(t.max(now));
                }
                if let Some(d) = rt.core.batcher.deadline() {
                    next = next.min(d.max(now));
                }
                // Floor the wait so a cluster of imminent deadlines
                // cannot spin the submitter.
                let wait_model_ns = (next - now).max(20_000);
                let wait = Duration::from_secs_f64(wait_model_ns as f64 / rt.scale / 1e9);
                if let Ok(c) = rt.engine.completions().recv_timeout(wait) {
                    rt.handle_cpu(c);
                }
            }
            let now = rt.now();
            rt.outstanding += 1;
            match rt.core.on_arrival(now, q) {
                Route::Gpu(done) => rt.gpu_heap.push(Reverse((done, q.id))),
                Route::Cpu(batches) => rt.queue_batches(batches),
            }
        }

        // Drain the tail: everything still queued, batching, in flight
        // on the engine, or ticking down on the GPU's virtual clock.
        while rt.outstanding > 0 {
            rt.pump();
            if rt.outstanding == 0 {
                break;
            }
            if let Ok(c) = rt
                .engine
                .completions()
                .recv_timeout(Duration::from_micros(200))
            {
                rt.handle_cpu(c);
            }
        }

        let end_model_ns = rt.now();
        let wall_elapsed_ns = rt.t0.elapsed().as_nanos().max(1);
        let cpu_util =
            rt.busy_service_ns as f64 / (self.opts.workers as f64 * wall_elapsed_ns as f64);
        let gpu_util = match (&rt.core.gpu, end_model_ns) {
            (Some(g), e) if e > 0 => (g.busy_ns() as f64 / e as f64).min(1.0),
            _ => 0.0,
        };
        let RealRuntime { core, engine, .. } = rt;
        engine.shutdown();
        core.into_report(self, offered_qps(queries), cpu_util, gpu_util)
    }
}

/// Mean offered load over a query stream, QPS.
fn offered_qps(queries: &[Query]) -> f64 {
    if queries.len() < 2 {
        return 0.0;
    }
    let span = queries[queries.len() - 1].arrival_s - queries[0].arrival_s;
    if span > 0.0 {
        (queries.len() - 1) as f64 / span
    } else {
        0.0
    }
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    Arrival { idx: usize },
    Coalesce,
    CpuDone { batch: u64 },
    GpuDone { qid: u64 },
}

enum Route {
    /// Offloaded whole; completes at the given virtual time.
    Gpu(SimTime),
    /// Split/coalesced; these batches are ready to dispatch now.
    Cpu(Vec<Batch>),
}

#[derive(Debug)]
struct QueryState {
    arrival: SimTime,
    items_left: u32,
    measured: bool,
}

/// Scheduling state shared by the virtual and real serving loops.
struct RunCore {
    fallback_policy: SchedulerPolicy,
    warmup_n: u64,
    queries: HashMap<u64, QueryState>,
    controller: Option<OnlineController>,
    batcher: BatchQueue,
    gpu: Option<GpuExecutor>,
    latency: LatencyRecorder,
    settled: LatencyRecorder,
    latencies_ms: Vec<f64>,
    completed_measured: u64,
    items_total: u64,
    items_gpu: u64,
    backpressure_stalls: u64,
    max_queue_depth: usize,
    window_start: Option<SimTime>,
    window_end: SimTime,
    /// Set when the controller changed the policy; the serving loop
    /// must re-read it and re-batch any queued backlog.
    policy_dirty: bool,
}

impl RunCore {
    fn new(server: &Server, num_queries: usize) -> Self {
        let controller = server
            .opts
            .controller
            .clone()
            .map(|c| OnlineController::new(c, server.opts.policy, server.gpu.is_some()));
        let initial = controller
            .as_ref()
            .map_or(server.opts.policy, |c| c.policy());
        // Round, do not floor-at-1: a zero timeout must stay zero
        // (coalescing disabled).
        let timeout_ns = (server.opts.batching.coalesce_timeout_us * 1e3).round() as SimTime;
        RunCore {
            fallback_policy: server.opts.policy,
            warmup_n: (num_queries as f64 * server.opts.warmup_frac) as u64,
            queries: HashMap::new(),
            controller,
            batcher: BatchQueue::new(initial.max_batch, timeout_ns),
            gpu: server
                .gpu
                .map(|g| GpuExecutor::new(server.cost.clone(), server.cpu, g)),
            latency: LatencyRecorder::with_capacity(num_queries),
            settled: LatencyRecorder::new(),
            latencies_ms: Vec::new(),
            completed_measured: 0,
            items_total: 0,
            items_gpu: 0,
            backpressure_stalls: 0,
            max_queue_depth: 0,
            window_start: None,
            window_end: 0,
            policy_dirty: false,
        }
    }

    fn policy(&self) -> SchedulerPolicy {
        self.controller
            .as_ref()
            .map_or(self.fallback_policy, |c| c.policy())
    }

    fn on_arrival(&mut self, now: SimTime, q: &Query) -> Route {
        if let Some(c) = &mut self.controller {
            c.on_arrival(now);
        }
        let pol = self.policy();
        let measured = q.id >= self.warmup_n;
        let prev = self.queries.insert(
            q.id,
            QueryState {
                arrival: now,
                items_left: q.size,
                measured,
            },
        );
        assert!(prev.is_none(), "duplicate query id {}", q.id);
        if measured {
            self.items_total += q.size as u64;
            self.window_start.get_or_insert(now);
        }
        if let Some(gpu) = self.gpu.as_mut().filter(|_| pol.offloads(q.size)) {
            if measured {
                self.items_gpu += q.size as u64;
            }
            Route::Gpu(gpu.schedule(now, q.size))
        } else {
            let mut out = Vec::new();
            self.batcher.set_max_batch(pol.max_batch, &mut out);
            self.batcher.push(now, q.id, q.size, &mut out);
            Route::Cpu(out)
        }
    }

    fn remaining_items(&self, qid: u64) -> u32 {
        self.queries.get(&qid).expect("known query").items_left
    }

    /// Credits `items` of a query as done; returns `true` when the
    /// query finished end to end.
    fn complete_items(&mut self, now: SimTime, qid: u64, items: u32) -> bool {
        let st = self.queries.get_mut(&qid).expect("known query");
        st.items_left -= items;
        if st.items_left > 0 {
            return false;
        }
        let st = self.queries.remove(&qid).expect("known query");
        let ms = (now - st.arrival) as f64 / 1e6;
        let mut settled = true;
        if let Some(c) = &mut self.controller {
            if c.on_complete(now, ms) {
                self.policy_dirty = true;
            }
            settled = c.is_settled();
        }
        if st.measured {
            self.latency.record_ms(ms);
            self.latencies_ms.push(ms);
            if settled {
                self.settled.record_ms(ms);
            }
            self.completed_measured += 1;
            self.window_end = self.window_end.max(now);
        }
        true
    }

    /// Whether the policy changed since the last check (clears the
    /// flag).
    fn take_policy_dirty(&mut self) -> bool {
        std::mem::take(&mut self.policy_dirty)
    }

    fn note_queue_depth(&mut self, depth: usize) {
        self.max_queue_depth = self.max_queue_depth.max(depth);
    }

    fn into_report(
        self,
        server: &Server,
        offered_qps: f64,
        cpu_utilization: f64,
        gpu_utilization: f64,
    ) -> ServerReport {
        let window_s = match self.window_start {
            Some(start) if self.window_end > start => {
                (self.window_end - start) as f64 / NS_PER_SEC as f64
            }
            _ => 0.0,
        };
        let qps = if window_s > 0.0 {
            self.completed_measured as f64 / window_s
        } else {
            0.0
        };
        let mut avg_power_w = server.cpu.power_w(cpu_utilization);
        if let Some(g) = &server.gpu {
            avg_power_w += g.power_w(gpu_utilization);
        }
        let stats = self.batcher.stats();
        let final_policy = self.policy();
        let (retunes, batch_trajectory, threshold_trajectory) = match self.controller {
            Some(c) => (c.retunes, c.batch_trajectory, c.threshold_trajectory),
            None => (0, Vec::new(), Vec::new()),
        };
        ServerReport {
            offered_qps,
            completed: self.completed_measured,
            qps,
            latency: self.latency.summary(),
            settled_latency: self.settled.summary(),
            gpu_work_fraction: if self.items_total > 0 {
                self.items_gpu as f64 / self.items_total as f64
            } else {
                0.0
            },
            cpu_utilization,
            gpu_utilization,
            avg_power_w,
            qps_per_watt: if avg_power_w > 0.0 {
                qps / avg_power_w
            } else {
                0.0
            },
            window_s,
            batches: stats.batches,
            full_batches: stats.full_batches,
            coalesced_batches: stats.coalesced_batches,
            timeout_flushes: stats.timeout_flushes,
            mean_batch_items: if stats.batches > 0 {
                stats.items as f64 / stats.batches as f64
            } else {
                0.0
            },
            backpressure_stalls: self.backpressure_stalls,
            max_queue_depth: self.max_queue_depth,
            final_policy,
            retunes,
            batch_trajectory,
            threshold_trajectory,
            latencies_ms: self.latencies_ms,
        }
    }
}

/// Wall-clock serving state for [`Server::serve_real`].
struct RealRuntime {
    core: RunCore,
    engine: InferenceEngine,
    model: Arc<RecModel>,
    rng: StdRng,
    /// Batches awaiting engine admission (head may carry its already
    /// generated request after a backpressure refusal).
    pending: VecDeque<(Batch, Option<EngineRequest>)>,
    inflight: HashMap<u64, Batch>,
    /// GPU completions on the virtual clock, earliest first.
    gpu_heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    outstanding: usize,
    /// Sum of worker-side service durations (wall ns) — the CPU busy
    /// integral.
    busy_service_ns: u128,
    t0: Instant,
    scale: f64,
}

impl RealRuntime {
    /// Model-time now: scaled wall nanoseconds since start.
    fn now(&self) -> SimTime {
        (self.t0.elapsed().as_secs_f64() * self.scale * 1e9) as SimTime
    }

    /// Drains everything that is ready without blocking: engine
    /// completions, due GPU completions, due coalesce flushes, and
    /// pending submissions.
    fn pump(&mut self) {
        loop {
            if let Some(c) = self.engine.try_completion() {
                self.handle_cpu(c);
                continue;
            }
            let now = self.now();
            if let Some(&Reverse((t, qid))) = self.gpu_heap.peek() {
                if t <= now {
                    self.gpu_heap.pop();
                    let items = self.core.remaining_items(qid);
                    // Complete at the scheduled virtual time, not the
                    // (slightly later) drain time.
                    if self.core.complete_items(t, qid, items) {
                        self.outstanding -= 1;
                    }
                    continue;
                }
            }
            if self.core.batcher.deadline().is_some_and(|d| d <= now) {
                let mut out = Vec::new();
                self.core.batcher.flush_due(now, &mut out);
                self.queue_batches(out);
                continue;
            }
            break;
        }
        if self.core.take_policy_dirty() {
            // The controller retuned: re-batch everything not yet
            // admitted to the engine (in-flight requests are
            // committed). Cached requests are stale and regenerated.
            let pol = self.core.policy();
            let mut out = Vec::new();
            self.core.batcher.set_max_batch(pol.max_batch, &mut out);
            let queued: Vec<Batch> = self.pending.drain(..).map(|(b, _)| b).collect();
            self.core.batcher.reform(queued, &mut out);
            for b in out {
                self.pending.push_back((b, None));
            }
        }
        self.submit_pending();
    }

    fn queue_batches(&mut self, batches: Vec<Batch>) {
        for b in batches {
            self.pending.push_back((b, None));
        }
        self.submit_pending();
    }

    fn submit_pending(&mut self) {
        while let Some((batch, cached)) = self.pending.pop_front() {
            // A cached request means this batch was already refused
            // once: retries are not fresh backpressure.
            let first_attempt = cached.is_none();
            let req = cached.unwrap_or_else(|| EngineRequest {
                query_id: batch.id,
                inputs: self
                    .model
                    .generate_inputs(batch.items as usize, &mut self.rng),
            });
            match self.engine.try_submit(req) {
                Ok(()) => {
                    self.inflight.insert(batch.id, batch);
                }
                Err(req) => {
                    if first_attempt {
                        self.core.backpressure_stalls += 1;
                    }
                    self.pending.push_front((batch, Some(req)));
                    break;
                }
            }
        }
        // Backpressure itself is counted at each refusal above; the
        // gauge tracks total unadmitted depth (engine queue + held
        // batches).
        let depth = self.engine.queue_depth() + self.pending.len();
        self.core.max_queue_depth = self.core.max_queue_depth.max(depth);
    }

    fn handle_cpu(&mut self, c: EngineCompletion) {
        self.busy_service_ns += c.service.as_nanos();
        let b = self.inflight.remove(&c.query_id).expect("known batch");
        debug_assert_eq!(b.items as usize, c.batch);
        let now = self.now();
        for seg in &b.segments {
            if self.core.complete_items(now, seg.query_id, seg.items) {
                self.outstanding -= 1;
            }
        }
    }
}
