//! The online scheduling controller: DeepRecSched's hill climb, run
//! against the live tail instead of a simulator.
//!
//! The offline tuner (`drs-sched`) evaluates each candidate knob with
//! a full simulated QPS search. At serving time no such oracle exists;
//! what the server *can* measure is its own completion rate and tail
//! latency. The controller samples both over fixed-size windows of
//! completed queries, scores each window as
//! `(completions/arrivals) · (1 + 1/(1 + p95_ms))`, and feeds
//! the scores to the exact same [`drs_core::LadderClimb`] stepping
//! rules the offline tuner uses — batch size first, then (with an
//! accelerator) the GPU query-size threshold, mirroring the two-phase
//! structure of Section IV-C. Once settled it keeps watching the
//! arrival rate and the tail, and restarts a *local* climb anchored at
//! the incumbent — upward when load rose, walking back down when load
//! fell or the tail shows the last climb over-committed — which is the
//! paper's diurnal retuning scenario (Figure 13).
//!
//! Why that score and not plain `1/p95`: early rungs of the climb can
//! be *underprovisioned* (a unit batch at production load), and the
//! backlog they build inflates the measured tail of every window that
//! follows — a naive latency score would crown whichever rung ran
//! first. The sustained-fraction factor measures whether a rung keeps
//! up with offered load even while a backlog drains (an overloaded
//! rung completes fewer queries than arrive), and dividing by the
//! window's own arrival rate keeps a diurnal trend from biasing the
//! comparison between rungs measured at different phases of the
//! cycle. Deliberately uncapped: while a backlog drains, a
//! high-capacity rung completes *more* queries than arrive and must
//! outscore the underprovisioned rung that built the backlog. The
//! bounded latency factor (at most 2×) breaks ties between rungs that
//! all keep up, favouring the lower tail.

use drs_core::{
    canonical_batch_ladder, canonical_threshold_ladder, LadderClimb, SchedulerPolicy, SimTime,
    NS_PER_SEC,
};
use drs_metrics::LatencyRecorder;
use drs_telemetry::{ControlDecision, RetuneTrigger};

/// Tuning parameters of the online controller.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Completed queries per control window (one climb observation).
    pub window: usize,
    /// Candidate batch sizes, ascending.
    pub batch_ladder: Vec<u32>,
    /// Candidate GPU query-size thresholds, ascending (climbed only
    /// when the node has an accelerator).
    pub threshold_ladder: Vec<u32>,
    /// Consecutive non-improving rungs tolerated before settling.
    pub patience: usize,
    /// Relative score improvement required to displace the incumbent.
    pub rel_tol: f64,
    /// Relative arrival-rate drift (vs. the rate at settle time) that
    /// triggers a re-tune.
    pub shift_tolerance: f64,
    /// Consecutive out-of-band windows required before a re-climb
    /// triggers. At the default of 2, one noisy window (a burst of
    /// large queries, a scheduling hiccup) cannot thrash the knobs —
    /// only a *sustained* shift retunes.
    pub hysteresis: usize,
    /// The p95 target the score normalizes latency against: a rung at
    /// a tenth of the SLA scores visibly better than one at half of
    /// it, while sub-millisecond differences stay inside `rel_tol`.
    pub sla_ms: f64,
    /// Confidence weighting: discard the first window closed after a
    /// re-tune from the online score. That window straddles the
    /// policy switch — its completions mix the old knob's in-flight
    /// backlog with the new rung's behaviour — and scoring it poisons
    /// the re-climb's anchor rung, which then mis-ranks against the
    /// clean windows that follow (ROADMAP "controller hardening").
    pub discard_transition_window: bool,
}

impl ControllerConfig {
    /// Serving-grade defaults: 200-query windows, the offline tuner's
    /// canonical ladders, ±25 % load-shift tolerance, two consecutive
    /// out-of-band windows before a re-climb.
    pub fn standard() -> Self {
        ControllerConfig {
            window: 200,
            batch_ladder: canonical_batch_ladder(),
            threshold_ladder: canonical_threshold_ladder(),
            patience: 1,
            rel_tol: 0.05,
            shift_tolerance: 0.25,
            hysteresis: 2,
            sla_ms: 100.0,
            discard_transition_window: true,
        }
    }

    /// Sets the p95 target the latency score is normalized against.
    pub fn with_sla_ms(mut self, sla_ms: f64) -> Self {
        assert!(sla_ms > 0.0, "SLA must be positive");
        self.sla_ms = sla_ms;
        self
    }

    /// Small windows for smoke tests: converges in a few hundred
    /// queries; the numbers are statistically weak.
    pub fn smoke() -> Self {
        ControllerConfig {
            window: 40,
            ..ControllerConfig::standard()
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    TuningBatch,
    TuningThreshold,
    Settled,
}

/// The tail of `full` starting `below` rungs under the rung holding
/// `current` — the cheap local re-climb used after load shifts
/// (diving deep under live load risks piloting an underprovisioned
/// knob and building backlog on every diurnal swing).
fn anchored_ladder(full: &[u32], current: u32, below: usize) -> Vec<u32> {
    let pos = full
        .iter()
        .position(|&v| v >= current)
        .unwrap_or(full.len() - 1);
    full[pos.saturating_sub(below)..].to_vec()
}

/// The rungs of `full` from the one holding `current` down through at
/// most `depth` rungs below it — the walk-down used when load falls or
/// an over-climbed knob should be re-judged on clean measurements.
///
/// The descent is depth-bounded on purpose: piloting the ladder's
/// bottom rungs (unit-ish batches) under live load builds real backlog
/// that poisons every window after the walk-down, including the next
/// settle's baseline. A far-off optimum is still reached — each
/// walk-down moves the incumbent down up to `depth` rungs, and the
/// next staleness signal continues from there.
fn descending_ladder(full: &[u32], current: u32, depth: usize) -> Vec<u32> {
    let pos = full
        .iter()
        .position(|&v| v >= current)
        .unwrap_or(full.len() - 1);
    full[pos.saturating_sub(depth)..=pos]
        .iter()
        .rev()
        .copied()
        .collect()
}

/// Live hill-climbing retuner for one server's [`SchedulerPolicy`].
#[derive(Debug)]
pub struct OnlineController {
    cfg: ControllerConfig,
    gpu_present: bool,
    policy: SchedulerPolicy,
    phase: Phase,
    climb: LadderClimb,
    window: LatencyRecorder,
    /// Close time of the previous control window (stream start for the
    /// first), so rates are measured close-to-close.
    window_start: SimTime,
    window_arrivals: u64,
    settled_rate_qps: f64,
    /// Window p95 observed when the controller last settled.
    settled_p95_ms: f64,
    /// Consecutive settled windows that looked out of band (load
    /// shifted or tail drifted); a re-climb needs `cfg.hysteresis` of
    /// them in a row.
    stale_streak: usize,
    /// Whether the current climb is a walk-down re-judgment (its score
    /// caps the over-completion credit; see `on_complete`).
    walkdown: bool,
    /// Set when a re-tune commits: the next window to close is a
    /// transition window (old-policy backlog draining under the new
    /// rung) and is dropped from the score when the config says so.
    skip_window: bool,
    /// Set at settle time; the next settled window re-baselines the
    /// drift detector against the *chosen* policy's clean behaviour.
    baseline_pending: bool,
    /// `(batch rung, window p95 ms)` per batch-phase observation.
    pub batch_trajectory: Vec<(u32, f64)>,
    /// `(threshold rung, window p95 ms)` per threshold-phase
    /// observation.
    pub threshold_trajectory: Vec<(u32, f64)>,
    /// Times the controller restarted the climb after a load shift.
    pub retunes: u64,
    /// Structured log of every committed re-tune, drained by the
    /// serving loop into the fleet-pulse decision log. Accumulated
    /// unconditionally — re-tunes are rare (a handful per diurnal
    /// cycle), so the bookkeeping is free at serving granularity.
    decisions: Vec<ControlDecision>,
}

impl OnlineController {
    /// Starts a controller that pilots the ladder from its base; the
    /// initial policy's GPU threshold is kept during the batch phase.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.window` is zero, a ladder is empty/unsorted, or
    /// tolerances are negative.
    pub fn new(cfg: ControllerConfig, initial: SchedulerPolicy, gpu_present: bool) -> Self {
        assert!(cfg.window > 0, "control window must be positive");
        assert!(cfg.shift_tolerance >= 0.0, "negative tolerance");
        assert!(cfg.hysteresis >= 1, "hysteresis needs at least one window");
        let climb = LadderClimb::new(cfg.batch_ladder.clone(), cfg.patience, cfg.rel_tol);
        let policy = SchedulerPolicy {
            max_batch: climb.current(),
            gpu_threshold: initial.gpu_threshold,
        };
        OnlineController {
            window: LatencyRecorder::with_capacity(cfg.window),
            cfg,
            gpu_present,
            policy,
            phase: Phase::TuningBatch,
            climb,
            window_start: 0,
            window_arrivals: 0,
            settled_rate_qps: 0.0,
            settled_p95_ms: 0.0,
            stale_streak: 0,
            walkdown: false,
            skip_window: false,
            baseline_pending: false,
            batch_trajectory: Vec::new(),
            threshold_trajectory: Vec::new(),
            retunes: 0,
            decisions: Vec::new(),
        }
    }

    /// Takes the re-tune decisions committed since the last drain.
    /// `node` and `tenant` are left at their defaults; the serving
    /// loop that owns this controller fills them in.
    pub fn drain_decisions(&mut self) -> Vec<ControlDecision> {
        std::mem::take(&mut self.decisions)
    }

    /// The policy the server should apply right now.
    pub fn policy(&self) -> SchedulerPolicy {
        self.policy
    }

    /// Whether both climbs finished and the controller is holding its
    /// best policy (until a load shift).
    pub fn is_settled(&self) -> bool {
        self.phase == Phase::Settled
    }

    /// Records one query arrival (the load estimate's numerator).
    pub fn on_arrival(&mut self, _now: SimTime) {
        self.window_arrivals += 1;
    }

    /// Records one completed query's end-to-end latency; closes the
    /// control window when full. Returns `true` when the policy
    /// changed and the server must re-read it.
    pub fn on_complete(&mut self, now: SimTime, latency_ms: f64) -> bool {
        self.window.record_ms(latency_ms);
        if self.window.len() < self.cfg.window {
            return false;
        }
        if self.skip_window {
            // Confidence weighting: this window straddled the re-tune
            // (in-flight backlog from the old policy completes under
            // the new rung). Close it unscored so the climb's anchor
            // rung is judged on clean measurements only.
            self.skip_window = false;
            self.close_window(now);
            return false;
        }
        let p95 = self.window.summary().p95_ms;
        let (rate, completion_rate) = self.close_window(now);
        // Load-normalized capacity first (robust while a backlog
        // drains — a draining rung completes *more* than arrive, an
        // overloaded one fewer — and immune to the diurnal trend),
        // tail as a bounded tiebreaker — see the module docs. A
        // deadband snaps near-1 ratios to exactly 1: in steady state
        // the ratio is all Poisson noise (±2σ ≈ 15 % at a 200-query
        // window), and letting it through would drown the latency
        // signal that actually distinguishes healthy rungs.
        let raw = if rate > 0.0 {
            completion_rate / rate
        } else {
            1.0
        };
        // A *walk-down* re-judgment caps the ratio at 1: it asks which
        // rung has the best clean tail, and crediting over-completion
        // would let the incumbent win off the very drain window that
        // triggered the re-judgment (it completes the backlog it built
        // itself). The cold-start climb stays uncapped — there the
        // drain credit is what lets a high-capacity rung outscore the
        // underprovisioned rung that poisoned the measurements.
        let raw = if self.walkdown { raw.min(1.0) } else { raw };
        let sustained = if (raw - 1.0).abs() <= 0.15 { 1.0 } else { raw };
        // Latency term normalized to a tenth of the SLA: rungs well
        // inside the target are strongly preferred, rungs past it all
        // look equally bad, and sub-scale jitter stays inside rel_tol.
        let tail_factor = 1.0 + 1.0 / (1.0 + 10.0 * p95.max(0.0) / self.cfg.sla_ms);
        // A walk-down is a pure latency re-judgment between rungs that
        // all keep up (the capped ratio only demotes underprovisioned
        // ones), so it drops the 1+ offset: the unbounded relative
        // spread lets a 9-vs-13 ms difference clear rel_tol, where the
        // bounded tiebreaker would compress it into the noise.
        let score = if self.walkdown {
            sustained / (1.0 + 10.0 * p95.max(0.0) / self.cfg.sla_ms)
        } else {
            sustained * tail_factor
        };
        match self.phase {
            Phase::TuningBatch => {
                self.batch_trajectory.push((self.climb.current(), p95));
                self.climb.observe(score);
                if !self.climb.is_done() {
                    self.policy.max_batch = self.climb.current();
                } else {
                    self.policy.max_batch = self.climb.best().0;
                    self.enter_next_phase(rate, p95);
                }
                true
            }
            Phase::TuningThreshold => {
                self.threshold_trajectory.push((self.climb.current(), p95));
                self.climb.observe(score);
                if !self.climb.is_done() {
                    self.policy.gpu_threshold = Some(self.climb.current());
                } else {
                    self.policy.gpu_threshold = Some(self.climb.best().0);
                    self.settle(rate, p95);
                }
                true
            }
            Phase::Settled => {
                // The first settled window establishes the drift
                // baseline: the climb's final window was measured
                // under the last *piloted* rung (often the worst one
                // on the ladder), and judging drift against that
                // would make every clean window under the chosen
                // incumbent look like a 2x improvement — an endless
                // walk-down loop.
                if self.baseline_pending {
                    self.baseline_pending = false;
                    self.settled_rate_qps = rate;
                    self.settled_p95_ms = p95;
                    self.stale_streak = 0;
                    return false;
                }
                // Two staleness signals. (1) Load shifted past the
                // tolerance: rising load explores upward from the
                // incumbent (never piloting a smaller, sooner-
                // overloaded knob at the peak); falling load walks
                // back down for latency. (2) The tail drifted ≥2× from
                // its settle-time value with no rate change: a climb
                // that finished while a cold-start backlog was still
                // draining over-committed to a big batch — once clean,
                // walk down and re-judge. Either way the re-climb is
                // *local*; restarting a live server at a unit batch
                // would re-poison it with backlog on every swing.
                let rate_shift = self.settled_rate_qps > 0.0
                    && (rate - self.settled_rate_qps).abs() / self.settled_rate_qps
                        > self.cfg.shift_tolerance;
                let tail_drift = self.settled_p95_ms > 0.0
                    && (p95 > 2.0 * self.settled_p95_ms || p95 < 0.5 * self.settled_p95_ms);
                if !(rate_shift || tail_drift) {
                    self.stale_streak = 0;
                    return false;
                }
                // Hysteresis: a single out-of-band window can be pure
                // noise (one burst of tail queries moves a 200-query
                // window's p95 well past 2x, and one quiet window can
                // halve it); only `hysteresis` consecutive stale
                // windows commit to a re-climb. Retuning is expensive
                // precisely because the re-climb *pilots* its rungs
                // under live load — a spurious walk-down builds real
                // backlog — so a second confirming window is cheap
                // insurance. The direction is judged on the latest
                // window, the most current view of the shift.
                self.stale_streak += 1;
                if self.stale_streak >= self.cfg.hysteresis {
                    let streak = self.stale_streak;
                    self.stale_streak = 0;
                    self.retunes += 1;
                    let downward = if rate_shift {
                        rate < self.settled_rate_qps
                    } else {
                        p95 < self.settled_p95_ms
                    };
                    let old_max_batch = self.policy.max_batch;
                    self.decisions.push(ControlDecision {
                        t_ns: now,
                        node: 0,
                        tenant: 0,
                        trigger: if rate_shift {
                            RetuneTrigger::RateShift
                        } else {
                            RetuneTrigger::TailDrift
                        },
                        rate_qps: rate,
                        settled_rate_qps: self.settled_rate_qps,
                        p95_ms: p95,
                        settled_p95_ms: self.settled_p95_ms,
                        streak: streak as u32,
                        old_max_batch,
                        new_max_batch: 0, // patched below once the re-climb anchors
                        downward,
                    });
                    let ladder = if downward {
                        descending_ladder(&self.cfg.batch_ladder, self.policy.max_batch, 3)
                    } else {
                        anchored_ladder(&self.cfg.batch_ladder, self.policy.max_batch, 0)
                    };
                    self.walkdown = downward;
                    // One extra rung of patience on the way down: a
                    // single noisy window must not end the descent one
                    // rung short of the clean optimum (the pilots get
                    // *smaller* on this ladder, so the extra probe is
                    // cheap until the very bottom).
                    let patience = if downward {
                        self.cfg.patience + 1
                    } else {
                        self.cfg.patience
                    };
                    self.climb = LadderClimb::new(ladder, patience, self.cfg.rel_tol);
                    self.policy.max_batch = self.climb.current();
                    self.decisions
                        .last_mut()
                        .expect("decision pushed above")
                        .new_max_batch = self.policy.max_batch;
                    self.phase = Phase::TuningBatch;
                    self.skip_window = self.cfg.discard_transition_window;
                    return true;
                }
                false
            }
        }
    }

    fn enter_next_phase(&mut self, rate: f64, p95: f64) {
        // The threshold climb (when it runs) ascends from its anchor.
        self.walkdown = false;
        if self.gpu_present {
            // First tune walks from a unit threshold (all queries on
            // the accelerator, Section IV-C); after a load shift the
            // re-climb anchors at the incumbent like the batch phase.
            let ladder = if self.retunes == 0 {
                self.cfg.threshold_ladder.clone()
            } else {
                anchored_ladder(
                    &self.cfg.threshold_ladder,
                    self.policy.gpu_threshold.unwrap_or(0),
                    1,
                )
            };
            self.climb = LadderClimb::new(ladder, self.cfg.patience, self.cfg.rel_tol);
            self.policy.gpu_threshold = Some(self.climb.current());
            self.phase = Phase::TuningThreshold;
        } else {
            self.settle(rate, p95);
        }
    }

    fn settle(&mut self, rate: f64, p95: f64) {
        self.phase = Phase::Settled;
        // Provisional values only: the next settled window — the first
        // measured wholly under the chosen policy — re-baselines both.
        self.settled_rate_qps = rate;
        self.settled_p95_ms = p95;
        self.baseline_pending = true;
    }

    /// Resets window state, returning the window's mean arrival rate
    /// and completion rate (QPS).
    fn close_window(&mut self, now: SimTime) -> (f64, f64) {
        let (rate, completion_rate) = if now > self.window_start {
            let span = (now - self.window_start) as f64 / NS_PER_SEC as f64;
            (
                self.window_arrivals as f64 / span,
                self.window.len() as f64 / span,
            )
        } else {
            (0.0, 0.0)
        };
        self.window.clear();
        self.window_start = now;
        self.window_arrivals = 0;
        (rate, completion_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_query::MAX_QUERY_SIZE;

    fn cfg(window: usize) -> ControllerConfig {
        ControllerConfig {
            window,
            batch_ladder: vec![1, 2, 4, 8],
            threshold_ladder: vec![0, 100, MAX_QUERY_SIZE],
            patience: 1,
            rel_tol: 0.0,
            shift_tolerance: 0.25,
            // Single-window reaction keeps the climb-shape tests
            // direct; the hysteresis tests below exercise the default.
            hysteresis: 1,
            sla_ms: 100.0,
            // The climb-shape tests feed exact per-rung windows; the
            // transition-discard tests below opt in explicitly.
            discard_transition_window: false,
        }
    }

    /// Feeds `n` completions with the given latency; arrivals pace at
    /// 1 ms apart so the rate estimate is stable.
    fn feed(c: &mut OnlineController, start: SimTime, n: usize, ms: f64) -> SimTime {
        let mut t = start;
        for _ in 0..n {
            t += 1_000_000;
            c.on_arrival(t);
            c.on_complete(t, ms);
        }
        t
    }

    #[test]
    fn starts_at_ladder_base() {
        let c = OnlineController::new(cfg(10), SchedulerPolicy::cpu_only(512), false);
        assert_eq!(c.policy().max_batch, 1);
        assert_eq!(c.policy().gpu_threshold, None);
        assert!(!c.is_settled());
    }

    #[test]
    fn climbs_to_lowest_tail_rung() {
        // p95 per rung: batch 4 is the sweet spot.
        let mut c = OnlineController::new(cfg(5), SchedulerPolicy::cpu_only(1), false);
        let mut t = 0;
        for ms in [40.0, 20.0, 10.0, 15.0] {
            t = feed(&mut c, t, 5, ms);
        }
        assert!(c.is_settled(), "patience 1 + worse rung 8 ends the climb");
        assert_eq!(c.policy().max_batch, 4);
        assert_eq!(
            c.batch_trajectory,
            vec![(1, 40.0), (2, 20.0), (4, 10.0), (8, 15.0)]
        );
    }

    #[test]
    fn gpu_node_gets_threshold_phase() {
        let mut c = OnlineController::new(cfg(5), SchedulerPolicy::cpu_only(1), true);
        let mut t = 0;
        // Batch phase: 4 rungs (8 is worse than 4, patience 1 means the
        // full short ladder is walked).
        for ms in [40.0, 20.0, 10.0, 15.0] {
            t = feed(&mut c, t, 5, ms);
        }
        assert!(!c.is_settled());
        assert_eq!(c.policy().gpu_threshold, Some(0), "threshold climb begins");
        // Threshold phase: rung 100 is best.
        for ms in [30.0, 12.0, 25.0] {
            t = feed(&mut c, t, 5, ms);
        }
        assert!(c.is_settled());
        assert_eq!(c.policy().max_batch, 4);
        assert_eq!(c.policy().gpu_threshold, Some(100));
    }

    #[test]
    fn load_shift_restarts_climb() {
        let mut c = OnlineController::new(cfg(5), SchedulerPolicy::cpu_only(1), false);
        let mut t = feed(&mut c, 0, 5, 40.0);
        t = feed(&mut c, t, 5, 20.0);
        t = feed(&mut c, t, 5, 10.0);
        t = feed(&mut c, t, 5, 15.0);
        assert!(c.is_settled());
        // Same pacing: settled windows pass quietly.
        t = feed(&mut c, t, 5, 10.0);
        assert!(c.is_settled());
        assert_eq!(c.retunes, 0);
        // Double the arrival rate (0.5 ms gaps): the next settled
        // window sees a >25 % shift and restarts the climb.
        for _ in 0..5 {
            t += 500_000;
            c.on_arrival(t);
            c.on_complete(t, 10.0);
        }
        assert_eq!(c.retunes, 1);
        assert!(!c.is_settled());
        assert_eq!(
            c.policy().max_batch,
            4,
            "rising load: re-climb anchored at the incumbent (4)"
        );
    }

    /// Settles a fresh CPU-only controller at 1 ms pacing, then feeds
    /// one clean 10 ms window so the drift baseline is established
    /// (rate 1000 QPS, p95 10 ms).
    fn settled_controller(window: usize, hysteresis: usize) -> (OnlineController, SimTime) {
        let mut c = OnlineController::new(
            ControllerConfig {
                hysteresis,
                ..cfg(window)
            },
            SchedulerPolicy::cpu_only(1),
            false,
        );
        let mut t = 0;
        for ms in [40.0, 20.0, 10.0, 15.0] {
            t = feed(&mut c, t, window, ms);
        }
        assert!(c.is_settled());
        t = feed(&mut c, t, window, 10.0); // baseline window
        assert!(c.is_settled());
        (c, t)
    }

    #[test]
    fn single_noisy_window_does_not_retune() {
        let (mut c, mut t) = settled_controller(5, 2);
        // One window with a 3x tail spike (out of band), then back in
        // band: the streak resets and no re-climb ever triggers.
        t = feed(&mut c, t, 5, 40.0);
        assert_eq!(c.retunes, 0, "first stale window only arms the streak");
        assert!(c.is_settled());
        t = feed(&mut c, t, 5, 10.0);
        assert_eq!(c.retunes, 0, "in-band window disarms the streak");
        // And the next isolated spike starts counting from scratch.
        feed(&mut c, t, 5, 40.0);
        assert_eq!(c.retunes, 0);
        assert!(c.is_settled());
    }

    #[test]
    fn sustained_shift_retunes_after_hysteresis_windows() {
        let (mut c, mut t) = settled_controller(5, 2);
        // Two consecutive out-of-band windows commit to the re-climb.
        t = feed(&mut c, t, 5, 40.0);
        assert!(c.is_settled());
        feed(&mut c, t, 5, 40.0);
        assert_eq!(c.retunes, 1);
        assert!(!c.is_settled(), "re-climb in progress");
    }

    #[test]
    fn tail_improvement_also_needs_the_streak() {
        // Baseline p95 is 10 ms; windows at 4 ms (< 0.5x) signal the
        // baseline is stale, but the walk-down still waits for two of
        // them — a single quiet window must not pilot a smaller batch
        // under live load.
        let (mut c, mut t) = settled_controller(5, 2);
        t = feed(&mut c, t, 5, 4.0);
        assert_eq!(c.retunes, 0);
        assert!(c.is_settled());
        feed(&mut c, t, 5, 4.0);
        assert_eq!(c.retunes, 1, "second improved window commits");
        assert!(!c.is_settled());
    }

    #[test]
    fn hysteresis_one_reacts_immediately() {
        let (mut c, t) = settled_controller(5, 1);
        feed(&mut c, t, 5, 40.0);
        assert_eq!(c.retunes, 1, "hysteresis 1 preserves the old behavior");
    }

    #[test]
    #[should_panic(expected = "hysteresis needs at least one window")]
    fn zero_hysteresis_rejected() {
        let _ = OnlineController::new(
            ControllerConfig {
                hysteresis: 0,
                ..cfg(5)
            },
            SchedulerPolicy::cpu_only(1),
            false,
        );
    }

    /// Feeds `n` completions at `gap_ns` pacing with the given latency.
    fn feed_at(
        c: &mut OnlineController,
        start: SimTime,
        n: usize,
        ms: f64,
        gap_ns: u64,
    ) -> SimTime {
        let mut t = start;
        for _ in 0..n {
            t += gap_ns;
            c.on_arrival(t);
            c.on_complete(t, ms);
        }
        t
    }

    /// A step load change (arrival rate doubles) whose re-climb's first
    /// window carries an 80 ms backlog-drain tail. Returns
    /// `(retunes, settled batch)` after the dust settles.
    fn step_load_scenario(discard: bool) -> (u64, u32) {
        let mut c = OnlineController::new(
            ControllerConfig {
                discard_transition_window: discard,
                ..cfg(5)
            },
            SchedulerPolicy::cpu_only(1),
            false,
        );
        // Cold climb settles at batch 4; one clean window baselines
        // the drift detector (rate 1000 QPS, p95 10 ms).
        let mut t = 0;
        for ms in [40.0, 20.0, 10.0, 15.0] {
            t = feed(&mut c, t, 5, ms);
        }
        t = feed(&mut c, t, 5, 10.0);
        assert!(c.is_settled());
        // Step: the rate doubles; the out-of-band window commits an
        // upward re-climb anchored at the incumbent (ladder [4, 8]).
        t = feed_at(&mut c, t, 5, 10.0, 500_000);
        assert_eq!(c.retunes, 1);
        assert!(!c.is_settled());
        // Transition window: the shift's queue drain inflates the tail
        // far past anything the anchor rung sustains in steady state.
        t = feed_at(&mut c, t, 5, 80.0, 500_000);
        // Clean windows thereafter: batch 4 holds a 10 ms tail at the
        // new rate; batch 8 over-commits and can only manage 22 ms.
        for _ in 0..8 {
            if c.is_settled() {
                break;
            }
            let ms = if c.policy().max_batch <= 4 {
                10.0
            } else {
                22.0
            };
            t = feed_at(&mut c, t, 5, ms, 500_000);
        }
        assert!(c.is_settled(), "re-climb must converge");
        // Steady traffic under the chosen rung: batch 4 keeps its
        // clean tail; batch 8 cannot sustain the doubled load and its
        // backlog doubles the tail window over window.
        for i in 0..3u32 {
            let ms = if c.policy().max_batch <= 4 {
                10.0
            } else {
                22.0 + 30.0 * i as f64
            };
            t = feed_at(&mut c, t, 5, ms, 500_000);
        }
        (c.retunes, c.policy().max_batch)
    }

    #[test]
    fn transition_window_discard_prevents_spurious_retune() {
        // Scored, the polluted transition window dethrones the healthy
        // incumbent (80 ms at the anchor loses to 22 ms at the next
        // rung), and the mis-chosen rung's drifting tail forces a
        // second re-tune. Discarded, the anchor is judged on its clean
        // window, keeps the climb, and the controller stays settled.
        let (retunes_scored, batch_scored) = step_load_scenario(false);
        let (retunes_discarded, batch_discarded) = step_load_scenario(true);
        assert_eq!(batch_scored, 8, "polluted window crowns the wrong rung");
        assert_eq!(batch_discarded, 4, "clean judgment keeps the incumbent");
        assert!(
            retunes_discarded < retunes_scored,
            "discarding the transition window must save the spurious re-tune \
             ({retunes_discarded} vs {retunes_scored})"
        );
        assert_eq!(retunes_discarded, 1);
    }

    #[test]
    fn policy_change_signalled_only_on_window_close() {
        let mut c = OnlineController::new(cfg(3), SchedulerPolicy::cpu_only(1), false);
        c.on_arrival(1);
        assert!(!c.on_complete(1, 5.0));
        assert!(!c.on_complete(2, 5.0));
        assert!(c.on_complete(3, 5.0), "third completion closes the window");
    }

    #[test]
    #[should_panic(expected = "control window must be positive")]
    fn zero_window_rejected() {
        let _ = OnlineController::new(cfg(0), SchedulerPolicy::cpu_only(1), false);
    }
}
