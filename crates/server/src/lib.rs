//! `drs-server` — an open-loop serving runtime for recommendation
//! inference.
//!
//! Everything end-to-end in this repo used to live in the simulator:
//! the real engine (`drs-engine`) only ran closed-loop at a fixed
//! batch size. This crate is the missing execution layer — the live
//! half of DeepRecSys (Sections IV–VI): queries arrive under a
//! Poisson/diurnal process and flow through
//!
//! 1. a **dynamic batching queue** ([`BatchQueue`]) — queries are
//!    split per the policy's `max_batch`, and sub-batch residuals are
//!    coalesced across queries until a batch fills or a configurable
//!    timeout expires;
//! 2. a **GPU offload executor** ([`GpuExecutor`]) — queries above the
//!    policy's size threshold bypass the CPU queue and are scheduled
//!    FIFO on a virtual-time device driven by the *same*
//!    [`drs_platform::ModelCost`] math the simulator uses, which is
//!    what makes sim-vs-server cross-validation a test instead of a
//!    hope;
//! 3. a **CPU worker pool** — real forward passes on
//!    [`drs_engine::InferenceEngine`] with a bounded request queue, so
//!    overload surfaces as backpressure at the dispatcher rather than
//!    unbounded buffering;
//! 4. an **online controller** ([`OnlineController`]) — samples the
//!    live p95 tail over sliding windows and re-runs the offline
//!    tuner's hill-climb rules ([`drs_core::LadderClimb`]) at runtime,
//!    retuning `max_batch`/`gpu_threshold` when load shifts (the
//!    paper's diurnal production scenario, Figure 13).
//!
//! [`Server::serve_virtual`] runs the identical scheduling brain in
//! deterministic virtual time (byte-reproducible reports, CI-speed);
//! [`Server::serve_real`] paces the same stream onto physical worker
//! threads.
//!
//! The per-node brain is instantiable N times: a [`Cluster`] puts a
//! front-end [`Router`] over any [`drs_core::ClusterTopology`],
//! dispatching the arrival stream under a
//! [`drs_core::RoutingPolicy`] (round-robin, least-outstanding,
//! power-of-two-choices, size-aware) with per-node outstanding-work
//! gauges. `Simulation`, [`Server`], and [`Cluster`] all implement
//! [`drs_core::ServingStack`], so experiments select their execution
//! layer through one entry point.
//!
//! # Examples
//!
//! ```
//! use drs_core::SchedulerPolicy;
//! use drs_models::zoo;
//! use drs_platform::CpuPlatform;
//! use drs_query::{ArrivalProcess, QueryGenerator, SizeDistribution};
//! use drs_server::{ControllerConfig, Server, ServerOptions};
//!
//! let queries: Vec<_> = QueryGenerator::new(
//!     ArrivalProcess::poisson(800.0),
//!     SizeDistribution::production(),
//!     42,
//! )
//! .take(600)
//! .collect();
//! // The controller pilots its climb from the paper's unit batch.
//! let opts = ServerOptions::new(40, SchedulerPolicy::cpu_only(1))
//!     .with_controller(ControllerConfig::smoke());
//! let server = Server::new(&zoo::dlrm_rmc1(), CpuPlatform::skylake(), None, opts);
//! let report = server.serve_virtual(&queries);
//! assert!(report.completed > 0);
//! assert!(report.final_policy.max_batch >= 1);
//! ```

#![warn(missing_docs)]

mod batcher;
mod cluster;
mod controller;
mod gpu;
mod node;
mod report;
mod server;

pub use batcher::{Batch, BatchQueue, BatchSegment, BatchStats};
pub use cluster::{sharded_query_inputs, Cluster, Router};
pub use controller::{ControllerConfig, OnlineController};
pub use gpu::GpuExecutor;
pub use report::ServerReport;
pub use server::{BatchingConfig, Server, ServerOptions};
