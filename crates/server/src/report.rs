//! Serving output: the open-loop counterpart of `SimReport`.

use drs_core::{ReportView, SchedulerPolicy, TenantBreakdown};
use drs_metrics::LatencySummary;
use drs_telemetry::{PulseSummary, StageBreakdown};

/// Results of one open-loop serving run.
///
/// Mirrors [`drs_core::SimReport`]'s axes (throughput, tail latency,
/// GPU work share, utilization, power) so simulator and server numbers
/// drop into the same tables, and adds the serving-layer counters the
/// simulator has no notion of: batching behaviour, backpressure, and
/// the online controller's trajectory.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// Offered load (mean arrival rate over the stream), QPS.
    pub offered_qps: f64,
    /// Queries completed inside the measurement window (post-warm-up).
    pub completed: u64,
    /// Sustained throughput: completed queries / measured span.
    pub qps: f64,
    /// End-to-end query latency statistics (queueing + batching delay +
    /// service).
    pub latency: LatencySummary,
    /// Latency statistics restricted to queries completed after the
    /// online controller settled (equals `latency` when no controller
    /// ran; empty when the controller never settled).
    pub settled_latency: LatencySummary,
    /// Fraction of candidate items processed on the GPU.
    pub gpu_work_fraction: f64,
    /// Mean busy fraction of the CPU worker pool.
    pub cpu_utilization: f64,
    /// Mean busy fraction of the GPU.
    pub gpu_utilization: f64,
    /// Average node power draw over the window, watts.
    pub avg_power_w: f64,
    /// Power efficiency: sustained QPS per average watt.
    pub qps_per_watt: f64,
    /// Duration of the measured window, seconds (virtual or scaled
    /// wall time depending on the serving mode).
    pub window_s: f64,
    /// CPU batches dispatched.
    pub batches: u64,
    /// Batches dispatched exactly at the batch-size knob.
    pub full_batches: u64,
    /// Batches that coalesced residuals from two or more queries.
    pub coalesced_batches: u64,
    /// Coalesce buffers flushed by timeout rather than by filling.
    pub timeout_flushes: u64,
    /// Mean items per dispatched batch.
    pub mean_batch_items: f64,
    /// Batches that met a dispatch queue already at its bound — each
    /// counted once, at the moment it was first held back (virtual
    /// mode: enqueued beyond the bound; real mode: first refusal by
    /// the engine's bounded queue).
    pub backpressure_stalls: u64,
    /// Deepest the dispatch queue ever got.
    pub max_queue_depth: usize,
    /// The policy in force when the run ended.
    pub final_policy: SchedulerPolicy,
    /// Times the online controller restarted its climb after a load
    /// shift (zero without a controller).
    pub retunes: u64,
    /// The controller's batch-phase observations: `(rung, window p95)`.
    /// On a cluster this is node 0's trajectory (every node climbs the
    /// same ladders).
    pub batch_trajectory: Vec<(u32, f64)>,
    /// The controller's threshold-phase observations.
    pub threshold_trajectory: Vec<(u32, f64)>,
    /// Queries the front-end router dispatched to each node, in
    /// `NodeId` order (a single server reports one entry). On a
    /// sharded cluster this counts merge homes; every query
    /// additionally fans partials to all shard nodes.
    pub node_queries: Vec<u64>,
    /// Measured queries that paid a cross-node shard exchange — zero
    /// when the model serves whole *or* the plan landed on a single
    /// node (no remote peers, nothing crosses the fabric).
    pub exchanged_queries: u64,
    /// Mean cross-node exchange delay per exchanged query,
    /// milliseconds: fabric round-trip + per-peer merges + payload
    /// wire time. The home's local dense tail is excluded — this is
    /// purely the scale-out price of the shard plan's geometry.
    /// Completion-weighted over every exchanged query (a single global
    /// accumulator), never an average of per-node means.
    pub mean_exchange_ms: f64,
    /// Per-tenant slices of the window, in tenant order (single-tenant
    /// runs carry one entry).
    pub tenant_breakdowns: Vec<TenantBreakdown>,
    /// The policy each tenant's lane held when the run ended, in
    /// tenant order (node 0's lanes on a cluster).
    pub tenant_final_policies: Vec<SchedulerPolicy>,
    /// Per-query latencies in milliseconds (measurement window only),
    /// in completion order.
    pub latencies_ms: Vec<f64>,
    /// Per-stage latency attribution from the run's trace sink —
    /// `Some` only on the `*_traced` entry points with a recording
    /// sink (the plain entry points trace through a no-op sink, which
    /// has nothing to report).
    pub stage_breakdown: Option<StageBreakdown>,
    /// Fleet-pulse totals from the run's metrics sink — `Some` only on
    /// the `*_pulsed` entry points with a recording pulse.
    pub pulse: Option<PulseSummary>,
}

impl ServerReport {
    /// Whether the window met a p95 SLA target, requiring a minimally
    /// meaningful sample — delegates to the shared
    /// [`ReportView::sla_met`] contract (same as `SimReport`).
    pub fn meets_sla(&self, sla_ms: f64) -> bool {
        ReportView::sla_met(self, sla_ms)
    }
}

impl ReportView for ServerReport {
    fn offered_qps(&self) -> f64 {
        self.offered_qps
    }
    fn completed(&self) -> u64 {
        self.completed
    }
    fn qps(&self) -> f64 {
        self.qps
    }
    fn latency(&self) -> &LatencySummary {
        &self.latency
    }
    fn gpu_work_fraction(&self) -> f64 {
        self.gpu_work_fraction
    }
    fn cpu_utilization(&self) -> f64 {
        self.cpu_utilization
    }
    fn gpu_utilization(&self) -> f64 {
        self.gpu_utilization
    }
    fn avg_power_w(&self) -> f64 {
        self.avg_power_w
    }
    fn qps_per_watt(&self) -> f64 {
        self.qps_per_watt
    }
    fn window_s(&self) -> f64 {
        self.window_s
    }
    fn latencies_ms(&self) -> &[f64] {
        &self.latencies_ms
    }
    fn tenant_breakdowns(&self) -> &[TenantBreakdown] {
        &self.tenant_breakdowns
    }
    fn stage_breakdown(&self) -> Option<&StageBreakdown> {
        self.stage_breakdown.as_ref()
    }
    fn pulse_summary(&self) -> Option<&PulseSummary> {
        self.pulse.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sla_check_matches_sim_contract() {
        let mut r = ServerReport {
            offered_qps: 100.0,
            completed: 1000,
            qps: 99.0,
            latency: LatencySummary {
                count: 1000,
                mean_ms: 40.0,
                p50_ms: 40.0,
                p75_ms: 60.0,
                p95_ms: 80.0,
                p99_ms: 96.0,
                max_ms: 160.0,
                min_ms: 0.1,
            },
            settled_latency: LatencySummary::empty(),
            gpu_work_fraction: 0.0,
            cpu_utilization: 0.5,
            gpu_utilization: 0.0,
            avg_power_w: 100.0,
            qps_per_watt: 0.99,
            window_s: 10.0,
            batches: 100,
            full_batches: 50,
            coalesced_batches: 10,
            timeout_flushes: 5,
            mean_batch_items: 32.0,
            backpressure_stalls: 0,
            max_queue_depth: 3,
            final_policy: SchedulerPolicy::cpu_only(64),
            retunes: 0,
            batch_trajectory: Vec::new(),
            threshold_trajectory: Vec::new(),
            node_queries: vec![1000],
            exchanged_queries: 0,
            mean_exchange_ms: 0.0,
            tenant_breakdowns: Vec::new(),
            tenant_final_policies: Vec::new(),
            latencies_ms: Vec::new(),
            stage_breakdown: None,
            pulse: None,
        };
        assert!(r.meets_sla(100.0));
        assert!(!r.meets_sla(50.0));
        r.completed = 5;
        assert!(!r.meets_sla(100.0), "tiny samples are not trustworthy");
    }
}
