//! Cluster serving: a front-end [`Router`] dispatching the arrival
//! stream across N per-node serving brains.
//!
//! The paper's production deployments hide a fleet of heterogeneous
//! machines behind a load balancer; the scale-out literature (Lui et
//! al.) shows the *routing policy* of that front end dominates cluster
//! tail latency. This module puts that knob on the real execution
//! path:
//!
//! * [`Router`] — consumes the arrival stream, tracks a per-node
//!   outstanding-work gauge, and picks a node per query under a
//!   [`RoutingPolicy`]; every tie breaks toward the smaller
//!   [`NodeId`], so cluster runs stay byte-deterministic.
//! * [`Cluster`] — N instances of the per-node brain (batching queue +
//!   offload executor + online controller) behind one router.
//!   [`Cluster::serve_virtual`] runs the whole fleet in deterministic
//!   virtual time; [`Cluster::serve_real`] runs every node's CPU work
//!   on its own real thread pool.

use crate::batcher::Batch;
use crate::node::{
    self, CpuUtilOverride, NodeCore, NodeSetup, NodeUtilization, Route, RunOutcome, StreamStats,
    TenantSetup, TimedBatch,
};
use crate::report::ServerReport;
use crate::server::ServerOptions;
use drs_core::{
    assert_nonempty_queries, assert_nonempty_trace, secs_to_ns, stream_offered_qps, us_to_ns,
    ClusterTopology, MultiModelSpec, NodeId, RoutingPolicy, ServingStack, SimTime, TenantId,
};
use drs_engine::{EngineCompletion, EngineRequest, InferenceEngine};
use drs_models::{BatchInputs, ModelConfig, RecModel};
use drs_nn::{ShardPartial, ShardedEmbeddingSet};
use drs_platform::{InterconnectModel, ModelCost};
use drs_query::{Query, Trace, MAX_QUERY_SIZE};
use drs_shard::{ShardGeometry, ShardPlan};
use drs_telemetry::{MetricsSink, NoopMetrics, NoopSink, TraceSink};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default "large query" boundary for [`RoutingPolicy::SizeAware`]
/// when the serving policy has no offload threshold to borrow: the top
/// quartile of the production size distribution carries roughly half
/// the work (Figure 6), and 250 items is that quartile's boundary.
const DEFAULT_SIZE_AWARE_THRESHOLD: u32 = MAX_QUERY_SIZE / 4;

/// One pinned tenant's routable node set, with its own round-robin
/// cursor.
#[derive(Debug)]
struct TenantUniverse {
    mask: Vec<bool>,
    idx: Vec<usize>,
    rr_next: usize,
}

/// The cluster front end: picks a node per query under a
/// [`RoutingPolicy`], tracking per-node outstanding queries.
///
/// The router is deliberately tiny — a gauge vector, a round-robin
/// cursor, and a seeded RNG for sampled policies — because it sits on
/// the per-query hot path (see `benches/router_dispatch.rs`).
///
/// # Examples
///
/// ```
/// use drs_core::{NodeId, RoutingPolicy, TenantId};
/// use drs_server::Router;
///
/// let mut r = Router::new(RoutingPolicy::LeastOutstanding, &[false, false], 250, 7);
/// let a = r.route(TenantId::SOLO, 10);
/// assert_eq!(a, NodeId(0), "empty gauges tie toward the smaller id");
/// assert_eq!(r.route(TenantId::SOLO, 10), NodeId(1), "node 0 now has one outstanding");
/// r.complete(a);
/// assert_eq!(r.route(TenantId::SOLO, 10), NodeId(0));
/// ```
#[derive(Debug)]
pub struct Router {
    policy: RoutingPolicy,
    /// Queries routed to each node and not yet completed.
    outstanding: Vec<u64>,
    /// Queries routed to each node over the whole run.
    dispatched: Vec<u64>,
    gpu_nodes: Vec<bool>,
    /// Nodes the router may pick at all. All-true by default; a
    /// sharded cluster restricts it to the shard-holding nodes
    /// ([`Router::restrict_to`]), since only they can merge a query.
    eligible: Vec<bool>,
    /// Indices of eligible nodes, ascending (the sampling universe for
    /// the randomized policies).
    eligible_idx: Vec<usize>,
    /// Per-tenant placement constraints ([`Router::pin_tenant_to`]):
    /// tenant `k`'s queries only route inside `tenant_masks[k]` when
    /// set, further intersected with the global eligibility. Each pin
    /// carries its own round-robin cursor so rotation inside one
    /// tenant's universe is never disturbed by another tenant's
    /// routes.
    tenant_masks: Vec<Option<TenantUniverse>>,
    size_threshold: u32,
    /// Round-robin cursor of the default (unpinned) universe.
    rr_next: usize,
    rng: StdRng,
    /// Reusable candidate marks for the sampled policies (hot path:
    /// no per-query allocation).
    scratch: Vec<bool>,
}

impl Router {
    /// Builds a router over `gpu_nodes.len()` nodes. `size_threshold`
    /// is the "large query" boundary [`RoutingPolicy::SizeAware`]
    /// steers by; `seed` drives the sampled policies deterministically.
    ///
    /// # Panics
    ///
    /// Panics if there are no nodes, or if a
    /// [`RoutingPolicy::PowerOfTwoChoices`] has `d == 0`.
    pub fn new(policy: RoutingPolicy, gpu_nodes: &[bool], size_threshold: u32, seed: u64) -> Self {
        assert!(!gpu_nodes.is_empty(), "a router needs nodes");
        if let RoutingPolicy::PowerOfTwoChoices { d } = policy {
            assert!(d >= 1, "power-of-d-choices needs d >= 1");
        }
        Router {
            policy,
            outstanding: vec![0; gpu_nodes.len()],
            dispatched: vec![0; gpu_nodes.len()],
            gpu_nodes: gpu_nodes.to_vec(),
            eligible: vec![true; gpu_nodes.len()],
            eligible_idx: (0..gpu_nodes.len()).collect(),
            tenant_masks: Vec::new(),
            size_threshold,
            rr_next: 0,
            rng: StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15),
            scratch: vec![false; gpu_nodes.len()],
        }
    }

    /// Restricts every policy's choice to the nodes marked in `mask`
    /// (a sharded cluster's shard-holding nodes).
    ///
    /// # Panics
    ///
    /// Panics if `mask` has the wrong length or admits no node.
    pub fn restrict_to(mut self, mask: &[bool]) -> Self {
        assert_eq!(mask.len(), self.outstanding.len(), "mask length mismatch");
        assert!(mask.contains(&true), "router needs an eligible node");
        self.eligible = mask.to_vec();
        self.eligible_idx = (0..mask.len()).filter(|&i| mask[i]).collect();
        self
    }

    /// Pins one tenant's queries to the nodes marked in `mask`
    /// (intersected with the global eligibility) — tenant-aware
    /// placement, e.g. an isolation tier that keeps a noisy service
    /// off latency-critical nodes. Unpinned tenants keep the full
    /// eligible universe.
    ///
    /// # Panics
    ///
    /// Panics if `mask` has the wrong length or admits no eligible
    /// node.
    pub fn pin_tenant_to(mut self, tenant: TenantId, mask: &[bool]) -> Self {
        assert_eq!(mask.len(), self.outstanding.len(), "mask length mismatch");
        let combined: Vec<bool> = mask
            .iter()
            .zip(&self.eligible)
            .map(|(&m, &e)| m && e)
            .collect();
        let idx: Vec<usize> = (0..combined.len()).filter(|&i| combined[i]).collect();
        assert!(!idx.is_empty(), "tenant pin admits no eligible node");
        self.tenant_masks.resize_with(tenant.index() + 1, || None);
        self.tenant_masks[tenant.index()] = Some(TenantUniverse {
            mask: combined,
            idx,
            rr_next: 0,
        });
        self
    }

    /// Number of nodes behind the router.
    pub fn nodes(&self) -> usize {
        self.outstanding.len()
    }

    /// Whether node `i` may serve tenant `t`'s queries: the tenant's
    /// pin when set, the global eligibility otherwise.
    fn admits(&self, t: usize, i: usize) -> bool {
        match self.tenant_masks.get(t).and_then(|m| m.as_ref()) {
            Some(u) => u.mask[i],
            None => self.eligible[i],
        }
    }

    /// Tenant `t`'s routable universe as an index list, ascending.
    fn universe(&self, t: usize) -> &[usize] {
        match self.tenant_masks.get(t).and_then(|m| m.as_ref()) {
            Some(u) => &u.idx,
            None => &self.eligible_idx,
        }
    }

    /// Picks the node for `tenant`'s query of `size` items and charges
    /// its gauge. Ties always break toward the smaller [`NodeId`].
    pub fn route(&mut self, tenant: TenantId, size: u32) -> NodeId {
        let t = tenant.index();
        let pick = match self.policy {
            RoutingPolicy::RoundRobin => {
                // Cycle the tenant's universe in id order. Pinned
                // tenants carry their own cursor, so one tenant's
                // routes never perturb another's rotation.
                match self.tenant_masks.get_mut(t).and_then(|m| m.as_mut()) {
                    Some(u) => {
                        let pick = u.idx[u.rr_next];
                        u.rr_next = (u.rr_next + 1) % u.idx.len();
                        pick
                    }
                    None => {
                        let pick = self.eligible_idx[self.rr_next];
                        self.rr_next = (self.rr_next + 1) % self.eligible_idx.len();
                        pick
                    }
                }
            }
            RoutingPolicy::LeastOutstanding | RoutingPolicy::ShardAware => {
                // ShardAware: the fan-out is fixed by the plan, so the
                // routable decision left is the merge home — least
                // outstanding among the shard nodes.
                self.least_loaded(|i| self.admits(t, i))
            }
            RoutingPolicy::PowerOfTwoChoices { d } => {
                let universe_len = self.universe(t).len();
                if d >= universe_len {
                    self.least_loaded(|i| self.admits(t, i))
                } else {
                    // Sample d distinct candidates, then scan in id
                    // order so equal gauges keep the deterministic
                    // smaller-NodeId tie-break.
                    self.scratch.fill(false);
                    let mut chosen = 0usize;
                    while chosen < d {
                        let pos = self.rng.gen_range(0..universe_len);
                        let i = self.universe(t)[pos];
                        if !self.scratch[i] {
                            self.scratch[i] = true;
                            chosen += 1;
                        }
                    }
                    let marks = std::mem::take(&mut self.scratch);
                    let pick = self.least_loaded(|i| marks[i]);
                    self.scratch = marks;
                    pick
                }
            }
            RoutingPolicy::SizeAware => {
                // Large queries prefer accelerator-attached nodes (the
                // tail is exactly what the GPU amortizes); small
                // queries balance over the whole fleet.
                let has_eligible_gpu =
                    (0..self.gpu_nodes.len()).any(|i| self.gpu_nodes[i] && self.admits(t, i));
                if size > self.size_threshold && has_eligible_gpu {
                    self.least_loaded(|i| self.gpu_nodes[i] && self.admits(t, i))
                } else {
                    self.least_loaded(|i| self.admits(t, i))
                }
            }
        };
        self.outstanding[pick] += 1;
        self.dispatched[pick] += 1;
        NodeId(pick)
    }

    /// Releases one outstanding query from `node`'s gauge.
    ///
    /// # Panics
    ///
    /// Panics if the node has no outstanding queries.
    pub fn complete(&mut self, node: NodeId) {
        assert!(self.outstanding[node.0] > 0, "gauge underflow at {node}");
        self.outstanding[node.0] -= 1;
    }

    /// The current outstanding-query gauge of `node`.
    pub fn outstanding(&self, node: NodeId) -> u64 {
        self.outstanding[node.0]
    }

    /// Queries dispatched to each node so far, in [`NodeId`] order.
    pub fn dispatched(&self) -> &[u64] {
        &self.dispatched
    }

    /// First index minimizing the gauge among nodes accepted by
    /// `admit` — scanning in id order makes ties deterministic.
    fn least_loaded(&self, admit: impl Fn(usize) -> bool) -> usize {
        let mut best: Option<usize> = None;
        for i in 0..self.outstanding.len() {
            if !admit(i) {
                continue;
            }
            match best {
                Some(b) if self.outstanding[b] <= self.outstanding[i] => {}
                _ => best = Some(i),
            }
        }
        best.expect("admit accepted at least one node")
    }
}

/// N per-node serving brains behind a front-end [`Router`] — the
/// cluster-first serving stack.
///
/// Every node runs the same scheduling brain as a single
/// [`crate::Server`] (dynamic batching queue, GPU offload above the
/// policy threshold, optional online controller); the router spreads
/// the arrival stream across them under a [`RoutingPolicy`]. Nodes
/// without an accelerator serve the policy with its offload knob
/// stripped, so one policy drives a mixed fleet.
///
/// * [`Cluster::serve_virtual`] — deterministic virtual time across
///   the whole fleet; byte-reproducible per seed (router ties break by
///   [`NodeId`]).
/// * [`Cluster::serve_real`] — every node's CPU batches execute as
///   real forward passes on its own
///   [`drs_engine::InferenceEngine`] worker pool.
///
/// # Examples
///
/// ```
/// use drs_core::{ClusterTopology, NodeSpec, RoutingPolicy, SchedulerPolicy};
/// use drs_models::zoo;
/// use drs_platform::CpuPlatform;
/// use drs_query::{ArrivalProcess, QueryGenerator, SizeDistribution};
/// use drs_server::{Cluster, ServerOptions};
///
/// let queries: Vec<_> = QueryGenerator::new(
///     ArrivalProcess::poisson(800.0),
///     SizeDistribution::production(),
///     7,
/// )
/// .take(400)
/// .collect();
/// let cluster = Cluster::new(
///     &zoo::dlrm_rmc1(),
///     ClusterTopology::uniform(2, CpuPlatform::skylake(), None),
///     RoutingPolicy::PowerOfTwoChoices { d: 2 },
///     ServerOptions::new(40, SchedulerPolicy::cpu_only(64)),
/// );
/// let report = cluster.serve_virtual(&queries);
/// assert!(report.completed > 0);
/// assert_eq!(report.node_queries.len(), 2);
/// ```
#[derive(Debug)]
pub struct Cluster {
    /// Per-tenant cost models, in tenant order.
    costs: Vec<ModelCost>,
    /// Per-tenant serving parameters, in tenant order.
    tenants: Vec<TenantSetup>,
    topology: ClusterTopology,
    routing: RoutingPolicy,
    opts: ServerOptions,
    /// Per-tenant node pins applied to the router
    /// ([`Cluster::pin_tenant_to`]).
    tenant_pins: Vec<(TenantId, Vec<bool>)>,
    /// Table-wise shard placement + the fabric pricing its exchange;
    /// `None` serves the model whole on every node.
    shard: Option<(ShardPlan, InterconnectModel)>,
}

impl Cluster {
    /// Builds a cluster for one model over `topology`, dispatching
    /// under `routing`. Each node gets `opts.workers` worker slots,
    /// capped at its own core count (heterogeneous fleets keep their
    /// hardware shape).
    ///
    /// # Panics
    ///
    /// Panics if options are degenerate or the policy offloads while no
    /// node carries a GPU.
    pub fn new(
        cfg: &ModelConfig,
        topology: ClusterTopology,
        routing: RoutingPolicy,
        opts: ServerOptions,
    ) -> Self {
        opts.validate();
        assert!(
            opts.policy.gpu_threshold.is_none() || topology.has_gpu(),
            "policy offloads to a GPU no node has"
        );
        Cluster {
            costs: vec![ModelCost::new(cfg)],
            tenants: vec![TenantSetup::solo(opts.policy, cfg.sla_ms)],
            topology,
            routing,
            opts,
            tenant_pins: Vec::new(),
            shard: None,
        }
    }

    /// Builds a cluster co-locating the spec's models on every node's
    /// shared worker pool: each node runs one batching queue and
    /// (when `opts.controller` is set) one online controller per
    /// tenant, tuned against its own SLA tier, with deficit
    /// round-robin arbitrating the pool across tenants. The router
    /// dispatches each query among the nodes its tenant may use (all,
    /// unless pinned via [`Cluster::pin_tenant_to`]).
    ///
    /// `opts.policy` is ignored; each tenant serves its spec policy.
    ///
    /// # Panics
    ///
    /// Panics if options are degenerate or any tenant's policy
    /// offloads while no node carries a GPU.
    pub fn new_multi(
        spec: &MultiModelSpec,
        topology: ClusterTopology,
        routing: RoutingPolicy,
        opts: ServerOptions,
    ) -> Self {
        opts.validate();
        for t in spec.tenants() {
            assert!(
                t.policy.gpu_threshold.is_none() || topology.has_gpu(),
                "tenant {} offloads to a GPU no node has",
                t.name
            );
        }
        Cluster {
            costs: spec
                .tenants()
                .iter()
                .map(|t| ModelCost::new(&t.model))
                .collect(),
            tenants: spec
                .tenants()
                .iter()
                .map(|t| TenantSetup {
                    policy: t.policy,
                    weight: t.weight,
                    report_sla_ms: t.sla_ms,
                    controller_sla_ms: Some(t.sla_ms),
                })
                .collect(),
            topology,
            routing,
            opts,
            tenant_pins: Vec::new(),
            shard: None,
        }
    }

    /// Pins one tenant's queries to the nodes marked in `mask` —
    /// tenant-aware placement on top of the dispatch policy.
    ///
    /// # Panics
    ///
    /// Panics if `mask` has the wrong length or admits no node (checked
    /// when the router is built at serve time).
    pub fn pin_tenant_to(mut self, tenant: TenantId, mask: &[bool]) -> Self {
        assert_eq!(mask.len(), self.topology.len(), "mask length mismatch");
        self.tenant_pins.push((tenant, mask.to_vec()));
        self
    }

    /// Builds a cluster serving one model *sharded table-wise* per
    /// `plan`: every query fans to each shard-holding node (which
    /// gathers and pools its local tables), the partials merge at a
    /// router-chosen home node, and the cross-node exchange is priced
    /// by `net`. This is the capacity-driven scale-out path — the only
    /// way a model whose tables exceed one node's `mem_bytes` serves
    /// at all.
    ///
    /// Sharded serving runs the CPU gather path; accelerator offload
    /// of sharded queries is a follow-on (the policy must not carry a
    /// `gpu_threshold`, and node GPUs sit idle).
    ///
    /// # Panics
    ///
    /// Panics if options are degenerate, the policy offloads, the plan
    /// was built for a different fleet shape, or the plan overfills a
    /// node's memory.
    pub fn new_sharded(
        cfg: &ModelConfig,
        topology: ClusterTopology,
        routing: RoutingPolicy,
        plan: ShardPlan,
        net: InterconnectModel,
        opts: ServerOptions,
    ) -> Self {
        opts.validate();
        assert!(
            opts.policy.gpu_threshold.is_none(),
            "sharded serving is CPU-path: the policy must not offload"
        );
        assert_eq!(
            plan.node_count(),
            topology.len(),
            "shard plan covers {} nodes, topology has {}",
            plan.node_count(),
            topology.len()
        );
        for (n, spec) in topology.nodes().iter().enumerate() {
            assert!(
                plan.bytes_on(NodeId(n)) <= spec.mem_bytes,
                "plan overfills node {n}: {} > {} bytes",
                plan.bytes_on(NodeId(n)),
                spec.mem_bytes
            );
        }
        Cluster {
            costs: vec![ModelCost::new(cfg)],
            tenants: vec![TenantSetup::solo(opts.policy, cfg.sla_ms)],
            topology,
            routing,
            opts,
            tenant_pins: Vec::new(),
            shard: Some((plan, net)),
        }
    }

    /// The shard plan in force, if the cluster serves a sharded model.
    pub fn shard_plan(&self) -> Option<&ShardPlan> {
        self.shard.as_ref().map(|(p, _)| p)
    }

    /// The fleet behind the router.
    pub fn topology(&self) -> &ClusterTopology {
        &self.topology
    }

    /// The front-end dispatch policy.
    pub fn routing(&self) -> RoutingPolicy {
        self.routing
    }

    /// The options every node runs with.
    pub fn options(&self) -> &ServerOptions {
        &self.opts
    }

    /// The cost model in use (the first tenant's, on a multi-tenant
    /// cluster; shared with the simulator's math).
    pub fn cost(&self) -> &ModelCost {
        &self.costs[0]
    }

    /// Number of co-located tenants this cluster serves.
    pub fn tenants(&self) -> usize {
        self.tenants.len()
    }

    fn setups(&self) -> Vec<NodeSetup> {
        self.topology
            .nodes()
            .iter()
            .map(|n| NodeSetup {
                cpu: n.cpu,
                // Sharded serving is CPU-path: node GPUs sit idle so a
                // per-node controller cannot grow an offload knob for
                // queries that only carry a fraction of the model.
                gpu: if self.shard.is_some() { None } else { n.gpu },
                workers: self.opts.workers.min(n.cpu.cores),
            })
            .collect()
    }

    fn router(&self) -> Router {
        // The size-aware boundary is fixed at run start from the
        // *configured* policy. With an online controller attached,
        // node-local retunes move each node's offload threshold at
        // runtime but do not feed back into the router — the front end
        // keeps steering by the static boundary. Threshold-following
        // routing is deliberately out of scope until the controller
        // grows a cluster-level view.
        // Sharded serving disables the node GPUs (setups() strips
        // them), so the router must not see them either: SizeAware
        // would otherwise concentrate large queries' merge homes on
        // accelerators that sit idle. With an all-false mask it
        // degrades to least-outstanding, its documented fallback.
        let gpu_nodes = if self.shard.is_some() {
            vec![false; self.topology.len()]
        } else {
            self.topology.gpu_nodes()
        };
        let router = Router::new(
            self.routing,
            &gpu_nodes,
            self.opts
                .policy
                .gpu_threshold
                .unwrap_or(DEFAULT_SIZE_AWARE_THRESHOLD),
            self.opts.seed,
        );
        let mut router = match &self.shard {
            // Only a shard-holding node can merge a query, whatever
            // the dispatch policy.
            Some((plan, _)) => router.restrict_to(&plan.shard_mask()),
            None => router,
        };
        for (tenant, mask) in &self.tenant_pins {
            router = router.pin_tenant_to(*tenant, mask);
        }
        router
    }

    fn shard_geometry(&self) -> Option<ShardGeometry> {
        self.shard.as_ref().map(|(plan, net)| plan.geometry(*net))
    }

    /// Serves `queries` across the fleet in deterministic virtual time
    /// and reports; byte-identical per seed.
    ///
    /// # Panics
    ///
    /// Panics if `queries` is empty.
    pub fn serve_virtual(&self, queries: &[Query]) -> ServerReport {
        self.serve_virtual_traced(queries, &mut NoopSink)
    }

    /// [`Cluster::serve_virtual`] with query-lifecycle tracing: every
    /// measured query's per-stage span (including shard-exchange and
    /// dense-tail attribution on a sharded fleet) is recorded into
    /// `sink`.
    ///
    /// # Panics
    ///
    /// Panics if `queries` is empty.
    pub fn serve_virtual_traced<S: TraceSink>(
        &self,
        queries: &[Query],
        sink: &mut S,
    ) -> ServerReport {
        self.serve_virtual_inner(queries, sink, &mut NoopMetrics)
    }

    /// [`Cluster::serve_virtual`] with fleet-pulse metrics: per-node
    /// queue depths, device backlogs, and control knobs are sampled
    /// into `pulse` on the virtual clock, alongside every controller
    /// retune decision and DRR arbiter grant.
    ///
    /// # Panics
    ///
    /// Panics if `queries` is empty.
    pub fn serve_virtual_pulsed<M: MetricsSink>(
        &self,
        queries: &[Query],
        pulse: &mut M,
    ) -> ServerReport {
        self.serve_virtual_inner(queries, &mut NoopSink, pulse)
    }

    fn serve_virtual_inner<S: TraceSink, M: MetricsSink>(
        &self,
        queries: &[Query],
        sink: &mut S,
        pulse: &mut M,
    ) -> ServerReport {
        node::serve_virtual_multi(
            &self.costs,
            &self.tenants,
            &self.setups(),
            &self.opts,
            self.router(),
            self.shard_geometry().as_ref(),
            queries,
            sink,
            pulse,
        )
    }

    /// Replays a recorded trace across the fleet in virtual time.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn serve_trace(&self, trace: &Trace) -> ServerReport {
        assert_nonempty_trace(trace);
        let queries: Vec<Query> = trace.replay().collect();
        self.serve_virtual(&queries)
    }

    /// Replays a recorded trace through [`Cluster::serve_real`]: the
    /// real-cluster counterpart of [`Cluster::serve_trace`], so
    /// captured production traffic can soak the physical fleet path
    /// exactly as it drives the virtual one.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn serve_trace_real(&self, model: Arc<RecModel>, trace: &Trace) -> ServerReport {
        assert_nonempty_trace(trace);
        let queries: Vec<Query> = trace.replay().collect();
        self.serve_real(model, &queries)
    }

    /// Serves `queries` with every node's CPU work on its own real
    /// thread pool: arrivals are paced by the wall clock (compressed by
    /// `time_scale`), the router dispatches each query to a node, and
    /// that node's batches run as physical forward passes through its
    /// own bounded [`InferenceEngine`]. GPU offloads complete on each
    /// node's virtual-clock executor, as in [`crate::Server::serve_real`].
    ///
    /// On a sharded cluster every query instead fans out to each
    /// shard-holding node, which runs a *real* partial forward over its
    /// local tables; the partials meet at the router-chosen home,
    /// wait out the interconnect exchange on the virtual clock, and
    /// the dense tail runs for real on the home's engine (see
    /// [`Cluster::serve_real_with_outputs`]).
    ///
    /// # Panics
    ///
    /// Panics if `queries` is empty, the cluster co-locates more than
    /// one tenant (use [`Cluster::serve_real_multi`]), or the model
    /// geometry disagrees with the cluster's configuration.
    pub fn serve_real(&self, model: Arc<RecModel>, queries: &[Query]) -> ServerReport {
        self.serve_real_traced(model, queries, &mut NoopSink)
    }

    /// [`Cluster::serve_real`] with query-lifecycle tracing into
    /// `sink`. Cost-model-clocked stages (GPU offloads, shard
    /// exchanges) carry the same values as the virtual path; stages
    /// executed on real engines carry scaled wall time.
    ///
    /// # Panics
    ///
    /// Panics as [`Cluster::serve_real`] does.
    pub fn serve_real_traced<S: TraceSink>(
        &self,
        model: Arc<RecModel>,
        queries: &[Query],
        sink: &mut S,
    ) -> ServerReport {
        if self.shard.is_some() {
            self.serve_real_sharded(model, queries, sink, &mut NoopMetrics)
                .0
        } else {
            self.serve_real_multi_traced(vec![model], queries, sink)
        }
    }

    /// [`Cluster::serve_real`] with fleet-pulse metrics into `pulse`
    /// (see [`Cluster::serve_virtual_pulsed`]): per-node gauges tick on
    /// the model-time clock anchored at the first arrival, so an
    /// offload-all run reproduces the virtual path's sampled series
    /// bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics as [`Cluster::serve_real`] does.
    pub fn serve_real_pulsed<M: MetricsSink>(
        &self,
        model: Arc<RecModel>,
        queries: &[Query],
        pulse: &mut M,
    ) -> ServerReport {
        if self.shard.is_some() {
            self.serve_real_sharded(model, queries, &mut NoopSink, pulse)
                .0
        } else {
            self.serve_real_multi_inner(vec![model], queries, &mut NoopSink, pulse)
        }
    }

    /// The sharded real path, additionally returning each query's
    /// predicted CTRs `(query id, ctrs)` in completion order — the
    /// hook the bit-identity tests use to pin the distributed forward
    /// against [`drs_models::RecModel::forward`].
    ///
    /// # Panics
    ///
    /// Panics if `queries` is empty or the cluster is not sharded.
    pub fn serve_real_with_outputs(
        &self,
        model: Arc<RecModel>,
        queries: &[Query],
    ) -> (ServerReport, Vec<(u64, Vec<f32>)>) {
        assert!(
            self.shard.is_some(),
            "per-query outputs come from the sharded real path"
        );
        self.serve_real_sharded(model, queries, &mut NoopSink, &mut NoopMetrics)
    }

    /// The multi-tenant real path: every node runs one shared
    /// [`InferenceEngine`] worker pool over per-tenant lanes (the same
    /// deficit-round-robin arbiter as virtual time), with `models[t]`
    /// serving tenant `t` and per-tenant offload pricing on each
    /// node's virtual-clock GPU executor.
    ///
    /// # Panics
    ///
    /// Panics if `queries` is empty, the cluster is sharded (sharded
    /// serving is single-tenant), or `models` does not provide exactly
    /// one model per tenant.
    pub fn serve_real_multi(&self, models: Vec<Arc<RecModel>>, queries: &[Query]) -> ServerReport {
        self.serve_real_multi_traced(models, queries, &mut NoopSink)
    }

    /// [`Cluster::serve_real_multi`] with query-lifecycle tracing into
    /// `sink` (see [`Cluster::serve_real_traced`]).
    ///
    /// # Panics
    ///
    /// Panics as [`Cluster::serve_real_multi`] does.
    pub fn serve_real_multi_traced<S: TraceSink>(
        &self,
        models: Vec<Arc<RecModel>>,
        queries: &[Query],
        sink: &mut S,
    ) -> ServerReport {
        self.serve_real_multi_inner(models, queries, sink, &mut NoopMetrics)
    }

    /// [`Cluster::serve_real_multi`] with fleet-pulse metrics into
    /// `pulse` (see [`Cluster::serve_real_pulsed`]).
    ///
    /// # Panics
    ///
    /// Panics as [`Cluster::serve_real_multi`] does.
    pub fn serve_real_multi_pulsed<M: MetricsSink>(
        &self,
        models: Vec<Arc<RecModel>>,
        queries: &[Query],
        pulse: &mut M,
    ) -> ServerReport {
        self.serve_real_multi_inner(models, queries, &mut NoopSink, pulse)
    }

    fn serve_real_multi_inner<S: TraceSink, M: MetricsSink>(
        &self,
        models: Vec<Arc<RecModel>>,
        queries: &[Query],
        sink: &mut S,
        pulse: &mut M,
    ) -> ServerReport {
        assert_nonempty_queries(queries);
        assert!(self.shard.is_none(), "sharded serving is single-tenant");
        assert_eq!(
            models.len(),
            self.tenants.len(),
            "one model per tenant: got {} models for {} tenants",
            models.len(),
            self.tenants.len()
        );
        let setups = self.setups();
        // The pulse clock anchors at model-time 0 (the first arrival),
        // matching the virtual path's epoch rebasing — see
        // `Server::serve_real_multi`'s runtime for the contract.
        let pulse_tick_ns = pulse.interval_ns().max(1);
        let mut rt = ClusterRealRuntime {
            stats: StreamStats::new(queries.len(), self.opts.warmup_frac, self.tenants.len()),
            router: self.router(),
            nodes: setups
                .iter()
                .map(|s| RealNode {
                    core: NodeCore::new(&self.costs, &self.tenants, s, &self.opts),
                    arbiter: node::DrrArbiter::new(&self.tenants),
                    engine: InferenceEngine::start_multi(models.clone(), s.workers)
                        .with_queue_bound(self.opts.batching.queue_bound),
                    pending: self.tenants.iter().map(|_| VecDeque::new()).collect(),
                    pending_total: 0,
                    inflight: BTreeMap::new(),
                    gpu_heap: BinaryHeap::new(),
                })
                .collect(),
            models,
            rng: StdRng::seed_from_u64(self.opts.seed),
            next_req: 0,
            outstanding: 0,
            busy_service_ns: vec![0; setups.len()],
            // Real-path submitter: wall-clock anchors the pacing loop.
            t0: Instant::now(), // lint:allow(wall-clock)
            scale: self.opts.time_scale,
            sink: &mut *sink,
            pulse: &mut *pulse,
            tick_ns: pulse_tick_ns,
            next_tick: pulse_tick_ns,
        };
        // Integer-ns arrival shift: the paced clock is exactly the
        // virtual clock minus a constant (see `Server::serve_real_multi`).
        let base_ns = secs_to_ns(queries[0].arrival_s);

        for q in queries {
            let due = secs_to_ns(q.arrival_s) - base_ns; // model-time ns
            loop {
                rt.pump(due);
                let now = rt.now();
                if now >= due {
                    break;
                }
                // Earliest wake among all nodes' GPU heads and
                // coalesce deadlines; bounded so a completion on any
                // engine is picked up within a short poll interval.
                let mut next = due;
                for node in &rt.nodes {
                    if let Some(&Reverse((t, _))) = node.gpu_heap.peek() {
                        next = next.min(t.max(now));
                    }
                    if let Some(d) = node.core.earliest_deadline() {
                        next = next.min(d.max(now));
                    }
                }
                // Floor the wait in *wall-clock* terms, after scaling
                // (a model-time floor busy-spins at high `time_scale`);
                // cap it so engine completions are polled promptly.
                let wait = Duration::from_secs_f64((next - now) as f64 / rt.scale / 1e9)
                    .max(Duration::from_micros(20));
                std::thread::sleep(wait.min(Duration::from_micros(200)));
            }
            // Dispatch on the scheduled arrival clock: routing gauges,
            // GPU FIFOs, and coalesce windows see `due`, not the
            // submitter's overshoot. Pulse ticks due at or before the
            // arrival fire first, as in the virtual event loop.
            rt.drain_ticks(due);
            rt.outstanding += 1;
            let NodeId(n) = rt.router.route(q.tenant, q.size);
            let measured = rt.stats.note_arrival(due, q, n);
            match rt.nodes[n].core.on_arrival(due, q) {
                Route::Gpu { start, done } => {
                    rt.stats.span_gpu(q.id, start);
                    rt.stats.note_gpu_items(measured, q.size);
                    rt.nodes[n].gpu_heap.push(Reverse((done, q.id)));
                }
                Route::Cpu(batches) => rt.queue_batches(due, n, q.tenant.index(), batches),
            }
        }

        // Drain the tail: everything still queued, batching, in flight
        // on any engine, or ticking down on a GPU's virtual clock.
        while rt.outstanding > 0 {
            rt.pump(SimTime::MAX);
            if rt.outstanding == 0 {
                break;
            }
            std::thread::sleep(Duration::from_micros(100));
        }

        let end_model_ns = rt.now();
        let wall_elapsed_ns = rt.t0.elapsed().as_nanos().max(1);
        let total_workers: usize = setups.iter().map(|s| s.workers).sum();
        let total_busy: u128 = rt.busy_service_ns.iter().sum();
        let cpu_util = CpuUtilOverride {
            per_node: rt
                .busy_service_ns
                .iter()
                .zip(&setups)
                .map(|(&busy, s)| busy as f64 / (s.workers.max(1) as f64 * wall_elapsed_ns as f64))
                .collect(),
            overall: total_busy as f64 / (total_workers as f64 * wall_elapsed_ns as f64),
        };
        let ClusterRealRuntime {
            stats,
            router,
            nodes,
            ..
        } = rt;
        let node_queries = router.dispatched().to_vec();
        let mut cores = Vec::with_capacity(nodes.len());
        let mut utilization = Vec::with_capacity(nodes.len());
        for (node, setup) in nodes.into_iter().zip(&setups) {
            node.engine.shutdown();
            cores.push(node.core);
            utilization.push(NodeUtilization {
                busy_core_ns: 0,
                workers: setup.workers,
            });
        }
        let mut report = node::assemble_report(
            RunOutcome {
                stats,
                cores,
                setups,
                tenant_setups: self.tenants.clone(),
                utilization,
                end_ns: end_model_ns,
                node_queries,
                cpu_utilization_override: Some(cpu_util),
            },
            stream_offered_qps(queries),
        );
        if S::ENABLED {
            report.stage_breakdown = sink.breakdown();
        }
        if M::ENABLED {
            report.pulse = pulse.summary();
        }
        report
    }

    /// The sharded real runtime behind [`Cluster::serve_real`] /
    /// [`Cluster::serve_real_with_outputs`]: every query fans a real
    /// embedding gather to each shard-holding node's engine, the
    /// partials join at the router-chosen home, the cross-node
    /// exchange elapses on the virtual clock, and the dense tail runs
    /// for real on the home's engine over the merged partials.
    fn serve_real_sharded<S: TraceSink, M: MetricsSink>(
        &self,
        model: Arc<RecModel>,
        queries: &[Query],
        sink: &mut S,
        pulse: &mut M,
    ) -> (ServerReport, Vec<(u64, Vec<f32>)>) {
        assert_nonempty_queries(queries);
        let geom = self.shard_geometry().expect("sharded cluster");
        let (plan, _) = self.shard.as_ref().expect("sharded cluster");
        let setups = self.setups();
        let set = Arc::new(model.sharded_embeddings(&plan.dense_assignment()));
        // Shard k's tables live on the k-th shard-holding node; nodes
        // outside the plan run no engine and receive no work.
        let engines: Vec<Option<InferenceEngine>> = (0..setups.len())
            .map(|n| {
                geom.shard_nodes().iter().position(|&s| s == n).map(|k| {
                    InferenceEngine::start_sharded(
                        Arc::clone(&model),
                        Arc::clone(&set),
                        k,
                        setups[n].workers,
                    )
                    .with_queue_bound(self.opts.batching.queue_bound)
                })
            })
            .collect();
        let mut rt = ShardedRealRuntime {
            stats: StreamStats::new(queries.len(), self.opts.warmup_frac, self.tenants.len()),
            router: self.router(),
            cores: setups
                .iter()
                .map(|s| NodeCore::new(&self.costs, &self.tenants, s, &self.opts))
                .collect(),
            engines,
            set,
            held: setups.iter().map(|_| VecDeque::new()).collect(),
            tags: BTreeMap::new(),
            joins: BTreeMap::new(),
            exchange_heap: BinaryHeap::new(),
            outputs: Vec::with_capacity(queries.len()),
            next_req: 0,
            outstanding: 0,
            busy_service_ns: vec![0; setups.len()],
            // Real-path submitter: wall-clock anchors the pacing loop.
            t0: Instant::now(), // lint:allow(wall-clock)
            scale: self.opts.time_scale,
            sink: &mut *sink,
            pulse: &mut *pulse,
        };
        let fanout = geom.shard_nodes().len() as u32;
        // Integer-ns arrival shift, as in `serve_real_multi`.
        let base_ns = secs_to_ns(queries[0].arrival_s);

        for q in queries {
            let due = secs_to_ns(q.arrival_s) - base_ns; // model-time ns
            loop {
                rt.pump();
                let now = rt.now();
                if now >= due {
                    break;
                }
                let mut next = due;
                if let Some(&Reverse((t, _))) = rt.exchange_heap.peek() {
                    next = next.min(t.max(now));
                }
                // Wall-clock floor after scaling (see
                // `serve_real_multi`), capped so engine completions
                // are polled promptly.
                let wait = Duration::from_secs_f64((next - now) as f64 / rt.scale / 1e9)
                    .max(Duration::from_micros(20));
                std::thread::sleep(wait.min(Duration::from_micros(200)));
            }
            rt.outstanding += 1;
            let NodeId(home) = rt.router.route(q.tenant, q.size);
            let exchange_us = geom.exchange_us(home, q.size);
            let exchange_ns = if exchange_us > 0.0 {
                us_to_ns(exchange_us)
            } else {
                0
            };
            // On the real path the virtual-clock share of the merge is
            // the fabric alone — the dense tail executes for real on
            // the home's engine. `.max(1)` keeps the exchange
            // rendezvous even on a peer-less plan.
            let merge_ns = exchange_ns.max(1);
            rt.stats
                .note_arrival_sharded(due, q, home, fanout, exchange_ns, merge_ns);
            // The home node's controller owns the query's control
            // signal, as in virtual time.
            rt.cores[home].note_controller_arrival(due, q.tenant.index());
            let inputs = sharded_query_inputs(&model, self.opts.seed, q);
            rt.joins.insert(
                q.id,
                ShardJoin {
                    inputs: inputs.clone(),
                    partials: Vec::with_capacity(fanout as usize),
                    home,
                    size: q.size,
                },
            );
            for &n in geom.shard_nodes() {
                let rid = rt.next_req;
                rt.next_req += 1;
                rt.tags.insert(rid, ShardTag::Gather { qid: q.id });
                rt.submit_to(n, EngineRequest::gather(rid, inputs.clone()));
            }
        }

        // Drain the tail: gathers in flight, exchanges ticking down on
        // the virtual clock, and dense tails on the home engines.
        while rt.outstanding > 0 {
            rt.pump();
            if rt.outstanding == 0 {
                break;
            }
            std::thread::sleep(Duration::from_micros(100));
        }

        let end_model_ns = rt.now();
        let wall_elapsed_ns = rt.t0.elapsed().as_nanos().max(1);
        let total_workers: usize = setups.iter().map(|s| s.workers).sum();
        let total_busy: u128 = rt.busy_service_ns.iter().sum();
        let cpu_util = CpuUtilOverride {
            per_node: rt
                .busy_service_ns
                .iter()
                .zip(&setups)
                .map(|(&busy, s)| busy as f64 / (s.workers.max(1) as f64 * wall_elapsed_ns as f64))
                .collect(),
            overall: total_busy as f64 / (total_workers as f64 * wall_elapsed_ns as f64),
        };
        let ShardedRealRuntime {
            stats,
            router,
            cores,
            engines,
            outputs,
            ..
        } = rt;
        let node_queries = router.dispatched().to_vec();
        for e in engines.into_iter().flatten() {
            e.shutdown();
        }
        let utilization = setups
            .iter()
            .map(|s| NodeUtilization {
                busy_core_ns: 0,
                workers: s.workers,
            })
            .collect();
        let mut report = node::assemble_report(
            RunOutcome {
                stats,
                cores,
                setups,
                tenant_setups: self.tenants.clone(),
                utilization,
                end_ns: end_model_ns,
                node_queries,
                cpu_utilization_override: Some(cpu_util),
            },
            stream_offered_qps(queries),
        );
        if S::ENABLED {
            report.stage_breakdown = sink.breakdown();
        }
        if M::ENABLED {
            report.pulse = pulse.summary();
        }
        (report, outputs)
    }
}

/// The deterministic inputs the sharded real path scores for query
/// `q`: derived from the serving `seed` and the query id alone, so
/// every shard node gathers over identical indices without shipping
/// them, and a test can regenerate them to pin the distributed
/// forward against the local [`RecModel::forward`]
/// (see `tests/sharded_real.rs`).
pub fn sharded_query_inputs(model: &RecModel, seed: u64, q: &Query) -> BatchInputs {
    let mut rng = StdRng::seed_from_u64(seed ^ q.id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    model.generate_inputs(q.size as usize, &mut rng)
}

impl ServingStack for Cluster {
    type Report = ServerReport;

    fn label(&self) -> String {
        match &self.shard {
            Some((plan, _)) => format!(
                "cluster[{} x{} sharded x{}]",
                self.routing.label(),
                self.topology.len(),
                plan.shard_nodes().len()
            ),
            None if self.tenants.len() > 1 => format!(
                "cluster[{} x{} multi x{}]",
                self.routing.label(),
                self.topology.len(),
                self.tenants.len()
            ),
            None => format!("cluster[{} x{}]", self.routing.label(), self.topology.len()),
        }
    }

    fn serve_queries(&self, queries: &[Query]) -> ServerReport {
        self.serve_virtual(queries)
    }

    fn serve_trace(&self, trace: &Trace) -> ServerReport {
        Cluster::serve_trace(self, trace)
    }
}

// The cluster's wall-clock runtime intentionally parallels the
// single-node `RealRuntime` in `server.rs` rather than sharing it: the
// single-node path blocks on its one engine's completion channel
// (lowest handling latency), while N engines force a polling loop.
// The scheduling brain both paths drive lives in `node.rs`
// (`NodeCore`/`StreamStats`); only the I/O pacing differs here.

/// One node's wall-clock execution state.
struct RealNode {
    core: NodeCore,
    /// The same deficit-round-robin lane arbiter the virtual node runs.
    arbiter: node::DrrArbiter,
    engine: InferenceEngine,
    /// Per-tenant batches awaiting engine admission (a head may carry
    /// its already generated request after a backpressure refusal).
    pending: Vec<VecDeque<(TimedBatch, Option<EngineRequest>)>>,
    pending_total: usize,
    /// Engine request id → (tenant, batch) for admitted requests.
    inflight: BTreeMap<u64, (usize, TimedBatch)>,
    /// GPU completions on the virtual clock, earliest first.
    gpu_heap: BinaryHeap<Reverse<(SimTime, u64)>>,
}

/// Wall-clock serving state for [`Cluster::serve_real`] /
/// [`Cluster::serve_real_multi`].
struct ClusterRealRuntime<'s, S: TraceSink, M: MetricsSink> {
    stats: StreamStats,
    router: Router,
    nodes: Vec<RealNode>,
    /// One model per tenant, in tenant order.
    models: Vec<Arc<RecModel>>,
    rng: StdRng,
    /// Engine request ids — globally unique across nodes and tenant
    /// lanes (batch ids are per-lane and collide).
    next_req: u64,
    outstanding: usize,
    /// Per-node sums of worker-side service durations (wall ns) — the
    /// per-node CPU busy integrals.
    busy_service_ns: Vec<u128>,
    t0: Instant,
    scale: f64,
    /// Where completed queries' lifecycle spans go.
    sink: &'s mut S,
    /// Where fleet-pulse samples, retune decisions, and DRR grants go.
    pulse: &'s mut M,
    /// Pulse sampling interval, model-time ns.
    tick_ns: SimTime,
    /// Next pulse tick due, on the model-time clock anchored at 0.
    next_tick: SimTime,
}

impl<S: TraceSink, M: MetricsSink> ClusterRealRuntime<'_, S, M> {
    /// Model-time now: scaled wall nanoseconds since start.
    fn now(&self) -> SimTime {
        (self.t0.elapsed().as_secs_f64() * self.scale * 1e9) as SimTime // lint:allow(clock-taint): wall time enters model time here, by design
    }

    /// Fires every pulse tick due at or before model-time `t`, sampling
    /// per-node gauges at each tick. Ticks fire only on *model-time*
    /// events (GPU completions at their scheduled instant, arrivals at
    /// their due instant), never on the raw wall clock, so an
    /// offload-all run samples exactly the state the virtual event loop
    /// would — same instants, same values, bit for bit.
    fn drain_ticks(&mut self, t: SimTime) {
        if M::ENABLED {
            while self.next_tick <= t {
                for (n, node) in self.nodes.iter().enumerate() {
                    let depth = node.engine.queue_depth() + node.pending_total;
                    self.pulse.gauge(&format!("queue_depth_n{n}"), depth as f64);
                    if let Some(g) = &node.core.gpu {
                        self.pulse.gauge(
                            &format!("gpu_backlog_ns_n{n}"),
                            g.busy_until().saturating_sub(self.next_tick) as f64,
                        );
                        self.pulse
                            .gauge(&format!("gpu_completed_n{n}"), g.completed() as f64);
                    }
                    for lane in 0..node.pending.len() {
                        let pol = node.core.policy(lane);
                        self.pulse
                            .gauge(&format!("max_batch_n{n}_t{lane}"), pol.max_batch as f64);
                        self.pulse.gauge(
                            &format!("gpu_threshold_n{n}_t{lane}"),
                            pol.gpu_threshold.map_or(-1.0, f64::from),
                        );
                        self.pulse.gauge(
                            &format!("drr_deficit_n{n}_t{lane}"),
                            node.arbiter.deficits()[lane] as f64,
                        );
                    }
                    self.pulse.gauge(
                        &format!("engine_queue_depth_n{n}"),
                        node.engine.queue_depth() as f64,
                    );
                    self.pulse.gauge(
                        &format!("engine_peak_depth_n{n}"),
                        node.engine.peak_queue_depth() as f64,
                    );
                }
                self.pulse.tick(self.next_tick);
                self.next_tick += self.tick_ns;
            }
        }
    }

    /// Drains everything that is ready on every node without blocking.
    /// GPU completions drain across the whole fleet in global
    /// `(time, id)` order up to `gpu_bound` (the next arrival's
    /// scheduled time) — exactly the virtual event-queue order — so
    /// the router's gauges evolve deterministically however the wall
    /// clock jitters.
    fn pump(&mut self, gpu_bound: SimTime) {
        loop {
            let mut progressed = false;
            for n in 0..self.nodes.len() {
                while let Some(c) = self.nodes[n].engine.try_completion() {
                    self.handle_cpu(n, c);
                    progressed = true;
                }
            }
            if let Some(n) = self.next_gpu_node(gpu_bound) {
                let Reverse((t, qid)) = self.nodes[n].gpu_heap.pop().expect("peeked");
                let items = self.stats.remaining_items(qid);
                // Complete at the scheduled virtual time, not the
                // (slightly later) drain time; pulse ticks due at or
                // before that instant fire first.
                self.drain_ticks(t);
                self.finish_items(t, qid, items);
                progressed = true;
            }
            let now = self.now();
            for n in 0..self.nodes.len() {
                if self.nodes[n]
                    .core
                    .earliest_deadline()
                    .is_some_and(|d| d <= now)
                {
                    for t in 0..self.nodes[n].pending.len() {
                        if self.nodes[n]
                            .core
                            .batcher(t)
                            .deadline()
                            .is_some_and(|d| d <= now)
                        {
                            let mut out = Vec::new();
                            self.nodes[n].core.batcher_mut(t).flush_due(now, &mut out);
                            self.queue_batches(now, n, t, out);
                        }
                    }
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        for n in 0..self.nodes.len() {
            for t in 0..self.nodes[n].pending.len() {
                if self.nodes[n].core.take_policy_dirty(t) {
                    // Tenant `t`'s controller retuned: `rebatch_lane`
                    // repacks everything not yet admitted to this
                    // node's engine (in-flight requests are committed)
                    // plus the open coalesce residual at the new knob.
                    // Cached requests are stale and regenerated.
                    let queued: Vec<Batch> = self.nodes[n].pending[t]
                        .drain(..)
                        .map(|(tb, _)| tb.batch)
                        .collect();
                    self.nodes[n].pending_total -= queued.len();
                    let now = self.now();
                    for b in self.nodes[n].core.rebatch_lane(t, queued) {
                        self.nodes[n].pending[t].push_back((TimedBatch::formed_at(b, now), None));
                        self.nodes[n].pending_total += 1;
                    }
                }
            }
            self.submit_pending(n);
        }
    }

    /// The node holding the globally earliest GPU completion strictly
    /// before `gpu_bound`, ties breaking by query id (arrivals at the
    /// same instant were pushed in id order).
    fn next_gpu_node(&self, gpu_bound: SimTime) -> Option<usize> {
        let mut best: Option<(SimTime, u64, usize)> = None;
        for (n, node) in self.nodes.iter().enumerate() {
            if let Some(&Reverse((t, qid))) = node.gpu_heap.peek() {
                if t < gpu_bound && best.is_none_or(|(bt, bq, _)| (t, qid) < (bt, bq)) {
                    best = Some((t, qid, n));
                }
            }
        }
        best.map(|(_, _, n)| n)
    }

    /// Queues batches formed at `formed` (model-time ns) on node `n`.
    fn queue_batches(&mut self, formed: SimTime, n: usize, tenant: usize, batches: Vec<Batch>) {
        for b in batches {
            self.nodes[n].pending[tenant].push_back((TimedBatch::formed_at(b, formed), None));
            self.nodes[n].pending_total += 1;
        }
        self.submit_pending(n);
    }

    fn submit_pending(&mut self, n: usize) {
        let dispatched = self.now();
        let node = &mut self.nodes[n];
        while let Some((t, (mut batch, cached))) = node
            .arbiter
            .next(&mut node.pending, |(tb, _)| tb.batch.items as u64)
        {
            node.pending_total -= 1;
            if M::ENABLED {
                self.pulse
                    .drr_round(dispatched, n, t, node.arbiter.deficits());
            }
            // A cached request means this batch was already refused
            // once: retries are not fresh backpressure.
            let first_attempt = cached.is_none();
            let req = cached.unwrap_or_else(|| {
                let inputs =
                    self.models[t].generate_inputs(batch.batch.items as usize, &mut self.rng);
                let req = EngineRequest::forward_for(self.next_req, t, inputs);
                self.next_req += 1;
                req
            });
            let rid = req.query_id;
            match node.engine.try_submit(req) {
                Ok(()) => {
                    // Admission is the dispatch mark: residency ends
                    // when the engine's bounded queue accepts the work.
                    batch.dispatched = dispatched;
                    node.inflight.insert(rid, (t, batch));
                }
                Err(req) => {
                    if first_attempt {
                        node.core.backpressure_stalls += 1;
                    }
                    node.arbiter.refund(t, batch.batch.items as u64);
                    node.pending[t].push_front((batch, Some(req)));
                    node.pending_total += 1;
                    break;
                }
            }
        }
        // Backpressure itself is counted at each refusal above; the
        // gauge tracks total unadmitted depth (engine queue + held
        // batches).
        let depth = node.engine.queue_depth() + node.pending_total;
        node.core.note_queue_depth(depth);
    }

    fn handle_cpu(&mut self, n: usize, c: EngineCompletion) {
        self.busy_service_ns[n] += c.service.as_nanos();
        let (t, tb) = self.nodes[n]
            .inflight
            .remove(&c.query_id)
            .expect("known batch");
        debug_assert_eq!(t, c.model);
        debug_assert_eq!(tb.batch.items as usize, c.batch);
        let now = self.now();
        for seg in &tb.batch.segments {
            self.stats
                .span_batch(seg.query_id, tb.formed, tb.dispatched);
            self.finish_items(now, seg.query_id, seg.items);
        }
    }

    fn finish_items(&mut self, now: SimTime, qid: u64, items: u32) {
        match self.stats.credit_items(now, qid, items) {
            node::Credit::Pending => {}
            node::Credit::Done(f) => {
                let settled = self.nodes[f.node]
                    .core
                    .on_query_done(now, f.tenant, f.latency_ms);
                if M::ENABLED {
                    for mut d in self.nodes[f.node].core.drain_decisions() {
                        d.node = f.node;
                        self.pulse.decision(d);
                    }
                }
                self.stats
                    .record(now, &f, settled, &mut *self.sink, &mut *self.pulse);
                self.router.complete(NodeId(f.node));
                self.outstanding -= 1;
            }
            node::Credit::AwaitExchange { .. } => {
                unreachable!("the unsharded real runtime never shards")
            }
        }
    }
}

/// Join state for one in-flight sharded query: the inputs every shard
/// node gathers over, the partials collected so far, and the merge
/// home.
struct ShardJoin {
    inputs: BatchInputs,
    partials: Vec<ShardPartial>,
    home: usize,
    size: u32,
}

/// What an engine request id stands for on the sharded path.
enum ShardTag {
    Gather { qid: u64 },
    Tail { qid: u64 },
}

/// Wall-clock serving state for the sharded real path
/// ([`Cluster::serve_real_with_outputs`]): per-query gathers fan to
/// the shard-holding nodes' engines, partials join at the home, the
/// fabric exchange elapses on the virtual clock, and the dense tail
/// runs for real on the home's engine.
///
/// Unlike the virtual path, gathers go per query rather than batched
/// through the lane coalescer: each query's partials then slice
/// cleanly for its own merge, which is what keeps the distributed
/// forward bit-identical to the local one (`tests/sharded_real.rs`).
struct ShardedRealRuntime<'s, S: TraceSink, M: MetricsSink> {
    stats: StreamStats,
    router: Router,
    cores: Vec<NodeCore>,
    /// One engine per shard-holding node (`None` elsewhere), with that
    /// node's shard resident.
    engines: Vec<Option<InferenceEngine>>,
    set: Arc<ShardedEmbeddingSet>,
    /// Per-node requests awaiting engine admission, oldest first; the
    /// flag marks a request whose refusal already counted a stall.
    held: Vec<VecDeque<(EngineRequest, bool)>>,
    /// Engine request id → what it computes.
    tags: BTreeMap<u64, ShardTag>,
    joins: BTreeMap<u64, ShardJoin>,
    /// Exchanges waiting out the fabric on the virtual clock.
    exchange_heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    /// `(query id, ctrs)` in completion order.
    outputs: Vec<(u64, Vec<f32>)>,
    next_req: u64,
    outstanding: usize,
    busy_service_ns: Vec<u128>,
    t0: Instant,
    scale: f64,
    /// Where completed queries' lifecycle spans go.
    sink: &'s mut S,
    /// Where completion metrics and retune decisions go. The sharded
    /// path records latencies and controller decisions only — its
    /// engines run gather/tail work that has no virtual-time twin, so
    /// there is no tick-sampled series to cross-validate.
    pulse: &'s mut M,
}

impl<S: TraceSink, M: MetricsSink> ShardedRealRuntime<'_, S, M> {
    /// Model-time now: scaled wall nanoseconds since start.
    fn now(&self) -> SimTime {
        (self.t0.elapsed().as_secs_f64() * self.scale * 1e9) as SimTime // lint:allow(clock-taint): wall time enters model time here, by design
    }

    /// Drains ready engine completions and due exchanges on every
    /// node, then retries requests held back by backpressure.
    fn pump(&mut self) {
        loop {
            let mut progressed = false;
            for n in 0..self.engines.len() {
                while let Some(c) = self.engines[n].as_ref().and_then(|e| e.try_completion()) {
                    self.handle_completion(n, c);
                    progressed = true;
                }
            }
            let now = self.now();
            while let Some(&Reverse((t, qid))) = self.exchange_heap.peek() {
                if t > now {
                    break;
                }
                self.exchange_heap.pop();
                self.start_merge(qid);
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        for n in 0..self.engines.len() {
            if self.engines[n].is_some() {
                self.drain_held(n);
            }
        }
    }

    /// Queues `req` on node `n`'s engine, behind anything already held
    /// back by backpressure.
    fn submit_to(&mut self, n: usize, req: EngineRequest) {
        self.held[n].push_back((req, false));
        self.drain_held(n);
    }

    fn drain_held(&mut self, n: usize) {
        let engine = self.engines[n].as_ref().expect("engine on shard node");
        while let Some((req, counted)) = self.held[n].pop_front() {
            match engine.try_submit(req) {
                Ok(()) => {}
                Err(req) => {
                    if !counted {
                        self.cores[n].backpressure_stalls += 1;
                    }
                    self.held[n].push_front((req, true));
                    break;
                }
            }
        }
        let depth = engine.queue_depth() + self.held[n].len();
        self.cores[n].note_queue_depth(depth);
    }

    /// The fabric wait elapsed: merge `qid`'s partials and run the
    /// dense tail for real on the home's engine.
    fn start_merge(&mut self, qid: u64) {
        let join = self.joins.remove(&qid).expect("live query");
        let pooled = self.set.merge(join.partials);
        let rid = self.next_req;
        self.next_req += 1;
        self.tags.insert(rid, ShardTag::Tail { qid });
        self.submit_to(
            join.home,
            EngineRequest::dense_tail(rid, join.inputs, pooled),
        );
    }

    fn handle_completion(&mut self, n: usize, c: EngineCompletion) {
        self.busy_service_ns[n] += c.service.as_nanos();
        let now = self.now();
        match self.tags.remove(&c.query_id).expect("known request") {
            ShardTag::Gather { qid } => {
                let size = {
                    let join = self.joins.get_mut(&qid).expect("live query");
                    join.partials.push(c.partial.expect("gather partial"));
                    join.size
                };
                match self.stats.credit_items(now, qid, size) {
                    node::Credit::Pending => {}
                    node::Credit::AwaitExchange { home, delay } => {
                        debug_assert_eq!(home, self.joins[&qid].home);
                        self.exchange_heap.push(Reverse((now + delay, qid)));
                    }
                    node::Credit::Done(_) => {
                        unreachable!("the sharded real merge always waits out the fabric")
                    }
                }
            }
            ShardTag::Tail { qid } => {
                let f = self.stats.finish_exchanged(now, qid);
                debug_assert_eq!(f.node, n, "dense tail ran off the home node");
                let settled = self.cores[f.node].on_query_done(now, f.tenant, f.latency_ms);
                if M::ENABLED {
                    for mut d in self.cores[f.node].drain_decisions() {
                        d.node = f.node;
                        self.pulse.decision(d);
                    }
                }
                self.stats
                    .record(now, &f, settled, &mut *self.sink, &mut *self.pulse);
                self.router.complete(NodeId(f.node));
                self.outstanding -= 1;
                self.outputs.push((qid, c.ctrs));
            }
        }
    }
}
