//! Cluster serving: a front-end [`Router`] dispatching the arrival
//! stream across N per-node serving brains.
//!
//! The paper's production deployments hide a fleet of heterogeneous
//! machines behind a load balancer; the scale-out literature (Lui et
//! al.) shows the *routing policy* of that front end dominates cluster
//! tail latency. This module puts that knob on the real execution
//! path:
//!
//! * [`Router`] — consumes the arrival stream, tracks a per-node
//!   outstanding-work gauge, and picks a node per query under a
//!   [`RoutingPolicy`]; every tie breaks toward the smaller
//!   [`NodeId`], so cluster runs stay byte-deterministic.
//! * [`Cluster`] — N instances of the per-node brain (batching queue +
//!   offload executor + online controller) behind one router.
//!   [`Cluster::serve_virtual`] runs the whole fleet in deterministic
//!   virtual time; [`Cluster::serve_real`] runs every node's CPU work
//!   on its own real thread pool.

use crate::batcher::Batch;
use crate::node::{
    self, CpuUtilOverride, NodeCore, NodeSetup, NodeUtilization, Route, RunOutcome, StreamStats,
    TenantSetup,
};
use crate::report::ServerReport;
use crate::server::ServerOptions;
use drs_core::{
    secs_to_ns, stream_offered_qps, ClusterTopology, MultiModelSpec, NodeId, RoutingPolicy,
    ServingStack, SimTime, TenantId,
};
use drs_engine::{EngineCompletion, EngineRequest, InferenceEngine};
use drs_models::{ModelConfig, RecModel};
use drs_platform::{InterconnectModel, ModelCost};
use drs_query::{Query, Trace, MAX_QUERY_SIZE};
use drs_shard::ShardPlan;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default "large query" boundary for [`RoutingPolicy::SizeAware`]
/// when the serving policy has no offload threshold to borrow: the top
/// quartile of the production size distribution carries roughly half
/// the work (Figure 6), and 250 items is that quartile's boundary.
const DEFAULT_SIZE_AWARE_THRESHOLD: u32 = MAX_QUERY_SIZE / 4;

/// One pinned tenant's routable node set, with its own round-robin
/// cursor.
#[derive(Debug)]
struct TenantUniverse {
    mask: Vec<bool>,
    idx: Vec<usize>,
    rr_next: usize,
}

/// The cluster front end: picks a node per query under a
/// [`RoutingPolicy`], tracking per-node outstanding queries.
///
/// The router is deliberately tiny — a gauge vector, a round-robin
/// cursor, and a seeded RNG for sampled policies — because it sits on
/// the per-query hot path (see `benches/router_dispatch.rs`).
///
/// # Examples
///
/// ```
/// use drs_core::{NodeId, RoutingPolicy, TenantId};
/// use drs_server::Router;
///
/// let mut r = Router::new(RoutingPolicy::LeastOutstanding, &[false, false], 250, 7);
/// let a = r.route(TenantId::SOLO, 10);
/// assert_eq!(a, NodeId(0), "empty gauges tie toward the smaller id");
/// assert_eq!(r.route(TenantId::SOLO, 10), NodeId(1), "node 0 now has one outstanding");
/// r.complete(a);
/// assert_eq!(r.route(TenantId::SOLO, 10), NodeId(0));
/// ```
#[derive(Debug)]
pub struct Router {
    policy: RoutingPolicy,
    /// Queries routed to each node and not yet completed.
    outstanding: Vec<u64>,
    /// Queries routed to each node over the whole run.
    dispatched: Vec<u64>,
    gpu_nodes: Vec<bool>,
    /// Nodes the router may pick at all. All-true by default; a
    /// sharded cluster restricts it to the shard-holding nodes
    /// ([`Router::restrict_to`]), since only they can merge a query.
    eligible: Vec<bool>,
    /// Indices of eligible nodes, ascending (the sampling universe for
    /// the randomized policies).
    eligible_idx: Vec<usize>,
    /// Per-tenant placement constraints ([`Router::pin_tenant_to`]):
    /// tenant `k`'s queries only route inside `tenant_masks[k]` when
    /// set, further intersected with the global eligibility. Each pin
    /// carries its own round-robin cursor so rotation inside one
    /// tenant's universe is never disturbed by another tenant's
    /// routes.
    tenant_masks: Vec<Option<TenantUniverse>>,
    size_threshold: u32,
    /// Round-robin cursor of the default (unpinned) universe.
    rr_next: usize,
    rng: StdRng,
    /// Reusable candidate marks for the sampled policies (hot path:
    /// no per-query allocation).
    scratch: Vec<bool>,
}

impl Router {
    /// Builds a router over `gpu_nodes.len()` nodes. `size_threshold`
    /// is the "large query" boundary [`RoutingPolicy::SizeAware`]
    /// steers by; `seed` drives the sampled policies deterministically.
    ///
    /// # Panics
    ///
    /// Panics if there are no nodes, or if a
    /// [`RoutingPolicy::PowerOfTwoChoices`] has `d == 0`.
    pub fn new(policy: RoutingPolicy, gpu_nodes: &[bool], size_threshold: u32, seed: u64) -> Self {
        assert!(!gpu_nodes.is_empty(), "a router needs nodes");
        if let RoutingPolicy::PowerOfTwoChoices { d } = policy {
            assert!(d >= 1, "power-of-d-choices needs d >= 1");
        }
        Router {
            policy,
            outstanding: vec![0; gpu_nodes.len()],
            dispatched: vec![0; gpu_nodes.len()],
            gpu_nodes: gpu_nodes.to_vec(),
            eligible: vec![true; gpu_nodes.len()],
            eligible_idx: (0..gpu_nodes.len()).collect(),
            tenant_masks: Vec::new(),
            size_threshold,
            rr_next: 0,
            rng: StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15),
            scratch: vec![false; gpu_nodes.len()],
        }
    }

    /// Restricts every policy's choice to the nodes marked in `mask`
    /// (a sharded cluster's shard-holding nodes).
    ///
    /// # Panics
    ///
    /// Panics if `mask` has the wrong length or admits no node.
    pub fn restrict_to(mut self, mask: &[bool]) -> Self {
        assert_eq!(mask.len(), self.outstanding.len(), "mask length mismatch");
        assert!(mask.contains(&true), "router needs an eligible node");
        self.eligible = mask.to_vec();
        self.eligible_idx = (0..mask.len()).filter(|&i| mask[i]).collect();
        self
    }

    /// Pins one tenant's queries to the nodes marked in `mask`
    /// (intersected with the global eligibility) — tenant-aware
    /// placement, e.g. an isolation tier that keeps a noisy service
    /// off latency-critical nodes. Unpinned tenants keep the full
    /// eligible universe.
    ///
    /// # Panics
    ///
    /// Panics if `mask` has the wrong length or admits no eligible
    /// node.
    pub fn pin_tenant_to(mut self, tenant: TenantId, mask: &[bool]) -> Self {
        assert_eq!(mask.len(), self.outstanding.len(), "mask length mismatch");
        let combined: Vec<bool> = mask
            .iter()
            .zip(&self.eligible)
            .map(|(&m, &e)| m && e)
            .collect();
        let idx: Vec<usize> = (0..combined.len()).filter(|&i| combined[i]).collect();
        assert!(!idx.is_empty(), "tenant pin admits no eligible node");
        self.tenant_masks.resize_with(tenant.index() + 1, || None);
        self.tenant_masks[tenant.index()] = Some(TenantUniverse {
            mask: combined,
            idx,
            rr_next: 0,
        });
        self
    }

    /// Number of nodes behind the router.
    pub fn nodes(&self) -> usize {
        self.outstanding.len()
    }

    /// Whether node `i` may serve tenant `t`'s queries: the tenant's
    /// pin when set, the global eligibility otherwise.
    fn admits(&self, t: usize, i: usize) -> bool {
        match self.tenant_masks.get(t).and_then(|m| m.as_ref()) {
            Some(u) => u.mask[i],
            None => self.eligible[i],
        }
    }

    /// Tenant `t`'s routable universe as an index list, ascending.
    fn universe(&self, t: usize) -> &[usize] {
        match self.tenant_masks.get(t).and_then(|m| m.as_ref()) {
            Some(u) => &u.idx,
            None => &self.eligible_idx,
        }
    }

    /// Picks the node for `tenant`'s query of `size` items and charges
    /// its gauge. Ties always break toward the smaller [`NodeId`].
    pub fn route(&mut self, tenant: TenantId, size: u32) -> NodeId {
        let t = tenant.index();
        let pick = match self.policy {
            RoutingPolicy::RoundRobin => {
                // Cycle the tenant's universe in id order. Pinned
                // tenants carry their own cursor, so one tenant's
                // routes never perturb another's rotation.
                match self.tenant_masks.get_mut(t).and_then(|m| m.as_mut()) {
                    Some(u) => {
                        let pick = u.idx[u.rr_next];
                        u.rr_next = (u.rr_next + 1) % u.idx.len();
                        pick
                    }
                    None => {
                        let pick = self.eligible_idx[self.rr_next];
                        self.rr_next = (self.rr_next + 1) % self.eligible_idx.len();
                        pick
                    }
                }
            }
            RoutingPolicy::LeastOutstanding | RoutingPolicy::ShardAware => {
                // ShardAware: the fan-out is fixed by the plan, so the
                // routable decision left is the merge home — least
                // outstanding among the shard nodes.
                self.least_loaded(|i| self.admits(t, i))
            }
            RoutingPolicy::PowerOfTwoChoices { d } => {
                let universe_len = self.universe(t).len();
                if d >= universe_len {
                    self.least_loaded(|i| self.admits(t, i))
                } else {
                    // Sample d distinct candidates, then scan in id
                    // order so equal gauges keep the deterministic
                    // smaller-NodeId tie-break.
                    self.scratch.fill(false);
                    let mut chosen = 0usize;
                    while chosen < d {
                        let pos = self.rng.gen_range(0..universe_len);
                        let i = self.universe(t)[pos];
                        if !self.scratch[i] {
                            self.scratch[i] = true;
                            chosen += 1;
                        }
                    }
                    let marks = std::mem::take(&mut self.scratch);
                    let pick = self.least_loaded(|i| marks[i]);
                    self.scratch = marks;
                    pick
                }
            }
            RoutingPolicy::SizeAware => {
                // Large queries prefer accelerator-attached nodes (the
                // tail is exactly what the GPU amortizes); small
                // queries balance over the whole fleet.
                let has_eligible_gpu =
                    (0..self.gpu_nodes.len()).any(|i| self.gpu_nodes[i] && self.admits(t, i));
                if size > self.size_threshold && has_eligible_gpu {
                    self.least_loaded(|i| self.gpu_nodes[i] && self.admits(t, i))
                } else {
                    self.least_loaded(|i| self.admits(t, i))
                }
            }
        };
        self.outstanding[pick] += 1;
        self.dispatched[pick] += 1;
        NodeId(pick)
    }

    /// Releases one outstanding query from `node`'s gauge.
    ///
    /// # Panics
    ///
    /// Panics if the node has no outstanding queries.
    pub fn complete(&mut self, node: NodeId) {
        assert!(self.outstanding[node.0] > 0, "gauge underflow at {node}");
        self.outstanding[node.0] -= 1;
    }

    /// The current outstanding-query gauge of `node`.
    pub fn outstanding(&self, node: NodeId) -> u64 {
        self.outstanding[node.0]
    }

    /// Queries dispatched to each node so far, in [`NodeId`] order.
    pub fn dispatched(&self) -> &[u64] {
        &self.dispatched
    }

    /// First index minimizing the gauge among nodes accepted by
    /// `admit` — scanning in id order makes ties deterministic.
    fn least_loaded(&self, admit: impl Fn(usize) -> bool) -> usize {
        let mut best: Option<usize> = None;
        for i in 0..self.outstanding.len() {
            if !admit(i) {
                continue;
            }
            match best {
                Some(b) if self.outstanding[b] <= self.outstanding[i] => {}
                _ => best = Some(i),
            }
        }
        best.expect("admit accepted at least one node")
    }
}

/// N per-node serving brains behind a front-end [`Router`] — the
/// cluster-first serving stack.
///
/// Every node runs the same scheduling brain as a single
/// [`crate::Server`] (dynamic batching queue, GPU offload above the
/// policy threshold, optional online controller); the router spreads
/// the arrival stream across them under a [`RoutingPolicy`]. Nodes
/// without an accelerator serve the policy with its offload knob
/// stripped, so one policy drives a mixed fleet.
///
/// * [`Cluster::serve_virtual`] — deterministic virtual time across
///   the whole fleet; byte-reproducible per seed (router ties break by
///   [`NodeId`]).
/// * [`Cluster::serve_real`] — every node's CPU batches execute as
///   real forward passes on its own
///   [`drs_engine::InferenceEngine`] worker pool.
///
/// # Examples
///
/// ```
/// use drs_core::{ClusterTopology, NodeSpec, RoutingPolicy, SchedulerPolicy};
/// use drs_models::zoo;
/// use drs_platform::CpuPlatform;
/// use drs_query::{ArrivalProcess, QueryGenerator, SizeDistribution};
/// use drs_server::{Cluster, ServerOptions};
///
/// let queries: Vec<_> = QueryGenerator::new(
///     ArrivalProcess::poisson(800.0),
///     SizeDistribution::production(),
///     7,
/// )
/// .take(400)
/// .collect();
/// let cluster = Cluster::new(
///     &zoo::dlrm_rmc1(),
///     ClusterTopology::uniform(2, CpuPlatform::skylake(), None),
///     RoutingPolicy::PowerOfTwoChoices { d: 2 },
///     ServerOptions::new(40, SchedulerPolicy::cpu_only(64)),
/// );
/// let report = cluster.serve_virtual(&queries);
/// assert!(report.completed > 0);
/// assert_eq!(report.node_queries.len(), 2);
/// ```
#[derive(Debug)]
pub struct Cluster {
    /// Per-tenant cost models, in tenant order.
    costs: Vec<ModelCost>,
    /// Per-tenant serving parameters, in tenant order.
    tenants: Vec<TenantSetup>,
    topology: ClusterTopology,
    routing: RoutingPolicy,
    opts: ServerOptions,
    /// Per-tenant node pins applied to the router
    /// ([`Cluster::pin_tenant_to`]).
    tenant_pins: Vec<(TenantId, Vec<bool>)>,
    /// Table-wise shard placement + the fabric pricing its exchange;
    /// `None` serves the model whole on every node.
    shard: Option<(ShardPlan, InterconnectModel)>,
}

impl Cluster {
    /// Builds a cluster for one model over `topology`, dispatching
    /// under `routing`. Each node gets `opts.workers` worker slots,
    /// capped at its own core count (heterogeneous fleets keep their
    /// hardware shape).
    ///
    /// # Panics
    ///
    /// Panics if options are degenerate or the policy offloads while no
    /// node carries a GPU.
    pub fn new(
        cfg: &ModelConfig,
        topology: ClusterTopology,
        routing: RoutingPolicy,
        opts: ServerOptions,
    ) -> Self {
        opts.validate();
        assert!(
            opts.policy.gpu_threshold.is_none() || topology.has_gpu(),
            "policy offloads to a GPU no node has"
        );
        Cluster {
            costs: vec![ModelCost::new(cfg)],
            tenants: vec![TenantSetup::solo(opts.policy, cfg.sla_ms)],
            topology,
            routing,
            opts,
            tenant_pins: Vec::new(),
            shard: None,
        }
    }

    /// Builds a cluster co-locating the spec's models on every node's
    /// shared worker pool: each node runs one batching queue and
    /// (when `opts.controller` is set) one online controller per
    /// tenant, tuned against its own SLA tier, with deficit
    /// round-robin arbitrating the pool across tenants. The router
    /// dispatches each query among the nodes its tenant may use (all,
    /// unless pinned via [`Cluster::pin_tenant_to`]).
    ///
    /// `opts.policy` is ignored; each tenant serves its spec policy.
    ///
    /// # Panics
    ///
    /// Panics if options are degenerate or any tenant's policy
    /// offloads while no node carries a GPU.
    pub fn new_multi(
        spec: &MultiModelSpec,
        topology: ClusterTopology,
        routing: RoutingPolicy,
        opts: ServerOptions,
    ) -> Self {
        opts.validate();
        for t in spec.tenants() {
            assert!(
                t.policy.gpu_threshold.is_none() || topology.has_gpu(),
                "tenant {} offloads to a GPU no node has",
                t.name
            );
        }
        Cluster {
            costs: spec
                .tenants()
                .iter()
                .map(|t| ModelCost::new(&t.model))
                .collect(),
            tenants: spec
                .tenants()
                .iter()
                .map(|t| TenantSetup {
                    policy: t.policy,
                    weight: t.weight,
                    report_sla_ms: t.sla_ms,
                    controller_sla_ms: Some(t.sla_ms),
                })
                .collect(),
            topology,
            routing,
            opts,
            tenant_pins: Vec::new(),
            shard: None,
        }
    }

    /// Pins one tenant's queries to the nodes marked in `mask` —
    /// tenant-aware placement on top of the dispatch policy.
    ///
    /// # Panics
    ///
    /// Panics if `mask` has the wrong length or admits no node (checked
    /// when the router is built at serve time).
    pub fn pin_tenant_to(mut self, tenant: TenantId, mask: &[bool]) -> Self {
        assert_eq!(mask.len(), self.topology.len(), "mask length mismatch");
        self.tenant_pins.push((tenant, mask.to_vec()));
        self
    }

    /// Builds a cluster serving one model *sharded table-wise* per
    /// `plan`: every query fans to each shard-holding node (which
    /// gathers and pools its local tables), the partials merge at a
    /// router-chosen home node, and the cross-node exchange is priced
    /// by `net`. This is the capacity-driven scale-out path — the only
    /// way a model whose tables exceed one node's `mem_bytes` serves
    /// at all.
    ///
    /// Sharded serving runs the CPU gather path; accelerator offload
    /// of sharded queries is a follow-on (the policy must not carry a
    /// `gpu_threshold`, and node GPUs sit idle).
    ///
    /// # Panics
    ///
    /// Panics if options are degenerate, the policy offloads, the plan
    /// was built for a different fleet shape, or the plan overfills a
    /// node's memory.
    pub fn new_sharded(
        cfg: &ModelConfig,
        topology: ClusterTopology,
        routing: RoutingPolicy,
        plan: ShardPlan,
        net: InterconnectModel,
        opts: ServerOptions,
    ) -> Self {
        opts.validate();
        assert!(
            opts.policy.gpu_threshold.is_none(),
            "sharded serving is CPU-path: the policy must not offload"
        );
        assert_eq!(
            plan.node_count(),
            topology.len(),
            "shard plan covers {} nodes, topology has {}",
            plan.node_count(),
            topology.len()
        );
        for (n, spec) in topology.nodes().iter().enumerate() {
            assert!(
                plan.bytes_on(NodeId(n)) <= spec.mem_bytes,
                "plan overfills node {n}: {} > {} bytes",
                plan.bytes_on(NodeId(n)),
                spec.mem_bytes
            );
        }
        Cluster {
            costs: vec![ModelCost::new(cfg)],
            tenants: vec![TenantSetup::solo(opts.policy, cfg.sla_ms)],
            topology,
            routing,
            opts,
            tenant_pins: Vec::new(),
            shard: Some((plan, net)),
        }
    }

    /// The shard plan in force, if the cluster serves a sharded model.
    pub fn shard_plan(&self) -> Option<&ShardPlan> {
        self.shard.as_ref().map(|(p, _)| p)
    }

    /// The fleet behind the router.
    pub fn topology(&self) -> &ClusterTopology {
        &self.topology
    }

    /// The front-end dispatch policy.
    pub fn routing(&self) -> RoutingPolicy {
        self.routing
    }

    /// The options every node runs with.
    pub fn options(&self) -> &ServerOptions {
        &self.opts
    }

    /// The cost model in use (the first tenant's, on a multi-tenant
    /// cluster; shared with the simulator's math).
    pub fn cost(&self) -> &ModelCost {
        &self.costs[0]
    }

    /// Number of co-located tenants this cluster serves.
    pub fn tenants(&self) -> usize {
        self.tenants.len()
    }

    fn setups(&self) -> Vec<NodeSetup> {
        self.topology
            .nodes()
            .iter()
            .map(|n| NodeSetup {
                cpu: n.cpu,
                // Sharded serving is CPU-path: node GPUs sit idle so a
                // per-node controller cannot grow an offload knob for
                // queries that only carry a fraction of the model.
                gpu: if self.shard.is_some() { None } else { n.gpu },
                workers: self.opts.workers.min(n.cpu.cores),
            })
            .collect()
    }

    fn router(&self) -> Router {
        // The size-aware boundary is fixed at run start from the
        // *configured* policy. With an online controller attached,
        // node-local retunes move each node's offload threshold at
        // runtime but do not feed back into the router — the front end
        // keeps steering by the static boundary. Threshold-following
        // routing is deliberately out of scope until the controller
        // grows a cluster-level view.
        // Sharded serving disables the node GPUs (setups() strips
        // them), so the router must not see them either: SizeAware
        // would otherwise concentrate large queries' merge homes on
        // accelerators that sit idle. With an all-false mask it
        // degrades to least-outstanding, its documented fallback.
        let gpu_nodes = if self.shard.is_some() {
            vec![false; self.topology.len()]
        } else {
            self.topology.gpu_nodes()
        };
        let router = Router::new(
            self.routing,
            &gpu_nodes,
            self.opts
                .policy
                .gpu_threshold
                .unwrap_or(DEFAULT_SIZE_AWARE_THRESHOLD),
            self.opts.seed,
        );
        let mut router = match &self.shard {
            // Only a shard-holding node can merge a query, whatever
            // the dispatch policy.
            Some((plan, _)) => router.restrict_to(&plan.shard_mask()),
            None => router,
        };
        for (tenant, mask) in &self.tenant_pins {
            router = router.pin_tenant_to(*tenant, mask);
        }
        router
    }

    fn shard_geometry(&self) -> Option<drs_shard::ShardGeometry> {
        self.shard.as_ref().map(|(plan, net)| plan.geometry(*net))
    }

    /// Serves `queries` across the fleet in deterministic virtual time
    /// and reports; byte-identical per seed.
    ///
    /// # Panics
    ///
    /// Panics if `queries` is empty.
    pub fn serve_virtual(&self, queries: &[Query]) -> ServerReport {
        node::serve_virtual_multi(
            &self.costs,
            &self.tenants,
            &self.setups(),
            &self.opts,
            self.router(),
            self.shard_geometry().as_ref(),
            queries,
        )
    }

    /// Replays a recorded trace across the fleet in virtual time.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn serve_trace(&self, trace: &Trace) -> ServerReport {
        assert!(!trace.is_empty(), "cannot replay an empty trace");
        let queries: Vec<Query> = trace.replay().collect();
        self.serve_virtual(&queries)
    }

    /// Serves `queries` with every node's CPU work on its own real
    /// thread pool: arrivals are paced by the wall clock (compressed by
    /// `time_scale`), the router dispatches each query to a node, and
    /// that node's batches run as physical forward passes through its
    /// own bounded [`InferenceEngine`]. GPU offloads complete on each
    /// node's virtual-clock executor, as in [`crate::Server::serve_real`].
    ///
    /// # Panics
    ///
    /// Panics if `queries` is empty or the model geometry disagrees
    /// with the cluster's configuration.
    pub fn serve_real(&self, model: Arc<RecModel>, queries: &[Query]) -> ServerReport {
        assert!(!queries.is_empty(), "no queries to serve");
        assert!(
            self.shard.is_none(),
            "sharded clusters serve in virtual time; a real-engine sharded path \
             (per-node partial forwards over ShardedEmbeddingSet) is a follow-on"
        );
        assert_eq!(
            self.tenants.len(),
            1,
            "multi-tenant serving runs in virtual time; a real-engine multi-model \
             worker pool is a follow-on"
        );
        let setups = self.setups();
        let mut rt = ClusterRealRuntime {
            stats: StreamStats::new(queries.len(), self.opts.warmup_frac, 1),
            router: self.router(),
            nodes: setups
                .iter()
                .map(|s| RealNode {
                    core: NodeCore::new(&self.costs, &self.tenants, s, &self.opts),
                    engine: InferenceEngine::start(Arc::clone(&model), s.workers)
                        .with_queue_bound(self.opts.batching.queue_bound),
                    pending: VecDeque::new(),
                    inflight: HashMap::new(),
                    gpu_heap: BinaryHeap::new(),
                })
                .collect(),
            model,
            rng: StdRng::seed_from_u64(self.opts.seed),
            outstanding: 0,
            busy_service_ns: vec![0; setups.len()],
            t0: Instant::now(),
            scale: self.opts.time_scale,
        };
        let base_s = queries[0].arrival_s;

        for q in queries {
            let due = secs_to_ns(q.arrival_s - base_s); // model-time ns
            loop {
                rt.pump();
                let now = rt.now();
                if now >= due {
                    break;
                }
                // Earliest wake among all nodes' GPU heads and
                // coalesce deadlines; bounded so a completion on any
                // engine is picked up within a short poll interval.
                let mut next = due;
                for node in &rt.nodes {
                    if let Some(&Reverse((t, _))) = node.gpu_heap.peek() {
                        next = next.min(t.max(now));
                    }
                    if let Some(d) = node.core.earliest_deadline() {
                        next = next.min(d.max(now));
                    }
                }
                let wait_model_ns = (next - now).max(20_000);
                let wait = Duration::from_secs_f64(wait_model_ns as f64 / rt.scale / 1e9);
                std::thread::sleep(wait.min(Duration::from_micros(200)));
            }
            let now = rt.now();
            rt.outstanding += 1;
            let NodeId(n) = rt.router.route(q.tenant, q.size);
            let measured = rt.stats.note_arrival(now, q, n);
            match rt.nodes[n].core.on_arrival(now, q) {
                Route::Gpu(done) => {
                    rt.stats.note_gpu_items(measured, q.size);
                    rt.nodes[n].gpu_heap.push(Reverse((done, q.id)));
                }
                Route::Cpu(batches) => rt.queue_batches(n, batches),
            }
        }

        // Drain the tail: everything still queued, batching, in flight
        // on any engine, or ticking down on a GPU's virtual clock.
        while rt.outstanding > 0 {
            rt.pump();
            if rt.outstanding == 0 {
                break;
            }
            std::thread::sleep(Duration::from_micros(100));
        }

        let end_model_ns = rt.now();
        let wall_elapsed_ns = rt.t0.elapsed().as_nanos().max(1);
        let total_workers: usize = setups.iter().map(|s| s.workers).sum();
        let total_busy: u128 = rt.busy_service_ns.iter().sum();
        let cpu_util = CpuUtilOverride {
            per_node: rt
                .busy_service_ns
                .iter()
                .zip(&setups)
                .map(|(&busy, s)| busy as f64 / (s.workers.max(1) as f64 * wall_elapsed_ns as f64))
                .collect(),
            overall: total_busy as f64 / (total_workers as f64 * wall_elapsed_ns as f64),
        };
        let ClusterRealRuntime {
            stats,
            router,
            nodes,
            ..
        } = rt;
        let node_queries = router.dispatched().to_vec();
        let mut cores = Vec::with_capacity(nodes.len());
        let mut utilization = Vec::with_capacity(nodes.len());
        for (node, setup) in nodes.into_iter().zip(&setups) {
            node.engine.shutdown();
            cores.push(node.core);
            utilization.push(NodeUtilization {
                busy_core_ns: 0,
                workers: setup.workers,
            });
        }
        node::assemble_report(
            RunOutcome {
                stats,
                cores,
                setups,
                tenant_setups: self.tenants.clone(),
                utilization,
                end_ns: end_model_ns,
                node_queries,
                cpu_utilization_override: Some(cpu_util),
            },
            stream_offered_qps(queries),
        )
    }
}

impl ServingStack for Cluster {
    type Report = ServerReport;

    fn label(&self) -> String {
        match &self.shard {
            Some((plan, _)) => format!(
                "cluster[{} x{} sharded x{}]",
                self.routing.label(),
                self.topology.len(),
                plan.shard_nodes().len()
            ),
            None if self.tenants.len() > 1 => format!(
                "cluster[{} x{} multi x{}]",
                self.routing.label(),
                self.topology.len(),
                self.tenants.len()
            ),
            None => format!("cluster[{} x{}]", self.routing.label(), self.topology.len()),
        }
    }

    fn serve_queries(&self, queries: &[Query]) -> ServerReport {
        self.serve_virtual(queries)
    }

    fn serve_trace(&self, trace: &Trace) -> ServerReport {
        Cluster::serve_trace(self, trace)
    }
}

// The cluster's wall-clock runtime intentionally parallels the
// single-node `RealRuntime` in `server.rs` rather than sharing it: the
// single-node path blocks on its one engine's completion channel
// (lowest handling latency), while N engines force a polling loop.
// The scheduling brain both paths drive lives in `node.rs`
// (`NodeCore`/`StreamStats`); only the I/O pacing differs here.

/// One node's wall-clock execution state.
struct RealNode {
    core: NodeCore,
    engine: InferenceEngine,
    /// Batches awaiting engine admission (head may carry its already
    /// generated request after a backpressure refusal).
    pending: VecDeque<(Batch, Option<EngineRequest>)>,
    inflight: HashMap<u64, Batch>,
    /// GPU completions on the virtual clock, earliest first.
    gpu_heap: BinaryHeap<Reverse<(SimTime, u64)>>,
}

/// Wall-clock serving state for [`Cluster::serve_real`].
struct ClusterRealRuntime {
    stats: StreamStats,
    router: Router,
    nodes: Vec<RealNode>,
    model: Arc<RecModel>,
    rng: StdRng,
    outstanding: usize,
    /// Per-node sums of worker-side service durations (wall ns) — the
    /// per-node CPU busy integrals.
    busy_service_ns: Vec<u128>,
    t0: Instant,
    scale: f64,
}

impl ClusterRealRuntime {
    /// Model-time now: scaled wall nanoseconds since start.
    fn now(&self) -> SimTime {
        (self.t0.elapsed().as_secs_f64() * self.scale * 1e9) as SimTime
    }

    /// Drains everything that is ready on every node without blocking.
    fn pump(&mut self) {
        for n in 0..self.nodes.len() {
            loop {
                if let Some(c) = self.nodes[n].engine.try_completion() {
                    self.handle_cpu(n, c);
                    continue;
                }
                let now = self.now();
                if let Some(&Reverse((t, qid))) = self.nodes[n].gpu_heap.peek() {
                    if t <= now {
                        self.nodes[n].gpu_heap.pop();
                        let items = self.stats.remaining_items(qid);
                        // Complete at the scheduled virtual time, not
                        // the (slightly later) drain time.
                        self.finish_items(t, qid, items);
                        continue;
                    }
                }
                if self.nodes[n]
                    .core
                    .batcher(0)
                    .deadline()
                    .is_some_and(|d| d <= now)
                {
                    let mut out = Vec::new();
                    self.nodes[n].core.batcher_mut(0).flush_due(now, &mut out);
                    self.queue_batches(n, out);
                    continue;
                }
                break;
            }
            if self.nodes[n].core.take_policy_dirty(0) {
                // The controller retuned: `rebatch_lane` repacks
                // everything not yet admitted to this node's engine
                // (in-flight requests are committed) plus the open
                // coalesce residual at the new knob. Cached requests
                // are stale and regenerated.
                let queued: Vec<Batch> = self.nodes[n].pending.drain(..).map(|(b, _)| b).collect();
                for b in self.nodes[n].core.rebatch_lane(0, queued) {
                    self.nodes[n].pending.push_back((b, None));
                }
            }
            self.submit_pending(n);
        }
    }

    fn queue_batches(&mut self, n: usize, batches: Vec<Batch>) {
        for b in batches {
            self.nodes[n].pending.push_back((b, None));
        }
        self.submit_pending(n);
    }

    fn submit_pending(&mut self, n: usize) {
        while let Some((batch, cached)) = self.nodes[n].pending.pop_front() {
            // A cached request means this batch was already refused
            // once: retries are not fresh backpressure.
            let first_attempt = cached.is_none();
            let req = cached.unwrap_or_else(|| EngineRequest {
                query_id: batch.id,
                inputs: self
                    .model
                    .generate_inputs(batch.items as usize, &mut self.rng),
            });
            match self.nodes[n].engine.try_submit(req) {
                Ok(()) => {
                    self.nodes[n].inflight.insert(batch.id, batch);
                }
                Err(req) => {
                    if first_attempt {
                        self.nodes[n].core.backpressure_stalls += 1;
                    }
                    self.nodes[n].pending.push_front((batch, Some(req)));
                    break;
                }
            }
        }
        // Backpressure itself is counted at each refusal above; the
        // gauge tracks total unadmitted depth (engine queue + held
        // batches).
        let depth = self.nodes[n].engine.queue_depth() + self.nodes[n].pending.len();
        self.nodes[n].core.note_queue_depth(depth);
    }

    fn handle_cpu(&mut self, n: usize, c: EngineCompletion) {
        self.busy_service_ns[n] += c.service.as_nanos();
        let b = self.nodes[n]
            .inflight
            .remove(&c.query_id)
            .expect("known batch");
        debug_assert_eq!(b.items as usize, c.batch);
        let now = self.now();
        for seg in &b.segments {
            self.finish_items(now, seg.query_id, seg.items);
        }
    }

    fn finish_items(&mut self, now: SimTime, qid: u64, items: u32) {
        match self.stats.credit_items(now, qid, items) {
            node::Credit::Pending => {}
            node::Credit::Done(f) => {
                let settled = self.nodes[f.node]
                    .core
                    .on_query_done(now, f.tenant, f.latency_ms);
                self.stats.record(now, &f, settled);
                self.router.complete(NodeId(f.node));
                self.outstanding -= 1;
            }
            node::Credit::AwaitExchange { .. } => {
                unreachable!("real-engine cluster serving never shards")
            }
        }
    }
}
