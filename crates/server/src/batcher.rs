//! The dynamic batching queue: splits arriving queries per
//! `max_batch` and coalesces sub-batch residuals across queries until
//! a batch fills or a timeout expires.
//!
//! The simulator dispatches every split part immediately; a real
//! serving tier cannot afford that for small queries — a 3-item query
//! would occupy a whole worker for a 3-item forward pass. Coalescing
//! residuals from consecutive queries into one near-full batch buys
//! back batch-level parallelism at the cost of a bounded added delay
//! (the coalesce timeout), which is exactly the batching-queue stage
//! of the paper's Figure 8 pipeline.

use drs_core::SimTime;

/// The portion of one query carried inside a [`Batch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchSegment {
    /// Query these items belong to.
    pub query_id: u64,
    /// Items of that query in this batch.
    pub items: u32,
}

/// One dispatchable unit of CPU work: up to `max_batch` items drawn
/// from one or more queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// Monotonically increasing batch identifier (the engine request
    /// tag).
    pub id: u64,
    /// Per-query item counts; a full chunk of a large query has one
    /// segment, a coalesced batch one per contributing query.
    pub segments: Vec<BatchSegment>,
    /// Total items (sum over segments).
    pub items: u32,
    /// Time the batch was opened (first item buffered / chunk formed).
    pub opened_at: SimTime,
}

/// Counters the batching queue accumulates over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Batches emitted.
    pub batches: u64,
    /// Batches emitted exactly at `max_batch` items.
    pub full_batches: u64,
    /// Batches carrying residuals from two or more queries.
    pub coalesced_batches: u64,
    /// Batches flushed by the coalesce timeout rather than by filling.
    pub timeout_flushes: u64,
    /// Total items across all emitted batches.
    pub items: u64,
}

impl BatchStats {
    /// Accumulates another queue's counters into this one — the single
    /// definition report assembly uses to aggregate across tenant
    /// lanes and nodes.
    pub fn merge(&mut self, other: BatchStats) {
        self.batches += other.batches;
        self.full_batches += other.full_batches;
        self.coalesced_batches += other.coalesced_batches;
        self.timeout_flushes += other.timeout_flushes;
        self.items += other.items;
    }
}

/// Per-model dynamic batching queue.
///
/// # Examples
///
/// ```
/// use drs_server::BatchQueue;
///
/// let mut q = BatchQueue::new(64, 200_000); // 200 µs coalesce window
/// let mut out = Vec::new();
/// // A 150-item query: two full chunks dispatch immediately, the
/// // 22-item residual waits for company.
/// q.push(0, 1, 150, &mut out);
/// assert_eq!(out.len(), 2);
/// assert!(out.iter().all(|b| b.items == 64));
/// // A 42-item query tops the residual up to exactly 64: flush.
/// q.push(1_000, 2, 42, &mut out);
/// assert_eq!(out.len(), 3);
/// assert_eq!(out[2].items, 64);
/// assert_eq!(out[2].segments.len(), 2);
/// ```
#[derive(Debug)]
pub struct BatchQueue {
    max_batch: u32,
    coalesce_timeout: SimTime,
    open: Option<Batch>,
    next_id: u64,
    stats: BatchStats,
}

impl BatchQueue {
    /// Creates a queue with the given per-request batch size and
    /// coalesce timeout (nanoseconds; `0` disables coalescing — every
    /// residual dispatches immediately, reproducing plain
    /// `split_query` behaviour).
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    pub fn new(max_batch: u32, coalesce_timeout_ns: SimTime) -> Self {
        assert!(max_batch > 0, "batch size must be positive");
        BatchQueue {
            max_batch,
            coalesce_timeout: coalesce_timeout_ns,
            open: None,
            next_id: 0,
            stats: BatchStats::default(),
        }
    }

    /// Current per-request batch size.
    pub fn max_batch(&self) -> u32 {
        self.max_batch
    }

    /// Accumulated counters.
    pub fn stats(&self) -> BatchStats {
        self.stats
    }

    /// Retunes the batch size (the online controller's knob). An open
    /// residual batch already at or above the new size is flushed to
    /// `out`.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    pub fn set_max_batch(&mut self, max_batch: u32, out: &mut Vec<Batch>) {
        assert!(max_batch > 0, "batch size must be positive");
        self.max_batch = max_batch;
        if self
            .open
            .as_ref()
            .is_some_and(|b| b.items >= self.max_batch)
        {
            self.flush_open(out, false);
        }
    }

    /// Splits a query of `size` items arriving at `now` into batches.
    /// Full chunks are emitted to `out` immediately; the sub-batch
    /// residual joins the open coalesce buffer (and may complete it).
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn push(&mut self, now: SimTime, query_id: u64, size: u32, out: &mut Vec<Batch>) {
        assert!(size > 0, "empty query");
        let full_chunks = size / self.max_batch;
        let residual = size % self.max_batch;
        for _ in 0..full_chunks {
            let b = Batch {
                id: self.next_id,
                segments: vec![BatchSegment {
                    query_id,
                    items: self.max_batch,
                }],
                items: self.max_batch,
                opened_at: now,
            };
            self.next_id += 1;
            self.emit(b, false, out);
        }
        if residual == 0 {
            return;
        }
        // The residual must fit into the open buffer without splitting
        // its segment; if it cannot, the open batch ships early
        // (near-full beats holding the newcomer hostage).
        if self
            .open
            .as_ref()
            .is_some_and(|b| b.items + residual > self.max_batch)
        {
            self.flush_open(out, false);
        }
        let open = self.open.get_or_insert_with(|| {
            let b = Batch {
                id: self.next_id,
                segments: Vec::new(),
                items: 0,
                opened_at: now,
            };
            self.next_id += 1;
            b
        });
        open.segments.push(BatchSegment {
            query_id,
            items: residual,
        });
        open.items += residual;
        if open.items == self.max_batch || self.coalesce_timeout == 0 {
            self.flush_open(out, false);
        }
    }

    /// When the open coalesce buffer must flush, if any: its open time
    /// plus the coalesce timeout.
    pub fn deadline(&self) -> Option<SimTime> {
        self.open
            .as_ref()
            .map(|b| b.opened_at.saturating_add(self.coalesce_timeout))
    }

    /// Flushes the open buffer if its deadline has passed.
    pub fn flush_due(&mut self, now: SimTime, out: &mut Vec<Batch>) {
        if self.deadline().is_some_and(|d| d <= now) {
            self.flush_open(out, true);
        }
    }

    /// Flushes the open buffer unconditionally (end of stream).
    pub fn flush_all(&mut self, out: &mut Vec<Batch>) {
        if self.open.is_some() {
            self.flush_open(out, false);
        }
    }

    /// Re-forms not-yet-dispatched batches at the *current* batch size
    /// — the retune path. When the online controller moves `max_batch`,
    /// a backlog formed under the old knob would otherwise drain at the
    /// old knob's cost forever (thousands of unit batches after a
    /// climb step away from batch 1). Segments are repacked greedily
    /// and may split across batches; per-query item accounting is
    /// unaffected. The final partial batch dispatches immediately
    /// rather than re-entering the coalesce buffer — it is old work and
    /// must not be delayed further.
    ///
    /// Reformed batches are not re-counted in [`BatchStats`] (their
    /// items were counted when first formed).
    pub fn reform(&mut self, queued: Vec<Batch>, out: &mut Vec<Batch>) {
        let mut current: Option<Batch> = None;
        for old in queued {
            let opened_at = old.opened_at;
            for mut seg in old.segments {
                while seg.items > 0 {
                    if current.is_none() {
                        let id = self.next_id;
                        self.next_id += 1;
                        current = Some(Batch {
                            id,
                            segments: Vec::new(),
                            items: 0,
                            opened_at,
                        });
                    }
                    let cur = current.as_mut().expect("just opened");
                    let take = (self.max_batch - cur.items).min(seg.items);
                    cur.segments.push(BatchSegment {
                        query_id: seg.query_id,
                        items: take,
                    });
                    cur.items += take;
                    seg.items -= take;
                    if cur.items == self.max_batch {
                        out.push(current.take().expect("full batch"));
                    }
                }
            }
        }
        if let Some(b) = current {
            out.push(b);
        }
    }

    fn flush_open(&mut self, out: &mut Vec<Batch>, by_timeout: bool) {
        if let Some(b) = self.open.take() {
            if by_timeout {
                self.stats.timeout_flushes += 1;
            }
            self.emit(b, true, out);
        }
    }

    fn emit(&mut self, b: Batch, from_buffer: bool, out: &mut Vec<Batch>) {
        self.stats.batches += 1;
        self.stats.items += b.items as u64;
        if b.items == self.max_batch {
            self.stats.full_batches += 1;
        }
        if from_buffer && b.segments.len() >= 2 {
            self.stats.coalesced_batches += 1;
        }
        out.push(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items_of(out: &[Batch]) -> Vec<u32> {
        out.iter().map(|b| b.items).collect()
    }

    #[test]
    fn large_query_splits_into_full_chunks_plus_residual() {
        let mut q = BatchQueue::new(64, 1_000);
        let mut out = Vec::new();
        q.push(0, 9, 200, &mut out);
        assert_eq!(items_of(&out), vec![64, 64, 64]);
        assert!(out.iter().all(|b| b.segments[0].query_id == 9));
        // Residual 8 still buffered.
        assert_eq!(q.deadline(), Some(1_000));
        q.flush_all(&mut out);
        assert_eq!(items_of(&out), vec![64, 64, 64, 8]);
    }

    #[test]
    fn residuals_coalesce_across_queries() {
        let mut q = BatchQueue::new(100, 1_000_000);
        let mut out = Vec::new();
        q.push(0, 1, 30, &mut out);
        q.push(10, 2, 30, &mut out);
        q.push(20, 3, 40, &mut out); // exactly fills 100
        assert_eq!(out.len(), 1);
        let b = &out[0];
        assert_eq!(b.items, 100);
        assert_eq!(b.segments.len(), 3);
        assert_eq!(b.opened_at, 0, "opened when the first residual arrived");
        assert_eq!(q.stats().coalesced_batches, 1);
        assert_eq!(q.stats().full_batches, 1);
    }

    #[test]
    fn overflow_residual_ships_open_batch_early() {
        let mut q = BatchQueue::new(100, 1_000_000);
        let mut out = Vec::new();
        q.push(0, 1, 60, &mut out);
        q.push(5, 2, 70, &mut out); // 60+70 > 100: the 60 ships alone
        assert_eq!(items_of(&out), vec![60]);
        assert_eq!(out[0].segments.len(), 1);
        q.flush_all(&mut out);
        assert_eq!(items_of(&out), vec![60, 70]);
    }

    #[test]
    fn timeout_flushes_partial_batch() {
        let mut q = BatchQueue::new(64, 500);
        let mut out = Vec::new();
        q.push(100, 1, 10, &mut out);
        assert!(out.is_empty());
        q.flush_due(599, &mut out);
        assert!(out.is_empty(), "before the deadline");
        q.flush_due(600, &mut out);
        assert_eq!(items_of(&out), vec![10]);
        assert_eq!(q.stats().timeout_flushes, 1);
        assert_eq!(q.deadline(), None);
    }

    #[test]
    fn zero_timeout_reproduces_split_query() {
        let mut q = BatchQueue::new(64, 0);
        let mut out = Vec::new();
        q.push(0, 1, 150, &mut out);
        assert_eq!(items_of(&out), vec![64, 64, 22]);
        assert_eq!(q.deadline(), None, "nothing lingers");
    }

    #[test]
    fn retune_flushes_oversized_open_batch() {
        let mut q = BatchQueue::new(100, 1_000_000);
        let mut out = Vec::new();
        q.push(0, 1, 50, &mut out);
        assert!(out.is_empty());
        q.set_max_batch(32, &mut out);
        assert_eq!(items_of(&out), vec![50], "open 50 >= new max 32");
        q.push(10, 2, 50, &mut out);
        assert_eq!(items_of(&out), vec![50, 32], "one full chunk at new size");
        q.flush_all(&mut out);
        assert_eq!(items_of(&out), vec![50, 32, 18]);
    }

    #[test]
    fn items_are_conserved() {
        let mut q = BatchQueue::new(37, 10);
        let mut out = Vec::new();
        let sizes = [1u32, 500, 37, 36, 38, 999, 2, 74];
        for (i, &s) in sizes.iter().enumerate() {
            q.push(i as u64 * 7, i as u64, s, &mut out);
        }
        q.flush_all(&mut out);
        let total: u64 = sizes.iter().map(|&s| s as u64).sum();
        let batched: u64 = out.iter().map(|b| b.items as u64).sum();
        assert_eq!(total, batched);
        assert_eq!(q.stats().items, total);
        // Per-query conservation through segments.
        for (i, &s) in sizes.iter().enumerate() {
            let got: u32 = out
                .iter()
                .flat_map(|b| &b.segments)
                .filter(|seg| seg.query_id == i as u64)
                .map(|seg| seg.items)
                .sum();
            assert_eq!(got, s, "query {i}");
        }
        // Batch ids are unique.
        let mut ids: Vec<u64> = out.iter().map(|b| b.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), out.len());
    }

    #[test]
    fn reform_repacks_backlog_at_new_size() {
        let mut q = BatchQueue::new(1, 0);
        let mut out = Vec::new();
        // A backlog of unit batches from queries 1 and 2.
        q.push(0, 1, 5, &mut out);
        q.push(0, 2, 3, &mut out);
        assert_eq!(out.len(), 8);
        let mut reformed = Vec::new();
        q.set_max_batch(4, &mut reformed);
        q.reform(out, &mut reformed);
        // 8 items repack into 4 + 4.
        assert_eq!(items_of(&reformed), vec![4, 4]);
        let per_query = |qid: u64| -> u32 {
            reformed
                .iter()
                .flat_map(|b| &b.segments)
                .filter(|s| s.query_id == qid)
                .map(|s| s.items)
                .sum()
        };
        assert_eq!(per_query(1), 5, "items conserved across the repack");
        assert_eq!(per_query(2), 3);
    }

    #[test]
    fn reform_splits_oversized_segments() {
        let mut q = BatchQueue::new(100, 1_000_000);
        let mut out = Vec::new();
        q.push(0, 7, 90, &mut out);
        q.flush_all(&mut out);
        assert_eq!(items_of(&out), vec![90]);
        let mut reformed = Vec::new();
        q.set_max_batch(32, &mut reformed);
        q.reform(out, &mut reformed);
        assert_eq!(items_of(&reformed), vec![32, 32, 26]);
        assert!(reformed
            .iter()
            .all(|b| b.segments.iter().all(|s| s.query_id == 7)));
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_rejected() {
        let _ = BatchQueue::new(0, 0);
    }
}
