//! GPU offload executor: a virtual-time FIFO device backed by the same
//! cost model the simulator uses.
//!
//! The repo has no physical accelerator, so offloaded queries are
//! *scheduled* rather than executed: service times come from
//! [`drs_platform::ModelCost::gpu_query_us`] — host serialization,
//! PCIe transfer, kernel launches, device compute — and the executor
//! serves its queue FIFO, one query at a time, exactly like the
//! simulator's GPU. Because both layers share one formula, the server
//! and the simulator can be cross-validated against each other (see
//! `tests/cross_validation.rs`).

use drs_core::{us_to_ns, SimTime};
use drs_platform::{CpuPlatform, GpuPlatform, ModelCost};

/// Virtual-time FIFO executor for GPU-offloaded queries.
///
/// # Examples
///
/// ```
/// use drs_models::zoo;
/// use drs_platform::{CpuPlatform, GpuPlatform, ModelCost};
/// use drs_server::GpuExecutor;
///
/// let mut gx = GpuExecutor::new(
///     ModelCost::new(&zoo::dlrm_rmc1()),
///     CpuPlatform::skylake(),
///     GpuPlatform::gtx_1080ti(),
/// );
/// let first = gx.schedule(0, 800);
/// let second = gx.schedule(0, 800);
/// assert_eq!(second, 2 * first, "FIFO: the second query queues");
/// ```
#[derive(Debug, Clone)]
pub struct GpuExecutor {
    cost: ModelCost,
    cpu: CpuPlatform,
    gpu: GpuPlatform,
    busy_until: SimTime,
    busy_ns: u128,
    completed: u64,
}

impl GpuExecutor {
    /// Creates an idle executor for one model on one host/device pair.
    pub fn new(cost: ModelCost, cpu: CpuPlatform, gpu: GpuPlatform) -> Self {
        GpuExecutor {
            cost,
            cpu,
            gpu,
            busy_until: 0,
            busy_ns: 0,
            completed: 0,
        }
    }

    /// End-to-end service time of one whole query of `size` items, in
    /// microseconds — byte-for-byte the simulator's cost math.
    pub fn service_us(&self, size: u32) -> f64 {
        self.cost.gpu_query_us(&self.cpu, &self.gpu, size as usize)
    }

    /// [`service_us`](GpuExecutor::service_us) in nanoseconds.
    pub fn service_ns(&self, size: u32) -> SimTime {
        us_to_ns(self.service_us(size))
    }

    /// FIFO-schedules a query arriving at `now` and returns its
    /// completion time: it starts when the device frees up and holds
    /// the device for its full service time.
    pub fn schedule(&mut self, now: SimTime, size: u32) -> SimTime {
        let start = self.busy_until.max(now);
        let done = start + self.service_ns(size);
        self.busy_ns += (done - start) as u128;
        self.busy_until = done;
        self.completed += 1;
        done
    }

    /// Total device-busy virtual time, nanoseconds.
    pub fn busy_ns(&self) -> u128 {
        self.busy_ns
    }

    /// Queries scheduled so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_models::zoo;

    fn gx() -> GpuExecutor {
        GpuExecutor::new(
            ModelCost::new(&zoo::ncf()),
            CpuPlatform::skylake(),
            GpuPlatform::gtx_1080ti(),
        )
    }

    #[test]
    fn idle_device_serves_at_cost() {
        let mut g = gx();
        let done = g.schedule(5_000, 256);
        assert_eq!(done, 5_000 + g.service_ns(256));
        assert_eq!(g.completed(), 1);
    }

    #[test]
    fn busy_device_queues_fifo() {
        let mut g = gx();
        let d1 = g.schedule(0, 512);
        let d2 = g.schedule(1, 512); // arrives while busy
        assert_eq!(d2, d1 + g.service_ns(512));
        assert_eq!(g.busy_ns(), 2 * g.service_ns(512) as u128);
    }

    #[test]
    fn gap_leaves_device_idle() {
        let mut g = gx();
        let d1 = g.schedule(0, 64);
        let late = d1 + 1_000_000;
        let d2 = g.schedule(late, 64);
        assert_eq!(d2, late + g.service_ns(64));
        // Busy time excludes the idle gap.
        assert_eq!(g.busy_ns(), 2 * g.service_ns(64) as u128);
    }

    #[test]
    fn service_grows_with_query_size() {
        let g = gx();
        assert!(g.service_us(1000) > g.service_us(10));
    }
}
