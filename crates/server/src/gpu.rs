//! GPU offload executor: a virtual-time FIFO device backed by the same
//! cost model the simulator uses.
//!
//! The repo has no physical accelerator, so offloaded queries are
//! *scheduled* rather than executed: service times come from
//! [`drs_platform::ModelCost::gpu_query_us`] — host serialization,
//! PCIe transfer, kernel launches, device compute — and the executor
//! serves its queue FIFO, one query at a time, exactly like the
//! simulator's GPU. Because both layers share one formula, the server
//! and the simulator can be cross-validated against each other (see
//! `tests/cross_validation.rs`).
//!
//! Under multi-tenant serving one physical device is shared by every
//! co-located model, so the executor carries one [`ModelCost`] per
//! tenant and each offload is priced by its owner's model.

use drs_core::{us_to_ns, SimTime};
use drs_platform::{CpuPlatform, GpuPlatform, ModelCost};

/// Virtual-time FIFO executor for GPU-offloaded queries, shared by
/// every tenant of a node.
///
/// # Examples
///
/// ```
/// use drs_models::zoo;
/// use drs_platform::{CpuPlatform, GpuPlatform, ModelCost};
/// use drs_server::GpuExecutor;
///
/// let mut gx = GpuExecutor::new(
///     ModelCost::new(&zoo::dlrm_rmc1()),
///     CpuPlatform::skylake(),
///     GpuPlatform::gtx_1080ti(),
/// );
/// let first = gx.schedule(0, 0, 800);
/// let second = gx.schedule(0, 0, 800);
/// assert_eq!(second, 2 * first, "FIFO: the second query queues");
/// ```
#[derive(Debug, Clone)]
pub struct GpuExecutor {
    /// Per-tenant cost models, in tenant order.
    costs: Vec<ModelCost>,
    cpu: CpuPlatform,
    gpu: GpuPlatform,
    busy_until: SimTime,
    busy_ns: u128,
    completed: u64,
}

impl GpuExecutor {
    /// Creates an idle executor for one model on one host/device pair.
    pub fn new(cost: ModelCost, cpu: CpuPlatform, gpu: GpuPlatform) -> Self {
        Self::new_multi(vec![cost], cpu, gpu)
    }

    /// Creates an idle executor shared by several co-located models:
    /// `costs[k]` prices tenant `k`'s offloads.
    ///
    /// # Panics
    ///
    /// Panics if `costs` is empty.
    pub fn new_multi(costs: Vec<ModelCost>, cpu: CpuPlatform, gpu: GpuPlatform) -> Self {
        assert!(!costs.is_empty(), "an executor needs a tenant");
        GpuExecutor {
            costs,
            cpu,
            gpu,
            busy_until: 0,
            busy_ns: 0,
            completed: 0,
        }
    }

    /// End-to-end service time of one whole query of `size` items for
    /// `tenant`, in microseconds — byte-for-byte the simulator's cost
    /// math.
    pub fn service_us(&self, tenant: usize, size: u32) -> f64 {
        self.costs[tenant].gpu_query_us(&self.cpu, &self.gpu, size as usize)
    }

    /// [`service_us`](GpuExecutor::service_us) in nanoseconds.
    pub fn service_ns(&self, tenant: usize, size: u32) -> SimTime {
        us_to_ns(self.service_us(tenant, size))
    }

    /// FIFO-schedules `tenant`'s query arriving at `now` and returns
    /// its completion time: it starts when the device frees up and
    /// holds the device for its full service time.
    pub fn schedule(&mut self, now: SimTime, tenant: usize, size: u32) -> SimTime {
        self.schedule_timed(now, tenant, size).1
    }

    /// [`schedule`](GpuExecutor::schedule), but also returning when
    /// service *starts* — `start > now` means the FIFO queued the
    /// query behind earlier work, which is exactly the span schema's
    /// queue-wait stage.
    pub fn schedule_timed(&mut self, now: SimTime, tenant: usize, size: u32) -> (SimTime, SimTime) {
        let start = self.busy_until.max(now);
        let done = start + self.service_ns(tenant, size);
        self.busy_ns += (done - start) as u128;
        self.busy_until = done;
        self.completed += 1;
        (start, done)
    }

    /// Total device-busy virtual time, nanoseconds.
    pub fn busy_ns(&self) -> u128 {
        self.busy_ns
    }

    /// Queries scheduled so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// When the device frees up (virtual time). `busy_until - now`,
    /// clamped at zero, is the device backlog — the fleet-pulse gauge
    /// sampled as `gpu_backlog_ns_n{n}`.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_models::zoo;

    fn gx() -> GpuExecutor {
        GpuExecutor::new(
            ModelCost::new(&zoo::ncf()),
            CpuPlatform::skylake(),
            GpuPlatform::gtx_1080ti(),
        )
    }

    #[test]
    fn idle_device_serves_at_cost() {
        let mut g = gx();
        let done = g.schedule(5_000, 0, 256);
        assert_eq!(done, 5_000 + g.service_ns(0, 256));
        assert_eq!(g.completed(), 1);
    }

    #[test]
    fn busy_device_queues_fifo() {
        let mut g = gx();
        let d1 = g.schedule(0, 0, 512);
        let d2 = g.schedule(1, 0, 512); // arrives while busy
        assert_eq!(d2, d1 + g.service_ns(0, 512));
        assert_eq!(g.busy_ns(), 2 * g.service_ns(0, 512) as u128);
    }

    #[test]
    fn gap_leaves_device_idle() {
        let mut g = gx();
        let d1 = g.schedule(0, 0, 64);
        let late = d1 + 1_000_000;
        let d2 = g.schedule(late, 0, 64);
        assert_eq!(d2, late + g.service_ns(0, 64));
        // Busy time excludes the idle gap.
        assert_eq!(g.busy_ns(), 2 * g.service_ns(0, 64) as u128);
    }

    #[test]
    fn service_grows_with_query_size() {
        let g = gx();
        assert!(g.service_us(0, 1000) > g.service_us(0, 10));
    }

    #[test]
    fn tenants_share_one_device_fifo() {
        // Two models on one device: tenant 1's query queues behind
        // tenant 0's and is priced by its *own* model.
        let mut g = GpuExecutor::new_multi(
            vec![
                ModelCost::new(&zoo::dlrm_rmc1()),
                ModelCost::new(&zoo::ncf()),
            ],
            CpuPlatform::skylake(),
            GpuPlatform::gtx_1080ti(),
        );
        assert_ne!(g.service_ns(0, 400), g.service_ns(1, 400));
        let d0 = g.schedule(0, 0, 400);
        let d1 = g.schedule(0, 1, 400);
        assert_eq!(d1, d0 + g.service_ns(1, 400), "queued behind tenant 0");
    }
}
